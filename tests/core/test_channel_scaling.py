"""Tests for the channel-scaling schemes (Sec. III-B)."""

import pytest

from repro.core import best_uniform_factor, uniform_scaled
from repro.core.channel_scaling import snap_factor
from repro.space import Architecture


class TestUniformScaled:
    def test_applies_same_factor_everywhere(self):
        arch = Architecture((0, 1, 2), (0.3, 0.7, 1.0))
        scaled = uniform_scaled(arch, 0.5)
        assert scaled.factors == (0.5, 0.5, 0.5)
        assert scaled.ops == arch.ops

    def test_original_untouched(self):
        arch = Architecture((0,), (1.0,))
        uniform_scaled(arch, 0.5)
        assert arch.factors == (1.0,)


class TestBestUniformFactor:
    def _latency(self, arch):
        # latency proportional to mean factor (monotone in the factor)
        return 10.0 * sum(arch.factors) / len(arch.factors)

    def test_picks_largest_feasible(self):
        arch = Architecture.uniform(4, 0, 1.0)
        factors = [0.2, 0.4, 0.6, 0.8, 1.0]
        best = best_uniform_factor(arch, factors, self._latency, target_ms=6.5)
        assert best == 0.6

    def test_none_when_infeasible(self):
        arch = Architecture.uniform(4, 0, 1.0)
        best = best_uniform_factor(arch, [0.5, 1.0], self._latency, target_ms=1.0)
        assert best is None

    def test_exact_boundary_feasible(self):
        arch = Architecture.uniform(4, 0, 1.0)
        best = best_uniform_factor(arch, [0.5, 1.0], self._latency, target_ms=5.0)
        assert best == 0.5

    def test_invalid_target_raises(self):
        arch = Architecture.uniform(2, 0, 1.0)
        with pytest.raises(ValueError):
            best_uniform_factor(arch, [0.5], self._latency, target_ms=0.0)


class TestSnapFactor:
    def test_snaps_to_nearest(self):
        assert snap_factor(0.47, [0.1, 0.5, 1.0]) == 0.5

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            snap_factor(0.5, [])


class TestGreedyFitFactors:
    """Tests for the sensitivity-guided per-layer width fitting."""

    def _setup(self, space):
        from repro.accuracy import AccuracySurrogate

        surrogate = AccuracySurrogate(space)
        latency_fn = lambda a: space.arch_flops(a) / 1e4
        return surrogate.proxy_accuracy, latency_fn

    def test_meets_reachable_target(self, proxy_space):
        from repro.core import greedy_fit_factors

        acc_fn, lat_fn = self._setup(proxy_space)
        start = Architecture.uniform(proxy_space.num_layers, 0, 1.0)
        target = lat_fn(start) * 0.7
        fitted = greedy_fit_factors(
            start, proxy_space.candidate_factors, lat_fn, acc_fn, target
        )
        assert lat_fn(fitted) <= target
        assert proxy_space.contains(fitted)

    def test_already_feasible_returns_unchanged(self, proxy_space):
        from repro.core import greedy_fit_factors

        acc_fn, lat_fn = self._setup(proxy_space)
        start = Architecture.uniform(proxy_space.num_layers, 0, 0.5)
        fitted = greedy_fit_factors(
            start, proxy_space.candidate_factors, lat_fn, acc_fn,
            target_ms=lat_fn(start) + 1.0,
        )
        assert fitted == start

    def test_unreachable_target_bottoms_out(self, proxy_space):
        from repro.core import greedy_fit_factors

        acc_fn, lat_fn = self._setup(proxy_space)
        start = Architecture.uniform(proxy_space.num_layers, 0, 1.0)
        fitted = greedy_fit_factors(
            start, proxy_space.candidate_factors, lat_fn, acc_fn,
            target_ms=1e-6,
        )
        # Best effort: as fast as the all-minimum-factor architecture.
        # (Some factors may stop above the literal minimum when channel
        # rounding makes the last decrements free of latency savings.)
        all_min = Architecture(
            start.ops,
            tuple(min(c) for c in proxy_space.candidate_factors),
        )
        assert lat_fn(fitted) == pytest.approx(lat_fn(all_min))

    def test_ops_untouched(self, proxy_space, rng):
        from repro.core import greedy_fit_factors

        acc_fn, lat_fn = self._setup(proxy_space)
        start = proxy_space.sample(rng).with_factor(0, 1.0)
        fitted = greedy_fit_factors(
            start, proxy_space.candidate_factors, lat_fn, acc_fn,
            target_ms=lat_fn(start) * 0.8,
        )
        assert fitted.ops == start.ops

    def test_beats_uniform_scaling(self, proxy_space):
        """Greedy per-layer fitting keeps more accuracy than the
        conventional uniform multiplier at the same budget."""
        from repro.core import best_uniform_factor, greedy_fit_factors, uniform_scaled

        acc_fn, lat_fn = self._setup(proxy_space)
        start = Architecture.uniform(proxy_space.num_layers, 1, 1.0)
        target = lat_fn(start) * 0.62
        greedy = greedy_fit_factors(
            start, proxy_space.candidate_factors, lat_fn, acc_fn, target
        )
        uniform = best_uniform_factor(
            start, proxy_space.config.channel_factors, lat_fn, target
        )
        assert uniform is not None
        assert acc_fn(greedy) >= acc_fn(uniform_scaled(start, uniform)) - 1e-9

    def test_invalid_target_raises(self, proxy_space):
        from repro.core import greedy_fit_factors

        acc_fn, lat_fn = self._setup(proxy_space)
        with pytest.raises(ValueError):
            greedy_fit_factors(
                Architecture.uniform(8), proxy_space.candidate_factors,
                lat_fn, acc_fn, target_ms=0.0,
            )
