"""Tests for the evolutionary search (Sec. III-D)."""

import numpy as np
import pytest

from repro.core import EvolutionConfig, EvolutionarySearch, Objective
from repro.core.evolution import RandomSearch
from repro.space import Architecture


def make_objective(space, target=15.0):
    """Accuracy grows with FLOPs; latency proportional to FLOPs.

    Scaled so the proxy space's ~0.08-0.24M MACs map to 8-24 "ms",
    putting the default target inside the reachable range. The sqrt
    gives diminishing accuracy returns, so the optimum sits exactly at
    the latency target (as with the real surrogate).
    """
    return Objective(
        accuracy_fn=lambda a: min(1.0, (space.arch_flops(a) / 2.5e5) ** 0.5),
        latency_fn=lambda a: space.arch_flops(a) / 1e4,
        target_ms=target,
        beta=-0.5,
    )


class TestEvolutionConfig:
    def test_paper_defaults(self):
        cfg = EvolutionConfig()
        assert cfg.generations == 20
        assert cfg.population_size == 50
        assert cfg.num_parents == 20
        assert cfg.crossover_prob == 0.25
        assert cfg.mutation_prob == 0.25

    def test_invalid_values(self):
        with pytest.raises(ValueError):
            EvolutionConfig(generations=0)
        with pytest.raises(ValueError):
            EvolutionConfig(num_parents=51, population_size=50)
        with pytest.raises(ValueError):
            EvolutionConfig(crossover_prob=1.5)


class TestGeneticOperators:
    def _search(self, space):
        return EvolutionarySearch(space, make_objective(space))

    def test_crossover_mixes_parents(self, proxy_space):
        search = self._search(proxy_space)
        a = Architecture.uniform(8, op_index=0, factor=0.5)
        b = Architecture.uniform(8, op_index=1, factor=1.0)
        child = search._crossover(a, b, np.random.default_rng(0))
        # every gene comes from one of the two parents, pairwise
        for i in range(8):
            assert (child.ops[i], child.factors[i]) in {(0, 0.5), (1, 1.0)}

    def test_mutation_stays_in_space(self, proxy_space, rng):
        search = self._search(proxy_space)
        arch = proxy_space.sample(rng)
        for _ in range(10):
            arch = search._mutate(arch, rng)
            assert proxy_space.contains(arch)

    def test_mutation_respects_shrunk_space(self, proxy_space, rng):
        shrunk = proxy_space.fix_operator(7, 2)
        search = EvolutionarySearch(shrunk, make_objective(shrunk))
        arch = shrunk.sample(rng)
        for _ in range(20):
            arch = search._mutate(arch, rng)
            assert arch.ops[7] == 2


class TestSearchRun:
    def test_deterministic(self, proxy_space):
        cfg = EvolutionConfig(generations=4, population_size=10, num_parents=4, seed=9)
        r1 = EvolutionarySearch(proxy_space, make_objective(proxy_space), cfg).run()
        r2 = EvolutionarySearch(proxy_space, make_objective(proxy_space), cfg).run()
        assert r1.best.arch == r2.best.arch
        assert r1.best.score == r2.best.score

    def test_best_improves_or_holds_over_generations(self, proxy_space):
        cfg = EvolutionConfig(generations=8, population_size=16, num_parents=6)
        result = EvolutionarySearch(
            proxy_space, make_objective(proxy_space), cfg
        ).run()
        bests = [g.best.score for g in result.generations]
        running = [max(bests[: i + 1]) for i in range(len(bests))]
        assert running == sorted(running)
        assert result.best.score == pytest.approx(max(bests))

    def test_population_size_maintained(self, proxy_space):
        cfg = EvolutionConfig(generations=5, population_size=12, num_parents=4)
        result = EvolutionarySearch(
            proxy_space, make_objective(proxy_space), cfg
        ).run()
        for gen in result.generations:
            assert len(gen.population) == 12

    def test_latency_concentrates_near_target(self, proxy_space):
        """The paper's Fig. 6: the EA's final population clusters at the
        latency constraint much tighter than uniform sampling."""
        target = 15.0
        obj = make_objective(proxy_space, target=target)
        cfg = EvolutionConfig(generations=12, population_size=30, num_parents=10)
        result = EvolutionarySearch(proxy_space, obj, cfg).run()

        final = np.array(result.generations[-1].latencies())
        rng = np.random.default_rng(0)
        random_lats = np.array(
            [obj.latency_fn(proxy_space.sample(rng)) for _ in range(30)]
        )
        ea_dev = np.mean(np.abs(final / target - 1.0))
        rand_dev = np.mean(np.abs(random_lats / target - 1.0))
        assert ea_dev < rand_dev * 0.5

    def test_best_latency_close_to_target(self, proxy_space):
        target = 15.0
        cfg = EvolutionConfig(generations=12, population_size=30, num_parents=10)
        result = EvolutionarySearch(
            proxy_space, make_objective(proxy_space, target), cfg
        ).run()
        assert result.best.latency_ms == pytest.approx(target, rel=0.1)

    def test_all_evaluated_inside_space(self, proxy_space):
        shrunk = proxy_space.fix_operator(7, 1).fix_operator(6, 0)
        cfg = EvolutionConfig(generations=4, population_size=10, num_parents=4)
        result = EvolutionarySearch(shrunk, make_objective(shrunk), cfg).run()
        for ev in result.all_evaluated():
            assert shrunk.contains(ev.arch)

    def test_beats_random_at_equal_budget(self, space_a):
        """EA vs random-search ablation at equal budget, on the real
        (surrogate accuracy + device latency) objective. The toy smooth
        objective would be too easy — random search saturates it — so
        this test uses the paper-scale landscape, where selection
        pressure matters."""
        from repro.accuracy import AccuracySurrogate
        from repro.hardware import get_device

        surrogate = AccuracySurrogate(space_a)
        device = get_device("edge")
        obj = Objective(
            accuracy_fn=surrogate.proxy_accuracy,
            latency_fn=lambda a: device.latency_ms(space_a, a),
            target_ms=19.0,
            beta=-0.5,
        )
        cfg = EvolutionConfig(generations=10, population_size=20, num_parents=8, seed=1)
        ea = EvolutionarySearch(space_a, obj, cfg).run()
        budget = sum(len(g.population) for g in ea.generations)
        wins = 0
        for seed in range(3):
            rnd = RandomSearch(space_a, obj, budget=budget, seed=seed).run()
            if ea.best.score >= rnd.best.score:
                wins += 1
        assert wins >= 2

    def test_memoization_counts_unique(self, proxy_space):
        cfg = EvolutionConfig(generations=4, population_size=10, num_parents=4)
        search = EvolutionarySearch(proxy_space, make_objective(proxy_space), cfg)
        result = search.run()
        assert result.num_evaluations <= sum(
            len(g.population) for g in result.generations
        )

    def test_best_per_generation(self, proxy_space):
        cfg = EvolutionConfig(generations=3, population_size=8, num_parents=3)
        result = EvolutionarySearch(
            proxy_space, make_objective(proxy_space), cfg
        ).run()
        assert len(result.best_per_generation()) == 3


class TestRandomSearch:
    def test_budget_respected(self, proxy_space):
        result = RandomSearch(
            proxy_space, make_objective(proxy_space), budget=25
        ).run()
        assert result.num_evaluations == 25

    def test_invalid_budget_raises(self, proxy_space):
        with pytest.raises(ValueError):
            RandomSearch(proxy_space, make_objective(proxy_space), budget=0)
