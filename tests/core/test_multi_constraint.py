"""Tests for the latency+energy multi-constraint objective."""

import numpy as np
import pytest

from repro.core import (
    EvolutionConfig,
    EvolutionarySearch,
    MultiConstraintObjective,
)
from repro.hardware import EnergyModel, EnergyPredictor, get_device


def _objective(space, energy_budget, beta_energy=-1.0):
    device = get_device("edge")
    energy = EnergyModel(device)
    return MultiConstraintObjective(
        accuracy_fn=lambda a: min(1.0, (space.arch_flops(a) / 2.5e5) ** 0.5),
        latency_fn=lambda a: device.latency_ms(space, a),
        target_ms=1.3,
        energy_fn=lambda a: energy.arch_energy_mj(space, a),
        energy_budget_mj=energy_budget,
        beta=-0.5,
        beta_energy=beta_energy,
    )


class TestValidation:
    def test_nonpositive_budget_raises(self, proxy_space):
        with pytest.raises(ValueError):
            _objective(proxy_space, energy_budget=0.0)

    def test_nonnegative_beta_energy_raises(self, proxy_space):
        with pytest.raises(ValueError):
            _objective(proxy_space, energy_budget=1.0, beta_energy=0.0)


class TestEnergyPenalty:
    def test_under_budget_is_free(self, proxy_space):
        obj = _objective(proxy_space, energy_budget=10.0)
        assert obj.energy_penalty(5.0) == 0.0
        assert obj.energy_penalty(10.0) == 0.0

    def test_over_budget_penalized_proportionally(self, proxy_space):
        obj = _objective(proxy_space, energy_budget=10.0, beta_energy=-2.0)
        assert obj.energy_penalty(15.0) == pytest.approx(-1.0)

    def test_evaluate_includes_energy_term(self, proxy_space, rng):
        arch = proxy_space.sample(rng)
        generous = _objective(proxy_space, energy_budget=1e9)
        tight = _objective(proxy_space, energy_budget=1e-6)
        assert tight(arch) < generous(arch)

    def test_reduces_to_eq1_with_big_budget(self, proxy_space, rng):
        from repro.core import Objective

        arch = proxy_space.sample(rng)
        multi = _objective(proxy_space, energy_budget=1e9)
        plain = Objective(
            multi.accuracy_fn, multi.latency_fn, multi.target_ms, multi.beta
        )
        assert multi(arch) == pytest.approx(plain(arch))


class TestEnergyConstrainedSearch:
    def test_tight_budget_changes_winner(self, proxy_space):
        """The energy budget must actually steer the search."""
        device = get_device("edge")
        energy = EnergyModel(device)

        # Find the typical energy level first.
        rng = np.random.default_rng(0)
        typical = float(np.median([
            energy.arch_energy_mj(proxy_space, proxy_space.sample(rng))
            for _ in range(20)
        ]))

        cfg = EvolutionConfig(generations=6, population_size=14,
                              num_parents=5, seed=2)
        loose = EvolutionarySearch(
            proxy_space, _objective(proxy_space, energy_budget=typical * 10),
            cfg,
        ).run().best
        tight = EvolutionarySearch(
            proxy_space, _objective(proxy_space, energy_budget=typical * 0.8),
            cfg,
        ).run().best

        loose_energy = energy.arch_energy_mj(proxy_space, loose.arch)
        tight_energy = energy.arch_energy_mj(proxy_space, tight.arch)
        assert tight_energy < loose_energy
        # and the tight run roughly respects the budget
        assert tight_energy <= typical * 0.8 * 1.15


class TestEnergyPredictorInSearch:
    def test_predictor_substitutes_for_measurement(self, proxy_space, rng):
        """A search can use the energy *predictor* instead of the
        ground-truth rail, like the latency side does."""
        device = get_device("edge")
        model = EnergyModel(device)
        predictor = EnergyPredictor(proxy_space, model).build(seed=0)
        predictor.calibrate_bias(num_archs=10, seed=1)
        arch = proxy_space.sample(rng)
        assert predictor.predict(arch) == pytest.approx(
            model.arch_energy_mj(proxy_space, arch), rel=0.15
        )
