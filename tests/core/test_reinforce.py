"""Tests for the REINFORCE search baseline."""

import numpy as np
import pytest

from repro.core import Objective, ReinforceConfig, ReinforceSearch
from repro.space import SearchSpace, proxy


def make_objective(space, target=15.0):
    return Objective(
        accuracy_fn=lambda a: min(1.0, (space.arch_flops(a) / 2.5e5) ** 0.5),
        latency_fn=lambda a: space.arch_flops(a) / 1e4,
        target_ms=target,
        beta=-0.5,
    )


class TestConfig:
    def test_invalid_values(self):
        with pytest.raises(ValueError):
            ReinforceConfig(iterations=0)
        with pytest.raises(ValueError):
            ReinforceConfig(learning_rate=0.0)
        with pytest.raises(ValueError):
            ReinforceConfig(baseline_momentum=1.0)


class TestSearch:
    def test_samples_stay_in_space(self, proxy_space, rng):
        search = ReinforceSearch(proxy_space, make_objective(proxy_space))
        for _ in range(20):
            arch, _, _ = search._sample(rng)
            assert proxy_space.contains(arch)

    def test_respects_shrunk_space(self, rng):
        space = SearchSpace(proxy()).fix_operator(7, 2)
        search = ReinforceSearch(space, make_objective(space))
        for _ in range(20):
            arch, _, _ = search._sample(rng)
            assert arch.ops[7] == 2

    def test_deterministic(self, proxy_space):
        cfg = ReinforceConfig(iterations=4, batch_size=8, seed=5)
        obj = make_objective(proxy_space)
        r1 = ReinforceSearch(proxy_space, obj, cfg).run()
        r2 = ReinforceSearch(proxy_space, obj, cfg).run()
        assert r1.best.arch == r2.best.arch

    def test_budget_accounting(self, proxy_space):
        cfg = ReinforceConfig(iterations=5, batch_size=7)
        result = ReinforceSearch(
            proxy_space, make_objective(proxy_space), cfg
        ).run()
        assert result.num_evaluations == 35
        assert len(result.generations) == 5

    def test_policy_improves_mean_reward(self, proxy_space):
        """The controller's sampled population must improve over
        training — the definition of the policy gradient working."""
        cfg = ReinforceConfig(iterations=15, batch_size=30,
                              learning_rate=3.0, seed=0)
        result = ReinforceSearch(
            proxy_space, make_objective(proxy_space), cfg
        ).run()
        first = np.mean([e.score for e in result.generations[0].population])
        last = np.mean([e.score for e in result.generations[-1].population])
        assert last > first

    def test_entropy_decreases(self, proxy_space):
        """A converging categorical policy loses entropy."""
        cfg = ReinforceConfig(iterations=15, batch_size=30,
                              learning_rate=3.0, seed=0)
        search = ReinforceSearch(proxy_space, make_objective(proxy_space), cfg)
        initial_entropy = search.policy_entropy()
        search.run()
        assert search.policy_entropy() < initial_entropy

    def test_best_never_degrades(self, proxy_space):
        cfg = ReinforceConfig(iterations=8, batch_size=10, seed=1)
        result = ReinforceSearch(
            proxy_space, make_objective(proxy_space), cfg
        ).run()
        all_scores = [e.score for g in result.generations for e in g.population]
        assert result.best.score == pytest.approx(max(all_scores))


class TestEntropyBonus:
    def test_entropy_weight_slows_collapse(self, proxy_space):
        """A positive entropy bonus keeps the policy broader than the
        plain controller after the same training."""
        obj = make_objective(proxy_space)
        plain = ReinforceSearch(
            proxy_space, obj,
            ReinforceConfig(iterations=10, batch_size=20,
                            learning_rate=3.0, seed=4),
        )
        regularized = ReinforceSearch(
            proxy_space, obj,
            ReinforceConfig(iterations=10, batch_size=20,
                            learning_rate=3.0, entropy_weight=0.5, seed=4),
        )
        plain.run()
        regularized.run()
        assert regularized.policy_entropy() >= plain.policy_entropy()
