"""Tests for the end-to-end HSCoNAS pipeline."""

import pytest

from repro.core import EvolutionConfig, HSCoNAS, HSCoNASConfig
from repro.hardware import get_device


@pytest.fixture(scope="module")
def quick_config():
    return HSCoNASConfig(
        target_ms=1.3,  # inside the proxy space's 0.9-1.5 ms GPU range
        lut_samples_per_cell=1,
        bias_calibration_archs=8,
        quality_samples=10,
        evolution=EvolutionConfig(
            generations=4, population_size=12, num_parents=5
        ),
        seed=0,
    )


@pytest.fixture(scope="module")
def pipeline_result(proxy_space, quick_config):
    nas = HSCoNAS(proxy_space, get_device("gpu"), quick_config)
    return nas.run()


class TestConfigValidation:
    def test_defaults_match_paper(self):
        cfg = HSCoNASConfig()
        assert cfg.quality_samples == 100  # N in Eq. 4
        assert cfg.evolution.generations == 20
        assert cfg.enable_shrinking

    def test_invalid_target_raises(self):
        with pytest.raises(ValueError):
            HSCoNASConfig(target_ms=-1.0)

    def test_nonnegative_beta_raises(self):
        with pytest.raises(ValueError):
            HSCoNASConfig(beta=0.0)


class TestPipeline:
    def test_discovers_valid_architecture(self, proxy_space, pipeline_result):
        assert proxy_space.contains(pipeline_result.arch)

    def test_latency_near_target(self, pipeline_result, quick_config):
        assert pipeline_result.measured_latency_ms == pytest.approx(
            quick_config.target_ms, rel=0.25
        )

    def test_predictor_calibrated(self, pipeline_result):
        assert pipeline_result.predictor.calibrated
        assert pipeline_result.bias_ms > 0.0

    def test_shrinking_happened(self, pipeline_result):
        assert pipeline_result.shrink is not None
        assert pipeline_result.final_space.fixed_layers()

    def test_search_inside_shrunk_space(self, pipeline_result):
        fixed = pipeline_result.final_space.fixed_layers()
        for layer, op in fixed.items():
            assert pipeline_result.arch.ops[layer] == op

    def test_errors_plausible(self, pipeline_result):
        assert 5.0 < pipeline_result.top1_error < 60.0
        assert pipeline_result.top5_error < pipeline_result.top1_error

    def test_summary_renders(self, pipeline_result):
        text = pipeline_result.summary()
        assert "top-1" in text
        assert "bias B" in text

    def test_shrinking_disabled(self, proxy_space, quick_config):
        from dataclasses import replace

        cfg = replace(quick_config, enable_shrinking=False)
        result = HSCoNAS(proxy_space, get_device("gpu"), cfg).run()
        assert result.shrink is None
        assert not result.final_space.fixed_layers()

    def test_reproducible(self, proxy_space, quick_config, pipeline_result):
        again = HSCoNAS(proxy_space, get_device("gpu"), quick_config).run()
        assert again.arch == pipeline_result.arch

    def test_different_targets_different_archs(self, proxy_space, quick_config):
        from dataclasses import replace

        cfg_fast = replace(quick_config, target_ms=1.0)
        fast = HSCoNAS(proxy_space, get_device("gpu"), cfg_fast).run()
        slow_result = HSCoNAS(
            proxy_space, get_device("gpu"), quick_config
        ).run()
        assert fast.measured_latency_ms < slow_result.measured_latency_ms
