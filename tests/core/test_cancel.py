"""Cooperative deadline propagation through the search stack.

Contracts (docs/robustness.md, "Online resilience"):

* an expired token stops a search at the next per-generation check and
  the raised :class:`DeadlineExceeded` carries generation-granular
  partial progress;
* a token that never expires changes nothing — bit-identical results.
"""

import pytest

from repro.core import (
    EvolutionConfig,
    EvolutionarySearch,
    Nsga2Config,
    Nsga2Search,
)
from repro.resilience import CancelToken, DeadlineExceeded

from tests.core.test_evolution import make_objective


class FakeClock:
    def __init__(self, now: float = 0.0):
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, by: float) -> None:
        self.now += by


def _nsga2(space, cancel=None, generations=6):
    return Nsga2Search(
        space,
        accuracy_fn=lambda a: min(
            1.0, (space.arch_flops(a) / 2.5e5) ** 0.5
        ),
        latency_fn=lambda a: space.arch_flops(a) / 1e4,
        config=Nsga2Config(
            generations=generations, population_size=12, seed=0
        ),
        cancel=cancel,
    )


class TestNsga2Cancel:
    def test_pre_expired_token_raises_before_any_generation(
        self, proxy_space
    ):
        token = CancelToken()
        token.cancel()
        with pytest.raises(DeadlineExceeded) as excinfo:
            _nsga2(proxy_space, cancel=token).run()
        progress = excinfo.value.progress
        assert progress["stage"] == "nsga2"
        assert progress["generations_done"] == 0
        assert progress["total_generations"] == 6

    def test_mid_run_expiry_reports_partial_generations(
        self, proxy_space
    ):
        clock = FakeClock()
        token = CancelToken(deadline_s=100.0, clock=clock)
        search = _nsga2(proxy_space, cancel=token)

        # Expire the token after the third per-generation check by
        # driving the injected clock from the progress callback.
        original_check = token.check

        def ticking_check(**progress):
            if progress.get("generations_done", 0) >= 3:
                clock.advance(1000.0)
            original_check(**progress)

        token.check = ticking_check
        with pytest.raises(DeadlineExceeded) as excinfo:
            search.run()
        progress = excinfo.value.progress
        assert progress["generations_done"] == 3
        assert 0 < progress["evaluations"] <= 12 * 6
        # Cancellation granularity: the search stopped within one
        # generation of the expiry, not at the end of the run.
        assert progress["generations_done"] < 6

    def test_generous_token_is_bit_identical_to_no_token(
        self, proxy_space
    ):
        bare = _nsga2(proxy_space).run()
        timed = _nsga2(
            proxy_space, cancel=CancelToken(deadline_s=3600)
        ).run()
        assert [p.arch for p in bare.front] == [
            p.arch for p in timed.front
        ]
        assert [p.latency_ms for p in bare.front] == [
            p.latency_ms for p in timed.front
        ]
        assert [p.accuracy for p in bare.front] == [
            p.accuracy for p in timed.front
        ]


class TestEvolutionCancel:
    def _search(self, space, cancel=None):
        return EvolutionarySearch(
            space,
            make_objective(space),
            EvolutionConfig(
                generations=5,
                population_size=10,
                num_parents=5,
                seed=0,
            ),
            cancel=cancel,
        )

    def test_pre_expired_token_raises_with_progress(self, proxy_space):
        token = CancelToken()
        token.cancel()
        with pytest.raises(DeadlineExceeded) as excinfo:
            self._search(proxy_space, cancel=token).run()
        progress = excinfo.value.progress
        assert progress["stage"] == "evolution"
        assert progress["generations_done"] == 0
        assert progress["total_generations"] == 5

    def test_generous_token_is_bit_identical_to_no_token(
        self, proxy_space
    ):
        bare = self._search(proxy_space).run()
        timed = self._search(
            proxy_space, cancel=CancelToken(deadline_s=3600)
        ).run()
        assert bare.best.arch == timed.best.arch
        assert bare.best.score == timed.best.score
        assert len(bare.generations) == len(timed.generations)
