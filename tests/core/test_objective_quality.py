"""Tests for the Eq. 1 objective and Eq. 4 subspace quality."""

import numpy as np
import pytest

from repro.core import Objective, SubspaceQuality
from repro.space import Architecture


def flops_latency(space):
    """A latency proxy linear in FLOPs (deterministic, no device needed)."""
    return lambda arch: space.arch_flops(arch) / 1e7


class TestObjective:
    def test_score_at_exact_target(self):
        obj = Objective(lambda a: 0.75, lambda a: 34.0, target_ms=34.0, beta=-0.5)
        arch = Architecture.uniform(3)
        assert obj(arch) == pytest.approx(0.75)

    def test_overshoot_penalized(self):
        obj = Objective(lambda a: 0.75, lambda a: 51.0, target_ms=34.0, beta=-0.5)
        # |51/34 - 1| = 0.5 -> score = 0.75 - 0.25
        assert obj(Architecture.uniform(3)) == pytest.approx(0.5)

    def test_undershoot_also_penalized(self):
        """Eq. 1 uses |.|: being faster than T also scores lower, which
        is what concentrates the EA's population at the constraint."""
        obj = Objective(lambda a: 0.75, lambda a: 17.0, target_ms=34.0, beta=-0.5)
        assert obj(Architecture.uniform(3)) < 0.75

    def test_symmetric_deviations_equal(self):
        obj = Objective(lambda a: 0.7, lambda a: 0.0, target_ms=10.0, beta=-0.4)
        assert obj.score_parts(0.7, 12.0) == pytest.approx(obj.score_parts(0.7, 8.0))

    def test_evaluate_breakdown(self):
        obj = Objective(lambda a: 0.8, lambda a: 20.0, target_ms=10.0, beta=-1.0)
        ev = obj.evaluate(Architecture.uniform(2))
        assert ev.accuracy == 0.8
        assert ev.latency_ms == 20.0
        assert ev.score == pytest.approx(0.8 - 1.0)

    def test_evaluated_arch_ordering(self):
        obj = Objective(lambda a: 0.8, lambda a: 10.0, target_ms=10.0, beta=-1.0)
        good = obj.evaluate(Architecture.uniform(2))
        bad_obj = Objective(lambda a: 0.2, lambda a: 10.0, target_ms=10.0, beta=-1.0)
        bad = bad_obj.evaluate(Architecture.uniform(2))
        assert bad < good

    def test_positive_beta_rejected(self):
        with pytest.raises(ValueError):
            Objective(lambda a: 1.0, lambda a: 1.0, target_ms=1.0, beta=0.1)

    def test_nonpositive_target_rejected(self):
        with pytest.raises(ValueError):
            Objective(lambda a: 1.0, lambda a: 1.0, target_ms=0.0)


class TestSubspaceQuality:
    def _objective(self, space):
        return Objective(
            accuracy_fn=lambda a: space.arch_flops(a) / 3e8,
            latency_fn=flops_latency(space),
            target_ms=15.0,
            beta=-0.3,
        )

    def test_estimate_is_mean_of_n_samples(self, proxy_space):
        obj = self._objective(proxy_space)
        quality = SubspaceQuality(obj, num_samples=50, seed=0)
        q = quality.estimate(proxy_space)
        assert np.isfinite(q)
        assert quality.evaluations == 50

    def test_paper_default_n_is_100(self, proxy_space):
        quality = SubspaceQuality(self._objective(proxy_space))
        assert quality.num_samples == 100

    def test_deterministic_given_seed(self, proxy_space):
        obj = self._objective(proxy_space)
        q1 = SubspaceQuality(obj, num_samples=30, seed=5).estimate(proxy_space)
        q2 = SubspaceQuality(obj, num_samples=30, seed=5).estimate(proxy_space)
        assert q1 == q2

    def test_discriminates_subspaces(self, proxy_space):
        """A subspace pinned to the op that best matches the target must
        score higher than one pinned to a clearly-worse op."""
        space = proxy_space
        obj = Objective(
            accuracy_fn=lambda a: 0.7,
            latency_fn=lambda a: 10.0 + a.ops.count(4),  # skips hurt here
            target_ms=10.0,
            beta=-0.5,
        )
        quality = SubspaceQuality(obj, num_samples=80, seed=0)
        q_conv = quality.estimate(space.fix_operator(0, 0))
        q_skip = quality.estimate(space.fix_operator(0, 4))
        assert q_conv > q_skip

    def test_invalid_n_raises(self, proxy_space):
        with pytest.raises(ValueError):
            SubspaceQuality(self._objective(proxy_space), num_samples=0)

    def test_evaluation_counter_accumulates(self, proxy_space):
        obj = self._objective(proxy_space)
        quality = SubspaceQuality(obj, num_samples=10, seed=0)
        quality.estimate(proxy_space)
        quality.estimate(proxy_space)
        assert quality.evaluations == 20
