"""Tests for progressive space shrinking (Sec. III-C)."""

import numpy as np
import pytest

from repro.core import (
    JointShrinking,
    Objective,
    ProgressiveSpaceShrinking,
    ShrinkDecision,
    SubspaceQuality,
)
from repro.core.shrinking import default_stage_layers
from repro.space import SearchSpace, imagenet_a


def simple_objective(space):
    """Prefers more FLOPs up to a latency proxy target."""
    return Objective(
        accuracy_fn=lambda a: space.arch_flops(a) / 3e8,
        latency_fn=lambda a: space.arch_flops(a) / 1e7,
        target_ms=15.0,
        beta=-0.3,
    )


class TestStageSchedule:
    def test_paper_layers_for_l20(self):
        s1, s2 = default_stage_layers(20)
        # paper: layers 20,19,18,17 then 16,15,14,13 (1-based)
        assert s1 == (19, 18, 17, 16)
        assert s2 == (15, 14, 13, 12)

    def test_proxy_scales_down(self):
        s1, s2 = default_stage_layers(8)
        assert len(s1) == len(s2) == 1
        assert s1[0] == 7 and s2[0] == 6

    def test_stages_disjoint(self):
        s1, s2 = default_stage_layers(20)
        assert not set(s1) & set(s2)


class TestShrinkLayer:
    def test_picks_highest_quality_op(self, proxy_space):
        obj = simple_objective(proxy_space)
        quality = SubspaceQuality(obj, num_samples=40, seed=0)
        shrinker = ProgressiveSpaceShrinking(quality)
        space, decision = shrinker.shrink_layer(proxy_space, layer=7)
        assert decision.chosen_op == max(
            decision.qualities, key=decision.qualities.get
        )
        assert space.candidate_ops[7] == (decision.chosen_op,)

    def test_decision_covers_all_candidates(self, proxy_space):
        obj = simple_objective(proxy_space)
        quality = SubspaceQuality(obj, num_samples=20, seed=0)
        shrinker = ProgressiveSpaceShrinking(quality)
        _, decision = shrinker.shrink_layer(proxy_space, layer=5)
        assert set(decision.qualities) == set(proxy_space.candidate_ops[5])

    def test_margin(self):
        d = ShrinkDecision(layer=0, qualities={0: 1.0, 1: 0.6, 2: 0.9}, chosen_op=0)
        assert d.margin() == pytest.approx(0.1)

    def test_margin_single_candidate(self):
        d = ShrinkDecision(layer=0, qualities={0: 1.0}, chosen_op=0)
        assert d.margin() == 0.0


class TestProgressiveRun:
    def test_two_stages_fix_expected_layers(self):
        space = SearchSpace(imagenet_a())
        obj = simple_objective(space)
        quality = SubspaceQuality(obj, num_samples=10, seed=0)
        shrinker = ProgressiveSpaceShrinking(quality)
        result = shrinker.run(space)
        fixed = result.final_space.fixed_layers()
        assert set(fixed) == {19, 18, 17, 16, 15, 14, 13, 12}

    def test_three_orders_per_stage(self):
        """Each 4-layer stage removes K^4 = 625 ~ 10^2.8 of the space —
        the paper's 'three orders of magnitude'."""
        space = SearchSpace(imagenet_a())
        obj = simple_objective(space)
        quality = SubspaceQuality(obj, num_samples=5, seed=0)
        result = ProgressiveSpaceShrinking(quality).run(space)
        removed = result.orders_of_magnitude_removed()
        assert len(removed) == 2
        for orders in removed:
            assert orders == pytest.approx(np.log10(5 ** 4), rel=1e-6)

    def test_progressive_costs_k_times_layers(self):
        """Complexity claim: 5 x 4 subspace evaluations per stage, not 5^4."""
        space = SearchSpace(imagenet_a())
        obj = simple_objective(space)
        n = 10
        quality = SubspaceQuality(obj, num_samples=n, seed=0)
        result = ProgressiveSpaceShrinking(quality).run(space)
        # 2 stages x 4 layers x 5 ops x n samples
        assert result.quality_evaluations == 2 * 4 * 5 * n

    def test_tune_hook_called_between_stages(self, proxy_space):
        calls = []
        obj = simple_objective(proxy_space)
        quality = SubspaceQuality(obj, num_samples=5, seed=0)
        shrinker = ProgressiveSpaceShrinking(
            quality, tune_hook=lambda space, stage: calls.append(stage)
        )
        shrinker.run(proxy_space)
        assert calls == [0]  # once, between the two stages

    def test_custom_stage_layers(self, proxy_space):
        obj = simple_objective(proxy_space)
        quality = SubspaceQuality(obj, num_samples=5, seed=0)
        shrinker = ProgressiveSpaceShrinking(quality, stage_layers=[(3, 2), (1,)])
        result = shrinker.run(proxy_space)
        assert set(result.final_space.fixed_layers()) == {3, 2, 1}

    def test_decisions_recorded_in_order(self, proxy_space):
        obj = simple_objective(proxy_space)
        quality = SubspaceQuality(obj, num_samples=5, seed=0)
        shrinker = ProgressiveSpaceShrinking(quality, stage_layers=[(7, 6)])
        result = shrinker.run(proxy_space)
        assert [d.layer for d in result.decisions()] == [7, 6]


class TestJointShrinking:
    def test_exponential_evaluations(self, proxy_space):
        """The naive joint evaluation costs K^layers quality estimates —
        625 for a 4-layer stage vs. the progressive 20."""
        obj = simple_objective(proxy_space)
        quality = SubspaceQuality(obj, num_samples=2, seed=0)
        joint = JointShrinking(quality)
        _, evals = joint.run_stage(proxy_space, layers=(7, 6))
        assert evals == 5 ** 2 * 2  # 25 subspaces x N=2 F-calls each

    def test_fixes_requested_layers(self, proxy_space):
        obj = simple_objective(proxy_space)
        quality = SubspaceQuality(obj, num_samples=2, seed=0)
        space, _ = JointShrinking(quality).run_stage(proxy_space, layers=(7, 6))
        assert set(space.fixed_layers()) == {7, 6}
