"""The shared :class:`EvaluationCache` and batched objective evaluation.

Covers the cache's accounting contract (``num_evaluations`` must stay
identical to the old private-dict counting), batch/scalar equivalence of
``Objective.evaluate_many``, and the pipeline invalidation rule (tuning
between shrinking stages clears the cache).
"""

import numpy as np
import pytest

from repro.core import (
    EvaluationCache,
    EvolutionConfig,
    EvolutionarySearch,
    MultiConstraintObjective,
    Objective,
    ProgressiveSpaceShrinking,
    SubspaceQuality,
)
from repro.space import Architecture, SearchSpace, proxy


@pytest.fixture(scope="module")
def space():
    return SearchSpace(proxy())


def flops_objective(space, **kwargs):
    return Objective(
        accuracy_fn=lambda a: 0.5 + 0.01 * sum(a.ops),
        latency_fn=lambda a: space.arch_flops(a) / 1e7,
        target_ms=20.0,
        beta=-0.5,
        **kwargs,
    )


class TestEvaluationCache:
    def test_miss_then_hit(self):
        cache = EvaluationCache()
        arch = Architecture.uniform(3)
        calls = []
        fn = lambda a: calls.append(a) or 42
        assert cache.get_or_eval(arch, fn) == 42
        assert cache.get_or_eval(arch, fn) == 42
        assert len(calls) == 1
        assert cache.stats() == {
            "size": 1, "hits": 1, "misses": 1, "evictions": 0,
            "hit_rate": 0.5,
        }
        assert arch in cache and len(cache) == 1

    def test_lru_cap_evicts_oldest_and_counts(self):
        cache = EvaluationCache(max_size=2)
        a = Architecture((0,), (1.0,))
        b = Architecture((1,), (1.0,))
        c = Architecture((2,), (1.0,))
        for arch in (a, b):
            cache.get_or_eval(arch, lambda x: sum(x.ops))
        # Touch a so b becomes the least-recently-used entry.
        cache.get_or_eval(a, lambda x: -1)
        cache.get_or_eval(c, lambda x: sum(x.ops))
        assert len(cache) == 2 and cache.evictions == 1
        assert a in cache and c in cache and b not in cache
        # b was evicted: looking it up again is a fresh miss.
        assert cache.get_or_eval(b, lambda x: 99) == 99
        assert cache.stats()["evictions"] == 2

    def test_lru_cap_batch_smaller_than_batch_size(self):
        """A batch larger than the cap still returns correct values."""
        cache = EvaluationCache(max_size=2)
        archs = [Architecture((op,), (1.0,)) for op in range(5)]
        out = cache.get_or_eval_many(
            archs + [archs[0]], lambda xs: [sum(x.ops) for x in xs]
        )
        assert out == [0, 1, 2, 3, 4, 0]
        assert len(cache) == 2 and cache.evictions == 3

    def test_max_size_validated(self):
        with pytest.raises(ValueError, match="max_size"):
            EvaluationCache(max_size=0)

    def test_snapshot_restore_round_trip(self):
        cache = EvaluationCache(max_size=8)
        archs = [Architecture((op,), (1.0,)) for op in range(3)]
        for arch in archs:
            cache.get_or_eval(arch, lambda x: {"v": sum(x.ops), "arch": x})
        cache.get_or_eval(archs[0], lambda x: None)  # one hit
        snap = cache.snapshot(lambda v: {"v": v["v"], "arch": v["arch"].to_dict()})

        other = EvaluationCache()
        other.restore(
            snap,
            lambda d: {"v": d["v"], "arch": Architecture.from_dict(d["arch"])},
            key_fn=lambda v: v["arch"].key(),
        )
        assert other.stats() == cache.stats()
        assert other.max_size == 8
        for arch in archs:
            assert arch in other
        # Restored entries are hits, not re-evaluations.
        assert other.get_or_eval(archs[1], lambda x: "fresh")["v"] == 1

    def test_get_or_eval_many_dedups_batch(self):
        cache = EvaluationCache()
        a = Architecture((0,), (1.0,))
        b = Architecture((1,), (1.0,))
        batches = []

        def eval_many(archs):
            batches.append(list(archs))
            return [sum(x.ops) for x in archs]

        out = cache.get_or_eval_many([a, b, a, a], eval_many)
        assert out == [0, 1, 0, 0]
        assert batches == [[a, b]]  # one batch, duplicates collapsed
        assert cache.misses == 2 and cache.hits == 2

    def test_get_or_eval_many_mixes_cached_and_fresh(self):
        cache = EvaluationCache()
        a = Architecture((0,), (1.0,))
        b = Architecture((1,), (1.0,))
        cache.get_or_eval(a, lambda x: "cached-a")
        out = cache.get_or_eval_many([a, b], lambda archs: ["fresh-b"])
        assert out == ["cached-a", "fresh-b"]

    def test_eval_many_result_count_validated(self):
        cache = EvaluationCache()
        with pytest.raises(ValueError, match="returned 0 results"):
            cache.get_or_eval_many(
                [Architecture.uniform(2)], lambda archs: []
            )

    def test_clear_drops_values_keeps_counters(self):
        cache = EvaluationCache()
        arch = Architecture.uniform(2)
        cache.get_or_eval(arch, lambda a: 1)
        cache.clear()
        assert len(cache) == 0 and cache.misses == 1
        cache.get_or_eval(arch, lambda a: 2)
        assert cache.misses == 2  # re-evaluated after clear


class TestEvaluateMany:
    def test_matches_scalar_evaluate(self, space):
        rng = np.random.default_rng(11)
        archs = [space.sample(rng) for _ in range(200)]
        obj = flops_objective(space)
        batched = flops_objective(
            space,
            latency_many_fn=lambda xs: [space.arch_flops(a) / 1e7 for a in xs],
        )
        scalar = [obj.evaluate(a) for a in archs]
        for many in (obj.evaluate_many(archs), batched.evaluate_many(archs)):
            assert [e.score for e in many] == [e.score for e in scalar]
            assert [e.latency_ms for e in many] == [
                e.latency_ms for e in scalar
            ]

    def test_multi_constraint_matches_scalar(self, space):
        rng = np.random.default_rng(12)
        archs = [space.sample(rng) for _ in range(50)]
        obj = MultiConstraintObjective(
            accuracy_fn=lambda a: 0.6,
            latency_fn=lambda a: space.arch_flops(a) / 1e7,
            target_ms=20.0,
            energy_fn=lambda a: space.arch_flops(a) / 1e6,
            energy_budget_mj=40.0,
        )
        many = obj.evaluate_many(archs)
        assert [e.score for e in many] == [obj.evaluate(a).score for a in archs]


class TestSharedCacheSemantics:
    def test_ea_num_evaluations_unchanged_by_private_cache(self, space):
        cfg = EvolutionConfig(generations=3, population_size=8, num_parents=3, seed=5)
        r1 = EvolutionarySearch(space, flops_objective(space), cfg).run()
        r2 = EvolutionarySearch(
            space, flops_objective(space), cfg, cache=EvaluationCache()
        ).run()
        assert r1.num_evaluations == r2.num_evaluations
        assert r1.best.score == r2.best.score

    def test_ea_prewarmed_shared_cache_counts_only_fresh(self, space):
        cfg = EvolutionConfig(generations=2, population_size=6, num_parents=2, seed=5)
        obj = flops_objective(space)
        baseline = EvolutionarySearch(space, obj, cfg).run()

        cache = EvaluationCache()
        warm = EvolutionarySearch(space, obj, cfg, cache=cache)
        # Pre-warm with the architectures the run will draw first.
        rng = np.random.default_rng(cfg.seed)
        for _ in range(cfg.population_size):
            cache.get_or_eval(space.sample(rng), obj.evaluate)
        result = warm.run()
        assert result.best.score == baseline.best.score
        assert (
            result.num_evaluations
            == baseline.num_evaluations - cfg.population_size
        )

    def test_quality_estimate_identical_with_cache(self, space):
        obj = flops_objective(space)
        plain = SubspaceQuality(obj, num_samples=40, seed=9)
        cached = SubspaceQuality(
            obj, num_samples=40, seed=9, cache=EvaluationCache()
        )
        assert plain.estimate(space) == cached.estimate(space)
        assert plain.evaluations == cached.evaluations == 40

    def test_quality_evaluations_counts_cache_hits_too(self, space):
        """The paper's complexity accounting counts every F() draw."""
        obj = flops_objective(space)
        q = SubspaceQuality(obj, num_samples=30, seed=2, cache=EvaluationCache())
        q.estimate(space)
        q.estimate(space)
        assert q.evaluations == 60

    def test_shrinking_clears_cache_after_tune_hook(self, space):
        obj = flops_objective(space)
        cache = EvaluationCache()
        quality = SubspaceQuality(obj, num_samples=10, seed=3, cache=cache)
        sizes = []
        shrinker = ProgressiveSpaceShrinking(
            quality,
            stage_layers=[(space.num_layers - 1,), (space.num_layers - 2,)],
            tune_hook=lambda s, i: sizes.append(len(cache)),
        )
        shrinker.run(space)
        assert sizes and sizes[0] > 0  # populated during stage 1...
        # ...but stage 2 started from an empty cache (cleared post-hook),
        # and whatever is in there now came from stage 2 alone.
        assert len(cache) <= cache.misses - sizes[0]
