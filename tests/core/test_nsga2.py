"""Tests for the NSGA-II multi-objective extension."""

import numpy as np
import pytest

from repro.core import BiObjective, Nsga2Config, Nsga2Search
from repro.core.nsga2 import crowding_distance, non_dominated_sort
from repro.space import Architecture


def _point(lat, acc):
    return BiObjective(Architecture.uniform(2), lat, acc)


class TestDominance:
    def test_strict_dominance(self):
        assert _point(1.0, 0.9).dominates(_point(2.0, 0.8))

    def test_partial_dominance(self):
        assert _point(1.0, 0.8).dominates(_point(2.0, 0.8))
        assert _point(1.0, 0.9).dominates(_point(1.0, 0.8))

    def test_equal_points_do_not_dominate(self):
        assert not _point(1.0, 0.8).dominates(_point(1.0, 0.8))

    def test_tradeoff_points_incomparable(self):
        a = _point(1.0, 0.7)
        b = _point(2.0, 0.9)
        assert not a.dominates(b)
        assert not b.dominates(a)


class TestSorting:
    def test_single_front(self):
        pts = [_point(1.0, 0.5), _point(2.0, 0.7), _point(3.0, 0.9)]
        fronts = non_dominated_sort(pts)
        assert fronts == [[0, 1, 2]]

    def test_two_fronts(self):
        pts = [_point(1.0, 0.9), _point(2.0, 0.5)]  # 0 dominates 1
        fronts = non_dominated_sort(pts)
        assert fronts == [[0], [1]]

    def test_every_point_in_exactly_one_front(self):
        rng = np.random.default_rng(0)
        pts = [_point(float(l), float(a)) for l, a in rng.uniform(0, 1, (30, 2))]
        fronts = non_dominated_sort(pts)
        flat = [i for f in fronts for i in f]
        assert sorted(flat) == list(range(30))

    def test_front_members_mutually_nondominated(self):
        rng = np.random.default_rng(1)
        pts = [_point(float(l), float(a)) for l, a in rng.uniform(0, 1, (25, 2))]
        fronts = non_dominated_sort(pts)
        for front in fronts:
            for i in front:
                for j in front:
                    assert not pts[i].dominates(pts[j]) or i == j


class TestCrowding:
    def test_extremes_infinite(self):
        pts = [_point(1.0, 0.5), _point(2.0, 0.7), _point(3.0, 0.9)]
        crowd = crowding_distance(pts, [0, 1, 2])
        assert crowd[0] == float("inf")
        assert crowd[2] == float("inf")
        assert np.isfinite(crowd[1])

    def test_empty_front(self):
        assert crowding_distance([], []) == {}

    def test_isolated_point_has_larger_distance(self):
        # points at latency 1, 1.1, 5, 9, 9.1 -> the middle one is isolated
        pts = [_point(1.0, 0.1), _point(1.1, 0.2), _point(5.0, 0.5),
               _point(9.0, 0.8), _point(9.1, 0.9)]
        crowd = crowding_distance(pts, list(range(5)))
        finite = {i: c for i, c in crowd.items() if np.isfinite(c)}
        assert max(finite, key=finite.get) == 2


class TestSearch:
    def _search(self, space, cfg=None):
        return Nsga2Search(
            space,
            accuracy_fn=lambda a: min(1.0, (space.arch_flops(a) / 2.5e5) ** 0.5),
            latency_fn=lambda a: space.arch_flops(a) / 1e4,
            config=cfg or Nsga2Config(generations=8, population_size=20, seed=0),
        )

    def test_front_sorted_and_nondominated(self, proxy_space):
        result = self._search(proxy_space).run()
        front = result.front
        assert front
        for a, b in zip(front, front[1:]):
            assert a.latency_ms <= b.latency_ms
            assert a.accuracy <= b.accuracy  # front trades one for the other
        for p in front:
            for q in result.population:
                assert not q.dominates(p)

    def test_front_spans_latency_range(self, proxy_space):
        result = self._search(proxy_space).run()
        lats = [p.latency_ms for p in result.front]
        assert max(lats) > min(lats) * 1.3

    def test_deterministic(self, proxy_space):
        r1 = self._search(proxy_space).run()
        r2 = self._search(proxy_space).run()
        assert [p.arch for p in r1.front] == [p.arch for p in r2.front]

    def test_knee_under_budget(self, proxy_space):
        result = self._search(proxy_space).run()
        mid = float(np.median([p.latency_ms for p in result.front]))
        knee = result.knee_under(mid)
        assert knee.latency_ms <= mid
        for p in result.front:
            if p.latency_ms <= mid:
                assert knee.accuracy >= p.accuracy

    def test_knee_infeasible_raises(self, proxy_space):
        result = self._search(proxy_space).run()
        with pytest.raises(ValueError):
            result.knee_under(0.001)

    def test_members_inside_space(self, proxy_space):
        shrunk = proxy_space.fix_operator(7, 1)
        result = self._search(shrunk).run()
        for p in result.population:
            assert shrunk.contains(p.arch)

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            Nsga2Config(population_size=2)
        with pytest.raises(ValueError):
            Nsga2Config(crossover_prob=2.0)
