"""Tests for search-result serialization (JSON artifacts)."""

import json

import pytest

from repro.core import EvolutionConfig, EvolutionarySearch, Objective
from repro.core.evolution import SearchResult
from repro.core.objective import EvaluatedArch
from repro.space import Architecture


def _objective(space):
    return Objective(
        accuracy_fn=lambda a: min(1.0, (space.arch_flops(a) / 2.5e5) ** 0.5),
        latency_fn=lambda a: space.arch_flops(a) / 1e4,
        target_ms=15.0,
        beta=-0.5,
    )


class TestEvaluatedArchRoundtrip:
    def test_roundtrip(self):
        ev = EvaluatedArch(Architecture.uniform(4, 2, 0.5), 0.71, 33.2, 0.695)
        restored = EvaluatedArch.from_dict(ev.to_dict())
        assert restored == ev

    def test_json_safe(self):
        ev = EvaluatedArch(Architecture.uniform(4), 0.5, 1.0, 0.4)
        text = json.dumps(ev.to_dict())
        assert EvaluatedArch.from_dict(json.loads(text)) == ev


class TestSearchResultRoundtrip:
    @pytest.fixture(scope="class")
    def result(self, proxy_space):
        cfg = EvolutionConfig(generations=3, population_size=8, num_parents=3)
        return EvolutionarySearch(proxy_space, _objective(proxy_space), cfg).run()

    def test_roundtrip_preserves_best(self, result):
        restored = SearchResult.from_dict(result.to_dict())
        assert restored.best == result.best
        assert restored.num_evaluations == result.num_evaluations

    def test_roundtrip_preserves_generations(self, result):
        restored = SearchResult.from_dict(result.to_dict())
        assert len(restored.generations) == len(result.generations)
        for a, b in zip(restored.generations, result.generations):
            assert a.index == b.index
            assert a.population == b.population

    def test_through_json(self, result):
        text = json.dumps(result.to_dict())
        restored = SearchResult.from_dict(json.loads(text))
        assert restored.best.score == pytest.approx(result.best.score)

    def test_traces_survive_roundtrip(self, result):
        from repro.analysis import evaluation_trace

        restored = SearchResult.from_dict(result.to_dict())
        assert evaluation_trace(restored) == evaluation_trace(result)
