"""Shared fixtures for the test suite."""

import numpy as np
import pytest

from repro.data import BatchLoader, SyntheticImageDataset
from repro.space import SearchSpace, imagenet_a, imagenet_b, proxy
from repro.supernet import Supernet


@pytest.fixture(scope="session")
def space_a():
    """Paper-scale search space with the HSCoNet-A channel layout."""
    return SearchSpace(imagenet_a())


@pytest.fixture(scope="session")
def space_b():
    """Paper-scale search space with the HSCoNet-B channel layout."""
    return SearchSpace(imagenet_b())


@pytest.fixture(scope="session")
def proxy_space():
    """Tiny space for real-training tests."""
    return SearchSpace(proxy())


@pytest.fixture()
def rng():
    return np.random.default_rng(1234)


@pytest.fixture(scope="session")
def tiny_dataset():
    """A small synthetic dataset (session-cached for speed)."""
    return SyntheticImageDataset.generate(
        num_classes=4,
        train_per_class=8,
        test_per_class=4,
        image_size=16,
        seed=7,
    )


@pytest.fixture(scope="session")
def tiny_space():
    """A very small search space matched to the 16x16 tiny dataset."""
    from repro.space import SpaceConfig, StageSpec

    return SearchSpace(
        SpaceConfig(
            name="tiny",
            input_size=16,
            num_classes=4,
            stem_channels=4,
            stages=(StageSpec(2, 8), StageSpec(2, 16)),
            head_channels=16,
        )
    )


@pytest.fixture()
def tiny_supernet(tiny_space):
    return Supernet(tiny_space, seed=0)


@pytest.fixture()
def tiny_loader(tiny_dataset):
    return BatchLoader(
        tiny_dataset.train_x, tiny_dataset.train_y, batch_size=8, seed=0
    )
