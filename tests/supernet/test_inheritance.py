"""Tests for weight inheritance (subnet extraction / warm start)."""

import numpy as np
import pytest

from repro.data import BatchLoader
from repro.supernet import Supernet, copy_weights_and_stats, extract_subnet, inherit_into
from repro.train import SupernetTrainer, TrainConfig


@pytest.fixture()
def trained(tiny_space, tiny_dataset, tiny_loader):
    supernet = Supernet(tiny_space, seed=0)
    trainer = SupernetTrainer(supernet, tiny_loader, TrainConfig(base_lr=0.1, seed=0))
    trainer.train_epochs(tiny_space, epochs=3)
    return supernet


class TestCopy:
    def test_parameters_copied(self, tiny_space, trained):
        clone = Supernet(tiny_space, seed=77)
        copy_weights_and_stats(trained, clone)
        for (na, pa), (nb, pb) in zip(
            trained.named_parameters(), clone.named_parameters()
        ):
            assert na == nb
            np.testing.assert_array_equal(pa.data, pb.data)

    def test_running_stats_copied(self, tiny_space, trained):
        clone = Supernet(tiny_space, seed=77)
        copy_weights_and_stats(trained, clone)
        from repro.nn.layers.norm import BatchNorm2d

        src_bns = [m for m in trained.modules() if isinstance(m, BatchNorm2d)]
        dst_bns = [m for m in clone.modules() if isinstance(m, BatchNorm2d)]
        for s, d in zip(src_bns, dst_bns):
            np.testing.assert_array_equal(s.running_mean, d.running_mean)
            np.testing.assert_array_equal(s.running_var, d.running_var)

    def test_copies_are_independent(self, tiny_space, trained):
        clone = Supernet(tiny_space, seed=77)
        copy_weights_and_stats(trained, clone)
        first = next(iter(clone.parameters()))
        first.data += 1.0
        orig_first = next(iter(trained.parameters()))
        assert not np.allclose(first.data, orig_first.data)

    def test_structure_mismatch_raises(self, tiny_space, trained, proxy_space):
        other = Supernet(proxy_space, seed=0)
        with pytest.raises(ValueError):
            copy_weights_and_stats(trained, other)


class TestExtractSubnet:
    def test_extracted_matches_supernet_output(self, tiny_space, trained, rng):
        arch = tiny_space.sample(rng)
        subnet = extract_subnet(trained, arch)
        trained.set_architecture(arch)
        trained.eval()
        subnet.eval()
        x = rng.normal(size=(2, 3, 16, 16))
        np.testing.assert_allclose(trained(x), subnet(x))
        trained.train()

    def test_extracted_arch_active(self, tiny_space, trained, rng):
        arch = tiny_space.sample(rng)
        subnet = extract_subnet(trained, arch)
        assert subnet.active_architecture == arch

    def test_inherit_into_existing(self, tiny_space, trained, rng):
        arch = tiny_space.sample(rng)
        target = Supernet(tiny_space, seed=5)
        inherit_into(trained, arch, target)
        assert target.active_architecture == arch

    def test_inherit_into_wrong_space_raises(self, trained, proxy_space, rng):
        target = Supernet(proxy_space, seed=5)
        with pytest.raises(ValueError):
            inherit_into(trained, proxy_space.sample(rng), target)


class TestWarmStart:
    def test_warm_start_trains_faster(self, tiny_space, tiny_dataset, rng):
        """Fine-tuning inherited weights reaches lower loss than training
        from scratch in the same few epochs — the reason one-shot NAS
        inherits at all."""
        loader = BatchLoader(
            tiny_dataset.train_x, tiny_dataset.train_y, batch_size=8, seed=0
        )
        supernet = Supernet(tiny_space, seed=0)
        trainer = SupernetTrainer(
            supernet, loader, TrainConfig(base_lr=0.1, seed=0)
        )
        trainer.train_epochs(tiny_space, epochs=5)
        arch = tiny_space.sample(rng)

        def tune(model, epochs=2):
            t = SupernetTrainer(model, loader, TrainConfig(base_lr=0.03, seed=1))
            single = type(tiny_space)(
                tiny_space.config,
                candidate_ops=[[op] for op in arch.ops],
                candidate_factors=[[f] for f in arch.factors],
            )
            losses = t.train_epochs(single, epochs=epochs)
            return losses[-1]

        warm = extract_subnet(supernet, arch)
        cold = Supernet(tiny_space, seed=9)
        cold.set_architecture(arch)
        assert tune(warm) < tune(cold)
