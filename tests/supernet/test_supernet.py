"""Tests for the weight-sharing supernet and its blocks."""

import numpy as np
import pytest

from repro.space import Architecture
from repro.space.operators import operators
from repro.supernet import (
    ChoiceBlock,
    ShuffleV2Block,
    ShuffleXceptionBlock,
    SkipOp,
    Supernet,
    build_operator_module,
)
from tests.helpers import check_layer_gradients


class TestShuffleV2Block:
    def test_stride1_shape_preserved(self):
        rng = np.random.default_rng(0)
        block = ShuffleV2Block(8, 8, kernel_size=3, stride=1, rng=rng)
        out = block(rng.normal(size=(2, 8, 8, 8)))
        assert out.shape == (2, 8, 8, 8)

    def test_stride2_downsamples(self):
        rng = np.random.default_rng(0)
        block = ShuffleV2Block(4, 8, kernel_size=3, stride=2, rng=rng)
        out = block(rng.normal(size=(2, 4, 8, 8)))
        assert out.shape == (2, 8, 4, 4)

    def test_stride1_channel_mismatch_raises(self):
        with pytest.raises(ValueError):
            ShuffleV2Block(4, 8, 3, stride=1, rng=np.random.default_rng(0))

    def test_odd_channels_raise(self):
        with pytest.raises(ValueError):
            ShuffleV2Block(5, 5, 3, stride=1, rng=np.random.default_rng(0))

    def test_backward_shape(self):
        rng = np.random.default_rng(0)
        block = ShuffleV2Block(4, 8, kernel_size=5, stride=2, rng=rng)
        x = rng.normal(size=(2, 4, 8, 8))
        out = block(x)
        grad = block.backward(np.ones_like(out))
        assert grad.shape == x.shape

    def test_gradients_stride1(self):
        rng = np.random.default_rng(0)
        block = ShuffleV2Block(4, 4, kernel_size=3, stride=1, rng=rng)
        check_layer_gradients(block, rng.normal(size=(2, 4, 6, 6)),
                              rtol=1e-3, check_params=False)

    def test_gradients_stride2(self):
        rng = np.random.default_rng(0)
        block = ShuffleV2Block(4, 4, kernel_size=3, stride=2, rng=rng)
        check_layer_gradients(block, rng.normal(size=(2, 4, 6, 6)),
                              rtol=1e-3, check_params=False)


class TestXceptionBlock:
    def test_shapes(self):
        rng = np.random.default_rng(0)
        block = ShuffleXceptionBlock(8, 8, stride=1, rng=rng)
        out = block(rng.normal(size=(1, 8, 8, 8)))
        assert out.shape == (1, 8, 8, 8)
        block2 = ShuffleXceptionBlock(8, 16, stride=2, rng=rng)
        out2 = block2(rng.normal(size=(1, 8, 8, 8)))
        assert out2.shape == (1, 16, 4, 4)

    def test_gradients(self):
        rng = np.random.default_rng(0)
        block = ShuffleXceptionBlock(4, 4, stride=1, rng=rng)
        check_layer_gradients(block, rng.normal(size=(1, 4, 6, 6)),
                              rtol=1e-3, check_params=False)


class TestSkipOp:
    def test_identity_when_possible(self):
        rng = np.random.default_rng(0)
        skip = SkipOp(8, 8, stride=1, rng=rng)
        x = rng.normal(size=(1, 8, 4, 4))
        assert skip(x) is x
        assert skip.backward(x) is x

    def test_projection_on_stride2(self):
        rng = np.random.default_rng(0)
        skip = SkipOp(4, 8, stride=2, rng=rng)
        out = skip(rng.normal(size=(1, 4, 8, 8)))
        assert out.shape == (1, 8, 4, 4)

    def test_projection_gradients(self):
        rng = np.random.default_rng(0)
        skip = SkipOp(2, 4, stride=2, rng=rng)
        check_layer_gradients(skip, rng.normal(size=(1, 2, 6, 6)),
                              rtol=1e-3, check_params=False)


class TestBuildOperatorModule:
    @pytest.mark.parametrize("spec", operators(), ids=lambda s: s.name)
    def test_every_op_builds_and_runs(self, spec):
        rng = np.random.default_rng(0)
        module = build_operator_module(spec, 8, 8, stride=1, rng=rng)
        out = module(rng.normal(size=(1, 8, 8, 8)))
        assert out.shape == (1, 8, 8, 8)

    @pytest.mark.parametrize("spec", operators(), ids=lambda s: s.name)
    def test_every_op_downsamples(self, spec):
        rng = np.random.default_rng(0)
        module = build_operator_module(spec, 4, 8, stride=2, rng=rng)
        out = module(rng.normal(size=(1, 4, 8, 8)))
        assert out.shape == (1, 8, 4, 4)


class TestChoiceBlock:
    def test_only_active_op_executes(self, tiny_space):
        rng = np.random.default_rng(0)
        block = ChoiceBlock(tiny_space.geometry[1], rng)
        x = rng.normal(size=(1, 8, 8, 8))
        block.set_active(0, 1.0)
        out0 = block(x)
        block.set_active(1, 1.0)
        out1 = block(x)
        assert not np.allclose(out0, out1)

    def test_mask_zeroes_channels(self, tiny_space):
        rng = np.random.default_rng(0)
        block = ChoiceBlock(tiny_space.geometry[1], rng)
        block.set_active(0, 0.5)
        out = block(rng.normal(size=(1, 8, 8, 8)))
        kept = block.mask.active_channels
        assert np.allclose(out[:, kept:], 0.0)
        assert not np.allclose(out[:, :kept], 0.0)

    def test_invalid_op_raises(self, tiny_space):
        block = ChoiceBlock(tiny_space.geometry[0], np.random.default_rng(0))
        with pytest.raises(IndexError):
            block.set_active(9, 1.0)

    def test_masked_channels_receive_no_gradient(self, tiny_space):
        """The core property of the paper's masking: shared weights of
        masked channels are untouched by a masked training step."""
        rng = np.random.default_rng(0)
        block = ChoiceBlock(tiny_space.geometry[1], rng)
        block.set_active(0, 0.5)
        x = rng.normal(size=(2, 8, 8, 8))
        out = block(x)
        block.backward(np.ones_like(out))
        op = block.ops[0]
        # The final 1x1 conv of the branch produces the masked output
        # half: its kernels for masked output channels must have zero grad.
        final_conv = op.branch.layers[-3]  # Conv2d before last BN/ReLU
        kept = block.mask.active_channels
        half = out.shape[1] // 2
        # branch outputs channels [half:], shuffled; at least assert some
        # weight gradients are exactly zero while others are not.
        grads = final_conv.weight.grad
        assert grads is not None
        zero_rows = np.all(grads.reshape(grads.shape[0], -1) == 0.0, axis=1)
        assert zero_rows.any()
        assert not zero_rows.all()
        del kept, half


class TestSupernet:
    def test_forward_shape(self, tiny_space, tiny_supernet, rng):
        arch = tiny_space.sample(rng)
        tiny_supernet.set_architecture(arch)
        out = tiny_supernet(rng.normal(size=(2, 3, 16, 16)))
        assert out.shape == (2, tiny_space.config.num_classes)

    def test_forward_without_arch_raises(self, tiny_supernet, rng):
        net = Supernet(tiny_supernet.space, seed=1)
        with pytest.raises(RuntimeError):
            net(rng.normal(size=(1, 3, 16, 16)))

    def test_wrong_layer_count_raises(self, tiny_supernet):
        with pytest.raises(ValueError):
            tiny_supernet.set_architecture(Architecture.uniform(3))

    def test_backward_runs_and_produces_grads(self, tiny_space, tiny_supernet, rng):
        arch = tiny_space.sample(rng)
        tiny_supernet.set_architecture(arch)
        tiny_supernet.train()
        out = tiny_supernet(rng.normal(size=(2, 3, 16, 16)))
        grad_in = tiny_supernet.backward(np.ones_like(out) / out.size)
        assert grad_in.shape == (2, 3, 16, 16)
        assert tiny_supernet.classifier.weight.grad is not None

    def test_weight_sharing_across_paths(self, tiny_space, rng):
        """Two architectures sharing a layer op see the same weights."""
        net = Supernet(tiny_space, seed=0)
        a = Architecture.uniform(tiny_space.num_layers, op_index=0, factor=1.0)
        b = a.with_op(1, 1)  # differ only at layer 1
        net.set_architecture(a)
        w_before = net.blocks[0].ops[0].branch.layers[0].weight.data.copy()
        net.set_architecture(b)
        w_after = net.blocks[0].ops[0].branch.layers[0].weight.data
        np.testing.assert_array_equal(w_before, w_after)

    def test_deterministic_construction(self, tiny_space, rng):
        a = Supernet(tiny_space, seed=3)
        b = Supernet(tiny_space, seed=3)
        arch = tiny_space.sample(rng)
        a.set_architecture(arch)
        b.set_architecture(arch)
        a.eval()
        b.eval()
        x = rng.normal(size=(1, 3, 16, 16))
        np.testing.assert_array_equal(a(x), b(x))

    def test_active_architecture_tracked(self, tiny_space, tiny_supernet, rng):
        arch = tiny_space.sample(rng)
        tiny_supernet.set_architecture(arch)
        assert tiny_supernet.active_architecture == arch
