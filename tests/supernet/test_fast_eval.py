"""SupernetFastEval: bit-exact float batching, gated int8, stage timing."""

import numpy as np
import pytest

from repro.nn import assert_no_eval_caches, ranking_fidelity
from repro.nn.inference import CACHE_ATTRS
from repro.supernet import SupernetFastEval
from repro.train import SupernetTrainer, TrainConfig, top_k_accuracy


@pytest.fixture()
def trained(tiny_supernet, tiny_space, tiny_loader):
    """A briefly trained tiny supernet (real BN stats, non-random logits)."""
    trainer = SupernetTrainer(
        tiny_supernet, tiny_loader, TrainConfig(base_lr=0.1, seed=0)
    )
    trainer.train_epochs(tiny_space, epochs=2)
    return trainer


def sample_archs(space, n, seed=7):
    rng = np.random.default_rng(seed)
    return [space.sample(rng) for _ in range(n)]


def per_arch_eval_logits(net, archs, images):
    """Reference: one eval-mode module forward per architecture."""
    net.eval()
    out = []
    for arch in archs:
        net.set_architecture(arch)
        out.append(net.forward(images))
    net.train()
    return np.stack(out)


class TestFloatPathBitExact:
    def test_forward_matches_module_eval_forward(
        self, trained, tiny_space, tiny_dataset
    ):
        net = trained.supernet
        images = tiny_dataset.test_x[:6]
        (arch,) = sample_archs(tiny_space, 1)
        ref = per_arch_eval_logits(net, [arch], images)[0]
        fast = SupernetFastEval(net).forward(arch, images)
        np.testing.assert_array_equal(fast, ref)

    def test_forward_many_bit_exact(self, trained, tiny_space, tiny_dataset):
        net = trained.supernet
        images = tiny_dataset.test_x[:6]
        archs = sample_archs(tiny_space, 8)
        ref = per_arch_eval_logits(net, archs, images)
        fast = SupernetFastEval(net).forward_many(archs, images)
        np.testing.assert_array_equal(fast, ref)

    def test_forward_many_chunked_bit_exact(
        self, trained, tiny_space, tiny_dataset
    ):
        net = trained.supernet
        images = tiny_dataset.test_x[:6]
        archs = sample_archs(tiny_space, 7)
        fe = SupernetFastEval(net)
        full = fe.forward_many(archs, images)
        chunked = fe.forward_many(archs, images, chunk_archs=3)
        np.testing.assert_array_equal(chunked, full)

    def test_accuracy_many_matches_per_arch_reference(
        self, trained, tiny_space, tiny_dataset
    ):
        net = trained.supernet
        images = tiny_dataset.test_x[:8]
        labels = tiny_dataset.test_y[:8]
        archs = sample_archs(tiny_space, 5)
        ref_logits = per_arch_eval_logits(net, archs, images)
        expected = [top_k_accuracy(l, labels, k=1) for l in ref_logits]
        fe = SupernetFastEval(net)
        assert fe.accuracy_many(archs, images, labels) == expected
        assert fe.accuracy(archs[0], images, labels) == expected[0]

    def test_leaves_no_caches_and_restores_mode(
        self, trained, tiny_space, tiny_dataset
    ):
        net = trained.supernet
        archs = sample_archs(tiny_space, 3)
        images = tiny_dataset.test_x[:4]
        # Scrub the trainer's leftover caches (training forwards cache
        # on every path they sampled) so the assertion below isolates
        # what the *fast path* allocates: nothing.
        for m in net.modules():
            for attr in CACHE_ATTRS:
                if getattr(m, attr, None) is not None:
                    setattr(m, attr, None)
        assert_no_eval_caches(net)
        net.train()
        fe = SupernetFastEval(net)
        fe.forward_many(archs, images)
        assert_no_eval_caches(net)
        assert all(m.training for m in net.modules())


class TestInt8Path:
    def test_logits_close_to_float(self, trained, tiny_space, tiny_dataset):
        net = trained.supernet
        images = tiny_dataset.test_x[:6]
        archs = sample_archs(tiny_space, 6)
        ref = SupernetFastEval(net).forward_many(archs, images)
        int8 = SupernetFastEval(net, precision="int8").forward_many(
            archs, images
        )
        assert int8.shape == ref.shape
        assert np.all(np.isfinite(int8))
        # Weight-only int8 is an approximation; logits stay within a
        # small absolute band of the float forward on this scale of net.
        assert float(np.abs(int8 - ref).max()) < 0.5
        assert np.corrcoef(int8.ravel(), ref.ravel())[0, 1] > 0.999

    def test_ranking_fidelity_gate(self, trained, tiny_space, tiny_dataset):
        net = trained.supernet
        images = tiny_dataset.test_x[:16]
        labels = tiny_dataset.test_y[:16]
        archs = sample_archs(tiny_space, 30, seed=11)
        float_logits = SupernetFastEval(net).forward_many(archs, images)
        int8_logits = SupernetFastEval(net, precision="int8").forward_many(
            archs, images
        )
        idx = np.arange(images.shape[0])
        ref = [float(l[idx, labels].mean()) for l in float_logits]
        fast = [float(l[idx, labels].mean()) for l in int8_logits]
        gate = ranking_fidelity(ref, fast, top_k=3)
        assert gate["kendall_tau"] >= 0.99
        assert gate["top_k_overlap"] == 1.0
        assert gate["passed"]

    def test_single_and_batched_int8_agree(
        self, trained, tiny_space, tiny_dataset
    ):
        net = trained.supernet
        images = tiny_dataset.test_x[:4]
        archs = sample_archs(tiny_space, 4)
        fe = SupernetFastEval(net, precision="int8")
        batched = fe.forward_many(archs, images)
        singles = np.stack([fe.forward(a, images) for a in archs])
        np.testing.assert_array_equal(batched, singles)

    def test_invalidate_weights_picks_up_mutation(
        self, trained, tiny_space, tiny_dataset
    ):
        net = trained.supernet
        images = tiny_dataset.test_x[:4]
        (arch,) = sample_archs(tiny_space, 1)
        fe = SupernetFastEval(net, precision="int8")
        before = fe.forward(arch, images)
        net.classifier.weight.data = net.classifier.weight.data * 2.0
        # Cached int8 codes are stale until invalidated...
        np.testing.assert_array_equal(fe.forward(arch, images), before)
        fe.invalidate_weights()
        fresh = SupernetFastEval(net, precision="int8").forward(arch, images)
        np.testing.assert_array_equal(fe.forward(arch, images), fresh)
        net.classifier.weight.data = net.classifier.weight.data / 2.0


class TestApiAndTiming:
    def test_rejects_unknown_precision(self, tiny_supernet):
        with pytest.raises(ValueError, match="precision"):
            SupernetFastEval(tiny_supernet, precision="fp16")

    def test_rejects_empty_and_bad_chunk(
        self, trained, tiny_space, tiny_dataset
    ):
        fe = SupernetFastEval(trained.supernet)
        with pytest.raises(ValueError, match="at least one"):
            fe.forward_many([], tiny_dataset.test_x[:2])
        with pytest.raises(ValueError, match="chunk_archs"):
            fe.forward_many(
                sample_archs(tiny_space, 2),
                tiny_dataset.test_x[:2],
                chunk_archs=0,
            )

    def test_rejects_layer_count_mismatch(
        self, trained, proxy_space, tiny_dataset
    ):
        fe = SupernetFastEval(trained.supernet)
        wrong = sample_archs(proxy_space, 1)
        with pytest.raises(ValueError, match="layers"):
            fe.forward_many(wrong, tiny_dataset.test_x[:2])

    def test_stage_times_accumulate_and_reset(
        self, trained, tiny_space, tiny_dataset
    ):
        fe = SupernetFastEval(trained.supernet)
        fe.accuracy_many(
            sample_archs(tiny_space, 3),
            tiny_dataset.test_x[:4],
            tiny_dataset.test_y[:4],
        )
        times = fe.stage_times()
        assert times["total_s"] > 0.0
        assert times["gemm_s"] > 0.0
        assert times["scoring_s"] > 0.0
        attributed = (
            times["im2col_s"] + times["gemm_s"] + times["scoring_s"]
            + times["other_s"]
        )
        assert attributed <= times["total_s"] + times["scoring_s"] + 1e-9
        fe.reset_stage_times()
        assert all(v == 0.0 for v in fe.stage_times().values())
