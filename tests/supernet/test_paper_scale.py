"""Paper-scale supernet sanity: construction, size, activation.

The real-training experiments run on the proxy/mini spaces, but the
supernet must also *construct* at the paper's scale — the A-layout
supernet holds all 20 x 5 candidate operators' shared weights at once.
Forward passes at 224x224 are intentionally not run here (minutes in
numpy); construction, activation, and a low-resolution forward through
the same channel plan are.
"""

import numpy as np
import pytest

from repro.space import Architecture, SearchSpace, SpaceConfig, StageSpec
from repro.supernet import Supernet


@pytest.fixture(scope="module")
def paper_supernet(space_a):
    return Supernet(space_a, seed=0)


class TestPaperScaleConstruction:
    def test_block_count(self, space_a, paper_supernet):
        assert len(paper_supernet.blocks) == 20
        for block in paper_supernet.blocks:
            assert len(block.ops) == 5  # K = 5 candidates per layer

    def test_parameter_count_plausible(self, paper_supernet):
        """The A-layout supernet carries all candidates: several times a
        single subnet's ~2M weights, but far below a dense model."""
        params = paper_supernet.num_parameters()
        assert 5e6 < params < 5e7

    def test_any_architecture_activates(self, space_a, paper_supernet, rng):
        for _ in range(5):
            paper_supernet.set_architecture(space_a.sample(rng))

    def test_channel_masks_track_factor(self, space_a, paper_supernet):
        arch = Architecture.uniform(20, op_index=0, factor=0.5)
        paper_supernet.set_architecture(arch)
        from repro.nn.layers.mask import channels_kept

        for block, geom in zip(paper_supernet.blocks, space_a.geometry):
            assert block.mask.active_channels == channels_kept(
                geom.max_out_channels, 0.5
            )


class TestLowResolutionForward:
    def test_same_channel_plan_forward(self, rng):
        """The A-layout channel plan runs end to end at 32x32 input —
        the geometry scales, so a paper-scale forward differs only in
        spatial cost."""
        config = SpaceConfig(
            name="a-lowres",
            input_size=32,
            num_classes=10,
            stem_channels=16,
            stages=(
                StageSpec(4, 48),
                StageSpec(4, 128),
                # stage plan truncated to keep 32/2^3 = 4 spatial dims
            ),
            head_channels=256,
        )
        space = SearchSpace(config)
        net = Supernet(space, seed=0)
        net.set_architecture(space.sample(rng))
        out = net(rng.normal(size=(2, 3, 32, 32)))
        assert out.shape == (2, 10)
        assert np.all(np.isfinite(out))
