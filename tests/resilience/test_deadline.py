"""CancelToken: cooperative deadlines with partial-progress reporting."""

import pytest

from repro.resilience import CancelToken, DeadlineExceeded


class FakeClock:
    def __init__(self, now: float = 0.0):
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, by: float) -> None:
        self.now += by


class TestCancelToken:
    def test_no_deadline_never_expires(self):
        token = CancelToken()
        assert not token.expired
        assert token.remaining_s() is None
        for gen in range(100):
            token.check(generations_done=gen)
        assert token.checks == 100
        assert token.progress == {"generations_done": 99}

    def test_expires_when_clock_passes_deadline(self):
        clock = FakeClock()
        token = CancelToken(deadline_s=1.0, clock=clock)
        token.check(stage="warm")
        clock.advance(0.5)
        assert not token.expired
        assert token.remaining_s() == pytest.approx(0.5)
        clock.advance(0.6)
        assert token.expired
        assert token.remaining_s() == 0.0

    def test_check_raises_with_accumulated_progress(self):
        clock = FakeClock()
        token = CancelToken(deadline_s=1.0, clock=clock)
        token.check(stage="search", generations_done=0)
        clock.advance(2.0)
        with pytest.raises(DeadlineExceeded) as excinfo:
            token.check(generations_done=3, evaluations=24)
        assert excinfo.value.progress == {
            "stage": "search",
            "generations_done": 3,
            "evaluations": 24,
        }
        assert "deadline exceeded" in str(excinfo.value)

    def test_cancel_fires_without_deadline(self):
        token = CancelToken()
        token.cancel()
        with pytest.raises(DeadlineExceeded) as excinfo:
            token.check(stage="anywhere")
        assert "cancelled" in str(excinfo.value)

    def test_after_ms_converts_to_seconds(self):
        clock = FakeClock()
        token = CancelToken.after_ms(250, clock=clock)
        assert token.remaining_s() == pytest.approx(0.25)
        clock.advance(0.3)
        assert token.expired

    def test_accepts_string_wire_value(self):
        # The HTTP layer hands the raw payload value through float().
        token = CancelToken.after_ms(float("1500"), clock=FakeClock())
        assert token.remaining_s() == pytest.approx(1.5)

    def test_nonpositive_deadline_rejected(self):
        with pytest.raises(ValueError):
            CancelToken(deadline_s=0.0)
        with pytest.raises(ValueError):
            CancelToken.after_ms(-5)

    def test_checks_never_mutate_progress_values(self):
        token = CancelToken()
        token.check(generations_done=1)
        token.check(generations_done=2)
        # Latest value wins; counters accumulate externally.
        assert token.progress == {"generations_done": 2}
