"""CircuitBreaker: closed/open/half-open, rate + hang tripping."""

import pytest

from repro.resilience import BreakerOpenError, CircuitBreaker
from repro.resilience.breaker import ServiceOverloadError


class FakeClock:
    def __init__(self, now: float = 0.0):
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, by: float) -> None:
        self.now += by


def breaker(**kwargs) -> CircuitBreaker:
    defaults = dict(
        failure_threshold=3, cooldown_s=10.0, clock=FakeClock()
    )
    defaults.update(kwargs)
    return CircuitBreaker(**defaults)


class TestStateMachine:
    def test_closed_allows_and_counts(self):
        b = breaker()
        assert b.state == "closed"
        assert b.allow()
        b.record_success()
        assert b.snapshot()["successes"] == 1

    def test_consecutive_failures_trip_open(self):
        b = breaker(failure_threshold=3)
        for _ in range(2):
            b.record_failure()
            assert b.state == "closed"
        b.record_failure()
        assert b.state == "open"
        assert not b.allow()
        assert b.snapshot()["rejected"] == 1

    def test_success_resets_the_consecutive_count(self):
        b = breaker(failure_threshold=2)
        b.record_failure()
        b.record_success()
        b.record_failure()
        assert b.state == "closed"

    def test_cooldown_transitions_to_half_open_single_trial(self):
        clock = FakeClock()
        b = breaker(failure_threshold=1, cooldown_s=10.0, clock=clock)
        b.record_failure()
        assert not b.allow()
        clock.advance(10.0)
        assert b.allow()  # the half-open trial
        assert b.state == "half_open"
        assert not b.allow()  # only one trial at a time
        assert b.snapshot()["half_open_trials"] == 1

    def test_trial_success_closes(self):
        clock = FakeClock()
        b = breaker(failure_threshold=1, clock=clock)
        b.record_failure()
        clock.advance(10.0)
        assert b.allow()
        b.record_success()
        assert b.state == "closed"
        assert b.allow()

    def test_trial_failure_reopens_with_fresh_cooldown(self):
        clock = FakeClock()
        b = breaker(failure_threshold=1, cooldown_s=10.0, clock=clock)
        b.record_failure()
        clock.advance(10.0)
        assert b.allow()
        b.record_failure()
        assert b.state == "open"
        clock.advance(9.0)
        assert not b.allow()
        clock.advance(1.0)
        assert b.allow()


class TestWindowedRate:
    def test_failure_rate_trips_without_consecutive_run(self):
        b = breaker(
            failure_threshold=100,  # never trips on consecutive
            failure_rate=0.5,
            window=8,
            min_samples=8,
        )
        # Alternate: 4 failures / 8 samples = 0.5 >= rate.
        for _ in range(4):
            b.record_success()
            b.record_failure()
        assert b.state == "open"

    def test_below_min_samples_never_trips_on_rate(self):
        b = breaker(
            failure_threshold=100, failure_rate=0.5, window=8,
            min_samples=8,
        )
        for _ in range(3):
            b.record_failure()
            b.record_success()
        assert b.state == "closed"


class TestHangBudget:
    def test_slow_return_counts_as_hang_failure(self):
        b = breaker(failure_threshold=2, hang_timeout_s=1.0)
        b.record_success(elapsed_s=5.0)
        b.record_success(elapsed_s=5.0)
        assert b.state == "open"
        assert b.snapshot()["hang_failures"] == 2

    def test_fast_return_is_a_plain_success(self):
        b = breaker(hang_timeout_s=1.0)
        b.record_success(elapsed_s=0.2)
        snap = b.snapshot()
        assert snap["successes"] == 1
        assert snap["failures"] == 0


class TestErrors:
    def test_breaker_open_error_is_an_overload_error(self):
        assert issubclass(BreakerOpenError, ServiceOverloadError)

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(failure_threshold=0),
            dict(failure_rate=0.0),
            dict(failure_rate=1.5),
            dict(window=4, min_samples=5),
            dict(cooldown_s=0),
            dict(hang_timeout_s=0),
        ],
    )
    def test_bad_parameters_rejected(self, kwargs):
        with pytest.raises(ValueError):
            CircuitBreaker(**kwargs)
