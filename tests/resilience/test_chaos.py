"""Chaos harness: seeded, replayable fault injection."""

from http.client import RemoteDisconnected

import pytest

from repro.resilience import (
    ChaosError,
    ChaosInjector,
    ChaosSpec,
    FlakyBackend,
)
from repro.resilience.chaos import ChaosProxy


class TestSpecParsing:
    def test_parse_full_spec(self):
        spec = ChaosSpec.parse(
            "seed=7,error=0.3,burst=2,hang=0.1,hang_s=2,slow=0.05,"
            "slow_s=0.5,reset=0.2,fail_first=2"
        )
        assert spec.seed == 7
        assert spec.error_rate == 0.3
        assert spec.burst == 2
        assert spec.hang_rate == 0.1
        assert spec.hang_s == 2
        assert spec.slow_rate == 0.05
        assert spec.slow_s == 0.5
        assert spec.reset_rate == 0.2
        assert spec.fail_first == 2

    def test_empty_spec_is_all_defaults(self):
        assert ChaosSpec.parse("") == ChaosSpec()

    @pytest.mark.parametrize(
        "bad",
        ["frequency=1", "error", "error=lots", "error=1.5", "burst=0"],
    )
    def test_bad_specs_rejected(self, bad):
        with pytest.raises(ValueError):
            ChaosSpec.parse(bad)

    def test_rates_must_fit_one_budget(self):
        with pytest.raises(ValueError):
            ChaosSpec(error_rate=0.6, hang_rate=0.6)


def _decision_trace(injector: ChaosInjector, n: int):
    trace = []
    for _ in range(n):
        try:
            injector.inject()
            trace.append("ok")
        except ChaosError:
            trace.append("error")
    return trace


class TestInjectorDeterminism:
    def test_same_seed_same_fault_sequence(self):
        spec = ChaosSpec.parse("seed=7,error=0.4")
        a = _decision_trace(spec.injector(), 64)
        b = _decision_trace(spec.injector(), 64)
        assert a == b
        assert "error" in a and "ok" in a

    def test_zero_rates_inject_nothing(self):
        injector = ChaosSpec.parse("seed=3").injector()
        assert _decision_trace(injector, 32) == ["ok"] * 32
        assert injector.snapshot()["injected_errors"] == 0

    def test_error_bursts_are_consecutive(self):
        spec = ChaosSpec.parse("seed=1,error=0.2,burst=3")
        trace = _decision_trace(spec.injector(), 200)
        runs = []
        current = 0
        for item in trace:
            if item == "error":
                current += 1
            elif current:
                runs.append(current)
                current = 0
        # A burst still in progress at the end of the trace is partial;
        # only completed runs witness the burst length.
        assert runs, "expected at least one injected burst"
        assert all(run % 3 == 0 for run in runs), (
            f"bursts must come in multiples of 3, got runs {runs}"
        )

    def test_slowdowns_use_injected_sleep(self):
        sleeps = []
        spec = ChaosSpec.parse("seed=5,slow=1.0,slow_s=0.25")
        injector = spec.injector(sleep=sleeps.append)
        injector.inject()
        assert sleeps == [0.25]

    def test_bounded_hang_sleeps_hang_s(self):
        sleeps = []
        spec = ChaosSpec.parse("seed=5,hang=1.0,hang_s=2")
        injector = spec.injector(sleep=sleeps.append)
        injector.inject()
        assert sleeps == [2.0]


class TestTransportFaults:
    def test_fail_first_alternates_transient_shapes(self):
        injector = ChaosSpec.parse("seed=0,fail_first=2").injector()
        with pytest.raises(ConnectionResetError):
            injector.transport_fault()
        with pytest.raises(RemoteDisconnected):
            injector.transport_fault()
        injector.transport_fault()  # healthy from the third attempt on
        assert injector.snapshot()["injected_resets"] == 2

    def test_transport_hook_is_the_bound_fault(self):
        injector = ChaosSpec.parse("seed=0,fail_first=1").injector()
        hook = injector.transport_hook()
        with pytest.raises(ConnectionResetError):
            hook()


class _Recorder:
    """A minimal backend-shaped object."""

    name = "recorder"
    cache = None

    def __init__(self):
        self.calls = []
        self.closed = False

    def map(self, archs):
        self.calls.append(tuple(archs))
        return [a * 2 for a in archs]

    def sync(self, module=None):
        return "synced"

    def stats(self):
        return {"batches": len(self.calls)}

    def close(self):
        self.closed = True


class TestFlakyBackend:
    def test_zero_rate_spec_delegates_bit_identically(self):
        inner = _Recorder()
        flaky = FlakyBackend(inner, spec=ChaosSpec.parse("seed=9"))
        assert flaky.map([1, 2, 3]) == [2, 4, 6]
        assert flaky.evaluate_many([4]) == [8]
        assert inner.calls == [(1, 2, 3), (4,)]
        assert flaky.sync() == "synced"

    def test_injected_error_propagates_before_dispatch(self):
        inner = _Recorder()
        flaky = FlakyBackend(
            inner, spec=ChaosSpec.parse("seed=0,error=1.0")
        )
        with pytest.raises(ChaosError):
            flaky.map([1])
        assert inner.calls == []

    def test_stats_carry_the_chaos_snapshot(self):
        flaky = FlakyBackend(_Recorder(), spec=ChaosSpec.parse("seed=0"))
        flaky.map([1])
        stats = flaky.stats()
        assert stats["backend"] == "flaky[recorder]"
        assert stats["chaos"]["dispatches"] == 1

    def test_close_closes_inner(self):
        inner = _Recorder()
        with FlakyBackend(inner, spec=ChaosSpec.parse("seed=0")):
            pass
        assert inner.closed

    def test_exactly_one_of_spec_or_injector(self):
        spec = ChaosSpec.parse("seed=0")
        with pytest.raises(ValueError):
            FlakyBackend(_Recorder())
        with pytest.raises(ValueError):
            FlakyBackend(
                _Recorder(), spec=spec, injector=spec.injector()
            )


class TestChaosProxy:
    def test_faults_in_front_of_the_client(self):
        class Client:
            def request_raw(self, method, path, body=None):
                return 200, b"ok"

        proxy = ChaosProxy(
            Client(), spec=ChaosSpec.parse("seed=0,fail_first=1")
        )
        with pytest.raises(ConnectionResetError):
            proxy.request_raw("GET", "/healthz")
        assert proxy.request_raw("GET", "/healthz") == (200, b"ok")
