"""AdmissionController: bounded in-flight + bounded queue + shedding."""

import threading

import pytest

from repro.resilience import AdmissionController, CancelToken


class FakeClock:
    def __init__(self, now: float = 0.0):
        self.now = now

    def __call__(self) -> float:
        return self.now


class TestUnlimited:
    def test_none_capacity_admits_everything(self):
        controller = AdmissionController(capacity=None)
        for _ in range(50):
            admitted, reason = controller.try_admit()
            assert admitted and reason is None
        snap = controller.snapshot()
        assert snap["admitted"] == 50
        assert snap["in_flight"] == 50
        assert snap["peak_in_flight"] == 50


class TestShedding:
    def test_zero_queue_sheds_immediately_at_capacity(self):
        controller = AdmissionController(capacity=1, queue_depth=0)
        assert controller.try_admit() == (True, None)
        assert controller.try_admit() == (False, "queue_full")
        assert controller.snapshot()["shed_queue_full"] == 1

    def test_release_frees_a_slot(self):
        controller = AdmissionController(capacity=1, queue_depth=0)
        assert controller.try_admit() == (True, None)
        controller.release()
        assert controller.try_admit() == (True, None)

    def test_queue_timeout_sheds_with_reason(self):
        controller = AdmissionController(
            capacity=1, queue_depth=1, queue_timeout_s=0.05
        )
        assert controller.try_admit() == (True, None)
        admitted, reason = controller.try_admit()
        assert (admitted, reason) == (False, "queue_timeout")
        assert controller.snapshot()["shed_queue_timeout"] == 1

    def test_expired_deadline_while_queued_is_deadline_not_shed(self):
        controller = AdmissionController(
            capacity=1, queue_depth=1, queue_timeout_s=30.0
        )
        assert controller.try_admit() == (True, None)
        token = CancelToken(deadline_s=1.0, clock=FakeClock())
        token.cancel()
        admitted, reason = controller.try_admit(cancel=token)
        assert (admitted, reason) == (False, "deadline")
        assert controller.snapshot()["shed_deadline"] == 1


class TestQueuedAdmission:
    def test_queued_request_admitted_when_slot_frees(self):
        controller = AdmissionController(
            capacity=1, queue_depth=4, queue_timeout_s=10.0
        )
        assert controller.try_admit() == (True, None)
        results = []
        started = threading.Event()

        def waiter():
            started.set()
            results.append(controller.try_admit())

        thread = threading.Thread(target=waiter)
        thread.start()
        assert started.wait(timeout=5)
        controller.release()
        thread.join(timeout=5)
        assert not thread.is_alive()
        assert results == [(True, None)]
        snap = controller.snapshot()
        assert snap["peak_waiting"] == 1
        assert snap["waiting"] == 0

    def test_queue_depth_bounds_waiters(self):
        controller = AdmissionController(
            capacity=1, queue_depth=1, queue_timeout_s=10.0
        )
        assert controller.try_admit() == (True, None)
        blocked = threading.Thread(target=controller.try_admit)
        blocked.start()
        # Give the queued waiter time to register itself.
        for _ in range(100):
            if controller.snapshot()["waiting"] == 1:
                break
            threading.Event().wait(timeout=0.01)
        assert controller.try_admit() == (False, "queue_full")
        controller.release()
        blocked.join(timeout=5)
        assert not blocked.is_alive()


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(capacity=0),
            dict(queue_depth=-1),
            dict(queue_timeout_s=0),
        ],
    )
    def test_bad_parameters_rejected(self, kwargs):
        with pytest.raises(ValueError):
            AdmissionController(**kwargs)
