"""Tests for baseline model specifications.

The strongest check is FLOPs against the published MAC counts — a
wrong layer table or geometry error shows up immediately there.
"""

import pytest

from repro.baselines import all_baselines, get_baseline
from repro.baselines import (
    darts,
    fbnet,
    mnasnet,
    mobilenet_v2,
    mobilenet_v3,
    proxylessnas,
    shufflenet_v2,
)
from repro.baselines.blocks import NetBuilder
from repro.baselines.zoo import baselines_by_group

# name -> published MACs (from the respective papers)
PUBLISHED_MACS = {
    "MobileNetV2 1.0x": 300e6,
    "ShuffleNetV2 1.5x": 299e6,
    "MobileNetV3 (large)": 219e6,
    "DARTS": 574e6,
    "MnasNet-A1": 312e6,
    "FBNet-A": 249e6,
    "FBNet-B": 295e6,
    "FBNet-C": 375e6,
    "ProxylessNAS-GPU": 465e6,
    "ProxylessNAS-CPU": 439e6,
    "ProxylessNAS-Mobile": 320e6,
}


class TestFLOPsAgainstPublished:
    @pytest.mark.parametrize("name", sorted(PUBLISHED_MACS))
    def test_macs_within_tolerance(self, name):
        net = get_baseline(name).build()
        published = PUBLISHED_MACS[name]
        assert net.flops == pytest.approx(published, rel=0.16), (
            f"{name}: {net.flops / 1e6:.1f}M vs published {published / 1e6:.0f}M"
        )


class TestGeometry:
    @pytest.mark.parametrize("model", all_baselines(), ids=lambda m: m.name)
    def test_ends_at_classifier(self, model):
        net = model.build()
        assert net.channels == 1000  # ImageNet classes
        assert net.size == 1

    @pytest.mark.parametrize("model", all_baselines(), ids=lambda m: m.name)
    def test_params_plausible(self, model):
        net = model.build()
        # Mobile models: 2M..90M weights (DARTS biggest)
        assert 1.5e6 < net.params < 9e7


class TestBuilders:
    def test_mobilenet_v2_width_scaling(self):
        flops_small = mobilenet_v2.build(width=0.5).flops
        flops_large = mobilenet_v2.build(width=1.4).flops
        assert flops_small < 300e6 / 2.5
        assert flops_large > 450e6

    def test_shufflenet_width_table(self):
        f05 = shufflenet_v2.build(width=0.5).flops
        f20 = shufflenet_v2.build(width=2.0).flops
        assert f05 == pytest.approx(41e6, rel=0.3)
        assert f20 == pytest.approx(591e6, rel=0.2)

    def test_shufflenet_unknown_width_raises(self):
        with pytest.raises(ValueError):
            shufflenet_v2.build(width=1.25)

    def test_fbnet_variants_ordered(self):
        fa = fbnet.build("a").flops
        fb = fbnet.build("b").flops
        fc = fbnet.build("c").flops
        assert fa < fb < fc

    def test_fbnet_unknown_variant_raises(self):
        with pytest.raises(ValueError):
            fbnet.build("d")

    def test_proxyless_gpu_shallower_fewer_layers(self):
        gpu = proxylessnas.build("gpu")
        cpu = proxylessnas.build("cpu")
        assert len(gpu.layers) < len(cpu.layers)

    def test_proxyless_unknown_variant_raises(self):
        with pytest.raises(ValueError):
            proxylessnas.build("tpu")

    def test_darts_kernel_count_dwarfs_mobilenets(self):
        """DARTS launches far more kernels at similar FLOPs — the
        property behind its Table-I slowness."""
        darts_kernels = sum(len(layer) for layer in darts.build().layers)
        mbv2_kernels = sum(
            len(layer) for layer in mobilenet_v2.build().layers
        )
        assert darts_kernels > 3 * mbv2_kernels

    def test_mnasnet_has_se_blocks(self):
        net = mnasnet.build()
        names = [p.name for layer in net.layers for p in layer]
        assert any("se-" in n for n in names)

    def test_mobilenet_v3_pooled_head(self):
        net = mobilenet_v3.build()
        names = [p.name for layer in net.layers for p in layer]
        assert "head-hidden" in names


class TestNetBuilder:
    def test_tracks_geometry(self):
        net = NetBuilder(input_size=32, input_channels=3)
        net.conv_bn(8, k=3, stride=2)
        assert net.size == 16 and net.channels == 8
        net.mbconv(16, expansion=6, k=3, stride=2)
        assert net.size == 8 and net.channels == 16

    def test_flops_accumulate(self):
        net = NetBuilder(input_size=32)
        before = net.flops
        net.conv_bn(8, k=3, stride=1)
        assert net.flops > before

    def test_residual_memory_op_when_shapes_match(self):
        net = NetBuilder(input_size=32)
        net.conv_bn(8, k=1)
        net.mbconv(8, expansion=3, k=3, stride=1)
        names = [p.name for p in net.layers[-1]]
        assert "residual-add" in names

    def test_no_residual_on_stride_2(self):
        net = NetBuilder(input_size=32)
        net.conv_bn(8, k=1)
        net.mbconv(8, expansion=3, k=3, stride=2)
        names = [p.name for p in net.layers[-1]]
        assert "residual-add" not in names

    def test_maxpool_halves(self):
        net = NetBuilder(input_size=32)
        net.conv_bn(8, k=3, stride=1)
        net.maxpool()
        assert net.size == 16


class TestZoo:
    def test_eleven_comparators(self):
        assert len(all_baselines()) == 11  # Table I comparator count

    def test_groups(self):
        groups = baselines_by_group()
        assert len(groups["manual"]) == 3
        assert len(groups["nas"]) == 8

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            get_baseline("ResNet-50")

    def test_published_stats_complete(self):
        for model in all_baselines():
            p = model.published
            assert p.top1_error > 20.0
            for key in ("gpu", "cpu", "edge"):
                assert p.latency_ms(key) > 5.0

    def test_published_unknown_device_raises(self):
        with pytest.raises(KeyError):
            all_baselines()[0].published.latency_ms("tpu")
