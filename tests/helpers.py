"""Test utilities: numerical gradient checking for layers and losses."""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.nn.module import Module


def numerical_gradient(
    f: Callable[[np.ndarray], float], x: np.ndarray, eps: float = 1e-5
) -> np.ndarray:
    """Central-difference gradient of a scalar function of ``x``."""
    grad = np.zeros_like(x)
    it = np.nditer(x, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        original = x[idx]
        x[idx] = original + eps
        plus = f(x)
        x[idx] = original - eps
        minus = f(x)
        x[idx] = original
        grad[idx] = (plus - minus) / (2 * eps)
        it.iternext()
    return grad


def check_layer_gradients(
    layer: Module,
    x: np.ndarray,
    atol: float = 1e-6,
    rtol: float = 1e-4,
    check_params: bool = True,
) -> None:
    """Verify a layer's analytic input/parameter gradients numerically.

    Uses the scalar loss ``sum(w * y)`` with fixed random weights so all
    output positions contribute distinct gradient signal.
    """
    layer.train()
    rng = np.random.default_rng(99)

    out = layer(x.copy())
    w = rng.normal(size=out.shape)

    # Analytic gradients.
    out = layer(x.copy())
    grad_in = layer.backward(w)
    analytic_params = {}
    if check_params:
        for name, p in layer.named_parameters():
            assert p.grad is not None, f"no gradient for {name}"
            analytic_params[name] = p.grad.copy()

    # Numerical input gradient.
    def loss_of_input(xv: np.ndarray) -> float:
        layer.eval()  # avoid running-stat updates during probing
        layer.train()
        return float((layer(xv) * w).sum())

    num_grad_in = numerical_gradient(loss_of_input, x.copy())
    np.testing.assert_allclose(grad_in, num_grad_in, atol=atol, rtol=rtol)

    # Numerical parameter gradients.
    if check_params:
        for name, p in layer.named_parameters():
            def loss_of_param(pv: np.ndarray, _p=p) -> float:
                saved = _p.data
                _p.data = pv
                val = float((layer(x.copy()) * w).sum())
                _p.data = saved
                return val

            num = numerical_gradient(loss_of_param, p.data.copy())
            np.testing.assert_allclose(
                analytic_params[name], num, atol=atol, rtol=rtol,
                err_msg=f"parameter {name}",
            )
