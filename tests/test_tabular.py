"""Tests for the tabular NAS benchmark artifact."""

import numpy as np
import pytest

from repro.space import SearchSpace, SpaceConfig, StageSpec
from repro.space.encoding import space_cardinality
from repro.tabular import TabularBenchmark


@pytest.fixture(scope="module")
def micro_space():
    """A deliberately tiny space (5 ops x 2 factors)^2 = 100 archs."""
    config = SpaceConfig(
        name="micro",
        input_size=16,
        num_classes=4,
        stem_channels=4,
        stages=(StageSpec(1, 8), StageSpec(1, 16)),
        head_channels=16,
        channel_factors=(0.5, 1.0),
    )
    return SearchSpace(config)


def _fns(space):
    latency = lambda a: space.arch_flops(a) / 1e4
    accuracy = lambda a: min(1.0, (space.arch_flops(a) / 1e5) ** 0.5)
    return latency, accuracy


class TestBuild:
    def test_sampled_build(self, proxy_space):
        lat, acc = _fns(proxy_space)
        table = TabularBenchmark.build(
            proxy_space, lat, acc, num_archs=50, seed=0
        )
        assert len(table) == 50
        assert not table.exhaustive

    def test_exhaustive_build(self, micro_space):
        lat, acc = _fns(micro_space)
        table = TabularBenchmark.build(micro_space, lat, acc, num_archs=None)
        assert len(table) == space_cardinality(micro_space) == 100
        assert table.exhaustive

    def test_exhaustive_cap(self, space_a):
        lat, acc = _fns(space_a)
        with pytest.raises(ValueError):
            TabularBenchmark.build(space_a, lat, acc, num_archs=None)

    def test_invalid_num_archs(self, proxy_space):
        lat, acc = _fns(proxy_space)
        with pytest.raises(ValueError):
            TabularBenchmark.build(proxy_space, lat, acc, num_archs=0)

    def test_sample_more_than_space_saturates(self, micro_space):
        lat, acc = _fns(micro_space)
        table = TabularBenchmark.build(
            micro_space, lat, acc, num_archs=10_000, seed=0
        )
        assert len(table) == 100
        assert table.exhaustive

    def test_energy_column_optional(self, micro_space):
        lat, acc = _fns(micro_space)
        table = TabularBenchmark.build(
            micro_space, lat, acc, energy_fn=lambda a: 2.0, num_archs=None
        )
        arch = next(iter(table.entries()))[0]
        assert table.query(arch).energy_mj == 2.0


class TestQuery:
    @pytest.fixture(scope="class")
    def table(self, micro_space):
        lat, acc = _fns(micro_space)
        return TabularBenchmark.build(micro_space, lat, acc, num_archs=None)

    def test_query_matches_functions(self, table, micro_space, rng):
        lat, acc = _fns(micro_space)
        arch = micro_space.sample(rng)
        entry = table.query(arch)
        assert entry.latency_ms == pytest.approx(lat(arch))
        assert entry.accuracy == pytest.approx(acc(arch))

    def test_contains(self, table, micro_space, rng):
        assert micro_space.sample(rng) in table
        from repro.space import Architecture

        assert Architecture.uniform(3) not in table

    def test_missing_entry_raises(self, proxy_space):
        lat, acc = _fns(proxy_space)
        table = TabularBenchmark.build(proxy_space, lat, acc, num_archs=3, seed=0)
        rng = np.random.default_rng(123)
        missing = None
        for _ in range(50):
            candidate = proxy_space.sample(rng)
            if candidate not in table:
                missing = candidate
                break
        assert missing is not None
        with pytest.raises(KeyError):
            table.query(missing)

    def test_best_under_is_oracle(self, table):
        """On the exhaustive table, best_under scans the whole truth."""
        budget = 15.0
        arch, entry = table.best_under(budget)
        assert entry.latency_ms <= budget
        for _, other in table.entries():
            if other.latency_ms <= budget:
                assert entry.accuracy >= other.accuracy

    def test_best_under_infeasible_raises(self, table):
        with pytest.raises(ValueError):
            table.best_under(1e-9)


class TestSerialization:
    def test_json_roundtrip(self, micro_space, tmp_path):
        lat, acc = _fns(micro_space)
        table = TabularBenchmark.build(
            micro_space, lat, acc, energy_fn=lambda a: 1.5, num_archs=None
        )
        path = table.save(tmp_path / "table.json")
        restored = TabularBenchmark.load(micro_space, path)
        assert len(restored) == len(table)
        assert restored.exhaustive
        for (arch_a, e_a), (arch_b, e_b) in zip(
            table.entries(), restored.entries()
        ):
            assert arch_a == arch_b
            assert e_a == e_b


class TestSearchOnTable:
    def test_ea_runs_against_table(self, micro_space):
        """A table can replace the simulator in the Eq. 1 objective —
        the whole point of a tabular benchmark."""
        from repro.core import EvolutionConfig, EvolutionarySearch, Objective

        lat, acc = _fns(micro_space)
        table = TabularBenchmark.build(micro_space, lat, acc, num_archs=None)
        objective = Objective(
            accuracy_fn=lambda a: table.query(a).accuracy,
            latency_fn=lambda a: table.query(a).latency_ms,
            target_ms=12.0,
            beta=-0.5,
        )
        result = EvolutionarySearch(
            micro_space, objective,
            EvolutionConfig(generations=6, population_size=10, num_parents=4),
        ).run()
        # with 100 archs and 60 evaluations the EA should land close to
        # the oracle answer
        oracle_arch, oracle = table.best_under(12.0 * 1.0)
        assert result.best.accuracy >= oracle.accuracy - 0.05
