"""Meta tests on the public API surface and documentation hygiene."""

import importlib
import pkgutil

import pytest

import repro


def _all_modules():
    names = []
    for module in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if module.name.endswith("__main__"):
            continue  # importing it runs the CLI
        names.append(module.name)
    return names


class TestPublicApi:
    def test_top_level_all_resolves(self):
        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name

    @pytest.mark.parametrize(
        "package",
        ["repro.nn", "repro.space", "repro.hardware", "repro.accuracy",
         "repro.core", "repro.baselines", "repro.data", "repro.train",
         "repro.supernet", "repro.analysis", "repro.report", "repro.deploy",
         "repro.serve"],
    )
    def test_subpackage_all_resolves(self, package):
        mod = importlib.import_module(package)
        assert hasattr(mod, "__all__"), package
        for name in mod.__all__:
            assert getattr(mod, name, None) is not None, (package, name)

    def test_every_module_importable(self):
        for name in _all_modules():
            importlib.import_module(name)

    def test_every_module_has_docstring(self):
        missing = []
        for name in _all_modules():
            mod = importlib.import_module(name)
            doc = (mod.__doc__ or "").strip()
            # package __init__ shims for tests are exempt; source
            # modules must explain themselves
            if not doc and not name.endswith("__main__"):
                missing.append(name)
        assert not missing, f"modules without docstrings: {missing}"

    def test_public_classes_have_docstrings(self):
        import inspect

        undocumented = []
        for package in ("repro.core", "repro.hardware", "repro.space",
                        "repro.train", "repro.deploy"):
            mod = importlib.import_module(package)
            for name in mod.__all__:
                obj = getattr(mod, name)
                if inspect.isclass(obj) or inspect.isfunction(obj):
                    if not (obj.__doc__ or "").strip():
                        undocumented.append(f"{package}.{name}")
        assert not undocumented, undocumented

    def test_version_string(self):
        major, *_ = repro.__version__.split(".")
        assert int(major) >= 1
