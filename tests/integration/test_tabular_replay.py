"""The tabular-replay gate, in-process twin of the CI job.

One exhaustive "search"-recipe artifact over the mini layout, then the
same two comparisons the ``tabular-replay`` CI job diffs: the full
HSCoNAS pipeline and the NSGA-II front, live vs replayed, compared as
raw-float JSON fingerprints (never rendered output).
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

DRIVER = Path(__file__).with_name("_replay_driver.py")
TIMEOUT_S = 600


def _run_driver(*args):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(Path(__file__).resolve().parents[2] / "src")
    proc = subprocess.run(
        [sys.executable, str(DRIVER), *map(str, args)],
        env=env,
        timeout=TIMEOUT_S,
        capture_output=True,
        text=True,
    )
    if proc.returncode != 0:
        raise AssertionError(
            f"driver {args[0]} failed ({proc.returncode}):\n"
            f"{proc.stderr[-2000:]}"
        )


@pytest.fixture(scope="module")
def artifact(tmp_path_factory):
    table = tmp_path_factory.mktemp("replay_gate") / "table"
    _run_driver("tabulate", table)
    return table


def test_pipeline_replay_fingerprint_is_bit_identical(artifact, tmp_path):
    live, replay = tmp_path / "live.json", tmp_path / "replay.json"
    _run_driver("pipeline", live)
    _run_driver("pipeline", replay, "--table", artifact)
    assert json.loads(live.read_text()) == json.loads(replay.read_text())


def test_front_replay_fingerprint_is_bit_identical(artifact, tmp_path):
    live, replay = tmp_path / "live.json", tmp_path / "replay.json"
    _run_driver("front", live)
    _run_driver("front", replay, "--table", artifact)
    live_fp = json.loads(live.read_text())
    replay_fp = json.loads(replay.read_text())
    assert live_fp == replay_fp
    # The gate must compare something real: a degenerate all-zero
    # accuracy column would make bit-identity trivially true.
    assert any(p["accuracy"] > 0.0 for p in live_fp["front"])
