"""Subprocess driver for the crash/resume integration tests.

Runs the quick-config HSCoNAS pipeline against a checkpointed run
directory and writes a result fingerprint as JSON. With ``--crash
PHASE:N:SIGNAME`` the process sends itself the named signal right after
the Nth checkpoint save of that phase lands — a real process death at a
checkpoint boundary, which is exactly the window an external ``kill -9``
hits. The test harness then re-invokes the driver with the same run
directory (no --crash) and asserts the fingerprint matches an
uninterrupted run bit-for-bit.

Usage:
    python _crash_driver.py RUN_DIR OUT_JSON --workers N \
        [--crash search:2:SIGKILL]
"""

import argparse
import os
import signal
import sys
from pathlib import Path

from repro.core import EvolutionConfig, HSCoNAS, HSCoNASConfig
from repro.hardware import get_device
from repro.runstate import RunDir
from repro.runstate.atomic import atomic_write_json
from repro.space import SearchSpace, proxy


def make_config(workers: int) -> HSCoNASConfig:
    # Mirrors the quick_config fixture in tests/core/test_search_pipeline.py.
    return HSCoNASConfig(
        target_ms=1.3,
        lut_samples_per_cell=1,
        bias_calibration_archs=8,
        quality_samples=10,
        evolution=EvolutionConfig(
            generations=4, population_size=12, num_parents=5
        ),
        seed=0,
        workers=workers,
    )


def arm_crash(spec: str) -> None:
    phase, after_saves, signame = spec.split(":")
    sig = getattr(signal, signame)
    remaining = {"n": int(after_saves)}
    original = RunDir.save_checkpoint

    def crashing_save(self, ph, payload, complete=False):
        original(self, ph, payload, complete=complete)
        if ph == phase:
            remaining["n"] -= 1
            if remaining["n"] == 0:
                # The checkpoint is on disk; die before any further
                # progress, like a power cut between two saves.
                os.kill(os.getpid(), sig)

    RunDir.save_checkpoint = crashing_save


def fingerprint(result) -> dict:
    return {
        "arch": result.arch.to_dict(),
        "top1_error": result.top1_error,
        "top5_error": result.top5_error,
        "predicted_latency_ms": result.predicted_latency_ms,
        "measured_latency_ms": result.measured_latency_ms,
        "bias_ms": result.bias_ms,
        "cache_stats": result.search.cache_stats,
        "generations": [
            {"index": g.index, "best_score": g.best.score}
            for g in result.search.generations
        ],
        "shrink": result.shrink.to_dict() if result.shrink else None,
    }


def main() -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("run_dir", type=Path)
    parser.add_argument("out", type=Path)
    parser.add_argument("--workers", type=int, default=0)
    parser.add_argument("--crash", default=None, metavar="PHASE:N:SIGNAME")
    args = parser.parse_args()

    if args.crash:
        arm_crash(args.crash)

    config = make_config(args.workers)
    space = SearchSpace(proxy())
    run_config = {"target_ms": config.target_ms, "seed": config.seed}
    if args.run_dir.exists():
        run_state = RunDir.open(
            args.run_dir, expect_kind="search", expect_config=run_config
        )
    else:
        run_state = RunDir.create(
            args.run_dir, "search", run_config, HSCoNAS.PHASES
        )

    result = HSCoNAS(space, get_device("gpu"), config).run(run_state=run_state)
    atomic_write_json(args.out, fingerprint(result))
    return 0


if __name__ == "__main__":
    sys.exit(main())
