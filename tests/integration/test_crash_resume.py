"""Kill the pipeline process at checkpoint boundaries and resume.

These are the subprocess versions of tests/runstate/test_component_resume.py:
a real process receives SIGKILL or SIGTERM right after a checkpoint save
lands, then a second invocation with the same run directory must finish
the run and produce a fingerprint identical to an uninterrupted one.
"""

import json
import os
import signal
import subprocess
import sys
from pathlib import Path

import pytest

DRIVER = Path(__file__).with_name("_crash_driver.py")
TIMEOUT_S = 600


def _run_driver(run_dir, out, workers=0, crash=None, check=True):
    cmd = [
        sys.executable,
        str(DRIVER),
        str(run_dir),
        str(out),
        "--workers",
        str(workers),
    ]
    if crash:
        cmd += ["--crash", crash]
    env = dict(os.environ)
    env["PYTHONPATH"] = str(Path(__file__).resolve().parents[2] / "src")
    # Output goes to a file, not a pipe: when the driver SIGKILLs itself
    # its orphaned fork-workers inherit the output fds, and a pipe would
    # keep subprocess.run blocked until they too exit.
    log = Path(str(out) + ".log")
    with log.open("w") as sink:
        code = subprocess.run(
            cmd, env=env, timeout=TIMEOUT_S, stdout=sink, stderr=sink
        ).returncode
    if check and code != 0:
        raise AssertionError(
            f"driver failed ({code}):\n{log.read_text()[-2000:]}"
        )
    return code


@pytest.fixture(scope="module")
def baseline(tmp_path_factory):
    """Fingerprint of an uninterrupted serial run."""
    root = tmp_path_factory.mktemp("baseline")
    out = root / "result.json"
    _run_driver(root / "run", out)
    return json.loads(out.read_text())


def _crash_then_resume(tmp_path, crash, expected_signal, workers=0):
    run_dir = tmp_path / "run"
    out = tmp_path / "result.json"
    code = _run_driver(run_dir, out, workers=workers, crash=crash, check=False)
    assert code == -expected_signal, Path(str(out) + ".log").read_text()[-2000:]
    assert not out.exists()  # died before the final artifact
    assert (run_dir / "checkpoints").is_dir()
    _run_driver(run_dir, out, workers=workers)
    return json.loads(out.read_text())


class TestCrashResume:
    def test_sigkill_mid_ea_generation_serial(self, tmp_path, baseline):
        resumed = _crash_then_resume(
            tmp_path, "search:2:SIGKILL", signal.SIGKILL
        )
        assert resumed == baseline

    def test_sigkill_mid_ea_generation_workers(self, tmp_path, baseline):
        """workers=2 must not change results or resumability."""
        resumed = _crash_then_resume(
            tmp_path, "search:2:SIGKILL", signal.SIGKILL, workers=2
        )
        assert resumed == baseline

    def test_sigterm_mid_shrink_stage(self, tmp_path, baseline):
        resumed = _crash_then_resume(
            tmp_path, "shrink:2:SIGTERM", signal.SIGTERM
        )
        assert resumed == baseline

    def test_sigkill_right_after_predictor_phase(self, tmp_path, baseline):
        """Crash on the phase-boundary checkpoint, not just mid-phase."""
        resumed = _crash_then_resume(
            tmp_path, "predictor:1:SIGKILL", signal.SIGKILL
        )
        assert resumed == baseline

    def test_double_crash_still_converges(self, tmp_path, baseline):
        """Crash during shrink, resume, crash again during search."""
        run_dir = tmp_path / "run"
        out = tmp_path / "result.json"
        first = _run_driver(run_dir, out, crash="shrink:1:SIGKILL", check=False)
        assert first == -signal.SIGKILL
        second = _run_driver(
            run_dir, out, crash="search:1:SIGTERM", check=False
        )
        assert second == -signal.SIGTERM
        _run_driver(run_dir, out)
        assert json.loads(out.read_text()) == baseline

    def test_resume_of_finished_run_is_idempotent(self, tmp_path, baseline):
        run_dir = tmp_path / "run"
        out = tmp_path / "result.json"
        _run_driver(run_dir, out)
        out.unlink()
        _run_driver(run_dir, out)  # everything served from checkpoints
        assert json.loads(out.read_text()) == baseline
