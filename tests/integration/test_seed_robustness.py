"""Seed robustness: the pipeline's guarantees must not be seed luck."""

import pytest

from repro.core import EvolutionConfig, HSCoNAS, HSCoNASConfig
from repro.hardware import get_device


class TestSeedRobustness:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_constraint_met_across_seeds(self, proxy_space, seed):
        """Every seed's discovered architecture meets the latency
        constraint (within measurement tolerance) and stays in-space."""
        cfg = HSCoNASConfig(
            target_ms=1.3,
            lut_samples_per_cell=1,
            bias_calibration_archs=8,
            quality_samples=10,
            evolution=EvolutionConfig(
                generations=5, population_size=12, num_parents=5
            ),
            seed=seed,
        )
        result = HSCoNAS(proxy_space, get_device("gpu"), cfg).run()
        assert proxy_space.contains(result.arch)
        assert result.measured_latency_ms <= cfg.target_ms * 1.15
        assert result.bias_ms > 0.0

    def test_different_seeds_explore_differently(self, proxy_space):
        """Distinct seeds should not converge on the identical network
        in a space of 10^13 — that would mean broken randomization."""
        archs = []
        for seed in (0, 1, 2):
            cfg = HSCoNASConfig(
                target_ms=1.3,
                lut_samples_per_cell=1,
                bias_calibration_archs=5,
                quality_samples=5,
                evolution=EvolutionConfig(
                    generations=3, population_size=10, num_parents=4
                ),
                seed=seed,
            )
            archs.append(
                HSCoNAS(proxy_space, get_device("gpu"), cfg).run().arch
            )
        assert len({a.key() for a in archs}) >= 2
