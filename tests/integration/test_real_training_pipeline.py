"""Integration: the full HSCoNAS loop with *real* supernet training.

This wires every mechanism together the way the paper runs them —
supernet training with uniform path sampling, weight-sharing accuracy
as the objective's ACC term, LUT+B latency prediction, progressive
shrinking with supernet tuning between stages, and the EA — on the tiny
proxy task, with real numpy gradients end to end.
"""

import numpy as np
import pytest

from repro.core import (
    EvolutionConfig,
    EvolutionarySearch,
    Objective,
    ProgressiveSpaceShrinking,
    SubspaceQuality,
)
from repro.data import BatchLoader
from repro.hardware import LatencyLUT, LatencyPredictor, OnDeviceProfiler, get_device
from repro.supernet import Supernet
from repro.train import SupernetTrainer, TrainConfig


@pytest.fixture(scope="module")
def trained_setup(tiny_space, tiny_dataset):
    """Supernet trained briefly + calibrated latency predictor."""
    loader = BatchLoader(
        tiny_dataset.train_x, tiny_dataset.train_y, batch_size=8, seed=0
    )
    supernet = Supernet(tiny_space, seed=0)
    trainer = SupernetTrainer(supernet, loader, TrainConfig(base_lr=0.05, seed=0))
    trainer.train_epochs(tiny_space, epochs=3)

    device = get_device("edge")
    lut = LatencyLUT.build(tiny_space, device, samples_per_cell=1, seed=0)
    predictor = LatencyPredictor(lut, tiny_space)
    profiler = OnDeviceProfiler(device, seed=0)
    predictor.calibrate_bias(tiny_space, profiler, num_archs=10, seed=1)
    return trainer, predictor, profiler


class TestRealPipeline:
    def test_full_loop(self, tiny_space, tiny_dataset, trained_setup):
        trainer, predictor, profiler = trained_setup

        # Pick a reachable latency target: the median of a small sample.
        rng = np.random.default_rng(0)
        sample_lats = [
            predictor.predict(tiny_space.sample(rng)) for _ in range(20)
        ]
        target = float(np.median(sample_lats))

        objective = Objective(
            accuracy_fn=lambda arch: trainer.evaluate_arch(
                arch, tiny_dataset.test_x, tiny_dataset.test_y
            ),
            latency_fn=predictor.predict,
            target_ms=target,
            beta=-0.5,
        )

        # Progressive shrinking with real supernet tuning between stages.
        quality = SubspaceQuality(objective, num_samples=5, seed=2)
        shrinker = ProgressiveSpaceShrinking(
            quality,
            stage_layers=[(3,), (2,)],
            tune_hook=lambda space, stage: trainer.tune_epochs(
                space, epochs=1, lr=0.01
            ),
        )
        shrink = shrinker.run(tiny_space)
        search_space = shrink.final_space
        assert set(search_space.fixed_layers()) == {3, 2}

        # EA inside the shrunk space.
        cfg = EvolutionConfig(generations=3, population_size=8, num_parents=3, seed=3)
        result = EvolutionarySearch(search_space, objective, cfg).run()

        best = result.best
        assert search_space.contains(best.arch)
        assert 0.0 <= best.accuracy <= 1.0
        # the measured latency should be in the same ballpark as predicted
        measured = profiler.measure_ms(tiny_space, best.arch)
        assert measured == pytest.approx(best.latency_ms, rel=0.5)

    def test_weight_sharing_inheritance(self, tiny_space, tiny_dataset,
                                        trained_setup):
        """Subnets evaluated with inherited weights must beat an
        untrained supernet's subnets on average."""
        trainer, _, _ = trained_setup
        fresh = Supernet(tiny_space, seed=99)
        loader = BatchLoader(
            tiny_dataset.train_x, tiny_dataset.train_y, batch_size=8, seed=0
        )
        fresh_trainer = SupernetTrainer(fresh, loader)

        trained_acc = trainer.supernet_accuracy(
            tiny_space, tiny_dataset.train_x, tiny_dataset.train_y,
            num_archs=6, seed=5,
        )
        fresh_acc = fresh_trainer.supernet_accuracy(
            tiny_space, tiny_dataset.train_x, tiny_dataset.train_y,
            num_archs=6, seed=5,
        )
        assert trained_acc >= fresh_acc
