"""Subprocess driver for the tabular-replay CI gate.

Builds a ``"search"``-recipe exhaustive artifact over the mini layout,
then runs the same search twice — once live (supernet-free analytic
recipe, exactly what ``HSCoNASConfig`` defaults to) and once replayed
from the artifact's columns — and writes a raw-float JSON fingerprint
of each. The CI job diffs the two files: any drift between live and
replay, down to the last bit of any float, fails the gate. Raw floats
on purpose — rendered CSV would round away exactly the drift this gate
exists to catch.

Two comparisons share the artifact:

* ``pipeline`` — the full HSCoNAS run (shrinking + EA), live vs
  ``backend="tabular"``;
* ``front`` — the NSGA-II Pareto front, live vs
  :func:`repro.serve.pipeline.replay_front_search`.

Usage:
    python _replay_driver.py tabulate TABLE_DIR
    python _replay_driver.py pipeline OUT_JSON [--table TABLE_DIR]
    python _replay_driver.py front OUT_JSON [--table TABLE_DIR]
"""

import argparse
import sys
from pathlib import Path

from repro.core import EvolutionConfig, HSCoNAS, HSCoNASConfig
from repro.hardware.calibration import calibrated_devices
from repro.runstate.atomic import atomic_write_json
from repro.space import space_for_layout
from repro.tabular import load_artifact, save_artifact, tabulate
from repro.tabular.build import recipe_predictor, recipe_surrogate

LAYOUT = "mini"  # the one registered layout small enough for exhaustive
DEVICE = "edge"
SEED = 0
TARGET_MS = 2.6


def pipeline_config(table: Path = None) -> HSCoNASConfig:
    kwargs = dict(
        target_ms=TARGET_MS,
        seed=SEED,
        quality_samples=20,
        shrink_stage_layers=((3,), (1,)),
        evolution=EvolutionConfig(
            generations=8, population_size=20, num_parents=8
        ),
    )
    if table is not None:
        kwargs.update(backend="tabular", table=str(table))
    return HSCoNASConfig(**kwargs)


def pipeline_fingerprint(result) -> dict:
    return {
        "arch": result.arch.to_dict(),
        "top1_error": result.top1_error,
        "top5_error": result.top5_error,
        "predicted_latency_ms": result.predicted_latency_ms,
        "num_evaluations": result.search.num_evaluations,
        "generations": [
            {
                "index": g.index,
                "best_score": g.best.score,
                "best_latency_ms": g.best.latency_ms,
                "best_accuracy": g.best.accuracy,
            }
            for g in result.search.generations
        ],
        "shrink": result.shrink.to_dict() if result.shrink else None,
    }


def front_fingerprint(result) -> dict:
    return {
        "num_evaluations": result.num_evaluations,
        "front": [
            {
                "ops": list(p.arch.ops),
                "factors": list(p.arch.factors),
                "latency_ms": p.latency_ms,
                "accuracy": p.accuracy,
            }
            for p in result.front
        ],
    }


def cmd_tabulate(args) -> None:
    space = space_for_layout(LAYOUT)
    table = tabulate(
        space, devices=(DEVICE,), seed=SEED, recipe="search"
    )
    save_artifact(table, args.table, layout=LAYOUT)
    print(f"tabulated {len(table)} architectures -> {args.table}")


def cmd_pipeline(args) -> None:
    space = space_for_layout(LAYOUT)
    device = calibrated_devices()[DEVICE]
    config = pipeline_config(args.table)
    result = HSCoNAS(space, device, config).run()
    atomic_write_json(args.out, pipeline_fingerprint(result))


def cmd_front(args) -> None:
    from repro.serve.pipeline import front_search, replay_front_search

    space = space_for_layout(LAYOUT)
    if args.table is not None:
        table = load_artifact(args.table, space=space)
        result = replay_front_search(
            space, table, DEVICE, seed=SEED, generations=8,
            population_size=20,
        )
    else:
        # The live twin of the "search"-recipe replay: same predictor
        # build, same space-calibrated surrogate, same NSGA-II seed.
        predictor = recipe_predictor("search", space, DEVICE, SEED)
        result = front_search(
            space,
            predictor,
            seed=SEED,
            generations=8,
            population_size=20,
            surrogate=recipe_surrogate("search", space),
        )
    atomic_write_json(args.out, front_fingerprint(result))


def main() -> int:
    parser = argparse.ArgumentParser()
    sub = parser.add_subparsers(dest="mode", required=True)
    p = sub.add_parser("tabulate")
    p.add_argument("table", type=Path)
    for mode in ("pipeline", "front"):
        p = sub.add_parser(mode)
        p.add_argument("out", type=Path)
        p.add_argument("--table", type=Path, default=None)
    args = parser.parse_args()
    {
        "tabulate": cmd_tabulate,
        "pipeline": cmd_pipeline,
        "front": cmd_front,
    }[args.mode](args)
    return 0


if __name__ == "__main__":
    sys.exit(main())
