"""Tests for path samplers and BN recalibration."""

from collections import Counter

import numpy as np
import pytest

from repro.space import NUM_OPERATORS
from repro.supernet import Supernet
from repro.train import (
    FairSampler,
    SupernetTrainer,
    TrainConfig,
    UniformSampler,
    recalibrate_bn,
)
from repro.train.bn_recalibration import eval_with_recalibrated_bn


class TestUniformSampler:
    def test_paths_inside_space(self, proxy_space, rng):
        sampler = UniformSampler()
        for _ in range(20):
            assert proxy_space.contains(sampler.next_path(proxy_space, rng))


class TestFairSampler:
    def test_paths_inside_space(self, proxy_space, rng):
        sampler = FairSampler()
        for _ in range(20):
            assert proxy_space.contains(sampler.next_path(proxy_space, rng))

    def test_strict_fairness_per_window(self, proxy_space, rng):
        """Within each window of K steps, every layer activates every
        operator exactly once — FairNAS's defining property."""
        sampler = FairSampler()
        k = NUM_OPERATORS
        for _ in range(3):  # three consecutive windows
            window = [sampler.next_path(proxy_space, rng) for _ in range(k)]
            for layer in range(proxy_space.num_layers):
                ops = sorted(arch.ops[layer] for arch in window)
                assert ops == sorted(proxy_space.candidate_ops[layer])

    def test_fairness_counts_over_training(self, proxy_space, rng):
        sampler = FairSampler()
        counts = Counter()
        steps = 25  # 5 full windows
        for _ in range(steps):
            arch = sampler.next_path(proxy_space, rng)
            counts.update([(0, arch.ops[0])])
        per_op = [counts[(0, op)] for op in range(NUM_OPERATORS)]
        assert per_op == [5] * NUM_OPERATORS

    def test_respects_shrunk_space(self, proxy_space, rng):
        shrunk = proxy_space.fix_operator(7, 3)
        sampler = FairSampler()
        for _ in range(12):
            assert sampler.next_path(shrunk, rng).ops[7] == 3

    def test_trainer_accepts_fair_sampler(self, tiny_space, tiny_loader):
        net = Supernet(tiny_space, seed=0)
        trainer = SupernetTrainer(
            net, tiny_loader, TrainConfig(base_lr=0.05), sampler=FairSampler()
        )
        losses = trainer.train_epochs(tiny_space, epochs=2)
        assert len(losses) == 2


class TestBNRecalibration:
    @pytest.fixture()
    def trained(self, tiny_space, tiny_loader):
        net = Supernet(tiny_space, seed=0)
        trainer = SupernetTrainer(net, tiny_loader,
                                  TrainConfig(base_lr=0.1, seed=0))
        trainer.train_epochs(tiny_space, epochs=3)
        return net

    def test_uses_requested_batches(self, tiny_space, trained, tiny_loader, rng):
        arch = tiny_space.sample(rng)
        used = recalibrate_bn(trained, arch, tiny_loader, num_batches=2)
        assert used == 2

    def test_capped_by_loader_length(self, tiny_space, trained, tiny_loader, rng):
        arch = tiny_space.sample(rng)
        used = recalibrate_bn(trained, arch, tiny_loader, num_batches=999)
        assert used == len(tiny_loader)

    def test_stats_change(self, tiny_space, trained, tiny_loader, rng):
        from repro.nn.layers.norm import BatchNorm2d

        arch = tiny_space.sample(rng)
        bn = next(m for m in trained.modules() if isinstance(m, BatchNorm2d))
        before = bn.running_mean.copy()
        recalibrate_bn(trained, arch, tiny_loader)
        assert not np.allclose(bn.running_mean, before)

    def test_momentum_restored(self, tiny_space, trained, tiny_loader, rng):
        from repro.nn.layers.norm import BatchNorm2d

        arch = tiny_space.sample(rng)
        bns = [m for m in trained.modules() if isinstance(m, BatchNorm2d)]
        momenta = [bn.momentum for bn in bns]
        recalibrate_bn(trained, arch, tiny_loader, momentum=0.9)
        assert [bn.momentum for bn in bns] == momenta

    def test_invalid_args_raise(self, tiny_space, trained, tiny_loader, rng):
        arch = tiny_space.sample(rng)
        with pytest.raises(ValueError):
            recalibrate_bn(trained, arch, tiny_loader, num_batches=0)
        with pytest.raises(ValueError):
            recalibrate_bn(trained, arch, tiny_loader, momentum=0.0)

    def test_recalibrated_eval_beats_stale_stats(self, tiny_space, trained,
                                                 tiny_loader, tiny_dataset, rng):
        """Eval-mode accuracy with recalibrated stats must be at least
        as good as with the cross-path running stats."""
        from repro.train.metrics import top_k_accuracy

        arch = tiny_space.sample(rng)
        trained.set_architecture(arch)
        trained.eval()
        stale = top_k_accuracy(
            trained(tiny_dataset.test_x), tiny_dataset.test_y
        )
        trained.train()
        fresh = eval_with_recalibrated_bn(
            trained, arch, tiny_loader,
            tiny_dataset.test_x, tiny_dataset.test_y,
        )
        assert fresh >= stale - 0.13  # never much worse, usually better
