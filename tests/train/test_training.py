"""Tests for the training harnesses (supernet + standalone)."""

import numpy as np
import pytest

from repro.data import BatchLoader
from repro.space import Architecture
from repro.supernet import Supernet
from repro.train import StandaloneTrainer, SupernetTrainer, TrainConfig, top_k_accuracy


class TestTopKAccuracy:
    def test_top1_exact(self):
        logits = np.array([[1.0, 2.0], [3.0, 0.0]])
        assert top_k_accuracy(logits, np.array([1, 0]), k=1) == 1.0
        assert top_k_accuracy(logits, np.array([0, 1]), k=1) == 0.0

    def test_top_k_widens(self):
        logits = np.array([[3.0, 2.0, 1.0, 0.0]])
        labels = np.array([2])
        assert top_k_accuracy(logits, labels, k=1) == 0.0
        assert top_k_accuracy(logits, labels, k=3) == 1.0

    def test_top5_at_least_top1(self):
        rng = np.random.default_rng(0)
        logits = rng.normal(size=(50, 10))
        labels = rng.integers(0, 10, size=50)
        t1 = top_k_accuracy(logits, labels, k=1)
        t5 = top_k_accuracy(logits, labels, k=5)
        assert t5 >= t1

    def test_invalid_k_raises(self):
        with pytest.raises(ValueError):
            top_k_accuracy(np.zeros((2, 3)), np.zeros(2, dtype=int), k=4)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            top_k_accuracy(np.zeros((0, 3)), np.zeros(0, dtype=int))

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            top_k_accuracy(np.zeros((2, 3)), np.zeros(3, dtype=int))


class TestSupernetTrainer:
    @pytest.fixture()
    def trainer(self, tiny_supernet, tiny_loader):
        return SupernetTrainer(
            tiny_supernet, tiny_loader, TrainConfig(base_lr=0.05, seed=0)
        )

    def test_training_reduces_loss(self, trainer, tiny_space):
        losses = trainer.train_epochs(tiny_space, epochs=6)
        assert losses[-1] < losses[0]

    def test_loss_history_grows(self, trainer, tiny_space, tiny_loader):
        trainer.train_epochs(tiny_space, epochs=2)
        assert len(trainer.loss_history) == 2 * len(tiny_loader)
        assert trainer.global_step == 2 * len(tiny_loader)

    def test_invalid_epochs_raises(self, trainer, tiny_space):
        with pytest.raises(ValueError):
            trainer.train_epochs(tiny_space, epochs=0)

    def test_tune_epochs_uses_constant_lr(self, trainer, tiny_space):
        losses = trainer.tune_epochs(tiny_space, epochs=1, lr=0.01)
        assert len(losses) == 1
        assert trainer.optimizer.lr == pytest.approx(0.01)

    def test_evaluate_arch_returns_fraction(self, trainer, tiny_space,
                                            tiny_dataset, rng):
        arch = tiny_space.sample(rng)
        acc = trainer.evaluate_arch(arch, tiny_dataset.test_x, tiny_dataset.test_y)
        assert 0.0 <= acc <= 1.0

    def test_supernet_accuracy_mean_of_samples(self, trainer, tiny_space,
                                               tiny_dataset):
        acc = trainer.supernet_accuracy(
            tiny_space, tiny_dataset.test_x, tiny_dataset.test_y,
            num_archs=4, seed=0,
        )
        assert 0.0 <= acc <= 1.0

    def test_training_respects_shrunk_space(self, tiny_supernet, tiny_loader,
                                            tiny_space):
        """Paths sampled during training must come from the given
        (possibly shrunk) space."""
        shrunk = tiny_space.fix_operator(3, 2)
        sampled = []
        original_set = tiny_supernet.set_architecture

        def spy(arch):
            sampled.append(arch)
            original_set(arch)

        tiny_supernet.set_architecture = spy
        trainer = SupernetTrainer(tiny_supernet, tiny_loader,
                                  TrainConfig(base_lr=0.01))
        trainer.train_epochs(shrunk, epochs=1)
        assert sampled and all(a.ops[3] == 2 for a in sampled)


class TestStandaloneTrainer:
    def test_loss_decreases(self, tiny_space, tiny_loader, rng):
        arch = Architecture.uniform(tiny_space.num_layers, op_index=0, factor=1.0)
        trainer = StandaloneTrainer(tiny_space, arch, tiny_loader,
                                    TrainConfig(base_lr=0.05), seed=0)
        losses = trainer.train(epochs=6, warmup_epochs=1)
        assert losses[-1] < losses[0]

    def test_learns_better_than_chance(self, tiny_space, tiny_dataset):
        loader = BatchLoader(tiny_dataset.train_x, tiny_dataset.train_y,
                             batch_size=8, seed=0)
        arch = Architecture.uniform(tiny_space.num_layers, op_index=0, factor=1.0)
        trainer = StandaloneTrainer(tiny_space, arch, loader,
                                    TrainConfig(base_lr=0.08), seed=0)
        trainer.train(epochs=10, warmup_epochs=1)
        acc = trainer.evaluate(tiny_dataset.train_x, tiny_dataset.train_y)
        assert acc > 1.5 / tiny_dataset.num_classes  # clearly above chance

    def test_invalid_epochs_raises(self, tiny_space, tiny_loader):
        arch = Architecture.uniform(tiny_space.num_layers)
        trainer = StandaloneTrainer(tiny_space, arch, tiny_loader)
        with pytest.raises(ValueError):
            trainer.train(epochs=0)

    def test_evaluate_topk(self, tiny_space, tiny_loader, tiny_dataset):
        arch = Architecture.uniform(tiny_space.num_layers)
        trainer = StandaloneTrainer(tiny_space, arch, tiny_loader)
        t1 = trainer.evaluate(tiny_dataset.test_x, tiny_dataset.test_y, k=1)
        t3 = trainer.evaluate(tiny_dataset.test_x, tiny_dataset.test_y, k=3)
        assert t3 >= t1


class TestChunkedEvaluation:
    def test_chunked_matches_whole_without_bn_batch_stats(
        self, tiny_space, tiny_loader, tiny_dataset, rng
    ):
        net = Supernet(tiny_space, seed=0)
        trainer = SupernetTrainer(net, tiny_loader, TrainConfig(base_lr=0.05))
        trainer.train_epochs(tiny_space, epochs=1)
        arch = tiny_space.sample(rng)
        whole = trainer.evaluate_arch(
            arch, tiny_dataset.test_x, tiny_dataset.test_y,
            bn_batch_stats=False,
        )
        chunked = trainer.evaluate_arch(
            arch, tiny_dataset.test_x, tiny_dataset.test_y,
            bn_batch_stats=False, chunk_size=5,
        )
        assert chunked == pytest.approx(whole)

    def test_invalid_chunk_raises(self, tiny_space, tiny_loader,
                                  tiny_dataset, rng):
        net = Supernet(tiny_space, seed=0)
        trainer = SupernetTrainer(net, tiny_loader)
        with pytest.raises(ValueError):
            trainer.evaluate_arch(
                tiny_space.sample(rng),
                tiny_dataset.test_x, tiny_dataset.test_y, chunk_size=0,
            )
