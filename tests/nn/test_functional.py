"""Tests for stateless tensor ops (im2col, softmax, one-hot)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn.functional import (
    col2im,
    conv_output_size,
    im2col,
    log_softmax,
    one_hot,
    pad_nchw,
    softmax,
)


class TestConvOutputSize:
    @pytest.mark.parametrize(
        "size,k,s,p,expected",
        [(8, 3, 1, 1, 8), (8, 3, 2, 1, 4), (8, 1, 1, 0, 8), (7, 7, 1, 3, 7),
         (32, 5, 2, 2, 16), (4, 4, 4, 0, 1)],
    )
    def test_known_values(self, size, k, s, p, expected):
        assert conv_output_size(size, k, s, p) == expected

    def test_invalid_raises(self):
        with pytest.raises(ValueError):
            conv_output_size(2, 5, 1, 0)


class TestPad:
    def test_zero_padding_is_identity(self):
        x = np.ones((1, 1, 3, 3))
        assert pad_nchw(x, 0) is x

    def test_padding_shape_and_zeros(self):
        x = np.ones((1, 2, 3, 3))
        p = pad_nchw(x, 2)
        assert p.shape == (1, 2, 7, 7)
        assert p[0, 0, 0, 0] == 0.0
        assert p[0, 0, 2, 2] == 1.0


class TestIm2Col:
    def test_identity_kernel(self):
        x = np.arange(16, dtype=np.float64).reshape(1, 1, 4, 4)
        cols, oh, ow = im2col(x, kernel=1, stride=1, padding=0)
        assert (oh, ow) == (4, 4)
        np.testing.assert_array_equal(cols.ravel(), x.ravel())

    def test_shapes(self):
        x = np.zeros((2, 3, 8, 8))
        cols, oh, ow = im2col(x, kernel=3, stride=2, padding=1)
        assert (oh, ow) == (4, 4)
        assert cols.shape == (2, 3 * 9, 16)

    def test_patch_content(self):
        x = np.arange(9, dtype=np.float64).reshape(1, 1, 3, 3)
        cols, _, _ = im2col(x, kernel=3, stride=1, padding=0)
        np.testing.assert_array_equal(cols[0, :, 0], x.ravel())

    def test_col2im_counts_overlaps(self):
        # Transposing ones through col2im counts patch coverage.
        x_shape = (1, 1, 4, 4)
        cols, oh, ow = im2col(np.zeros(x_shape), 3, 1, 1)
        back = col2im(np.ones_like(cols), x_shape, 3, 1, 1)
        # Interior pixels are covered by all 9 offsets.
        assert back[0, 0, 1, 1] == 9.0
        # The corner pixel is covered by only 4 patches.
        assert back[0, 0, 0, 0] == 4.0

    @settings(max_examples=20, deadline=None)
    @given(
        k=st.sampled_from([1, 3, 5]),
        stride=st.sampled_from([1, 2]),
        size=st.integers(min_value=6, max_value=10),
        seed=st.integers(min_value=0, max_value=100),
    )
    def test_adjointness(self, k, stride, size, seed):
        """col2im is the adjoint of im2col: <Ax, y> == <x, A^T y>."""
        rng = np.random.default_rng(seed)
        pad = k // 2
        x = rng.normal(size=(1, 2, size, size))
        cols, _, _ = im2col(x, k, stride, pad)
        y = rng.normal(size=cols.shape)
        lhs = float((cols * y).sum())
        back = col2im(y, x.shape, k, stride, pad)
        rhs = float((x * back).sum())
        assert lhs == pytest.approx(rhs, rel=1e-10)


class TestSoftmax:
    def test_rows_sum_to_one(self):
        rng = np.random.default_rng(0)
        s = softmax(rng.normal(size=(5, 7)), axis=1)
        np.testing.assert_allclose(s.sum(axis=1), np.ones(5))

    def test_stability_large_logits(self):
        s = softmax(np.array([[1000.0, 1000.0]]))
        np.testing.assert_allclose(s, [[0.5, 0.5]])

    def test_log_softmax_consistent(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(3, 4))
        np.testing.assert_allclose(log_softmax(x), np.log(softmax(x)))

    def test_shift_invariance(self):
        x = np.array([[1.0, 2.0, 3.0]])
        np.testing.assert_allclose(softmax(x), softmax(x + 100.0))


class TestOneHot:
    def test_basic(self):
        out = one_hot(np.array([0, 2]), 3)
        np.testing.assert_array_equal(out, [[1, 0, 0], [0, 0, 1]])

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError):
            one_hot(np.array([3]), 3)

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            one_hot(np.array([-1]), 3)

    def test_wrong_ndim_raises(self):
        with pytest.raises(ValueError):
            one_hot(np.zeros((2, 2), dtype=int), 3)
