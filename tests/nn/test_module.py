"""Tests for the Module/Parameter containers."""

import numpy as np
import pytest

from repro.nn import Linear, Module, Parameter, ReLU, Sequential


class TestParameter:
    def test_data_is_float64(self):
        p = Parameter(np.ones(3, dtype=np.float32))
        assert p.data.dtype == np.float64

    def test_grad_starts_none(self):
        assert Parameter(np.ones(3)).grad is None

    def test_accumulate_grad_creates_then_adds(self):
        p = Parameter(np.zeros(3))
        p.accumulate_grad(np.ones(3))
        p.accumulate_grad(np.ones(3) * 2)
        np.testing.assert_array_equal(p.grad, np.full(3, 3.0))

    def test_accumulate_does_not_alias_input(self):
        p = Parameter(np.zeros(2))
        g = np.ones(2)
        p.accumulate_grad(g)
        g[0] = 99.0
        assert p.grad[0] == 1.0

    def test_zero_grad(self):
        p = Parameter(np.zeros(2))
        p.accumulate_grad(np.ones(2))
        p.zero_grad()
        assert p.grad is None

    def test_shape_and_size(self):
        p = Parameter(np.zeros((2, 3)))
        assert p.shape == (2, 3)
        assert p.size == 6


class TestModuleDiscovery:
    def _model(self):
        rng = np.random.default_rng(0)
        return Sequential(Linear(4, 8, rng=rng), ReLU(), Linear(8, 2, rng=rng))

    def test_children_of_sequential(self):
        model = self._model()
        assert len(list(model.children())) == 3

    def test_modules_includes_self(self):
        model = self._model()
        mods = list(model.modules())
        assert mods[0] is model
        assert len(mods) == 4

    def test_parameters_count(self):
        model = self._model()
        # two Linears with weight+bias each
        assert len(list(model.parameters())) == 4

    def test_num_parameters(self):
        model = self._model()
        assert model.num_parameters() == 4 * 8 + 8 + 8 * 2 + 2

    def test_named_parameters_unique_names(self):
        model = self._model()
        names = [n for n, _ in model.named_parameters()]
        assert len(names) == len(set(names))

    def test_train_eval_propagates(self):
        model = self._model()
        model.eval()
        assert all(not m.training for m in model.modules())
        model.train()
        assert all(m.training for m in model.modules())

    def test_zero_grad_clears_all(self):
        model = self._model()
        for p in model.parameters():
            p.accumulate_grad(np.ones_like(p.data))
        model.zero_grad()
        assert all(p.grad is None for p in model.parameters())


class TestStateDict:
    def test_roundtrip(self):
        rng = np.random.default_rng(0)
        a = Sequential(Linear(3, 5, rng=rng))
        b = Sequential(Linear(3, 5, rng=np.random.default_rng(1)))
        b.load_state_dict(a.state_dict())
        x = rng.normal(size=(2, 3))
        np.testing.assert_allclose(a(x), b(x))

    def test_state_dict_copies(self):
        rng = np.random.default_rng(0)
        model = Sequential(Linear(3, 5, rng=rng))
        state = model.state_dict()
        for p in model.parameters():
            p.data += 1.0
        reloaded = model.state_dict()
        for key in state:
            assert not np.allclose(state[key], reloaded[key])

    def test_strict_missing_key_raises(self):
        rng = np.random.default_rng(0)
        model = Sequential(Linear(3, 5, rng=rng))
        with pytest.raises(KeyError):
            model.load_state_dict({}, strict=True)

    def test_strict_shape_mismatch_raises(self):
        rng = np.random.default_rng(0)
        model = Sequential(Linear(3, 5, rng=rng))
        state = {n: np.zeros((1, 1)) for n, _ in model.named_parameters()}
        with pytest.raises(ValueError):
            model.load_state_dict(state, strict=True)

    def test_non_strict_skips_mismatches(self):
        rng = np.random.default_rng(0)
        model = Sequential(Linear(3, 5, rng=rng))
        before = model.state_dict()
        model.load_state_dict({"layers.0.weight": np.zeros((1, 1))}, strict=False)
        after = model.state_dict()
        for key in before:
            np.testing.assert_array_equal(before[key], after[key])


class TestSequential:
    def test_forward_order(self):
        class PlusOne(Module):
            def forward(self, x):
                return x + 1

            def backward(self, g):
                return g

        class TimesTwo(Module):
            def forward(self, x):
                return x * 2

            def backward(self, g):
                return g * 2

        model = Sequential(PlusOne(), TimesTwo())
        np.testing.assert_array_equal(model(np.zeros(2)), np.full(2, 2.0))

    def test_backward_reverses(self):
        class TimesTwo(Module):
            def forward(self, x):
                return x * 2

            def backward(self, g):
                return g * 2

        model = Sequential(TimesTwo(), TimesTwo())
        np.testing.assert_array_equal(
            model.backward(np.ones(3)), np.full(3, 4.0)
        )

    def test_len_getitem_append(self):
        model = Sequential(ReLU())
        model.append(ReLU())
        assert len(model) == 2
        assert isinstance(model[1], ReLU)

    def test_base_module_forward_raises(self):
        with pytest.raises(NotImplementedError):
            Module().forward(np.zeros(1))

    def test_base_module_backward_raises(self):
        with pytest.raises(NotImplementedError):
            Module().backward(np.zeros(1))
