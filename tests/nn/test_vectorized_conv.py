"""Vectorized grouped convolution vs. the per-group loop reference.

The batched-GEMM rewrite of :class:`Conv2d` must be numerically
interchangeable with the per-group Python loop it replaced
(``grouped_conv2d_loop`` / ``grouped_conv2d_loop_backward``) for every
grouping the search space uses: dense (g=1), grouped (g=C/2), and
depthwise (g=C).
"""

import numpy as np
import pytest

from repro.nn.functional import (
    Im2colWorkspace,
    grouped_conv2d_loop,
    grouped_conv2d_loop_backward,
    im2col,
)
from repro.nn.layers.conv import Conv2d

TOL = 1e-6


def _run_both(c_in, c_out, groups, kernel, stride, n=2, hw=12, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((n, c_in, hw, hw))
    conv = Conv2d(
        c_in, c_out, kernel, stride=stride, padding=kernel // 2,
        groups=groups, rng=rng,
    )
    conv.train()
    out_vec = conv.forward(x)
    grad_out = rng.standard_normal(out_vec.shape)
    gx_vec = conv.backward(grad_out)
    gw_vec = conv.weight.grad

    out_loop, cols = grouped_conv2d_loop(
        x, conv.weight.data, stride, kernel // 2, groups
    )
    gx_loop, gw_loop = grouped_conv2d_loop_backward(
        grad_out, cols, conv.weight.data, x.shape, stride, kernel // 2, groups
    )
    return (out_vec, gx_vec, gw_vec), (out_loop, gx_loop, gw_loop)


@pytest.mark.parametrize("kernel", [3, 5, 7])
@pytest.mark.parametrize("stride", [1, 2])
@pytest.mark.parametrize("groups_of", ["dense", "half", "depthwise"])
def test_forward_backward_matches_loop_reference(kernel, stride, groups_of):
    c = 8
    groups = {"dense": 1, "half": c // 2, "depthwise": c}[groups_of]
    (out_v, gx_v, gw_v), (out_l, gx_l, gw_l) = _run_both(
        c, c, groups, kernel, stride
    )
    np.testing.assert_allclose(out_v, out_l, atol=TOL, rtol=0)
    np.testing.assert_allclose(gx_v, gx_l, atol=TOL, rtol=0)
    np.testing.assert_allclose(gw_v, gw_l, atol=TOL, rtol=0)


def test_grouped_channel_expansion_matches():
    """cout != cin exercises the (cout_g != cin_g) reshape paths."""
    (out_v, gx_v, gw_v), (out_l, gx_l, gw_l) = _run_both(
        c_in=8, c_out=16, groups=4, kernel=3, stride=1
    )
    np.testing.assert_allclose(out_v, out_l, atol=TOL, rtol=0)
    np.testing.assert_allclose(gx_v, gx_l, atol=TOL, rtol=0)
    np.testing.assert_allclose(gw_v, gw_l, atol=TOL, rtol=0)


class TestIm2colWorkspace:
    def test_buffer_reused_for_same_geometry(self):
        ws = Im2colWorkspace()
        a = ws.get((2, 4, 8, 8), 3, 1, 1, np.float64)
        b = ws.get((2, 4, 8, 8), 3, 1, 1, np.float64)
        assert a is b
        assert len(ws) == 1

    def test_distinct_geometries_get_distinct_buffers(self):
        ws = Im2colWorkspace()
        a = ws.get((2, 4, 8, 8), 3, 1, 1, np.float64)
        b = ws.get((2, 4, 8, 8), 3, 2, 1, np.float64)
        c = ws.get((1, 4, 8, 8), 3, 1, 1, np.float64)
        assert a is not b and a is not c
        assert len(ws) == 3
        ws.clear()
        assert len(ws) == 0

    def test_im2col_fills_supplied_buffer(self):
        rng = np.random.default_rng(3)
        x = rng.standard_normal((2, 3, 8, 8))
        ws = Im2colWorkspace()
        buf = ws.get(x.shape, 3, 1, 1, x.dtype)
        cols, oh, ow = im2col(x, 3, 1, 1, out=buf)
        ref, _, _ = im2col(x, 3, 1, 1)
        assert cols.base is buf or cols is buf
        np.testing.assert_array_equal(cols, ref)

    def test_im2col_ignores_mismatched_buffer(self):
        rng = np.random.default_rng(4)
        x = rng.standard_normal((2, 3, 8, 8))
        wrong = np.empty((1, 3, 3, 3, 8, 8))
        cols, _, _ = im2col(x, 3, 1, 1, out=wrong)
        ref, _, _ = im2col(x, 3, 1, 1)
        np.testing.assert_array_equal(cols, ref)

    def test_conv_layer_reuses_workspace_across_steps(self):
        rng = np.random.default_rng(5)
        conv = Conv2d(4, 4, 3, padding=1, groups=4, rng=rng)
        conv.train()
        x = rng.standard_normal((2, 4, 8, 8))
        out1 = conv.forward(x)
        conv.backward(np.ones_like(out1))
        assert len(conv._workspace) == 1
        out2 = conv.forward(x)
        conv.backward(np.ones_like(out2))
        assert len(conv._workspace) == 1  # same geometry -> same buffer


def test_eval_mode_does_not_cache_columns():
    rng = np.random.default_rng(6)
    conv = Conv2d(4, 4, 3, padding=1, rng=rng)
    conv.eval()
    conv.forward(rng.standard_normal((1, 4, 8, 8)))
    with pytest.raises(RuntimeError, match="without a cached training forward"):
        conv.backward(np.zeros((1, 4, 8, 8)))
