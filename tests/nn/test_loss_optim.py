"""Tests for loss, optimizer, gradient clipping, and LR schedules."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import (
    ConstantSchedule,
    CosineSchedule,
    CrossEntropyLoss,
    Parameter,
    SGD,
    WarmupCosineSchedule,
    clip_grad_norm,
)
from tests.helpers import numerical_gradient


class TestCrossEntropy:
    def test_uniform_logits_loss(self):
        crit = CrossEntropyLoss()
        loss = crit(np.zeros((2, 4)), np.array([0, 1]))
        assert loss == pytest.approx(math.log(4))

    def test_perfect_prediction_low_loss(self):
        crit = CrossEntropyLoss()
        logits = np.array([[100.0, 0.0], [0.0, 100.0]])
        assert crit(logits, np.array([0, 1])) < 1e-6

    def test_gradient_matches_numerical(self):
        rng = np.random.default_rng(0)
        logits = rng.normal(size=(3, 5))
        labels = np.array([0, 2, 4])
        crit = CrossEntropyLoss(label_smoothing=0.1)

        def f(lv):
            return CrossEntropyLoss(label_smoothing=0.1)(lv, labels)

        crit(logits, labels)
        analytic = crit.backward()
        numeric = numerical_gradient(f, logits.copy())
        np.testing.assert_allclose(analytic, numeric, atol=1e-8)

    def test_gradient_rows_sum_to_zero(self):
        rng = np.random.default_rng(0)
        crit = CrossEntropyLoss()
        crit(rng.normal(size=(4, 6)), np.array([0, 1, 2, 3]))
        grad = crit.backward()
        np.testing.assert_allclose(grad.sum(axis=1), 0.0, atol=1e-12)

    def test_label_smoothing_increases_optimal_loss(self):
        logits = np.array([[50.0, 0.0]])
        labels = np.array([0])
        plain = CrossEntropyLoss()(logits, labels)
        smoothed = CrossEntropyLoss(label_smoothing=0.2)(logits, labels)
        assert smoothed > plain

    def test_backward_before_forward_raises(self):
        with pytest.raises(RuntimeError):
            CrossEntropyLoss().backward()

    def test_invalid_smoothing_raises(self):
        with pytest.raises(ValueError):
            CrossEntropyLoss(label_smoothing=1.0)

    def test_non_2d_logits_raises(self):
        with pytest.raises(ValueError):
            CrossEntropyLoss()(np.zeros(3), np.array([0]))


class TestSGD:
    def test_plain_sgd_step(self):
        p = Parameter(np.array([1.0]))
        opt = SGD([p], lr=0.1, momentum=0.0)
        p.accumulate_grad(np.array([2.0]))
        opt.step()
        np.testing.assert_allclose(p.data, [0.8])

    def test_momentum_accumulates(self):
        p = Parameter(np.array([0.0]))
        opt = SGD([p], lr=1.0, momentum=0.5)
        for _ in range(2):
            p.zero_grad()
            p.accumulate_grad(np.array([1.0]))
            opt.step()
        # v1 = 1 -> p=-1; v2 = 0.5 + 1 = 1.5 -> p=-2.5
        np.testing.assert_allclose(p.data, [-2.5])

    def test_weight_decay_honours_flag(self):
        decayed = Parameter(np.array([1.0]))
        exempt = Parameter(np.array([1.0]), weight_decay=False)
        opt = SGD([decayed, exempt], lr=1.0, momentum=0.0, weight_decay=0.1)
        for p in (decayed, exempt):
            p.accumulate_grad(np.array([0.0]))
        opt.step()
        np.testing.assert_allclose(decayed.data, [0.9])
        np.testing.assert_allclose(exempt.data, [1.0])

    def test_none_grad_skipped(self):
        p = Parameter(np.array([1.0]))
        opt = SGD([p], lr=0.5)
        opt.step()  # no grad accumulated
        np.testing.assert_allclose(p.data, [1.0])

    def test_zero_grad(self):
        p = Parameter(np.array([1.0]))
        opt = SGD([p], lr=0.5)
        p.accumulate_grad(np.array([1.0]))
        opt.zero_grad()
        assert p.grad is None

    def test_minimizes_quadratic(self):
        p = Parameter(np.array([5.0]))
        opt = SGD([p], lr=0.1, momentum=0.9)
        for _ in range(300):
            p.zero_grad()
            p.accumulate_grad(2 * p.data)  # d/dp p^2
            opt.step()
        assert abs(p.data[0]) < 1e-3  # heavy-ball rate ~sqrt(momentum)

    def test_state_dict_roundtrip(self):
        p = Parameter(np.array([1.0]))
        opt = SGD([p], lr=0.1, momentum=0.9)
        p.accumulate_grad(np.array([1.0]))
        opt.step()
        state = opt.state_dict()
        opt2 = SGD([p], lr=0.5, momentum=0.9)
        opt2.load_state_dict(state)
        assert opt2.lr == 0.1
        np.testing.assert_allclose(opt2._velocity[0], opt._velocity[0])

    def test_empty_params_raises(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)

    def test_invalid_lr_raises(self):
        with pytest.raises(ValueError):
            SGD([Parameter(np.zeros(1))], lr=0.0)


class TestClipGradNorm:
    def test_no_clip_below_threshold(self):
        p = Parameter(np.zeros(4))
        p.accumulate_grad(np.full(4, 0.5))  # norm 1.0
        norm = clip_grad_norm([p], max_norm=5.0)
        assert norm == pytest.approx(1.0)
        np.testing.assert_allclose(p.grad, 0.5)

    def test_clips_above_threshold(self):
        p = Parameter(np.zeros(4))
        p.accumulate_grad(np.full(4, 10.0))
        clip_grad_norm([p], max_norm=1.0)
        assert np.linalg.norm(p.grad) == pytest.approx(1.0, rel=1e-6)

    def test_global_norm_across_params(self):
        a = Parameter(np.zeros(1))
        b = Parameter(np.zeros(1))
        a.accumulate_grad(np.array([3.0]))
        b.accumulate_grad(np.array([4.0]))
        norm = clip_grad_norm([a, b], max_norm=100.0)
        assert norm == pytest.approx(5.0)

    def test_empty_returns_zero(self):
        assert clip_grad_norm([Parameter(np.zeros(1))], 1.0) == 0.0

    def test_invalid_max_norm_raises(self):
        with pytest.raises(ValueError):
            clip_grad_norm([], 0.0)


class TestSchedules:
    def test_constant(self):
        s = ConstantSchedule(0.01)
        assert s.lr_at(0) == s.lr_at(1000) == 0.01

    def test_cosine_endpoints(self):
        s = CosineSchedule(0.5, total_steps=100)
        assert s.lr_at(0) == pytest.approx(0.5)
        assert s.lr_at(100) == pytest.approx(0.0, abs=1e-12)
        assert s.lr_at(50) == pytest.approx(0.25)

    def test_cosine_monotone_decreasing(self):
        s = CosineSchedule(0.5, total_steps=50)
        lrs = [s.lr_at(i) for i in range(51)]
        assert all(a >= b for a, b in zip(lrs, lrs[1:]))

    def test_cosine_min_lr(self):
        s = CosineSchedule(0.5, total_steps=10, min_lr=0.1)
        assert s.lr_at(10) == pytest.approx(0.1)

    def test_warmup_ramps_linearly(self):
        s = WarmupCosineSchedule(1.0, total_steps=20, warmup_steps=10)
        assert s.lr_at(0) == pytest.approx(0.1)
        assert s.lr_at(4) == pytest.approx(0.5)
        assert s.lr_at(9) == pytest.approx(1.0)

    def test_warmup_then_cosine(self):
        s = WarmupCosineSchedule(1.0, total_steps=20, warmup_steps=10)
        assert s.lr_at(10) == pytest.approx(1.0)
        assert s.lr_at(20) == pytest.approx(0.0, abs=1e-12)

    def test_invalid_warmup_raises(self):
        with pytest.raises(ValueError):
            WarmupCosineSchedule(1.0, total_steps=10, warmup_steps=10)

    @settings(max_examples=25, deadline=None)
    @given(
        base=st.floats(min_value=1e-4, max_value=1.0),
        total=st.integers(min_value=2, max_value=500),
        step=st.integers(min_value=-10, max_value=600),
    )
    def test_cosine_bounded_property(self, base, total, step):
        s = CosineSchedule(base, total_steps=total)
        assert 0.0 <= s.lr_at(step) <= base
