"""Eval-mode forwards must retain no per-call backward caches.

The no-grad contract of the fast path (``docs/performance.md``): after
``module.eval()``, a forward allocates nothing that survives the call —
no im2col columns, no cached activations, masks, or shapes. These tests
audit every layer in :mod:`repro.nn` plus the supernet blocks, and the
``eval_no_grad`` / ``assert_no_eval_caches`` helpers themselves.
"""

import numpy as np
import pytest

from repro.nn import (
    AvgPool2d,
    BatchNorm2d,
    ChannelMask,
    ChannelShuffle,
    Conv2d,
    GlobalAvgPool2d,
    HSwish,
    Linear,
    MaxPool2d,
    ReLU,
    Sigmoid,
    assert_no_eval_caches,
    eval_no_grad,
    find_eval_caches,
)
from repro.supernet import ShuffleV2Block, ShuffleXceptionBlock

RNG = np.random.default_rng(0)

# (factory, example input) for every cache-carrying repro.nn layer.
LAYER_CASES = [
    ("conv", lambda: Conv2d(4, 8, 3, padding=1, rng=np.random.default_rng(0)),
     lambda: RNG.standard_normal((2, 4, 6, 6))),
    ("depthwise", lambda: Conv2d(4, 4, 3, padding=1, groups=4,
                                 rng=np.random.default_rng(0)),
     lambda: RNG.standard_normal((2, 4, 6, 6))),
    ("linear", lambda: Linear(6, 3, rng=np.random.default_rng(0)),
     lambda: RNG.standard_normal((5, 6))),
    ("batchnorm", lambda: BatchNorm2d(4),
     lambda: RNG.standard_normal((2, 4, 6, 6))),
    ("relu", ReLU, lambda: RNG.standard_normal((2, 4, 6, 6))),
    ("hswish", HSwish, lambda: RNG.standard_normal((2, 4, 6, 6))),
    ("sigmoid", Sigmoid, lambda: RNG.standard_normal((2, 4, 6, 6))),
    ("maxpool", lambda: MaxPool2d(2), lambda: RNG.standard_normal((2, 4, 6, 6))),
    ("avgpool", lambda: AvgPool2d(2), lambda: RNG.standard_normal((2, 4, 6, 6))),
    ("gap", GlobalAvgPool2d, lambda: RNG.standard_normal((2, 4, 6, 6))),
    ("shuffle", lambda: ChannelShuffle(2),
     lambda: RNG.standard_normal((2, 4, 6, 6))),
    ("mask", lambda: ChannelMask(4), lambda: RNG.standard_normal((2, 4, 6, 6))),
]

BLOCK_CASES = [
    ("shufflev2", lambda: ShuffleV2Block(
        8, 8, kernel_size=3, stride=1, rng=np.random.default_rng(0))),
    ("xception", lambda: ShuffleXceptionBlock(
        8, 8, stride=1, rng=np.random.default_rng(0))),
]


@pytest.mark.parametrize(
    "factory,make_x", [(f, x) for _, f, x in LAYER_CASES],
    ids=[name for name, _, _ in LAYER_CASES],
)
def test_eval_forward_retains_no_caches(factory, make_x):
    layer = factory()
    x = make_x()
    # A training forward may cache; an eval forward afterwards must not
    # only avoid caching but also leave no stale training cache behind.
    layer.train()
    layer(x)
    layer.eval()
    layer(x)
    assert find_eval_caches(layer) == []
    assert_no_eval_caches(layer)


# ChannelShuffle and ChannelMask have stateless backwards (a fixed
# permutation / a fixed mask) — they need no cached forward, so they are
# exempt from the raise-on-eval-backward contract.
STATELESS_BACKWARD = {"shuffle", "mask"}


@pytest.mark.parametrize(
    "factory,make_x",
    [(f, x) for n, f, x in LAYER_CASES if n not in STATELESS_BACKWARD],
    ids=[n for n, _, _ in LAYER_CASES if n not in STATELESS_BACKWARD],
)
def test_eval_backward_raises_without_training_cache(factory, make_x):
    layer = factory()
    x = make_x()
    layer.eval()
    y = layer(x)
    with pytest.raises(RuntimeError, match="training forward"):
        layer.backward(np.ones_like(np.asarray(y, dtype=float)))


@pytest.mark.parametrize(
    "factory", [f for _, f in BLOCK_CASES], ids=[n for n, _ in BLOCK_CASES]
)
def test_supernet_blocks_retain_no_eval_caches(factory):
    block = factory()
    x = RNG.standard_normal((2, 8, 8, 8))
    block.train()
    block(x)
    block.eval()
    block(x)
    assert find_eval_caches(block) == []


@pytest.mark.parametrize(
    "factory", [f for _, f in BLOCK_CASES], ids=[n for n, _ in BLOCK_CASES]
)
def test_supernet_block_backward_requires_training_forward(factory):
    block = factory()
    x = RNG.standard_normal((2, 8, 8, 8))
    block.eval()
    y = block(x)
    with pytest.raises(RuntimeError, match="training forward"):
        block.backward(np.ones_like(y))


def test_find_eval_caches_reports_offenders():
    layer = Conv2d(2, 2, 3, padding=1, rng=np.random.default_rng(0))
    layer.train()
    layer(RNG.standard_normal((1, 2, 4, 4)))
    offenders = find_eval_caches(layer)
    assert offenders == ["Conv2d._cache"]
    with pytest.raises(AssertionError, match="Conv2d._cache"):
        assert_no_eval_caches(layer)


def test_eval_no_grad_restores_exact_mode_mix(tiny_supernet):
    # Put the net into a mixed train/eval state and check the context
    # manager restores each module's flag exactly.
    tiny_supernet.train()
    some = list(tiny_supernet.modules())[3]
    some.training = False
    before = [m.training for m in tiny_supernet.modules()]
    with eval_no_grad(tiny_supernet):
        assert all(not m.training for m in tiny_supernet.modules())
    assert [m.training for m in tiny_supernet.modules()] == before


def test_eval_no_grad_restores_on_exception(tiny_supernet):
    tiny_supernet.train()
    with pytest.raises(RuntimeError, match="boom"):
        with eval_no_grad(tiny_supernet):
            raise RuntimeError("boom")
    assert all(m.training for m in tiny_supernet.modules())


def test_supernet_eval_forward_is_cache_free(tiny_supernet, tiny_space):
    rng = np.random.default_rng(4)
    arch = tiny_space.sample(rng)
    images = rng.standard_normal((2, 3, 16, 16))
    tiny_supernet.set_architecture(arch)
    # Training forward populates caches throughout the active path...
    tiny_supernet.train()
    tiny_supernet(images)
    assert find_eval_caches(tiny_supernet) != []
    # ...and a single eval forward scrubs every one of them.
    tiny_supernet.eval()
    tiny_supernet(images)
    assert_no_eval_caches(tiny_supernet)
