"""Convolution layer tests: correctness against a naive reference,
gradient checks, and grouped/depthwise behaviour."""

import numpy as np
import pytest

from repro.nn import Conv2d
from tests.helpers import check_layer_gradients


def naive_conv2d(x, weight, stride, padding, groups):
    """Direct-loop reference convolution (NCHW)."""
    n, cin, h, w = x.shape
    cout, cin_g, k, _ = weight.shape
    xp = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    oh = (h + 2 * padding - k) // stride + 1
    ow = (w + 2 * padding - k) // stride + 1
    out = np.zeros((n, cout, oh, ow))
    cout_g = cout // groups
    for b in range(n):
        for oc in range(cout):
            g = oc // cout_g
            for i in range(oh):
                for j in range(ow):
                    patch = xp[
                        b,
                        g * cin_g : (g + 1) * cin_g,
                        i * stride : i * stride + k,
                        j * stride : j * stride + k,
                    ]
                    out[b, oc, i, j] = (patch * weight[oc]).sum()
    return out


class TestConvForward:
    @pytest.mark.parametrize("k,stride,pad,groups", [
        (1, 1, 0, 1),
        (3, 1, 1, 1),
        (3, 2, 1, 1),
        (5, 1, 2, 1),
        (3, 1, 1, 2),
        (3, 2, 1, 4),  # depthwise with cin=4
    ])
    def test_matches_naive(self, k, stride, pad, groups):
        rng = np.random.default_rng(0)
        cin, cout = 4, 6 if groups == 1 else 4
        conv = Conv2d(cin, cout, k, stride=stride, padding=pad,
                      groups=groups, rng=rng)
        x = rng.normal(size=(2, cin, 8, 8))
        expected = naive_conv2d(x, conv.weight.data, stride, pad, groups)
        np.testing.assert_allclose(conv(x), expected, atol=1e-10)

    def test_bias_added(self):
        rng = np.random.default_rng(0)
        conv = Conv2d(2, 3, 1, bias=True, rng=rng)
        conv.weight.data[:] = 0.0
        conv.bias.data[:] = [1.0, 2.0, 3.0]
        out = conv(np.zeros((1, 2, 4, 4)))
        np.testing.assert_allclose(out[0, :, 0, 0], [1.0, 2.0, 3.0])

    def test_wrong_channels_raises(self):
        conv = Conv2d(3, 4, 3, padding=1, rng=np.random.default_rng(0))
        with pytest.raises(ValueError):
            conv(np.zeros((1, 5, 8, 8)))

    def test_indivisible_groups_raises(self):
        with pytest.raises(ValueError):
            Conv2d(3, 4, 3, groups=2, rng=np.random.default_rng(0))

    def test_invalid_kernel_raises(self):
        with pytest.raises(ValueError):
            Conv2d(3, 4, 0, rng=np.random.default_rng(0))

    def test_depthwise_is_per_channel(self):
        rng = np.random.default_rng(0)
        conv = Conv2d(3, 3, 3, padding=1, groups=3, rng=rng)
        x = np.zeros((1, 3, 6, 6))
        x[0, 1] = 1.0  # only channel 1 carries signal
        out = conv(x)
        assert np.allclose(out[0, 0], 0.0)
        assert np.allclose(out[0, 2], 0.0)
        assert not np.allclose(out[0, 1], 0.0)


class TestConvBackward:
    def test_gradients_dense(self):
        rng = np.random.default_rng(0)
        conv = Conv2d(2, 3, 3, stride=1, padding=1, bias=True, rng=rng)
        x = rng.normal(size=(2, 2, 5, 5))
        check_layer_gradients(conv, x)

    def test_gradients_strided(self):
        rng = np.random.default_rng(0)
        conv = Conv2d(2, 2, 3, stride=2, padding=1, rng=rng)
        x = rng.normal(size=(1, 2, 6, 6))
        check_layer_gradients(conv, x)

    def test_gradients_depthwise(self):
        rng = np.random.default_rng(0)
        conv = Conv2d(3, 3, 3, stride=1, padding=1, groups=3, rng=rng)
        x = rng.normal(size=(1, 3, 5, 5))
        check_layer_gradients(conv, x)

    def test_backward_without_forward_raises(self):
        conv = Conv2d(2, 2, 3, rng=np.random.default_rng(0))
        with pytest.raises(RuntimeError):
            conv.backward(np.zeros((1, 2, 4, 4)))

    def test_eval_forward_does_not_cache(self):
        rng = np.random.default_rng(0)
        conv = Conv2d(2, 2, 3, padding=1, rng=rng)
        conv.eval()
        conv(rng.normal(size=(1, 2, 4, 4)))
        with pytest.raises(RuntimeError):
            conv.backward(np.zeros((1, 2, 4, 4)))

    def test_grad_accumulates_across_backwards(self):
        rng = np.random.default_rng(0)
        conv = Conv2d(2, 2, 3, padding=1, rng=rng)
        x = rng.normal(size=(1, 2, 4, 4))
        g = rng.normal(size=(1, 2, 4, 4))
        conv(x)
        conv.backward(g)
        first = conv.weight.grad.copy()
        conv(x)
        conv.backward(g)
        np.testing.assert_allclose(conv.weight.grad, 2 * first)
