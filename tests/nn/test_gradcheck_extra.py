"""Extended gradient checks: parameters of composite blocks, odd shapes.

The cheap per-layer checks in test_conv/test_layers cover the building
blocks; these exercise whole ShuffleNetV2 blocks *including parameter
gradients*, plus convolution shapes the basic tests skip.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import Conv2d, Sequential
from repro.nn.functional import conv_output_size
from repro.supernet import ShuffleV2Block, ShuffleXceptionBlock, SkipOp
from tests.helpers import check_layer_gradients


class TestBlockParameterGradients:
    def test_shuffle_block_stride1_params(self):
        rng = np.random.default_rng(0)
        block = ShuffleV2Block(4, 4, kernel_size=3, stride=1, rng=rng)
        x = rng.normal(size=(2, 4, 4, 4))
        check_layer_gradients(block, x, rtol=2e-3, check_params=True)

    def test_shuffle_block_stride2_params(self):
        rng = np.random.default_rng(1)
        block = ShuffleV2Block(2, 4, kernel_size=3, stride=2, rng=rng)
        x = rng.normal(size=(2, 2, 4, 4))
        check_layer_gradients(block, x, rtol=2e-3, check_params=True)

    def test_xception_block_params(self):
        rng = np.random.default_rng(2)
        block = ShuffleXceptionBlock(4, 4, stride=1, rng=rng)
        x = rng.normal(size=(1, 4, 4, 4))
        check_layer_gradients(block, x, rtol=2e-3, check_params=True)

    def test_skip_projection_params(self):
        rng = np.random.default_rng(3)
        block = SkipOp(2, 4, stride=2, rng=rng)
        x = rng.normal(size=(2, 2, 4, 4))
        check_layer_gradients(block, x, rtol=2e-3, check_params=True)


class TestConvOddShapes:
    def test_kernel_7(self):
        rng = np.random.default_rng(0)
        conv = Conv2d(2, 2, 7, stride=1, padding=3, rng=rng)
        x = rng.normal(size=(1, 2, 8, 8))
        check_layer_gradients(conv, x)

    def test_kernel_5_stride_2(self):
        rng = np.random.default_rng(0)
        conv = Conv2d(2, 3, 5, stride=2, padding=2, rng=rng)
        x = rng.normal(size=(1, 2, 8, 8))
        check_layer_gradients(conv, x)

    def test_grouped_non_depthwise(self):
        rng = np.random.default_rng(0)
        conv = Conv2d(4, 6, 3, padding=1, groups=2, rng=rng)
        x = rng.normal(size=(1, 4, 5, 5))
        check_layer_gradients(conv, x)

    def test_chained_convs_backprop(self):
        """Gradient flows through a stack (integration of backward chaining)."""
        rng = np.random.default_rng(0)
        model = Sequential(
            Conv2d(2, 4, 3, padding=1, rng=rng),
            Conv2d(4, 2, 1, rng=rng),
        )
        x = rng.normal(size=(2, 2, 5, 5))
        check_layer_gradients(model, x, rtol=1e-3)

    @settings(max_examples=25, deadline=None)
    @given(
        size=st.integers(min_value=4, max_value=12),
        k=st.sampled_from([1, 3, 5]),
        stride=st.sampled_from([1, 2]),
        cin=st.integers(min_value=1, max_value=6),
        cout=st.integers(min_value=1, max_value=6),
    )
    def test_output_shape_property(self, size, k, stride, cin, cout):
        rng = np.random.default_rng(0)
        pad = k // 2
        conv = Conv2d(cin, cout, k, stride=stride, padding=pad, rng=rng)
        out = conv(np.zeros((1, cin, size, size)))
        expected = conv_output_size(size, k, stride, pad)
        assert out.shape == (1, cout, expected, expected)
