"""Int8 kernels, the shared quantization grid, and the fidelity gate."""

import numpy as np
import pytest

from repro.deploy.quantize import fake_quantize_array
from repro.nn.quantized import (
    INT8_EXACT_ACCUM_DEPTH,
    QuantizedTensor,
    int8_conv_gemm,
    int8_linear_gemm,
    kendall_tau,
    quantize_activation,
    quantize_weight,
    ranking_fidelity,
    symmetric_scales,
)


class TestSymmetricScales:
    def test_per_tensor_scale(self):
        x = np.array([-2.54, 1.0, 0.5])
        scale = symmetric_scales(x, bits=8, per_channel_axis=-1)
        assert scale.ndim == 0
        assert scale == pytest.approx(2.54 / 127)

    def test_per_channel_scales(self):
        w = np.stack([np.full((3, 3), 1.27), np.full((3, 3), 0.254)])
        scales = symmetric_scales(w, bits=8, per_channel_axis=0)
        assert scales.shape == (2,)
        np.testing.assert_allclose(scales, [1.27 / 127, 0.254 / 127])

    def test_zero_slice_gets_unit_scale(self):
        w = np.zeros((2, 4))
        w[1] = 3.0
        scales = symmetric_scales(w, per_channel_axis=0)
        assert scales[0] == 1.0

    def test_rejects_bad_bits(self):
        with pytest.raises(ValueError):
            symmetric_scales(np.ones(3), bits=1)

    def test_matches_deploy_grid(self):
        # The deployment fake-quantizer and the eval fast path must land
        # on the identical per-channel grid: one source of scales.
        rng = np.random.default_rng(0)
        w = rng.standard_normal((8, 4, 3, 3))
        qw = quantize_weight(w)
        np.testing.assert_array_equal(
            qw.dequantize(), fake_quantize_array(w, bits=8, per_channel_axis=0)
        )


class TestQuantize:
    def test_weight_roundtrip_error_bounded(self):
        rng = np.random.default_rng(1)
        w = rng.standard_normal((6, 5))
        qw = quantize_weight(w)
        assert isinstance(qw, QuantizedTensor)
        assert qw.q.dtype == np.float32
        # Codes are integers on the int8 grid.
        np.testing.assert_array_equal(qw.q, np.round(qw.q))
        assert np.abs(qw.q).max() <= 127
        # Per-channel rounding error is at most half a step.
        err = np.abs(qw.dequantize() - w)
        assert (err <= 0.5 * qw.scale[:, None] + 1e-12).all()

    def test_activation_clips_to_grid(self):
        x = np.array([-300.0, 0.0, 1.0, 300.0])
        qx = quantize_activation(x)
        assert np.abs(qx.q).max() <= 127

    def test_activation_weak_scalar_keeps_float32(self):
        # The dynamic scale must be a python float so float32 inputs do
        # not get promoted to float64 (NEP 50 weak scalars).
        qx = quantize_activation(np.ones(4, dtype=np.float32))
        assert isinstance(qx.scale, float)
        assert qx.q.dtype == np.float32


class TestIntGemms:
    def test_linear_gemm_exact_on_grid(self):
        # With both operands already integer grids, the float32 sgemm
        # must be *exact*: compare against int64 arithmetic.
        rng = np.random.default_rng(2)
        w = rng.standard_normal((7, 50))
        x = rng.standard_normal((4, 50))
        qw = quantize_weight(w)
        qx = quantize_activation(x)
        out = int8_linear_gemm(x, qw)
        acc = qx.q.astype(np.int64) @ qw.q.astype(np.int64).T
        expected = acc.astype(np.float64) * (
            qx.scale * np.asarray(qw.scale)
        )[None, :]
        np.testing.assert_array_equal(out, expected)

    def test_conv_gemm_exact_on_grid(self):
        rng = np.random.default_rng(3)
        g, cout_g, ckk, ohw, n = 2, 3, 18, 9, 2
        w = rng.standard_normal((g * cout_g, 2, 3, 3))
        cols = rng.standard_normal((n, g * ckk, ohw))
        qw = quantize_weight(w)
        qx = quantize_activation(cols)
        out = int8_conv_gemm(cols, qw, groups=g)
        qcols = qx.q.astype(np.int64).reshape(n, g, ckk, ohw)
        qwm = qw.q.astype(np.int64).reshape(g, cout_g, ckk)
        acc = np.matmul(qwm[None], qcols)
        wscale = np.asarray(qw.scale).reshape(g, cout_g)
        expected = acc.astype(np.float64) * (qx.scale * wscale)[None, :, :, None]
        np.testing.assert_array_equal(out, expected)

    def test_reduction_depth_guard(self):
        deep = INT8_EXACT_ACCUM_DEPTH + 1
        qw = quantize_weight(np.ones((2, deep)))
        with pytest.raises(ValueError, match="accumulation"):
            int8_linear_gemm(np.ones((1, deep)), qw)
        qconv = quantize_weight(np.ones((2, deep, 1, 1)))
        with pytest.raises(ValueError, match="accumulation"):
            int8_conv_gemm(np.ones((1, 2 * deep, 4)), qconv, groups=2)


class TestKendallTau:
    def test_perfect_agreement(self):
        assert kendall_tau([1, 2, 3, 4], [10, 20, 30, 40]) == 1.0

    def test_perfect_reversal(self):
        assert kendall_tau([1, 2, 3], [3, 2, 1]) == -1.0

    def test_known_value(self):
        # Classic example: one discordant pair out of six -> tau = 2/3.
        assert kendall_tau([1, 2, 3, 4], [1, 2, 4, 3]) == pytest.approx(2 / 3)

    def test_ties_use_tau_b(self):
        tau = kendall_tau([1, 1, 2, 3], [1, 2, 3, 4])
        # tau-b with one tied pair in a: 5 / sqrt(5 * 6).
        assert tau == pytest.approx(5 / np.sqrt(30))

    def test_all_ties_is_zero(self):
        assert kendall_tau([1.0, 1.0, 1.0], [1, 2, 3]) == 0.0

    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            kendall_tau([1, 2], [1, 2, 3])
        with pytest.raises(ValueError):
            kendall_tau([1], [1])


class TestRankingFidelity:
    def test_passes_on_identical_rankings(self):
        ref = [0.1, 0.5, 0.3, 0.9, 0.2]
        fast = [x + 0.01 for x in ref]
        gate = ranking_fidelity(ref, fast, top_k=2)
        assert gate["passed"]
        assert gate["kendall_tau"] == 1.0
        assert gate["top_k_overlap"] == 1.0

    def test_fails_on_top_k_mismatch(self):
        ref = [1.0, 2.0, 3.0, 4.0]
        fast = [4.0, 3.0, 1.0, 2.0]  # different winners
        gate = ranking_fidelity(ref, fast, top_k=1)
        assert not gate["passed"]

    def test_fails_below_min_tau(self):
        ref = list(range(10))
        fast = list(range(10))
        fast[0], fast[1] = fast[1], fast[0]  # one swap outside top-K
        gate = ranking_fidelity(ref, fast, top_k=2, min_tau=0.999)
        assert gate["top_k_overlap"] == 1.0
        assert not gate["passed"]

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            ranking_fidelity([1, 2], [1, 2, 3])
        with pytest.raises(ValueError):
            ranking_fidelity([1, 2], [1, 2], top_k=3)
