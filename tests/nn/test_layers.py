"""Tests for linear, norm, activation, pooling, shuffle, mask layers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import (
    AvgPool2d,
    BatchNorm2d,
    ChannelMask,
    ChannelShuffle,
    GlobalAvgPool2d,
    HSwish,
    Identity,
    Linear,
    MaxPool2d,
    ReLU,
    Sigmoid,
    channel_concat,
    channel_split,
)
from repro.nn.layers.mask import channels_kept, make_mask
from tests.helpers import check_layer_gradients


class TestLinear:
    def test_forward_known(self):
        lin = Linear(2, 2, rng=np.random.default_rng(0))
        lin.weight.data = np.array([[1.0, 0.0], [0.0, 2.0]])
        lin.bias.data = np.array([1.0, -1.0])
        out = lin(np.array([[3.0, 4.0]]))
        np.testing.assert_allclose(out, [[4.0, 7.0]])

    def test_gradients(self):
        rng = np.random.default_rng(0)
        lin = Linear(3, 4, rng=rng)
        check_layer_gradients(lin, rng.normal(size=(5, 3)))

    def test_wrong_shape_raises(self):
        lin = Linear(3, 4, rng=np.random.default_rng(0))
        with pytest.raises(ValueError):
            lin(np.zeros((2, 5)))

    def test_no_bias(self):
        lin = Linear(3, 4, bias=False, rng=np.random.default_rng(0))
        assert lin.bias is None
        assert len(list(lin.parameters())) == 1


class TestBatchNorm:
    def test_normalizes_in_training(self):
        bn = BatchNorm2d(3)
        rng = np.random.default_rng(0)
        x = rng.normal(5.0, 2.0, size=(8, 3, 4, 4))
        out = bn(x)
        np.testing.assert_allclose(out.mean(axis=(0, 2, 3)), 0.0, atol=1e-10)
        np.testing.assert_allclose(out.std(axis=(0, 2, 3)), 1.0, atol=1e-3)

    def test_running_stats_move_toward_batch(self):
        bn = BatchNorm2d(2, momentum=0.5)
        x = np.ones((4, 2, 3, 3)) * 10.0
        bn(x)
        np.testing.assert_allclose(bn.running_mean, [5.0, 5.0])

    def test_eval_uses_running_stats(self):
        bn = BatchNorm2d(1)
        bn.running_mean[:] = 2.0
        bn.running_var[:] = 4.0
        bn.eval()
        out = bn(np.full((1, 1, 1, 1), 4.0))
        assert out[0, 0, 0, 0] == pytest.approx(1.0, rel=1e-3)

    def test_affine_parameters_apply(self):
        bn = BatchNorm2d(1)
        bn.gamma.data[:] = 3.0
        bn.beta.data[:] = 1.0
        rng = np.random.default_rng(0)
        out = bn(rng.normal(size=(16, 1, 4, 4)))
        assert out.mean() == pytest.approx(1.0, abs=1e-8)

    def test_gradients(self):
        rng = np.random.default_rng(0)
        bn = BatchNorm2d(2)
        check_layer_gradients(bn, rng.normal(size=(4, 2, 3, 3)), rtol=1e-3)

    def test_weight_decay_excluded(self):
        bn = BatchNorm2d(2)
        assert not bn.gamma.weight_decay
        assert not bn.beta.weight_decay

    def test_wrong_channels_raises(self):
        with pytest.raises(ValueError):
            BatchNorm2d(3)(np.zeros((1, 2, 4, 4)))

    def test_reset_running_stats(self):
        bn = BatchNorm2d(2)
        bn(np.random.default_rng(0).normal(3.0, size=(4, 2, 3, 3)))
        bn.reset_running_stats()
        np.testing.assert_array_equal(bn.running_mean, 0.0)
        np.testing.assert_array_equal(bn.running_var, 1.0)


class TestActivations:
    def test_relu_clips_negative(self):
        out = ReLU()(np.array([-1.0, 0.0, 2.0]))
        np.testing.assert_array_equal(out, [0.0, 0.0, 2.0])

    def test_relu_gradients(self):
        rng = np.random.default_rng(0)
        check_layer_gradients(ReLU(), rng.normal(size=(3, 4)) + 0.1)

    def test_sigmoid_range(self):
        out = Sigmoid()(np.linspace(-10, 10, 21))
        assert out.min() > 0.0 and out.max() < 1.0

    def test_sigmoid_gradients(self):
        rng = np.random.default_rng(0)
        check_layer_gradients(Sigmoid(), rng.normal(size=(3, 4)))

    def test_hswish_known_points(self):
        h = HSwish()
        np.testing.assert_allclose(h(np.array([-3.0, 0.0, 3.0])), [0.0, 0.0, 3.0])

    def test_hswish_gradients(self):
        rng = np.random.default_rng(0)
        # keep away from the kinks at +-3 where numerical gradients lie
        x = np.clip(rng.normal(size=(4, 4)), -2.5, 2.5)
        check_layer_gradients(HSwish(), x)

    def test_identity_passthrough(self):
        x = np.ones((2, 2))
        ident = Identity()
        assert ident(x) is x
        assert ident.backward(x) is x


class TestPooling:
    def test_maxpool_values(self):
        x = np.arange(16, dtype=np.float64).reshape(1, 1, 4, 4)
        out = MaxPool2d(2)(x)
        np.testing.assert_array_equal(out[0, 0], [[5, 7], [13, 15]])

    def test_maxpool_gradients(self):
        rng = np.random.default_rng(0)
        # Distinct values so argmax is unique (numerical grad validity).
        x = rng.permutation(36).astype(np.float64).reshape(1, 1, 6, 6)
        check_layer_gradients(MaxPool2d(2), x, check_params=False)

    def test_avgpool_values(self):
        x = np.ones((1, 2, 4, 4))
        out = AvgPool2d(2)(x)
        np.testing.assert_allclose(out, np.ones((1, 2, 2, 2)))

    def test_avgpool_gradients(self):
        rng = np.random.default_rng(0)
        check_layer_gradients(AvgPool2d(2), rng.normal(size=(2, 2, 4, 4)),
                              check_params=False)

    def test_gap_shape_and_value(self):
        x = np.arange(8, dtype=np.float64).reshape(1, 2, 2, 2)
        out = GlobalAvgPool2d()(x)
        np.testing.assert_allclose(out, [[1.5, 5.5]])

    def test_gap_gradients(self):
        rng = np.random.default_rng(0)
        check_layer_gradients(GlobalAvgPool2d(), rng.normal(size=(2, 3, 4, 4)),
                              check_params=False)


class TestShuffle:
    def test_shuffle_permutation(self):
        x = np.arange(4, dtype=np.float64).reshape(1, 4, 1, 1)
        out = ChannelShuffle(2)(x)
        np.testing.assert_array_equal(out.ravel(), [0, 2, 1, 3])

    def test_backward_is_inverse(self):
        rng = np.random.default_rng(0)
        shuffle = ChannelShuffle(2)
        x = rng.normal(size=(2, 8, 3, 3))
        np.testing.assert_array_equal(shuffle.backward(shuffle(x)), x)

    def test_indivisible_raises(self):
        with pytest.raises(ValueError):
            ChannelShuffle(2)(np.zeros((1, 3, 2, 2)))

    def test_invalid_groups_raises(self):
        with pytest.raises(ValueError):
            ChannelShuffle(0)

    def test_split_concat_roundtrip(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(2, 6, 3, 3))
        a, b = channel_split(x, 2)
        np.testing.assert_array_equal(channel_concat(a, b), x)

    def test_split_out_of_range_raises(self):
        with pytest.raises(ValueError):
            channel_split(np.zeros((1, 4, 2, 2)), 4)


class TestChannelMask:
    @pytest.mark.parametrize("max_ch,factor,expected", [
        (5, 0.5, 3),   # the paper's example: 5 x 0.5 ~= 3
        (10, 0.1, 1),
        (10, 1.0, 10),
        (7, 0.45, 3),
        (1, 0.1, 1),   # never below one channel
    ])
    def test_channels_kept(self, max_ch, factor, expected):
        assert channels_kept(max_ch, factor) == expected

    def test_bad_factor_raises(self):
        with pytest.raises(ValueError):
            channels_kept(4, 0.0)
        with pytest.raises(ValueError):
            channels_kept(4, 1.5)

    def test_mask_is_prefix(self):
        mask = make_mask(6, 0.5)
        np.testing.assert_array_equal(mask, [1, 1, 1, 0, 0, 0])

    def test_forward_zeroes_masked(self):
        m = ChannelMask(4, factor=0.5)
        out = m(np.ones((1, 4, 2, 2)))
        assert out[0, :2].sum() == 8.0
        assert out[0, 2:].sum() == 0.0

    def test_backward_blocks_masked_grads(self):
        m = ChannelMask(4, factor=0.5)
        g = m.backward(np.ones((1, 4, 2, 2)))
        assert g[0, 2:].sum() == 0.0

    def test_set_factor_retargets(self):
        m = ChannelMask(10, factor=0.2)
        assert m.active_channels == 2
        m.set_factor(0.9)
        assert m.active_channels == 9

    def test_wrong_channels_raises(self):
        with pytest.raises(ValueError):
            ChannelMask(4)(np.zeros((1, 5, 2, 2)))

    @settings(max_examples=30, deadline=None)
    @given(
        max_ch=st.integers(min_value=1, max_value=64),
        factor=st.floats(min_value=0.01, max_value=1.0),
    )
    def test_kept_bounds_property(self, max_ch, factor):
        kept = channels_kept(max_ch, factor)
        assert 1 <= kept <= max_ch

    @settings(max_examples=20, deadline=None)
    @given(max_ch=st.integers(min_value=2, max_value=32))
    def test_kept_monotone_in_factor(self, max_ch):
        factors = np.linspace(0.05, 1.0, 12)
        kepts = [channels_kept(max_ch, f) for f in factors]
        assert kepts == sorted(kepts)
