"""Objective/EA config checkers: every Eq. 5 / Sec. III-D invariant is
validated on raw artifacts (dicts) and on the dataclass configs."""

from repro.core.evolution import EvolutionConfig
from repro.core.search import HSCoNASConfig
from repro.lint.config_check import (
    check_evolution_config,
    check_objective_config,
    check_pipeline_config,
)
from repro.lint.findings import Severity


class TestObjectiveConfig:
    def test_paper_defaults_are_clean(self):
        cfg = {"target_ms": 34.0, "beta": -0.5, "quality_samples": 100}
        assert check_objective_config(cfg) == []

    def test_nonnegative_beta_fires_rd206(self):
        findings = check_objective_config({"beta": 0.5})
        assert [f.rule_id for f in findings] == ["RD206"]
        assert findings[0].severity is Severity.ERROR

    def test_zero_beta_fires(self):
        assert [
            f.rule_id for f in check_objective_config({"beta": 0.0})
        ] == ["RD206"]

    def test_nonpositive_target_fires_rd207(self):
        findings = check_objective_config({"target_ms": -3.0})
        assert [f.rule_id for f in findings] == ["RD207"]

    def test_tiny_sampling_budget_warns_rd210(self):
        findings = check_objective_config({"quality_samples": 5})
        assert [f.rule_id for f in findings] == ["RD210"]
        assert findings[0].severity is Severity.WARNING

    def test_non_integer_budget_is_error(self):
        findings = check_objective_config({"quality_samples": 0})
        assert [f.rule_id for f in findings] == ["RD210"]
        assert findings[0].severity is Severity.ERROR

    def test_all_problems_reported_at_once(self):
        findings = check_objective_config(
            {"target_ms": 0, "beta": 1.0, "num_samples": 2}
        )
        assert {f.rule_id for f in findings} == {"RD206", "RD207", "RD210"}


class TestEvolutionConfig:
    def test_paper_defaults_are_clean(self):
        assert check_evolution_config(EvolutionConfig()) == []

    def test_parents_exceeding_population_fires_rd208(self):
        findings = check_evolution_config(
            {"population_size": 10, "num_parents": 20}
        )
        assert [f.rule_id for f in findings] == ["RD208"]

    def test_zero_generations_fires(self):
        findings = check_evolution_config({"generations": 0})
        assert [f.rule_id for f in findings] == ["RD208"]

    def test_probability_out_of_range_fires_rd209(self):
        findings = check_evolution_config({"mutation_prob": 1.5})
        assert [f.rule_id for f in findings] == ["RD209"]

    def test_negative_probability_fires(self):
        findings = check_evolution_config({"crossover_prob": -0.1})
        assert [f.rule_id for f in findings] == ["RD209"]


class TestPipelineConfig:
    def test_defaults_are_clean(self):
        assert check_pipeline_config(HSCoNASConfig()) == []

    def test_nested_evolution_is_checked(self):
        cfg = {
            "target_ms": 34.0,
            "beta": -0.5,
            "evolution": {"population_size": 4, "num_parents": 10},
        }
        findings = check_pipeline_config(cfg)
        assert [f.rule_id for f in findings] == ["RD208"]
        assert findings[0].component == "pipeline.evolution"

    def test_bad_sampling_counts_fire(self):
        findings = check_pipeline_config({"lut_samples_per_cell": 0})
        assert [f.rule_id for f in findings] == ["RD208"]
