"""End-to-end CLI behaviour: exit codes, formats, domain mode."""

import json

import pytest

from repro.hardware import LatencyLUT, get_device
from repro.lint.cli import main
from repro.space import SearchSpace, proxy

CLEAN = "def f(x, rng):\n    return rng.normal()\n"
VIOLATION = "import numpy as np\n\nnp.random.seed(0)\n"


@pytest.fixture()
def violation_file(tmp_path):
    path = tmp_path / "bad.py"
    path.write_text(VIOLATION)
    return str(path)


@pytest.fixture()
def clean_file(tmp_path):
    path = tmp_path / "good.py"
    path.write_text(CLEAN)
    return str(path)


class TestCodeLintCli:
    def test_clean_file_exits_zero(self, clean_file, capsys):
        assert main([clean_file]) == 0
        assert "no findings" in capsys.readouterr().out

    def test_violation_exits_nonzero(self, violation_file, capsys):
        assert main([violation_file]) == 1
        out = capsys.readouterr().out
        assert "RL101" in out
        assert "bad.py:3" in out

    def test_directory_walk(self, tmp_path, violation_file):
        assert main([str(tmp_path)]) == 1

    def test_json_format(self, violation_file, capsys):
        assert main([violation_file, "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload[0]["rule_id"] == "RL101"
        assert payload[0]["line"] == 3

    def test_select_filters_rules(self, violation_file):
        assert main([violation_file, "--select", "RL104"]) == 0

    def test_ignore_filters_rules(self, violation_file):
        assert main([violation_file, "--ignore", "RL101"]) == 0

    def test_unknown_rule_is_usage_error(self, violation_file):
        with pytest.raises(SystemExit) as exc:
            main([violation_file, "--select", "RL999"])
        assert exc.value.code == 2

    def test_no_paths_no_domain_is_usage_error(self):
        with pytest.raises(SystemExit) as exc:
            main([])
        assert exc.value.code == 2

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        assert "RL101" in out and "RD201" in out


class TestDomainCli:
    def test_presets_are_clean(self, capsys):
        assert main(["--domain"]) == 0

    def test_saved_lut_coverage_clean(self, tmp_path, capsys):
        space = SearchSpace(proxy())
        lut = LatencyLUT.build(
            space, get_device("edge"), samples_per_cell=1, seed=0
        )
        path = tmp_path / "lut.json"
        path.write_text(lut.to_json())
        assert main(
            ["--domain", "--preset", "proxy", "--lut", str(path)]
        ) == 0

    def test_hole_punched_lut_fails_and_names_cell(self, tmp_path, capsys):
        space = SearchSpace(proxy())
        lut = LatencyLUT.build(
            space, get_device("edge"), samples_per_cell=1, seed=0
        )
        victim = sorted(lut.entries)[0]
        del lut.entries[victim]
        path = tmp_path / "lut.json"
        path.write_text(lut.to_json())
        assert main(
            ["--domain", "--preset", "proxy", "--lut", str(path)]
        ) == 1
        out = capsys.readouterr().out
        assert "RD201" in out
        layer, op, cin, _factor = victim
        assert f"layer={layer} op={op} cin={cin}" in out

    def test_build_lut_coverage(self, capsys):
        assert main(
            ["--domain", "--preset", "mini", "--build-lut",
             "--device", "edge"]
        ) == 0

    def test_lut_and_build_lut_conflict(self):
        with pytest.raises(SystemExit) as exc:
            main(["--domain", "--lut", "x.json", "--build-lut"])
        assert exc.value.code == 2

    def test_missing_lut_file_is_one_line_error(self, capsys):
        assert main(["--domain", "--lut", "no/such/lut.json"]) == 2
        err = capsys.readouterr().err
        assert "does not exist" in err
        assert "Traceback" not in err


class TestRunDirCli:
    def _make_run(self, tmp_path):
        from repro.runstate import RunDir

        return RunDir.create(
            tmp_path / "run",
            kind="search",
            config={"seed": 0},
            phase_order=("predictor", "shrink", "search"),
        )

    def test_valid_run_dir_exits_zero(self, tmp_path, capsys):
        run = self._make_run(tmp_path)
        run.save_checkpoint("predictor", {"x": 1}, complete=True)
        assert main(["--run-dir", str(run.path)]) == 0

    def test_tampered_run_dir_fails_with_rd211(self, tmp_path, capsys):
        run = self._make_run(tmp_path)
        run.save_checkpoint("search", {"gen": 1})
        target = run._checkpoint_path("search")
        envelope = json.loads(target.read_text())
        envelope["record"]["payload"]["gen"] = 2
        target.write_text(json.dumps(envelope))  # repro-lint: disable=RL106
        assert main(["--run-dir", str(run.path)]) == 1
        assert "RD211" in capsys.readouterr().out

    def test_missing_run_dir_is_one_line_error(self, capsys):
        assert main(["--run-dir", "no/such/run"]) == 2
        err = capsys.readouterr().err
        assert "does not exist" in err
        assert "Traceback" not in err


class TestStrictMode:
    def test_warning_passes_without_strict(self):
        # Domain warning: RD210 (tiny sampling budget) is a warning, so
        # non-strict passes and strict fails.
        from repro.lint import config_check
        from repro.lint.findings import exit_code

        findings = config_check.check_objective_config(
            {"quality_samples": 5}
        )
        assert exit_code(findings, strict=False) == 0
        assert exit_code(findings, strict=True) == 1
