"""LUT-coverage checker: complete LUTs are silent, hole-punched LUTs
name the exact missing cell and its nearest present neighbour."""

import pytest

from repro.hardware import LatencyLUT, get_device
from repro.hardware.lut import _cell_key, layer_cin_choices
from repro.lint.findings import Severity
from repro.lint.lut_check import (
    check_lut_coverage,
    reachable_cells,
    reachable_head_widths,
)
from repro.space import SearchSpace, imagenet_a, proxy


@pytest.fixture(scope="module")
def space():
    return SearchSpace(proxy())


@pytest.fixture(scope="module")
def device():
    return get_device("edge")


@pytest.fixture()
def lut(space, device):
    return LatencyLUT.build(space, device, samples_per_cell=1, seed=0)


class TestReachableSet:
    def test_matches_lut_build_enumeration(self, space, lut):
        reachable = {
            _cell_key(*cell) for cell in reachable_cells(space)
        }
        assert reachable == set(lut.entries)

    def test_head_widths_match_lut(self, space, lut):
        assert reachable_head_widths(space) == sorted(lut.head_ms)


class TestCoverage:
    def test_full_lut_is_clean(self, space, lut):
        assert check_lut_coverage(space, lut) == []

    def test_removed_cell_is_named_exactly(self, space, lut):
        victim = sorted(lut.entries)[7]
        del lut.entries[victim]
        findings = check_lut_coverage(space, lut)
        assert len(findings) == 1
        f = findings[0]
        assert f.rule_id == "RD201"
        assert f.severity is Severity.ERROR
        layer, op, cin, factor = victim
        assert f"layer={layer} op={op} cin={cin}" in f.message
        assert f"factor={factor}" in f.message
        assert "nearest existing cell" in f.message

    def test_removed_head_cell_fires_rd202(self, space, lut):
        victim = sorted(lut.head_ms)[0]
        del lut.head_ms[victim]
        findings = check_lut_coverage(space, lut)
        assert [f.rule_id for f in findings] == ["RD202"]
        assert f"cin={victim}" in findings[0].message

    def test_many_missing_cells_are_summarized(self, space, lut):
        for key in list(lut.entries)[:80]:
            del lut.entries[key]
        findings = check_lut_coverage(space, lut, max_reports=10)
        rd201 = [f for f in findings if f.rule_id == "RD201"]
        assert len(rd201) == 11  # 10 named + 1 summary
        assert "70 more missing cells" in rd201[-1].message

    def test_device_mismatch_warns(self, space, lut):
        findings = check_lut_coverage(space, lut, expected_device="gpu")
        assert [f.rule_id for f in findings] == ["RD200"]
        assert findings[0].severity is Severity.WARNING

    def test_shrunk_space_reachable_subset(self, space, device, lut):
        shrunk = space.fix_operator(space.num_layers - 1, 2)
        assert check_lut_coverage(shrunk, lut) == []
        # Remove a cell only the *shrunk* space cares about.
        layer = space.num_layers - 1
        cin = layer_cin_choices(space, layer)[0]
        factor = space.candidate_factors[layer][0]
        del lut.entries[_cell_key(layer, 2, cin, factor)]
        assert check_lut_coverage(shrunk, lut) != []


class TestImagenetAPreset:
    """Acceptance: the full imagenet_a LUT has zero missing cells; with
    one cell removed the checker names that exact cell statically."""

    @pytest.fixture(scope="class")
    def space_a(self):
        return SearchSpace(imagenet_a())

    @pytest.fixture(scope="class")
    def lut_a(self, space_a):
        return LatencyLUT.build(
            space_a, get_device("edge"), samples_per_cell=1, seed=0
        )

    def test_full_lut_zero_missing(self, space_a, lut_a):
        assert check_lut_coverage(space_a, lut_a) == []

    def test_one_removed_cell_is_pinpointed(self, space_a, lut_a):
        victim = _cell_key(12, 3, 128, 0.7)
        assert victim in lut_a.entries
        entries = dict(lut_a.entries)
        del entries[victim]
        punched = LatencyLUT(
            lut_a.device_key, entries,
            stem_ms=lut_a.stem_ms, head_ms=lut_a.head_ms,
        )
        findings = check_lut_coverage(space_a, punched)
        assert len(findings) == 1
        assert findings[0].rule_id == "RD201"
        assert "layer=12 op=3 cin=128 factor=0.7" in findings[0].message
