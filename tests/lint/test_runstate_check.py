"""RD211: run-directory validation (manifest + checkpoint integrity)."""

import json

import pytest

from repro.lint.runstate_check import check_run_dir
from repro.runstate import RunDir
from repro.runstate.manifest import MANIFEST_NAME

PHASES = ("predictor", "shrink", "search")


@pytest.fixture()
def run(tmp_path):
    return RunDir.create(
        tmp_path / "run", kind="search", config={"seed": 0}, phase_order=PHASES
    )


def _messages(findings):
    return [f.message for f in findings]


class TestCheckRunDir:
    def test_valid_run_dir_is_clean(self, run):
        run.save_checkpoint("predictor", {"lut": 1}, complete=True)
        run.save_checkpoint("shrink", {"stage": 0})
        assert check_run_dir(run.path) == []

    def test_missing_dir_is_one_finding(self, tmp_path):
        findings = check_run_dir(tmp_path / "nope")
        assert len(findings) == 1
        assert findings[0].rule_id == "RD211"
        assert "does not exist" in findings[0].message

    def test_missing_manifest(self, tmp_path):
        (tmp_path / "plain").mkdir()
        findings = check_run_dir(tmp_path / "plain")
        assert len(findings) == 1
        assert MANIFEST_NAME in findings[0].message

    def test_unreadable_manifest(self, run):
        (run.path / MANIFEST_NAME).write_text("{truncated")
        findings = check_run_dir(run.path)
        assert len(findings) == 1

    def test_bad_manifest_schema_reported(self, run):
        payload = json.loads((run.path / MANIFEST_NAME).read_text())
        payload["version"] = 999
        (run.path / MANIFEST_NAME).write_text(  # repro-lint: disable=RL106
            json.dumps(payload)
        )
        assert any("version" in m for m in _messages(check_run_dir(run.path)))

    def test_tampered_checkpoint_reported(self, run):
        run.save_checkpoint("search", {"gen": 2})
        target = run._checkpoint_path("search")
        envelope = json.loads(target.read_text())
        envelope["record"]["payload"]["gen"] = 3
        target.write_text(json.dumps(envelope))  # repro-lint: disable=RL106
        assert any(
            "checksum" in m for m in _messages(check_run_dir(run.path))
        )

    def test_complete_phase_missing_checkpoint_reported(self, run):
        run.save_checkpoint("predictor", {"x": 1}, complete=True)
        run._checkpoint_path("predictor").unlink()
        assert any(
            "missing" in m for m in _messages(check_run_dir(run.path))
        )

    def test_findings_name_the_run_dir_component(self, tmp_path):
        findings = check_run_dir(tmp_path / "nope")
        assert str(tmp_path / "nope") in findings[0].component
