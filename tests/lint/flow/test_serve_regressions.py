"""Deleting a shipped serve fix must make its RF rule fire again.

Each test copies the real serve sources into a scratch package,
textually reverts one fix (asserting the revert actually bit, so a
rename cannot turn these into silent no-ops), and runs the flow
analysis over the scratch tree. The shipped tree itself must be clean.
"""

import os
import re

import pytest

from repro.lint.flow import analyze_flow

REPO_ROOT = os.path.abspath(
    os.path.join(os.path.dirname(__file__), "..", "..", "..")
)
SERVE = os.path.join(REPO_ROOT, "src", "repro", "serve")


def _copy_serve(tmp_path, reverts):
    """Copy the serve modules the analysis needs, applying ``reverts``
    as (filename, pattern, replacement, expected_count) tuples."""
    package = tmp_path / "repro"
    (package / "serve").mkdir(parents=True)
    (package / "__init__.py").write_text("")
    for name in ("__init__.py", "metrics.py", "service.py", "server.py"):
        source = open(
            os.path.join(SERVE, name), "r", encoding="utf-8"
        ).read()
        for filename, pattern, replacement, expected in reverts:
            if filename == name:
                source, count = re.subn(pattern, replacement, source)
                assert count == expected, (
                    f"revert pattern {pattern!r} matched {count} times "
                    f"in {name} (expected {expected}); the fix moved — "
                    "update this regression test"
                )
        (package / "serve" / name).write_text(source)
    return str(tmp_path)


def _rf301(findings):
    return [f for f in findings if f.rule_id == "RF301"]


class TestShippedTreeIsClean:
    def test_serve_layer_has_no_flow_findings(self):
        findings, _ = analyze_flow([SERVE])
        assert findings == []


class TestWarmStartCounterFix:
    def test_reverting_locked_accessor_fires_rf301(self, tmp_path):
        # Pre-fix warm_start read metrics.front_computations bare,
        # racing record_front_computation() on handler threads.
        root = _copy_serve(
            tmp_path,
            [
                (
                    "service.py",
                    r"self\.metrics\.total_front_computations\(\)",
                    "self.metrics.front_computations",
                    2,
                )
            ],
        )
        findings, _ = analyze_flow([root])
        bare = [
            f
            for f in _rf301(findings)
            if "ServeMetrics.front_computations" in f.message
        ]
        assert len(bare) == 2
        assert all(f.file.endswith("service.py") for f in bare)
        assert all("locked accessor" in f.message for f in bare)


class TestStartupBannerFix:
    def test_reverting_restored_fronts_accessor_fires_rf301(
        self, tmp_path
    ):
        # Pre-fix run_server read metrics.restored_fronts bare while
        # warm_start's handler-thread writes were already possible.
        root = _copy_serve(
            tmp_path,
            [
                (
                    "server.py",
                    r"service\.metrics\.total_restored_fronts\(\)",
                    "service.metrics.restored_fronts",
                    1,
                )
            ],
        )
        findings, _ = analyze_flow([root])
        bare = [
            f
            for f in _rf301(findings)
            if "ServeMetrics.restored_fronts" in f.message
        ]
        assert len(bare) == 1
        assert bare[0].file.endswith("server.py")


class TestAccessorsStayGuarded:
    @pytest.mark.parametrize(
        "accessor",
        ["total_front_computations", "total_restored_fronts"],
    )
    def test_unlocking_an_accessor_fires_rf301(self, tmp_path, accessor):
        # The fix itself must stay honest: strip the with-lock from the
        # accessor body and the analysis flags the now-bare read.
        field = accessor.replace("total_", "")
        root = _copy_serve(
            tmp_path,
            [
                (
                    "metrics.py",
                    r"with self\._lock:\n            return self\."
                    + field,
                    "return self." + field,
                    1,
                )
            ],
        )
        findings, _ = analyze_flow([root])
        bare = [
            f
            for f in _rf301(findings)
            if f"ServeMetrics.{field}" in f.message
        ]
        assert len(bare) == 1
        assert bare[0].file.endswith("metrics.py")
