"""SARIF 2.1.0 emitter: a full-document snapshot plus invariants."""

import json

from repro.lint.findings import Finding, Severity
from repro.lint.flow import render_sarif
from repro.lint.flow.sarif import SARIF_SCHEMA, SARIF_VERSION


def _findings():
    return [
        Finding(
            rule_id="RF300",
            severity=Severity.ERROR,
            message="'default_rng()' constructed without an explicit seed",
            file="src/repro/example.py",
            line=8,
            column=11,
        ),
        Finding(
            rule_id="RF399",
            severity=Severity.WARNING,
            message="stale baseline entry",
            component="baseline:lint_baseline.json",
        ),
    ]


class TestSnapshot:
    def test_document_snapshot(self):
        document = json.loads(render_sarif(_findings()))
        run = document["runs"][0]
        rules = run["tool"]["driver"]["rules"]
        assert document == {
            "$schema": SARIF_SCHEMA,
            "version": "2.1.0",
            "runs": [
                {
                    "tool": {
                        "driver": {
                            "name": "repro.lint",
                            "informationUri": run["tool"]["driver"][
                                "informationUri"
                            ],
                            "rules": [
                                {
                                    "id": "RF300",
                                    "name": "rng-provenance",
                                    "shortDescription": rules[0][
                                        "shortDescription"
                                    ],
                                    "defaultConfiguration": {
                                        "level": "error"
                                    },
                                },
                                # RF399 is synthetic (stale-baseline
                                # marker), so it has no catalog metadata.
                                {"id": "RF399"},
                            ],
                        }
                    },
                    "results": [
                        {
                            "ruleId": "RF300",
                            "ruleIndex": 0,
                            "level": "error",
                            "message": {
                                "text": (
                                    "'default_rng()' constructed "
                                    "without an explicit seed"
                                )
                            },
                            "locations": [
                                {
                                    "physicalLocation": {
                                        "artifactLocation": {
                                            "uri": "src/repro/example.py",
                                            "uriBaseId": "ROOTPATH",
                                        },
                                        "region": {
                                            "startLine": 8,
                                            # ast columns are 0-based,
                                            # SARIF's are 1-based.
                                            "startColumn": 12,
                                        },
                                    }
                                }
                            ],
                        },
                        {
                            "ruleId": "RF399",
                            "ruleIndex": 1,
                            "level": "warning",
                            "message": {"text": "stale baseline entry"},
                            "locations": [
                                {
                                    "logicalLocations": [
                                        {
                                            "fullyQualifiedName": (
                                                "baseline:"
                                                "lint_baseline.json"
                                            )
                                        }
                                    ]
                                }
                            ],
                        },
                    ],
                    "originalUriBaseIds": {"ROOTPATH": {"uri": "file:///"}},
                }
            ],
        }

    def test_version_and_schema_pinned(self):
        assert SARIF_VERSION == "2.1.0"
        assert "sarif-schema-2.1.0.json" in SARIF_SCHEMA


class TestInvariants:
    def test_deterministic_output(self):
        assert render_sarif(_findings()) == render_sarif(_findings())

    def test_empty_run_is_valid(self):
        document = json.loads(render_sarif([]))
        assert document["runs"][0]["results"] == []

    def test_windows_separators_normalized(self):
        finding = Finding(
            rule_id="RF301",
            severity=Severity.ERROR,
            message="m",
            file="src\\repro\\serve\\metrics.py",
            line=1,
        )
        document = json.loads(render_sarif([finding]))
        uri = document["runs"][0]["results"][0]["locations"][0][
            "physicalLocation"
        ]["artifactLocation"]["uri"]
        assert uri == "src/repro/serve/metrics.py"
