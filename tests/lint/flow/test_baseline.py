"""Baseline files: suppression, staleness, and validation."""

import json

import pytest

from repro.lint.findings import Finding, Severity
from repro.lint.flow.baseline import (
    BaselineEntry,
    apply_baseline,
    load_baseline,
    stale_entry_findings,
)


def _finding(rule="RF301", file="src/repro/serve/service.py",
             message="read of 'X.y' without holding 'X._lock'"):
    return Finding(
        rule_id=rule, severity=Severity.ERROR, message=message,
        file=file, line=10,
    )


def _entry(rule="RF301", file="repro/serve/service.py",
           message="read of 'X.y' without holding 'X._lock'"):
    return BaselineEntry(
        rule=rule, file=file, message=message, reason="documented FP"
    )


class TestMatching:
    def test_exact_match_suppresses(self):
        kept, suppressed, stale = apply_baseline([_finding()], [_entry()])
        assert kept == [] and suppressed == 1 and stale == []

    def test_path_matches_by_suffix_not_prefix(self):
        # Line numbers and leading path segments must not matter.
        finding = _finding(file="/abs/checkout/src/repro/serve/service.py")
        kept, suppressed, _ = apply_baseline([finding], [_entry()])
        assert suppressed == 1 and kept == []

    def test_different_message_does_not_match(self):
        kept, suppressed, stale = apply_baseline(
            [_finding(message="some other finding")], [_entry()]
        )
        assert len(kept) == 1 and suppressed == 0
        assert stale == [_entry()]

    def test_different_rule_does_not_match(self):
        kept, _, _ = apply_baseline([_finding(rule="RF302")], [_entry()])
        assert len(kept) == 1


class TestStaleEntries:
    def test_stale_entry_becomes_warning(self):
        findings = stale_entry_findings([_entry()], "lint_baseline.json")
        assert len(findings) == 1
        assert findings[0].rule_id == "RF399"
        assert findings[0].severity is Severity.WARNING
        assert "delete the entry" in findings[0].message

    def test_used_entry_is_not_stale(self):
        _, _, stale = apply_baseline([_finding()], [_entry()])
        assert stale == []


class TestLoading:
    def _write(self, tmp_path, payload):
        path = tmp_path / "baseline.json"
        # Throwaway tmp fixture; tearing is fine here.
        path.write_text(json.dumps(payload))  # repro-lint: disable=RL106
        return str(path)

    def test_round_trip(self, tmp_path):
        path = self._write(
            tmp_path,
            {
                "version": 1,
                "suppressions": [
                    {
                        "rule": "RF301",
                        "file": "repro/serve/service.py",
                        "message": "read of 'X.y' without holding",
                        "reason": "intentional: single-writer startup",
                    }
                ],
            },
        )
        entries = load_baseline(path)
        assert len(entries) == 1
        assert entries[0].rule == "RF301"
        assert entries[0].reason.startswith("intentional")

    def test_wrong_version_rejected(self, tmp_path):
        path = self._write(tmp_path, {"version": 99, "suppressions": []})
        with pytest.raises(ValueError, match="unsupported version"):
            load_baseline(path)

    def test_missing_fields_rejected(self, tmp_path):
        path = self._write(
            tmp_path,
            {"version": 1, "suppressions": [{"rule": "RF301"}]},
        )
        with pytest.raises(ValueError, match="missing"):
            load_baseline(path)

    def test_non_object_rejected(self, tmp_path):
        path = self._write(tmp_path, [1, 2, 3])
        with pytest.raises(ValueError, match="suppressions"):
            load_baseline(path)

    def test_checked_in_baseline_loads(self):
        import os

        repo_root = os.path.abspath(
            os.path.join(os.path.dirname(__file__), "..", "..", "..")
        )
        entries = load_baseline(
            os.path.join(repo_root, "lint_baseline.json")
        )
        # The shipped baseline stays small: every accepted finding is
        # reviewed, and the issue budget is five.
        assert len(entries) <= 5
