"""Per-worker spawned streams: the generator is derived inside the
worker loop, so each worker owns an independent stream."""

import numpy as np


def evaluate(rng, item):
    return item + rng.random()


def run_workers(items):
    root = np.random.SeedSequence(1234)
    results = []
    for worker_id in range(4):
        rng = np.random.default_rng(
            np.random.SeedSequence(1234, spawn_key=(worker_id,))
        )
        results.append(evaluate(rng, worker_id))
    return results, root
