"""A seeded generator crossing the same two call hops as the bad twin."""

import numpy as np


def make_generator(seed):
    return np.random.default_rng(seed)


def middle(rng):
    return sample(rng)


def sample(rng):
    return rng.random()


def run():
    rng = make_generator(1234)
    return middle(rng)
