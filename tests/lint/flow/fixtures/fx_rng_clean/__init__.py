"""Known-good RNG fixtures: seeded streams, per-worker spawning,
distinct spawn keys — the flow analysis must stay silent here."""
