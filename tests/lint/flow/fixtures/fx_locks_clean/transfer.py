"""Both paths acquire the two locks in the same a-then-b order."""

import threading


class Ledger:
    def __init__(self):
        self._lock_a = threading.Lock()
        self._lock_b = threading.Lock()
        self.forwarded = 0
        self.reversed_count = 0

    def forward(self):
        with self._lock_a:
            with self._lock_b:
                self.forwarded += 1

    def backward(self):
        with self._lock_a:
            with self._lock_b:
                self.reversed_count += 1
