"""The counter from the bad twin, with locked accessors throughout."""

import threading


class Counter:
    def __init__(self):
        self._lock = threading.Lock()
        self.count = 0

    def bump(self):
        with self._lock:
            self.count += 1

    def peek(self):
        with self._lock:
            return self.count

    def reset(self):
        with self._lock:
            self.count = 0


def report(counter: Counter) -> int:
    return counter.peek()
