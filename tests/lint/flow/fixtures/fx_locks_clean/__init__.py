"""Known-good lock fixtures: every guarded access holds the lock and
both locks are always taken in the same order."""
