"""A guarded counter with an unguarded fast-path read and write."""

import threading


class Counter:
    def __init__(self):
        self._lock = threading.Lock()
        self.count = 0

    def bump(self):
        with self._lock:
            self.count += 1

    def peek(self):
        # RF301: bare read of a field only ever written under _lock.
        return self.count

    def reset(self):
        # RF301: bare write races with bump().
        self.count = 0


def report(counter: Counter) -> int:
    # RF301: cross-object bare read of a guarded field.
    return counter.count
