"""Two locks taken in opposite orders on different paths."""

import threading


class Ledger:
    def __init__(self):
        self._lock_a = threading.Lock()
        self._lock_b = threading.Lock()
        self.forwarded = 0
        self.reversed_count = 0

    def forward(self):
        with self._lock_a:
            with self._lock_b:
                self.forwarded += 1

    def backward(self):
        # RF302: acquires b then a while forward() holds a then b —
        # two threads can deadlock.
        with self._lock_b:
            with self._lock_a:
                self.reversed_count += 1
