"""Hole-punched lock fixtures: bare guarded-field access (RF301) and
a lock-order inversion (RF302)."""
