"""Hole-punched cache-key fixtures: a raw float reaches a cache key
through a call hop without passing a quantizer (RF303)."""
