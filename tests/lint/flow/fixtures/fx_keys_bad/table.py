"""A latency table keyed by an unquantized width factor."""


class LatencyTable:
    def __init__(self):
        self._cache = {}

    def _make_key(self, factor: float):
        # RF303: the raw float flows into the key — 0.1 + 0.2 style
        # drift makes logically-equal lookups miss.
        return ("cell", factor)

    def lookup(self, factor: float):
        key = self._make_key(factor)
        return self._cache.get(key)

    def store(self, factor: float, value):
        self._cache[self._make_key(factor)] = value


def lookup_ratio(table: LatencyTable, width, base):
    # RF303: a division result crosses the call hop into the key.
    factor = width / base
    return table.lookup(factor)
