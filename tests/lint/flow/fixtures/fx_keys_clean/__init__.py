"""Known-good cache-key fixtures: every float is quantized to one
decimal before it reaches a key."""
