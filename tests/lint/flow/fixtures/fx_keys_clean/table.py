"""The latency table from the bad twin, quantizing before keying."""


class LatencyTable:
    def __init__(self):
        self._cache = {}

    def _make_key(self, factor: float):
        return ("cell", round(factor, 1))

    def lookup(self, factor: float):
        key = self._make_key(factor)
        return self._cache.get(key)

    def store(self, factor: float, value):
        self._cache[self._make_key(factor)] = value


def lookup_ratio(table: LatencyTable, width, base):
    # The same division flows in, but _make_key quantizes it.
    factor = width / base
    return table.lookup(factor)
