"""An unseeded generator crossing two call hops before it draws."""

import numpy as np


def make_generator():
    # RF300: no seed — every run draws a different stream.
    return np.random.default_rng()


def middle(rng):
    return sample(rng)


def sample(rng):
    return rng.random()


def run():
    rng = make_generator()
    return middle(rng)
