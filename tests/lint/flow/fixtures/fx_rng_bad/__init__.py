"""Hole-punched RNG fixtures: every module here contains a seeded
RF300 violation that the flow analysis must find."""
