"""Two call sites building the same (entropy, spawn_key) pair."""

import numpy as np


def left_stream():
    return np.random.SeedSequence(9876, spawn_key=(0,))


def right_stream():
    # RF300: identical entropy and spawn_key — both streams collide.
    return np.random.SeedSequence(9876, spawn_key=(0,))
