"""One generator shared across the per-worker loop boundary."""

import numpy as np


def evaluate(rng, item):
    return item + rng.random()


def run_workers(items):
    rng = np.random.default_rng(1234)
    results = []
    for worker_id in range(4):
        # RF300: the same stream serves every worker, so results
        # depend on scheduling order instead of worker_id.
        results.append(evaluate(rng, worker_id))
    return results
