"""Each RF rule fires on its hole-punched fixture package and stays
silent on the known-good twin."""

import os

from repro.lint.flow import analyze_flow

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures")


def _flow(package):
    findings, _stats = analyze_flow([os.path.join(FIXTURES, package)])
    return findings


def _by_rule(findings):
    out = {}
    for finding in findings:
        out.setdefault(finding.rule_id, []).append(finding)
    return out


class TestRngProvenance:
    def test_bad_package_findings(self):
        findings = _flow("fx_rng_bad")
        assert findings, "hole-punched RNG fixture produced no findings"
        assert {f.rule_id for f in findings} == {"RF300"}
        messages = [f.message for f in findings]
        # The seedless construction itself.
        assert any("without an explicit seed" in m for m in messages)
        # The same generator two call hops away, at the flow site.
        assert any(
            "flows into parameter 'rng'" in m and "middle" in m
            for m in messages
        )
        # Two sites building the same (entropy, spawn_key) identity.
        assert any("duplicate spawn_key" in m for m in messages)
        # One stream serving every worker-index iteration.
        assert any("shared across worker-index" in m for m in messages)

    def test_unseeded_flow_names_both_ends(self):
        findings = _flow("fx_rng_bad")
        flow = [
            f for f in findings if "flows into parameter" in f.message
        ][0]
        assert flow.file.endswith("pipeline.py")
        assert "pipeline.py:8" in flow.message  # construction site

    def test_clean_package_is_silent(self):
        assert _flow("fx_rng_clean") == []


class TestLockDiscipline:
    def test_bad_package_findings(self):
        findings = _flow("fx_locks_bad")
        rules = _by_rule(findings)
        assert set(rules) == {"RF301", "RF302"}
        messages = [f.message for f in rules["RF301"]]
        # Bare read and bare write inside the class.
        assert any(
            m.startswith("read of 'Counter.count'") for m in messages
        )
        assert any(
            m.startswith("write of 'Counter.count'") for m in messages
        )
        # Cross-object bare read suggests the accessor fix.
        assert any("locked accessor" in m for m in messages)

    def test_rf301_names_the_guarding_write(self):
        findings = _flow("fx_locks_bad")
        finding = [f for f in findings if f.rule_id == "RF301"][0]
        assert "written under the lock at" in finding.message
        assert "counter.py:13" in finding.message

    def test_rf302_inversion_names_both_orders(self):
        findings = _flow("fx_locks_bad")
        inversions = [f for f in findings if f.rule_id == "RF302"]
        assert len(inversions) == 1
        message = inversions[0].message
        assert "Ledger._lock_a" in message and "Ledger._lock_b" in message
        assert "deadlock" in message

    def test_clean_package_is_silent(self):
        assert _flow("fx_locks_clean") == []


class TestCacheKeySoundness:
    def test_bad_package_findings(self):
        findings = _flow("fx_keys_bad")
        assert {f.rule_id for f in findings} == {"RF303"}
        message = findings[0].message
        # The finding names the origin, the crossed parameter, and the
        # callee that keys on it.
        assert "division result" in message
        assert "parameter 'factor'" in message
        assert "LatencyTable.lookup" in message

    def test_clean_package_is_silent(self):
        # Identical dataflow, but _make_key rounds to one decimal.
        assert _flow("fx_keys_clean") == []


class TestSelectIgnore:
    def test_select_narrows_to_one_rule(self):
        findings, _ = analyze_flow(
            [os.path.join(FIXTURES, "fx_locks_bad")], select=["RF302"]
        )
        assert {f.rule_id for f in findings} == {"RF302"}

    def test_ignore_drops_a_rule(self):
        findings, _ = analyze_flow(
            [os.path.join(FIXTURES, "fx_locks_bad")], ignore=["RF301"]
        )
        assert {f.rule_id for f in findings} == {"RF302"}


class TestStats:
    def test_stats_count_fixture_shapes(self):
        _, stats = analyze_flow([os.path.join(FIXTURES, "fx_locks_bad")])
        assert stats.files == 3  # __init__ + counter + transfer
        assert stats.classes == 2
        assert stats.functions >= 6
        assert stats.wall_ms > 0
        line = stats.format()
        assert "3 files" in line and "2 classes" in line
