"""CLI integration for --flow / --baseline / --sarif / --stats, plus
the two whole-repo contracts: ``src`` is clean modulo the checked-in
baseline, and a combined run parses each file exactly once."""

import json
import os

import pytest

from repro.lint.astcache import AstCache, collect_python_files
from repro.lint.ast_rules import lint_paths
from repro.lint.cli import main
from repro.lint.flow import analyze_flow

HERE = os.path.dirname(__file__)
FIXTURES = os.path.join(HERE, "fixtures")
REPO_ROOT = os.path.abspath(os.path.join(HERE, "..", "..", ".."))
SRC = os.path.join(REPO_ROOT, "src")
BASELINE = os.path.join(REPO_ROOT, "lint_baseline.json")

BAD_LOCKS = os.path.join(FIXTURES, "fx_locks_bad")
CLEAN_LOCKS = os.path.join(FIXTURES, "fx_locks_clean")


class TestFlowFlag:
    def test_flow_reports_rf_findings(self, capsys):
        assert main([BAD_LOCKS, "--flow"]) == 1
        out = capsys.readouterr().out
        assert "RF301" in out and "RF302" in out

    def test_without_flow_rf_rules_stay_off(self, capsys):
        assert main([BAD_LOCKS]) == 0
        assert "RF" not in capsys.readouterr().out

    def test_flow_without_paths_is_usage_error(self):
        with pytest.raises(SystemExit) as exc:
            main(["--flow"])
        assert exc.value.code == 2

    def test_select_rf_rule_via_cli(self, capsys):
        assert main([BAD_LOCKS, "--flow", "--select", "RF302"]) == 1
        out = capsys.readouterr().out
        assert "RF302" in out and "RF301" not in out

    def test_list_rules_includes_flow_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("RF300", "RF301", "RF302", "RF303"):
            assert rule_id in out


class TestSrcIsClean:
    def test_src_flow_strict_passes_with_checked_in_baseline(self):
        assert main(
            [SRC, "--flow", "--strict", "--baseline", BASELINE]
        ) == 0


class TestParseOnce:
    def test_combined_run_parses_each_file_exactly_once(self):
        cache = AstCache()
        lint_paths([BAD_LOCKS], cache=cache)
        analyze_flow([BAD_LOCKS], cache=cache)
        stats = cache.stats()
        expected = len(collect_python_files([BAD_LOCKS]))
        assert stats["files"] == expected
        assert stats["parses"] == expected
        # The flow pass re-requested every tree and hit the cache.
        assert stats["hits"] >= expected

    def test_stats_line_reports_parse_counts(self, capsys):
        assert main([BAD_LOCKS, "--flow", "--stats"]) == 1
        out = capsys.readouterr().out
        assert "repro.lint stats: 3 files, 3 parses, 3 cache hits" in out
        assert "flow: 3 files" in out


class TestBaselineFlag:
    def _baseline_for(self, tmp_path, findings):
        payload = {
            "version": 1,
            "suppressions": [
                {
                    "rule": f.rule_id,
                    "file": (f.file or "").replace(os.sep, "/"),
                    "message": f.message,
                    "reason": "accepted for the baseline test",
                }
                for f in findings
            ],
        }
        path = tmp_path / "baseline.json"
        # Throwaway tmp fixture; tearing is fine here.
        path.write_text(json.dumps(payload))  # repro-lint: disable=RL106
        return str(path)

    def test_baseline_suppresses_to_clean(self, tmp_path, capsys):
        findings, _ = analyze_flow([BAD_LOCKS])
        path = self._baseline_for(tmp_path, findings)
        assert main(
            [BAD_LOCKS, "--flow", "--strict", "--baseline", path,
             "--stats"]
        ) == 0
        out = capsys.readouterr().out
        assert "no findings" in out
        assert f"{len(findings)} finding(s) suppressed" in out

    def test_stale_entry_fails_strict_with_rf399(self, tmp_path, capsys):
        findings, _ = analyze_flow([BAD_LOCKS])
        path = self._baseline_for(tmp_path, findings)
        # The clean twin makes every entry stale.
        assert main(
            [CLEAN_LOCKS, "--flow", "--strict", "--baseline", path]
        ) == 1
        out = capsys.readouterr().out
        assert "RF399" in out and "stale baseline entry" in out

    def test_stale_entry_passes_without_strict(self, tmp_path):
        findings, _ = analyze_flow([BAD_LOCKS])
        path = self._baseline_for(tmp_path, findings)
        assert main([CLEAN_LOCKS, "--flow", "--baseline", path]) == 0

    def test_missing_baseline_is_one_line_error(self, capsys):
        assert main(
            [BAD_LOCKS, "--flow", "--baseline", "no/such/baseline.json"]
        ) == 2
        err = capsys.readouterr().err
        assert "does not exist" in err
        assert "Traceback" not in err

    def test_malformed_baseline_is_one_line_error(self, tmp_path, capsys):
        path = tmp_path / "baseline.json"
        # Throwaway tmp fixture; tearing is fine here.
        path.write_text(  # repro-lint: disable=RL106
            json.dumps({"version": 7, "suppressions": []})
        )
        assert main(
            [BAD_LOCKS, "--flow", "--baseline", str(path)]
        ) == 2
        assert "unsupported version" in capsys.readouterr().err


class TestSarifFlag:
    def test_sarif_written_alongside_report(self, tmp_path, capsys):
        out_path = tmp_path / "findings.sarif"
        assert main(
            [BAD_LOCKS, "--flow", "--sarif", str(out_path)]
        ) == 1
        document = json.loads(out_path.read_text())
        assert document["version"] == "2.1.0"
        results = document["runs"][0]["results"]
        assert {r["ruleId"] for r in results} == {"RF301", "RF302"}
        # Physical locations point into the fixture package.
        uris = {
            r["locations"][0]["physicalLocation"]["artifactLocation"][
                "uri"
            ]
            for r in results
        }
        assert all("fx_locks_bad" in uri for uri in uris)

    def test_clean_run_writes_empty_sarif(self, tmp_path):
        out_path = tmp_path / "findings.sarif"
        assert main(
            [CLEAN_LOCKS, "--flow", "--sarif", str(out_path)]
        ) == 0
        document = json.loads(out_path.read_text())
        assert document["runs"][0]["results"] == []


class TestInlineSuppression:
    def test_disable_comment_silences_rf_finding(self, tmp_path):
        package = tmp_path / "pkg"
        package.mkdir()
        (package / "__init__.py").write_text("")
        (package / "mod.py").write_text(
            "import threading\n"
            "\n"
            "\n"
            "class Box:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        self.value = 0\n"
            "\n"
            "    def set(self, value):\n"
            "        with self._lock:\n"
            "            self.value = value\n"
            "\n"
            "    def peek(self):\n"
            "        return self.value  "
            "# repro-lint: disable=RF301\n"
        )
        findings, _ = analyze_flow([str(package)])
        assert findings == []
