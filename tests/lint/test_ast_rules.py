"""Each AST rule must fire on a seeded violation and stay silent on the
equivalent clean code."""

import textwrap

from repro.lint.ast_rules import lint_source
from repro.lint.findings import Severity


def _lint(code: str):
    return lint_source(textwrap.dedent(code), path="fixture.py")


def _rule_ids(code: str):
    return [f.rule_id for f in _lint(code)]


class TestGlobalRng:
    def test_np_random_call_fires(self):
        findings = _lint(
            """
            import numpy as np

            def sample():
                return np.random.rand(3)
            """
        )
        assert [f.rule_id for f in findings] == ["RL101"]
        assert findings[0].line == 5
        assert "np.random.rand" in findings[0].message

    def test_np_random_seed_fires(self):
        assert _rule_ids(
            """
            import numpy as np
            np.random.seed(0)
            """
        ) == ["RL101"]

    def test_stdlib_random_fires(self):
        assert _rule_ids(
            """
            import random
            x = random.choice([1, 2, 3])
            """
        ) == ["RL101"]

    def test_from_import_fires(self):
        assert _rule_ids(
            """
            from random import shuffle
            shuffle([1, 2])
            """
        ) == ["RL101"]

    def test_numpy_random_submodule_alias_fires(self):
        assert _rule_ids(
            """
            import numpy.random as npr
            npr.normal(0.0, 1.0)
            """
        ) == ["RL101"]

    def test_generator_api_is_clean(self):
        assert _rule_ids(
            """
            import numpy as np

            def sample(seed):
                rng = np.random.default_rng(seed)
                seq = np.random.SeedSequence(seed)
                gen = np.random.Generator(np.random.PCG64(seed))
                return rng.normal(), seq, gen
            """
        ) == []

    def test_unrelated_random_attribute_is_clean(self):
        # A local object that happens to have a .random() method.
        assert _rule_ids(
            """
            def draw(rng):
                return rng.random()
            """
        ) == []


class TestFloatKey:
    def test_dict_literal_float_key_fires(self):
        findings = _lint("TABLE = {0.5: 'a', 1: 'b'}")
        assert [f.rule_id for f in findings] == ["RL102"]

    def test_subscript_float_key_fires(self):
        assert _rule_ids(
            """
            cache = {}
            cache[0.3] = 1
            """
        ) == ["RL102"]

    def test_tuple_key_with_float_element_fires(self):
        assert _rule_ids(
            """
            entries = {}
            entries[(3, 0.1)] = 2.5
            """
        ) == ["RL102"]

    def test_quantized_key_is_clean(self):
        assert _rule_ids(
            """
            entries = {}

            def put(layer, factor, ms):
                entries[(layer, round(factor, 1))] = ms
            """
        ) == []

    def test_int_keys_are_clean(self):
        assert _rule_ids("TABLE = {5: 'a', 10: 'b'}") == []

    def test_float_values_are_clean(self):
        assert _rule_ids("TABLE = {'a': 0.5}") == []


class TestWorkspaceMutation:
    def test_augassign_on_workspace_buffer_fires(self):
        findings = _lint(
            """
            def forward(self, x):
                buf = self._workspace.get(x.shape)
                buf += 1.0
                return buf
            """
        )
        assert [f.rule_id for f in findings] == ["RL103"]

    def test_subscript_store_on_as_table_fires(self):
        assert _rule_ids(
            """
            def patch(lut):
                table = lut.as_table()
                table.cells[0, 0, 0, 0] = 0.0
            """
        ) == ["RL103"]

    def test_fill_on_cache_result_fires(self):
        assert _rule_ids(
            """
            def reset(cache, arch, fn):
                value = cache.get_or_eval(arch, fn)
                value.fill(0.0)
            """
        ) == ["RL103"]

    def test_store_on_shared_view_fires(self):
        # SharedWeightStore views alias memory mapped into every worker
        # process — in-place writes there corrupt concurrent evaluations.
        assert _rule_ids(
            """
            def poke(store, name):
                view = store.shared_view(name)
                view[0] = 1.0
            """
        ) == ["RL103"]

    def test_augassign_on_shared_view_fires(self):
        assert _rule_ids(
            """
            def decay(store, name):
                weights = store.shared_view(name)
                weights *= 0.99
            """
        ) == ["RL103"]

    def test_shared_view_copy_is_clean(self):
        assert _rule_ids(
            """
            def snapshot(store, name):
                local = store.shared_view(name).copy()
                local += 1.0
                return local
            """
        ) == []

    def test_copy_then_mutate_is_clean(self):
        assert _rule_ids(
            """
            def forward(self, x):
                buf = self._workspace.get(x.shape).copy()
                local = buf + 1.0
                return local
            """
        ) == []

    def test_rebinding_clears_tracking(self):
        assert _rule_ids(
            """
            def forward(self, x, y):
                buf = self._workspace.get(x.shape)
                out = compute(buf)
                buf = y.copy()
                buf += 1.0
                return out
            """
        ) == []

    def test_plain_dict_get_is_clean(self):
        assert _rule_ids(
            """
            def read(options):
                value = options.get("mode")
                value += "x"
                return value
            """
        ) == []


class TestMutableDefaultAndBareExcept:
    def test_mutable_default_fires(self):
        assert _rule_ids("def f(x, acc=[]):\n    return acc") == ["RL104"]

    def test_dict_call_default_fires(self):
        assert _rule_ids("def f(x, acc=dict()):\n    return acc") == ["RL104"]

    def test_none_default_is_clean(self):
        assert _rule_ids("def f(x, acc=None):\n    return acc") == []

    def test_bare_except_fires(self):
        findings = _lint(
            """
            try:
                risky()
            except:
                pass
            """
        )
        assert [f.rule_id for f in findings] == ["RL105"]
        assert findings[0].severity is Severity.ERROR

    def test_typed_except_is_clean(self):
        assert _rule_ids(
            """
            try:
                risky()
            except ValueError:
                pass
            """
        ) == []


class TestRawJsonWrite:
    def test_json_dump_fires(self):
        findings = _lint(
            """
            import json

            def save(obj, handle):
                json.dump(obj, handle)
            """
        )
        assert [f.rule_id for f in findings] == ["RL106"]
        assert findings[0].severity is Severity.WARNING
        assert "atomic_write_json" in findings[0].message

    def test_direct_dump_import_fires(self):
        assert _rule_ids(
            """
            from json import dump

            def save(obj, handle):
                dump(obj, handle)
            """
        ) == ["RL106"]

    def test_write_text_of_dumps_fires(self):
        assert _rule_ids(
            """
            import json

            def save(path, obj):
                path.write_text(json.dumps(obj, indent=2) + "\\n")
            """
        ) == ["RL106"]

    def test_handle_write_of_dumps_fires(self):
        assert _rule_ids(
            """
            import json

            def save(handle, obj):
                handle.write(json.dumps(obj))
            """
        ) == ["RL106"]

    def test_atomic_helper_is_clean(self):
        assert _rule_ids(
            """
            from repro.runstate.atomic import atomic_write_json, atomic_write_text

            def save(path, obj, text):
                atomic_write_json(path, obj)
                atomic_write_text(path, text)
            """
        ) == []

    def test_non_json_write_is_clean(self):
        assert _rule_ids(
            """
            def save(path, text):
                path.write_text(text)
            """
        ) == []

    def test_json_loads_is_clean(self):
        assert _rule_ids(
            """
            import json

            def load(path):
                return json.loads(path.read_text())
            """
        ) == []

    def test_suppression_works(self):
        assert _rule_ids(
            """
            import json

            def save(obj, handle):
                json.dump(obj, handle)  # repro-lint: disable=RL106
            """
        ) == []


class TestDirectWorkerPool:
    def test_direct_construction_fires(self):
        findings = _lint(
            """
            from repro.parallel import WorkerPool

            def evaluate(fn, archs):
                with WorkerPool(fn, workers=4) as pool:
                    return pool.map(archs)
            """
        )
        assert [f.rule_id for f in findings] == ["RL107"]
        assert findings[0].severity is Severity.ERROR
        assert "create_backend" in findings[0].message

    def test_qualified_construction_fires(self):
        assert _rule_ids(
            """
            import repro.parallel.pool as pool_mod

            def evaluate(fn):
                return pool_mod.WorkerPool(fn, workers=2)
            """
        ) == ["RL107"]

    def test_factory_call_is_clean(self):
        assert _rule_ids(
            """
            from repro.parallel import create_backend

            def evaluate(fn, archs, backend):
                with create_backend(backend, fn, workers=4) as pool:
                    return pool.map(archs)
            """
        ) == []

    def test_backend_layer_is_exempt(self):
        code = textwrap.dedent(
            """
            from repro.parallel.pool import WorkerPool

            def make(fn):
                return WorkerPool(fn, workers=2)
            """
        )
        assert [
            f.rule_id
            for f in lint_source(code, path="src/repro/parallel/backend.py")
        ] == []
        assert [
            f.rule_id
            for f in lint_source(code, path="tests/parallel/test_pool.py")
        ] == []
        assert [
            f.rule_id for f in lint_source(code, path="src/repro/core/x.py")
        ] == ["RL107"]

    def test_suppression_comment_silences(self):
        assert _rule_ids(
            """
            from repro.parallel import WorkerPool

            def make(fn):
                return WorkerPool(fn)  # repro-lint: disable=RL107
            """
        ) == []


class TestDirectSocketServer:
    def test_http_server_construction_fires(self):
        findings = _lint(
            """
            from http.server import ThreadingHTTPServer, BaseHTTPRequestHandler

            def serve(handler):
                return ThreadingHTTPServer(("127.0.0.1", 0), handler)
            """
        )
        assert [f.rule_id for f in findings] == ["RL108"]
        assert findings[0].severity is Severity.ERROR
        assert "repro.serve" in findings[0].message

    def test_raw_socket_and_connection_fire(self):
        assert _rule_ids(
            """
            import socket
            from http.client import HTTPConnection

            def probe(host, port):
                sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
                conn = HTTPConnection(host, port)
                return sock, conn
            """
        ) == ["RL108", "RL108"]

    def test_serve_client_usage_is_clean(self):
        assert _rule_ids(
            """
            from repro.serve import ServeClient

            def fetch(host, port):
                return ServeClient(host, port).metrics()
            """
        ) == []

    def test_serve_layer_is_exempt(self):
        code = textwrap.dedent(
            """
            from http.server import ThreadingHTTPServer

            def bind(handler):
                return ThreadingHTTPServer(("127.0.0.1", 0), handler)
            """
        )
        assert [
            f.rule_id
            for f in lint_source(code, path="src/repro/serve/server.py")
        ] == []
        assert [
            f.rule_id
            for f in lint_source(code, path="tests/serve/test_server.py")
        ] == []
        assert [
            f.rule_id for f in lint_source(code, path="src/repro/cli.py")
        ] == ["RL108"]

    def test_suppression_comment_silences(self):
        assert _rule_ids(
            """
            import socket

            def probe():
                return socket.create_connection(("::1", 80))  # repro-lint: disable=RL108
            """
        ) == []


class TestUnboundedBlockingWait:
    """RL109 fires only inside the threaded runtime layers."""

    IN_SCOPE = "src/repro/serve/service.py"

    def _lint_at(self, code: str, path: str):
        return [
            f.rule_id
            for f in lint_source(textwrap.dedent(code), path=path)
        ]

    def test_bare_event_wait_fires_in_scope(self):
        code = """
            import threading

            def block(ready: threading.Event):
                ready.wait()
            """
        assert self._lint_at(code, self.IN_SCOPE) == ["RL109"]
        assert self._lint_at(code, "src/repro/parallel/pool.py") == [
            "RL109"
        ]
        assert self._lint_at(
            code, "src/repro/resilience/chaos.py"
        ) == ["RL109"]

    def test_out_of_scope_paths_are_silent(self):
        code = """
            import threading

            def block(ready: threading.Event):
                ready.wait()
            """
        assert self._lint_at(code, "fixture.py") == []
        assert self._lint_at(code, "src/repro/core/nsga2.py") == []

    def test_timeout_forms_are_clean(self):
        assert self._lint_at(
            """
            def poll(ready, cond, jobs):
                ready.wait(timeout=1.0)
                cond.wait(0.5)
                jobs.get(timeout=1.0)
            """,
            self.IN_SCOPE,
        ) == []

    def test_futures_wait_needs_a_timeout(self):
        code = """
            from concurrent.futures import wait

            def drain(futures):
                wait(futures)
            """
        assert self._lint_at(code, self.IN_SCOPE) == ["RL109"]
        assert self._lint_at(
            """
            from concurrent.futures import wait

            def drain(futures):
                wait(futures, timeout=5.0)
            """,
            self.IN_SCOPE,
        ) == []

    def test_queue_get_flagged_only_on_queueish_receivers(self):
        assert self._lint_at(
            """
            def take(self):
                return self._queue.get()
            """,
            self.IN_SCOPE,
        ) == ["RL109"]
        assert self._lint_at(
            """
            def take(inbox, config):
                item = inbox.get()
                return item, config.get()
            """,
            self.IN_SCOPE,
        ) == ["RL109"]

    def test_suppression_comment_silences(self):
        assert self._lint_at(
            """
            def block(ready):
                ready.wait()  # repro-lint: disable=RL109
            """,
            self.IN_SCOPE,
        ) == []


class TestSuppression:
    def test_named_suppression_silences_rule(self):
        assert _rule_ids(
            """
            import numpy as np
            np.random.seed(0)  # repro-lint: disable=RL101
            """
        ) == []

    def test_bare_suppression_silences_everything(self):
        assert _rule_ids(
            """
            TABLE = {0.5: 'a'}  # repro-lint: disable
            """
        ) == []

    def test_wrong_rule_id_does_not_suppress(self):
        assert _rule_ids(
            """
            import numpy as np
            np.random.seed(0)  # repro-lint: disable=RL102
            """
        ) == ["RL101"]


class TestHarness:
    def test_syntax_error_reported_not_raised(self):
        findings = _lint("def broken(:\n    pass")
        assert [f.rule_id for f in findings] == ["RL100"]
        assert findings[0].severity is Severity.ERROR

    def test_findings_carry_file_and_line(self):
        findings = _lint(
            """
            import numpy as np
            np.random.seed(0)
            """
        )
        assert findings[0].file == "fixture.py"
        assert findings[0].line == 3
