"""Space/encoding/shrink-plan checkers: seeded violations fire with the
right rule id; the bundled presets and the paper's schedule are clean."""

import pytest

from repro.core.shrinking import default_stage_layers
from repro.lint.space_check import (
    check_encoding,
    check_shrink_plan,
    check_space,
)
from repro.space import Architecture, SearchSpace, imagenet_a, mini, proxy


@pytest.fixture(scope="module")
def space():
    return SearchSpace(proxy())


class TestEncoding:
    def test_member_architecture_is_clean(self, space, rng):
        arch = space.sample(rng)
        assert check_encoding(space, arch) == []

    def test_wrong_layer_count_fires(self, space):
        arch = Architecture.uniform(space.num_layers + 1)
        findings = check_encoding(space, arch)
        assert [f.rule_id for f in findings] == ["RD203"]

    def test_shrink_plan_violation_fires(self, space, rng):
        # Pin the last layer to op 1, then encode an arch using op 2
        # there — valid in the full space, invalid after shrinking.
        last = space.num_layers - 1
        shrunk = space.fix_operator(last, 1)
        arch = space.sample(rng)
        arch = arch.with_op(last, 2)
        findings = check_encoding(shrunk, arch)
        assert len(findings) == 1
        assert findings[0].rule_id == "RD203"
        assert f"layer {last}: op 2" in findings[0].message

    def test_off_grid_factor_fires(self, space, rng):
        arch = space.sample(rng).with_factor(0, 0.55)
        findings = check_encoding(space, arch)
        assert [f.rule_id for f in findings] == ["RD203"]
        assert "factor 0.55" in findings[0].message


class TestSpaceConsistency:
    @pytest.mark.parametrize("factory", [imagenet_a, mini, proxy])
    def test_presets_are_clean(self, factory):
        assert check_space(SearchSpace(factory())) == []

    def test_shrunk_space_is_still_clean(self, space):
        assert check_space(space.fix_operator(0, 3)) == []

    def test_off_grid_candidate_factor_fires(self):
        tampered = SearchSpace(proxy())
        tampered.candidate_factors[2] = (0.25, 1.0)
        findings = check_space(tampered)
        assert [f.rule_id for f in findings] == ["RD204"]
        assert "layer 2" in findings[0].message


class TestShrinkPlan:
    def test_paper_schedule_is_clean(self, space):
        plan = default_stage_layers(space.num_layers)
        assert check_shrink_plan(space, plan) == []

    def test_imagenet_a_schedule_is_clean(self):
        space_a = SearchSpace(imagenet_a())
        plan = default_stage_layers(space_a.num_layers)
        assert plan[0] == (19, 18, 17, 16)  # the paper's stage 1
        assert check_shrink_plan(space_a, plan) == []

    def test_ascending_stage_fires(self, space):
        findings = check_shrink_plan(space, [(5, 6, 7)])
        assert "RD205" in {f.rule_id for f in findings}
        assert any("descending" in f.message for f in findings)

    def test_front_to_back_stages_fire(self, space):
        # Stage 2 must precede stage 1's earliest fixed layer.
        findings = check_shrink_plan(space, [(5, 4), (7, 6)])
        assert [f.rule_id for f in findings] == ["RD205"]
        assert "does not precede" in findings[0].message

    def test_duplicate_layer_fires(self, space):
        findings = check_shrink_plan(space, [(7, 6), (6, 5)])
        assert any("fixed twice" in f.message for f in findings)

    def test_out_of_range_layer_fires(self, space):
        findings = check_shrink_plan(space, [(space.num_layers,)])
        assert any("outside" in f.message for f in findings)

    def test_empty_stage_fires(self, space):
        findings = check_shrink_plan(space, [()])
        assert [f.rule_id for f in findings] == ["RD205"]
