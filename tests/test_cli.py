"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_search_defaults(self):
        args = build_parser().parse_args(["search"])
        assert args.device == "edge"
        assert args.target == 34.0

    def test_unknown_device_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["search", "--device", "tpu"])


class TestCommands:
    def test_predict_writes_lut(self, tmp_path, capsys):
        rc = main(["--out", str(tmp_path), "predict", "--device", "gpu"])
        assert rc == 0
        lut_file = tmp_path / "lut_gpu_a.json"
        assert lut_file.exists()
        payload = json.loads(lut_file.read_text())
        assert payload["device"] == "gpu"
        out = capsys.readouterr().out
        assert "bias B" in out
        assert "RMSE" in out

    def test_table1_baselines_only(self, tmp_path, capsys):
        rc = main(["--out", str(tmp_path), "table1", "--baselines-only"])
        assert rc == 0
        text = (tmp_path / "table1.txt").read_text()
        assert "MobileNetV2" in text
        assert "DARTS" in text
        md = (tmp_path / "table1.md").read_text()
        assert md.startswith("| Model")

    def test_search_writes_artifact(self, tmp_path, capsys):
        rc = main([
            "--out", str(tmp_path),
            "search", "--device", "edge", "--target", "34",
        ])
        assert rc == 0
        artifact = json.loads(
            (tmp_path / "search_edge_a_34ms.json").read_text()
        )
        assert artifact["device"] == "edge"
        assert 0 < artifact["top1_error"] < 100
        assert len(artifact["generations"]) == 20
        assert "ops" in artifact["architecture"]

    def test_front_writes_csv(self, tmp_path, capsys):
        rc = main(["--out", str(tmp_path), "front", "--device", "edge"])
        assert rc == 0
        csv = (tmp_path / "front_edge_a.csv").read_text()
        header, *rows = csv.strip().splitlines()
        assert header == "latency_ms,proxy_accuracy"
        assert len(rows) >= 3
        lats = [float(r.split(",")[0]) for r in rows]
        assert lats == sorted(lats)


class TestBackendFlag:
    """--backend must reach the evaluation layer and never change bytes."""

    def test_front_backend_choice_is_bit_identical(self, tmp_path, capsys):
        serial_dir = tmp_path / "serial"
        multi_dir = tmp_path / "multi"
        assert main(["--out", str(serial_dir), "front",
                     "--backend", "serial"]) == 0
        assert main(["--out", str(multi_dir), "front",
                     "--backend", "multiprocess", "--workers", "2"]) == 0
        serial_csv = (serial_dir / "front_edge_a.csv").read_bytes()
        multi_csv = (multi_dir / "front_edge_a.csv").read_bytes()
        assert serial_csv == multi_csv

    def test_predict_backend_choice_is_bit_identical(self, tmp_path, capsys):
        serial_dir = tmp_path / "serial"
        multi_dir = tmp_path / "multi"
        assert main(["--out", str(serial_dir), "predict",
                     "--backend", "serial"]) == 0
        assert main(["--out", str(multi_dir), "predict",
                     "--backend", "multiprocess", "--workers", "2"]) == 0
        serial_lut = (serial_dir / "lut_edge_a.json").read_bytes()
        multi_lut = (multi_dir / "lut_edge_a.json").read_bytes()
        assert serial_lut == multi_lut


class TestEnergyCommand:
    def test_energy_writes_csv(self, tmp_path, capsys):
        from repro.cli import main

        rc = main([
            "--out", str(tmp_path),
            "energy", "--device", "edge", "--samples", "12",
        ])
        assert rc == 0
        csv = (tmp_path / "energy_edge_a.csv").read_text()
        header, *rows = csv.strip().splitlines()
        assert header == "latency_ms,energy_mj,predicted_mj"
        assert len(rows) == 12
        out = capsys.readouterr().out
        assert "bias" in out


class TestConfigPassthrough:
    def test_custom_shrink_schedule(self, tmp_path):
        from repro.core import EvolutionConfig, HSCoNAS, HSCoNASConfig
        from repro.hardware import get_device
        from repro.space import SearchSpace, proxy

        space = SearchSpace(proxy())
        cfg = HSCoNASConfig(
            target_ms=1.3,
            lut_samples_per_cell=1,
            bias_calibration_archs=5,
            quality_samples=5,
            shrink_stage_layers=((7,), (5,)),
            evolution=EvolutionConfig(
                generations=2, population_size=8, num_parents=3
            ),
        )
        result = HSCoNAS(space, get_device("gpu"), cfg).run()
        assert set(result.final_space.fixed_layers()) == {7, 5}
