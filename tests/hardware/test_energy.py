"""Tests for the energy model and predictor (the future-work extension)."""

import numpy as np
import pytest

from repro.hardware import EnergyModel, EnergyPredictor, get_device
from repro.space import Architecture, SearchSpace, proxy
from repro.space.operators import Primitive


@pytest.fixture(scope="module")
def small_space():
    return SearchSpace(proxy())


@pytest.fixture(scope="module")
def edge_energy():
    return EnergyModel(get_device("edge"))


def _prim(flops=1e6, br=1e4, bw=1e4, kind="conv"):
    return Primitive("t", kind, flops, br, bw)


class TestEnergyModel:
    def test_primitive_energy_positive(self, edge_energy):
        assert edge_energy.primitive_energy_j(_prim()) > 0.0

    def test_dynamic_energy_scales_with_flops(self, edge_energy):
        small = edge_energy.primitive_energy_j(_prim(flops=1e6))
        large = edge_energy.primitive_energy_j(_prim(flops=1e9))
        assert large > small

    def test_static_term_charges_time(self, edge_energy):
        """A zero-flops memory op still costs energy (static power over
        its execution time)."""
        e = edge_energy.primitive_energy_j(_prim(flops=0, br=0, bw=0, kind="memory"))
        spec = edge_energy.device.spec
        assert e == pytest.approx(spec.static_watts * spec.launch_overhead_s)

    def test_batch_scales_energy(self, edge_energy):
        e1 = edge_energy.primitive_energy_j(_prim(), batch=1)
        e16 = edge_energy.primitive_energy_j(_prim(), batch=16)
        assert e16 > e1

    def test_network_energy_monotone_in_capacity(self, small_space, edge_energy):
        small = Architecture.uniform(small_space.num_layers, 0, 0.3)
        large = Architecture.uniform(small_space.num_layers, 0, 1.0)
        assert edge_energy.arch_energy_mj(small_space, small) < (
            edge_energy.arch_energy_mj(small_space, large)
        )

    def test_noise_free_deterministic(self, small_space, edge_energy, rng):
        arch = small_space.sample(rng)
        a = edge_energy.arch_energy_mj(small_space, arch)
        b = edge_energy.arch_energy_mj(small_space, arch)
        assert a == b

    def test_measurement_noise(self, small_space, edge_energy, rng):
        arch = small_space.sample(rng)
        noise_rng = np.random.default_rng(0)
        runs = {
            edge_energy.arch_energy_mj(small_space, arch, rng=noise_rng)
            for _ in range(5)
        }
        assert len(runs) == 5

    def test_edge_device_most_efficient(self, small_space, rng):
        """The edge SoC burns less energy per inference than the
        workstation parts — as its existence implies."""
        arch = small_space.sample(rng)
        energies = {
            key: EnergyModel(get_device(key)).arch_energy_mj(small_space, arch)
            / get_device(key).spec.batch_size
            for key in ("gpu", "cpu", "edge")
        }
        assert energies["edge"] < energies["gpu"]
        assert energies["edge"] < energies["cpu"]

    def test_energy_not_proportional_to_latency(self, space_a, rng):
        """Energy and latency must be distinct objectives (otherwise the
        multi-constraint extension would be vacuous). Checked at paper
        scale, where dynamic switching energy is a real share of the
        total (tiny proxy networks are overhead-dominated on both axes).
        """
        device = get_device("edge")
        model = EnergyModel(device)
        archs = [space_a.sample(rng) for _ in range(30)]
        lat = np.array([device.latency_ms(space_a, a) for a in archs])
        eng = np.array([model.arch_energy_mj(space_a, a) for a in archs])
        ratio = eng / lat
        assert ratio.std() / ratio.mean() > 0.02


class TestEnergyPredictor:
    @pytest.fixture(scope="class")
    def predictor(self, small_space):
        model = EnergyModel(get_device("edge"))
        pred = EnergyPredictor(small_space, model).build(seed=0)
        pred.calibrate_bias(num_archs=20, seed=1)
        return pred, model

    def test_predict_before_build_raises(self, small_space):
        model = EnergyModel(get_device("edge"))
        pred = EnergyPredictor(small_space, model)
        with pytest.raises(RuntimeError):
            pred.predict(Architecture.uniform(small_space.num_layers))

    def test_invalid_samples_raises(self, small_space):
        model = EnergyModel(get_device("edge"))
        with pytest.raises(ValueError):
            EnergyPredictor(small_space, model).build(samples_per_cell=0)

    def test_bias_positive(self, predictor):
        pred, _ = predictor
        assert pred.bias_mj > 0.0
        assert pred.calibrated

    def test_prediction_accuracy(self, predictor, small_space, rng):
        pred, model = predictor
        errors = []
        for _ in range(20):
            arch = small_space.sample(rng)
            truth = model.arch_energy_mj(small_space, arch)
            errors.append(abs(pred.predict(arch) - truth) / truth)
        assert float(np.mean(errors)) < 0.05  # within 5% on average

    def test_rank_correlation(self, predictor, small_space):
        from repro.hardware.metrics import spearman

        pred, model = predictor
        rng = np.random.default_rng(5)
        archs = [small_space.sample(rng) for _ in range(40)]
        predicted = [pred.predict(a) for a in archs]
        truth = [model.arch_energy_mj(small_space, a) for a in archs]
        assert spearman(predicted, truth) > 0.9
