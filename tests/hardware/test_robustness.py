"""Robustness / failure-injection tests for the hardware stack."""

import numpy as np
import pytest

from repro.hardware import (
    LatencyLUT,
    LatencyPredictor,
    OnDeviceProfiler,
    get_device,
)
from repro.hardware.spec import DeviceSpec
from repro.space import Architecture, SearchSpace, proxy


@pytest.fixture(scope="module")
def small_space():
    return SearchSpace(proxy())


class TestZeroNoiseDevice:
    def test_measurements_equal_ground_truth(self, small_space, rng):
        from dataclasses import replace

        spec = replace(get_device("gpu").spec, noise_sigma=0.0)
        from repro.hardware import DeviceModel

        device = DeviceModel(spec)
        arch = small_space.sample(rng)
        noisy_rng = np.random.default_rng(0)
        assert device.latency_ms(small_space, arch, rng=noisy_rng) == (
            device.latency_ms(small_space, arch)
        )

    def test_predictor_near_perfect_without_noise(self, small_space):
        """With a noise-free device, the LUT+B predictor's only error is
        boundary-count variance — RMSE collapses below the noisy case."""
        from dataclasses import replace

        from repro.hardware import DeviceModel

        quiet = DeviceModel(replace(get_device("gpu").spec, noise_sigma=0.0))
        noisy = get_device("gpu")

        def fit_eval(device):
            lut = LatencyLUT.build(small_space, device, samples_per_cell=1, seed=0)
            pred = LatencyPredictor(lut, small_space)
            profiler = OnDeviceProfiler(device, seed=1)
            pred.calibrate_bias(small_space, profiler, num_archs=15, seed=2)
            eval_rng = np.random.default_rng(3)
            archs = [small_space.sample(eval_rng) for _ in range(20)]
            return pred.evaluate(small_space, profiler, archs).rmse_ms

        assert fit_eval(quiet) < fit_eval(noisy)


class TestShrunkSpaceInterop:
    def test_full_space_lut_serves_shrunk_space_archs(self, small_space, rng):
        """The pipeline builds the LUT before shrinking; it must keep
        serving predictions for architectures of any shrunk subspace."""
        device = get_device("edge")
        lut = LatencyLUT.build(small_space, device, samples_per_cell=1, seed=0)
        predictor = LatencyPredictor(lut, small_space)
        shrunk = small_space.fix_operator(7, 2).fix_operator(6, 0)
        for _ in range(10):
            arch = shrunk.sample(rng)
            assert predictor.predict(arch) > 0.0

    def test_lut_built_on_shrunk_space_rejects_foreign_ops(self, small_space, rng):
        """A LUT built *after* shrinking has no cells for pruned ops."""
        device = get_device("edge")
        shrunk = small_space.fix_operator(7, 2)
        lut = LatencyLUT.build(shrunk, device, samples_per_cell=1, seed=0)
        foreign = Architecture.uniform(small_space.num_layers, op_index=0)
        with pytest.raises(KeyError):
            lut.sum_ops_ms(foreign, shrunk)


class TestDegenerateSpecs:
    def test_zero_overheads_allowed(self):
        spec = DeviceSpec(
            name="ideal", key="ideal", batch_size=1,
            peak_macs_per_s=1e12, bandwidth_bytes_per_s=1e11,
            launch_overhead_s=0.0, layer_overhead_s=0.0, base_overhead_s=0.0,
        )
        assert spec.launch_overhead_s == 0.0

    def test_negative_overhead_rejected(self):
        with pytest.raises(ValueError):
            DeviceSpec(
                name="bad", key="bad", batch_size=1,
                peak_macs_per_s=1e12, bandwidth_bytes_per_s=1e11,
                launch_overhead_s=-1.0, layer_overhead_s=0.0,
                base_overhead_s=0.0,
            )

    def test_negative_energy_rejected(self):
        with pytest.raises(ValueError):
            DeviceSpec(
                name="bad", key="bad", batch_size=1,
                peak_macs_per_s=1e12, bandwidth_bytes_per_s=1e11,
                launch_overhead_s=0.0, layer_overhead_s=0.0,
                base_overhead_s=0.0, pj_per_mac=-1.0,
            )

    def test_negative_noise_rejected(self):
        with pytest.raises(ValueError):
            DeviceSpec(
                name="bad", key="bad", batch_size=1,
                peak_macs_per_s=1e12, bandwidth_bytes_per_s=1e11,
                launch_overhead_s=0.0, layer_overhead_s=0.0,
                base_overhead_s=0.0, noise_sigma=-0.1,
            )


class TestPredictorEdgeCases:
    def test_double_bias_calibration_converges(self, small_space):
        """Recalibrating B must not drift (idempotent up to noise)."""
        device = get_device("gpu")
        lut = LatencyLUT.build(small_space, device, samples_per_cell=1, seed=0)
        predictor = LatencyPredictor(lut, small_space)
        profiler = OnDeviceProfiler(device, seed=1)
        b1 = predictor.calibrate_bias(small_space, profiler, num_archs=25, seed=2)
        b2 = predictor.calibrate_bias(small_space, profiler, num_archs=25, seed=3)
        assert b2 == pytest.approx(b1, rel=0.3)

    def test_lut_json_handles_stem_head(self, small_space):
        device = get_device("gpu")
        lut = LatencyLUT.build(small_space, device, samples_per_cell=1, seed=0)
        restored = LatencyLUT.from_json(lut.to_json())
        assert restored.stem_ms == lut.stem_ms
        assert restored.head_ms == lut.head_ms

    def test_legacy_json_without_stem_head(self):
        """Older LUT JSON (no stem/head fields) still loads."""
        import json

        payload = json.dumps({
            "device": "gpu",
            "entries": [
                {"layer": 0, "op": 0, "cin": 8, "factor": 1.0, "ms": 0.5}
            ],
        })
        lut = LatencyLUT.from_json(payload)
        assert lut.stem_ms == 0.0
        assert lut.head_ms == {}
