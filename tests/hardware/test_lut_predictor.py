"""Tests for the latency LUT and the Eq. 2-3 predictor."""

import numpy as np
import pytest

from repro.hardware import (
    LatencyLUT,
    LatencyPredictor,
    OnDeviceProfiler,
    get_device,
)
from repro.space import SearchSpace, proxy


@pytest.fixture(scope="module")
def small_space():
    return SearchSpace(proxy())


@pytest.fixture(scope="module")
def device():
    return get_device("gpu")


@pytest.fixture(scope="module")
def lut(small_space, device):
    return LatencyLUT.build(small_space, device, samples_per_cell=2, seed=0)


class TestLUTBuild:
    def test_covers_all_cells(self, small_space, lut):
        from repro.hardware.lut import layer_cin_choices

        expected = sum(
            len(layer_cin_choices(small_space, layer))
            * len(small_space.candidate_ops[layer])
            * len(small_space.candidate_factors[layer])
            for layer in range(small_space.num_layers)
        )
        assert len(lut) == expected

    def test_lookup_known_cell(self, small_space, lut):
        cin = small_space.config.stem_channels
        value = lut.lookup(0, 0, cin, 1.0)
        assert value > 0.0

    def test_missing_cell_raises(self, small_space, lut):
        cin = small_space.config.stem_channels
        with pytest.raises(KeyError, match="nearest existing cell"):
            lut.lookup(0, 0, cin + 999, 1.0)
        with pytest.raises(KeyError, match="nearest existing cell"):
            lut.lookup(0, 0, cin, 0.04)  # quantizes to 0.0: off the grid

    def test_lookup_quantizes_drifted_factors(self, small_space, lut):
        """0.1 * 3 style float drift must still hit the 0.3 cell."""
        cin = small_space.config.stem_channels
        drifted = 0.1 * 3  # 0.30000000000000004
        assert lut.lookup(0, 0, cin, drifted) == lut.lookup(0, 0, cin, 0.3)
        assert lut.lookup(0, 0, cin, 0.5000001) == lut.lookup(0, 0, cin, 0.5)

    def test_layer0_single_cin(self, small_space):
        from repro.hardware.lut import layer_cin_choices

        assert layer_cin_choices(small_space, 0) == [
            small_space.config.stem_channels
        ]
        assert len(layer_cin_choices(small_space, 1)) > 1

    def test_invalid_samples_raises(self, small_space, device):
        with pytest.raises(ValueError):
            LatencyLUT.build(small_space, device, samples_per_cell=0)

    def test_sum_ops_adds_layer_entries(self, small_space, lut, rng):
        arch = small_space.sample(rng)
        channels = small_space.active_channels(arch)
        manual = lut.stem_ms
        for i, (op, f) in enumerate(zip(arch.ops, arch.factors)):
            manual += lut.lookup(i, op, channels[i][0], f)
        manual += lut.head_ms[channels[-1][1]]
        assert lut.sum_ops_ms(arch, small_space) == pytest.approx(manual)

    def test_stem_and_head_cells_present(self, lut):
        assert lut.stem_ms > 0.0
        assert lut.head_ms
        assert all(v > 0.0 for v in lut.head_ms.values())

    def test_deterministic_for_seed(self, small_space, device):
        a = LatencyLUT.build(small_space, device, samples_per_cell=2, seed=3)
        b = LatencyLUT.build(small_space, device, samples_per_cell=2, seed=3)
        assert a.entries == b.entries

    def test_json_roundtrip(self, lut):
        restored = LatencyLUT.from_json(lut.to_json())
        assert restored.device_key == lut.device_key
        assert restored.entries == lut.entries


class TestPredictor:
    def test_uncalibrated_underestimates(self, small_space, device, lut, rng):
        """Sum-of-ops misses stem/head and boundary overheads, so it
        must systematically underestimate — the reason Eq. 3 exists."""
        predictor = LatencyPredictor(lut, small_space)
        profiler = OnDeviceProfiler(device, seed=1)
        archs = [small_space.sample(rng) for _ in range(10)]
        measured = profiler.measure_many_ms(small_space, archs)
        predicted = predictor.predict_many(archs)
        assert np.mean(predicted) < np.mean(measured)

    def test_bias_calibration_centers_predictions(self, small_space, device, lut):
        predictor = LatencyPredictor(lut, small_space)
        profiler = OnDeviceProfiler(device, seed=1)
        bias = predictor.calibrate_bias(small_space, profiler, num_archs=30, seed=2)
        assert bias > 0.0  # compensates the missing overheads
        assert predictor.calibrated

        eval_rng = np.random.default_rng(77)
        archs = [small_space.sample(eval_rng) for _ in range(30)]
        report = predictor.evaluate(small_space, profiler, archs)
        assert abs(report.bias_ms) < 0.2  # near-zero residual bias

    def test_bias_reduces_rmse(self, small_space, device, lut):
        profiler = OnDeviceProfiler(device, seed=1)
        eval_rng = np.random.default_rng(7)
        archs = [small_space.sample(eval_rng) for _ in range(25)]

        raw = LatencyPredictor(lut, small_space).evaluate(small_space, profiler, archs)
        calibrated = LatencyPredictor(lut, small_space)
        calibrated.calibrate_bias(small_space, profiler, num_archs=30, seed=2)
        fixed = calibrated.evaluate(small_space, profiler, archs)
        assert fixed.rmse_ms < raw.rmse_ms

    def test_high_rank_correlation(self, small_space, device, lut):
        """The predictor must rank architectures correctly (what the EA
        actually needs)."""
        predictor = LatencyPredictor(lut, small_space)
        profiler = OnDeviceProfiler(device, seed=1)
        predictor.calibrate_bias(small_space, profiler, num_archs=20, seed=2)
        eval_rng = np.random.default_rng(5)
        archs = [small_space.sample(eval_rng) for _ in range(40)]
        report = predictor.evaluate(small_space, profiler, archs)
        assert report.pearson_r > 0.9
        assert report.spearman_rho > 0.85

    def test_explicit_arch_list_calibration(self, small_space, device, lut, rng):
        predictor = LatencyPredictor(lut, small_space)
        profiler = OnDeviceProfiler(device, seed=1)
        archs = [small_space.sample(rng) for _ in range(5)]
        predictor.calibrate_bias(small_space, profiler, archs=archs)
        assert predictor.calibrated

    def test_empty_calibration_raises(self, small_space, device, lut):
        predictor = LatencyPredictor(lut, small_space)
        profiler = OnDeviceProfiler(device, seed=1)
        with pytest.raises(ValueError):
            predictor.calibrate_bias(small_space, profiler, archs=[])

    def test_empty_evaluation_raises(self, small_space, device, lut):
        predictor = LatencyPredictor(lut, small_space)
        profiler = OnDeviceProfiler(device, seed=1)
        with pytest.raises(ValueError):
            predictor.evaluate(small_space, profiler, [])

    def test_report_str(self, small_space, device, lut, rng):
        predictor = LatencyPredictor(lut, small_space)
        profiler = OnDeviceProfiler(device, seed=1)
        report = predictor.evaluate(
            small_space, profiler, [small_space.sample(rng)]
        )
        text = str(report)
        assert "RMSE" in text and "gpu" in text


class TestProfiler:
    def test_median_reduces_noise(self, small_space, device, rng):
        arch = small_space.sample(rng)
        truth = device.latency_ms(small_space, arch)
        profiler = OnDeviceProfiler(device, warmup=2, repeats=15, seed=0)
        measured = profiler.measure_ms(small_space, arch)
        single = device.latency_ms(
            small_space, arch, rng=np.random.default_rng(123)
        )
        # median-of-15 should be at least as close as a typical single run
        assert abs(measured - truth) < max(abs(single - truth), truth * 0.02)

    def test_ground_truth_matches_device(self, small_space, device, rng):
        arch = small_space.sample(rng)
        profiler = OnDeviceProfiler(device, seed=0)
        assert profiler.ground_truth_ms(small_space, arch) == pytest.approx(
            device.latency_ms(small_space, arch)
        )

    def test_invalid_params_raise(self, device):
        with pytest.raises(ValueError):
            OnDeviceProfiler(device, warmup=-1)
        with pytest.raises(ValueError):
            OnDeviceProfiler(device, repeats=0)
