"""Batched LUT/predictor queries vs. their scalar counterparts.

``sum_ops_ms_batch`` and ``predict_many`` replace per-architecture dict
walks with one fancy-indexed gather over :meth:`LatencyLUT.as_table`;
the contract is *bit-exact* agreement with the scalar path, not just
approximate, so search trajectories are unchanged by the rewrite.
"""

import numpy as np
import pytest

from repro.hardware import (
    DenseLatencyTable,
    LatencyLUT,
    LatencyPredictor,
    MeasurementLedger,
    get_device,
)
from repro.space import Architecture, SearchSpace, mini, proxy

NUM_ARCHS = 200


@pytest.fixture(scope="module")
def device():
    return get_device("cpu")


@pytest.fixture(scope="module", params=["proxy", "mini"])
def space(request):
    """Both spaces: ``mini`` has the 0.75 factor (quantizes to 0.8)."""
    cfg = proxy() if request.param == "proxy" else mini()
    return SearchSpace(cfg)


@pytest.fixture(scope="module")
def lut(space, device):
    return LatencyLUT.build(space, device, samples_per_cell=2, seed=0)


@pytest.fixture(scope="module")
def archs(space):
    rng = np.random.default_rng(99)
    return [space.sample(rng) for _ in range(NUM_ARCHS)]


class TestDenseTable:
    def test_shape_and_memoization(self, space, lut):
        table = lut.as_table()
        assert isinstance(table, DenseLatencyTable)
        assert table.num_layers == space.num_layers
        assert table.cells.ndim == 4 and table.cells.shape[3] == 11
        assert lut.as_table() is table  # memoized

    def test_known_cell_roundtrip(self, space, lut):
        table = lut.as_table()
        cin = space.config.stem_channels
        factor = space.candidate_factors[0][0]
        decile = int(round(round(factor, 1) * 10))
        assert table.cells[0, 0, cin, decile] == lut.lookup(0, 0, cin, factor)

    def test_missing_cells_are_nan(self, lut):
        table = lut.as_table()
        # Factor decile 0 (factor 0.0) is never profiled.
        assert np.isnan(table.cells[0, 0, :, 0]).all()


class TestBatchSums:
    def test_batch_matches_scalar_exactly(self, space, lut, archs):
        scalar = np.array([lut.sum_ops_ms(a, space) for a in archs])
        batch = lut.sum_ops_ms_batch(archs, space)
        # Bit-exact, not approx: identical accumulation order.
        np.testing.assert_array_equal(batch, scalar)

    def test_empty_batch(self, space, lut):
        out = lut.sum_ops_ms_batch([], space)
        assert out.shape == (0,)

    def test_single_arch_batch(self, space, lut, archs):
        out = lut.sum_ops_ms_batch(archs[:1], space)
        assert out[0] == lut.sum_ops_ms(archs[0], space)

    def test_missing_cell_raises_keyerror(self, space, lut):
        bad = Architecture(
            tuple(0 for _ in range(space.num_layers)),
            tuple(0.04 for _ in range(space.num_layers)),
        )
        with pytest.raises(KeyError, match="nearest existing cell"):
            lut.sum_ops_ms_batch([bad], space)


class TestPredictMany:
    def test_matches_scalar_exactly(self, space, lut, archs):
        predictor = LatencyPredictor(lut, space)
        predictor.bias_ms = 1.375  # exercise the bias addition too
        many = predictor.predict_many(archs)
        assert many == [predictor.predict(a) for a in archs]

    def test_ledger_counts_batch_predictions(self, space, lut, archs):
        ledger = MeasurementLedger()
        predictor = LatencyPredictor(lut, space, ledger=ledger)
        before = ledger.predictor_queries
        predictor.predict_many(archs[:7])
        assert ledger.predictor_queries == before + 7
