"""Fault-injection tests: retry/backoff, flaky devices, degradation.

The acceptance scenario at the bottom runs the whole pipeline against a
flaky device and requires it to *complete* — with a nonzero degradation
report instead of an unhandled exception.
"""

import numpy as np
import pytest

from repro.core import EvolutionConfig, HSCoNAS, HSCoNASConfig
from repro.hardware import (
    FlakyDevice,
    LatencyLUT,
    OnDeviceProfiler,
    ProbeError,
    ProbeTimeout,
    RetryPolicy,
    get_device,
    robust_median,
    run_with_retry,
)

FAST_RETRY = RetryPolicy(attempts=3, backoff_s=0.0)  # no real sleeping


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_factor=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ValueError):
            RetryPolicy(timeout_s=0.0)

    def test_exponential_backoff_without_jitter(self):
        policy = RetryPolicy(backoff_s=0.1, backoff_factor=2.0, jitter=0.0)
        delays = [policy.delay_s(i, rng=None) for i in range(3)]
        assert delays == pytest.approx([0.1, 0.2, 0.4])

    def test_jitter_stays_in_band(self):
        policy = RetryPolicy(backoff_s=0.1, backoff_factor=2.0, jitter=0.5)
        rng = np.random.default_rng(0)
        for i in range(4):
            base = 0.1 * 2.0**i
            for _ in range(20):
                assert (
                    0.5 * base <= policy.delay_s(i, rng) <= 1.5 * base
                )


class TestRunWithRetry:
    def test_first_try_success_sleeps_never(self):
        sleeps = []
        value, attempts = run_with_retry(
            lambda: 42, RetryPolicy(attempts=3, backoff_s=1.0),
            sleep=sleeps.append,
        )
        assert (value, attempts) == (42, 1)
        assert sleeps == []

    def test_fail_twice_then_succeed(self):
        calls = {"n": 0}

        def probe():
            calls["n"] += 1
            if calls["n"] <= 2:
                raise ProbeError(f"flake #{calls['n']}")
            return 3.14

        sleeps = []
        value, attempts = run_with_retry(
            probe,
            RetryPolicy(attempts=3, backoff_s=0.1, jitter=0.0),
            sleep=sleeps.append,
        )
        assert (value, attempts) == (3.14, 3)
        assert sleeps == pytest.approx([0.1, 0.2])  # exponential backoff

    def test_exhaustion_reraises_last_fault(self):
        calls = {"n": 0}

        def probe():
            calls["n"] += 1
            raise ProbeError(f"flake #{calls['n']}")

        with pytest.raises(ProbeError, match="flake #3"):
            run_with_retry(probe, FAST_RETRY, sleep=lambda _: None)
        assert calls["n"] == 3  # the budget, no more

    def test_always_timeout_exhausts_budget(self):
        # Fake clock: every attempt appears to take 2 s against a 1 s
        # budget, so even a probe that "returned" counts as timed out.
        ticks = iter(range(0, 1000, 2))

        def probe():
            return 1.0

        with pytest.raises(ProbeTimeout, match="budget"):
            run_with_retry(
                probe,
                RetryPolicy(attempts=3, backoff_s=0.0, timeout_s=1.0),
                sleep=lambda _: None,
                clock=lambda: float(next(ticks)),
            )

    def test_non_probe_errors_propagate_immediately(self):
        calls = {"n": 0}

        def probe():
            calls["n"] += 1
            raise ValueError("a bug, not a device fault")

        with pytest.raises(ValueError):
            run_with_retry(probe, FAST_RETRY, sleep=lambda _: None)
        assert calls["n"] == 1  # no retry for non-ProbeError


class TestFlakyDevice:
    def test_rate_validation(self):
        base = get_device("gpu")
        with pytest.raises(ValueError):
            FlakyDevice(base, failure_rate=1.5)
        with pytest.raises(ValueError):
            FlakyDevice(base, failure_rate=0.7, timeout_rate=0.7)
        with pytest.raises(ValueError):
            FlakyDevice(base, fail_first=-1)

    def test_fail_first_then_healthy_value(self, proxy_space):
        base = get_device("gpu")
        flaky = FlakyDevice(base, fail_first=2)
        prims = proxy_space.stem_primitives()
        for _ in range(2):
            with pytest.raises(ProbeError, match="fail_first"):
                flaky.primitives_time_ms(prims)
        assert flaky.primitives_time_ms(prims) == base.primitives_time_ms(
            prims
        )
        assert flaky.probes == 3
        assert flaky.injected_failures == 2

    def test_zero_rates_is_transparent(self, proxy_space, rng):
        base = get_device("gpu")
        flaky = FlakyDevice(base)
        arch = proxy_space.sample(rng)
        assert flaky.latency_ms(proxy_space, arch) == base.latency_ms(
            proxy_space, arch
        )

    def test_timeouts_and_failures_counted(self, proxy_space, rng):
        flaky = FlakyDevice(
            get_device("gpu"), failure_rate=0.3, timeout_rate=0.3, seed=0
        )
        arch = proxy_space.sample(rng)
        faults = 0
        for _ in range(60):
            try:
                flaky.latency_ms(proxy_space, arch)
            except ProbeTimeout:
                faults += 1
            except ProbeError:
                faults += 1
        assert faults == flaky.injected_failures + flaky.injected_timeouts
        assert flaky.injected_timeouts > 0
        assert flaky.injected_failures > 0


class TestRobustMedian:
    def test_plain_median_without_threshold(self):
        assert robust_median([3.0, 1.0, 2.0], None) == 2.0

    def test_outlier_rejected(self):
        runs = [10.0, 10.1, 9.9, 10.05, 50.0]
        assert robust_median(runs, None) == 10.05
        assert robust_median(runs, 3.0) == pytest.approx(10.025)

    def test_identical_runs_unchanged(self):
        assert robust_median([5.0] * 4 + [100.0], 3.0) == 5.0  # zero MAD

    def test_short_series_untouched(self):
        assert robust_median([1.0, 100.0], 3.0) == pytest.approx(50.5)


class TestProfilerRetry:
    def test_healthy_device_identical_with_and_without_retry(
        self, proxy_space, rng
    ):
        """Retry jitter must never touch the measurement-noise stream."""
        arch = proxy_space.sample(rng)
        plain = OnDeviceProfiler(get_device("gpu"), seed=9)
        retried = OnDeviceProfiler(
            get_device("gpu"), seed=9, retry=RetryPolicy()
        )
        assert plain.measure_ms(proxy_space, arch) == retried.measure_ms(
            proxy_space, arch
        )

    def test_retries_recover_the_healthy_value(self, proxy_space, rng):
        arch = proxy_space.sample(rng)
        healthy = OnDeviceProfiler(get_device("gpu"), seed=9)
        flaky = OnDeviceProfiler(
            FlakyDevice(get_device("gpu"), fail_first=2),
            seed=9,
            retry=FAST_RETRY,
        )
        assert flaky.measure_ms(proxy_space, arch) == healthy.measure_ms(
            proxy_space, arch
        )
        assert flaky.degradation.probe_retries == 2

    def test_measure_many_skip_drops_dead_sessions(self, proxy_space, rng):
        dead = FlakyDevice(get_device("gpu"), failure_rate=1.0)
        profiler = OnDeviceProfiler(dead, seed=0, retry=FAST_RETRY)
        archs = [proxy_space.sample(rng) for _ in range(3)]
        values = profiler.measure_many_ms(proxy_space, archs, on_failure="skip")
        assert all(np.isnan(v) for v in values)
        assert profiler.degradation.dropped_measurements == 3
        assert profiler.degradation.events

    def test_measure_many_raise_propagates(self, proxy_space, rng):
        dead = FlakyDevice(get_device("gpu"), failure_rate=1.0)
        profiler = OnDeviceProfiler(dead, seed=0, retry=FAST_RETRY)
        with pytest.raises(ProbeError):
            profiler.measure_many_ms(
                proxy_space, [proxy_space.sample(rng)], on_failure="raise"
            )


class TestLutDegradation:
    @pytest.fixture(scope="class")
    def luts(self, proxy_space):
        healthy = LatencyLUT.build(
            proxy_space, get_device("gpu"), samples_per_cell=1, seed=0
        )
        flaky_device = FlakyDevice(
            get_device("gpu"), failure_rate=0.4, seed=3
        )
        degraded = LatencyLUT.build(
            proxy_space,
            flaky_device,
            samples_per_cell=1,
            seed=0,
            retry=RetryPolicy(attempts=2, backoff_s=0.0),
        )
        return healthy, degraded

    def _missing_cell(self, proxy_space, healthy, degraded):
        from repro.hardware.lut import _cell_key
        from repro.lint.lut_check import reachable_cells

        for layer, op, cin, factor in reachable_cells(proxy_space):
            if (
                _cell_key(layer, op, cin, factor) in healthy.entries
                and _cell_key(layer, op, cin, factor) not in degraded.entries
            ):
                return layer, op, cin, factor
        pytest.fail("flaky build unexpectedly lost no cells")

    def test_failed_cells_are_omitted_and_reported(self, luts):
        healthy, degraded = luts
        assert len(degraded.entries) < len(healthy.entries)
        assert degraded.build_degradation.missing_cells > 0
        # Stem/head probes can fail too, so the report may count a couple
        # more missing cells than the op-table diff alone.
        assert degraded.build_degradation.missing_cells >= (
            len(healthy.entries) - len(degraded.entries)
        )

    def test_strict_lookup_still_raises(self, proxy_space, luts):
        healthy, degraded = luts
        layer, op, cin, factor = self._missing_cell(
            proxy_space, healthy, degraded
        )
        with pytest.raises(KeyError):
            degraded.lookup(layer, op, cin, factor)

    def test_fallback_serves_nearest_cell(self, proxy_space, luts):
        healthy, degraded = luts
        layer, op, cin, factor = self._missing_cell(
            proxy_space, healthy, degraded
        )
        report = type(degraded.build_degradation)()
        value = degraded.lookup(
            layer, op, cin, factor, fallback=True, report=report
        )
        assert np.isfinite(value) and value > 0
        assert report.fallback_cells == 1
        assert report.fallback_lookups == 1
        # Second lookup is memoized: same value, no new distinct cell.
        again = degraded.lookup(
            layer, op, cin, factor, fallback=True, report=report
        )
        assert again == value
        assert report.fallback_cells == 1
        assert report.fallback_lookups == 2

    def test_batch_and_scalar_fallback_agree(self, proxy_space, luts, rng):
        _, degraded = luts
        archs = [proxy_space.sample(rng) for _ in range(20)]
        scalar = [
            degraded.sum_ops_ms(a, proxy_space, fallback=True) for a in archs
        ]
        batch = degraded.sum_ops_ms_batch(archs, proxy_space, fallback=True)
        assert scalar == pytest.approx(list(batch), abs=0.0)


class TestFlakyPipeline:
    def test_search_completes_with_degradation_report(self, proxy_space):
        """ISSUE acceptance: flaky device, whole pipeline, no unhandled
        exception, nonzero degradation report."""
        cfg = HSCoNASConfig(
            target_ms=1.3,
            lut_samples_per_cell=1,
            bias_calibration_archs=8,
            quality_samples=10,
            evolution=EvolutionConfig(
                generations=3, population_size=10, num_parents=4
            ),
            seed=0,
            retry=FAST_RETRY,
            degraded_ok=True,
        )
        device = FlakyDevice(
            get_device("gpu"), failure_rate=0.15, timeout_rate=0.05, seed=11
        )
        result = HSCoNAS(proxy_space, device, cfg).run()
        assert proxy_space.contains(result.arch)
        assert np.isfinite(result.measured_latency_ms)
        assert result.degradation is not None
        assert result.degradation.degraded()
        assert "measurement health" in result.summary()
        assert device.injected_failures + device.injected_timeouts > 0
