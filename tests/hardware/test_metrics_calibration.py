"""Tests for metrics and anchor calibration."""

import numpy as np
import pytest

from repro.hardware import calibrate_time_scale, pearson, rmse, spearman
from repro.hardware.calibration import calibrated_device, calibrated_devices
from repro.hardware.metrics import mae, mean_bias
from repro.hardware.spec import gpu_spec


class TestMetrics:
    def test_rmse_zero_for_identical(self):
        assert rmse([1.0, 2.0], [1.0, 2.0]) == 0.0

    def test_rmse_known_value(self):
        assert rmse([0.0, 0.0], [3.0, 4.0]) == pytest.approx(np.sqrt(12.5))

    def test_mae(self):
        assert mae([0.0, 0.0], [1.0, -3.0]) == pytest.approx(2.0)

    def test_mean_bias_signed(self):
        assert mean_bias([2.0, 2.0], [1.0, 1.0]) == pytest.approx(1.0)
        assert mean_bias([0.0, 0.0], [1.0, 1.0]) == pytest.approx(-1.0)

    def test_pearson_perfect_linear(self):
        x = [1.0, 2.0, 3.0]
        assert pearson(x, [2.0, 4.0, 6.0]) == pytest.approx(1.0)
        assert pearson(x, [-1.0, -2.0, -3.0]) == pytest.approx(-1.0)

    def test_spearman_rank_only(self):
        x = [1.0, 2.0, 3.0]
        y = [1.0, 10.0, 100.0]  # nonlinear but monotone
        assert spearman(x, y) == pytest.approx(1.0)

    def test_constant_input_returns_zero(self):
        assert pearson([1.0, 1.0], [1.0, 2.0]) == 0.0
        assert spearman([1.0, 2.0], [3.0, 3.0]) == 0.0

    def test_mismatched_lengths_raise(self):
        with pytest.raises(ValueError):
            rmse([1.0], [1.0, 2.0])

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            rmse([], [])


class TestCalibration:
    def test_scale_is_geomean_ratio(self):
        pairs = [(1.0, 2.0), (2.0, 4.0)]
        assert calibrate_time_scale(pairs) == pytest.approx(2.0)

    def test_mixed_ratios(self):
        pairs = [(1.0, 2.0), (1.0, 8.0)]
        assert calibrate_time_scale(pairs) == pytest.approx(4.0)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            calibrate_time_scale([])

    def test_nonpositive_raises(self):
        with pytest.raises(ValueError):
            calibrate_time_scale([(0.0, 1.0)])

    def test_calibrated_device_applies_scale(self):
        dev = calibrated_device(gpu_spec(), [(1.0, 3.0)])
        assert dev.spec.time_scale == pytest.approx(3.0)

    def test_precalibrated_spec_rejected(self):
        with pytest.raises(ValueError):
            calibrated_device(gpu_spec().with_time_scale(2.0), [(1.0, 3.0)])


class TestCalibratedDevices:
    """Acceptance-level checks on the Table-I anchor calibration."""

    @pytest.fixture(scope="class")
    def devices(self):
        return calibrated_devices()

    def test_all_three_devices(self, devices):
        assert set(devices) == {"gpu", "cpu", "edge"}

    def test_scales_are_moderate(self, devices):
        """The uncalibrated specs should already be in the right ballpark
        (within ~2x), or the roofline parameters are wrong."""
        for dev in devices.values():
            assert 0.5 < dev.spec.time_scale < 2.5

    def test_published_rank_correlation(self, devices):
        """Relative ordering of baselines must come out of the model."""
        from repro.baselines.zoo import all_baselines
        from repro.hardware.metrics import spearman as rho

        built = [(m, m.build()) for m in all_baselines()]
        for key, dev in devices.items():
            sims = [dev.run_network_ms(net.layers) for _, net in built]
            pubs = [m.published.latency_ms(key) for m, _ in built]
            assert rho(sims, pubs) > 0.3, key

    def test_darts_slowest_everywhere(self, devices):
        """Table I: the hardware-agnostic DARTS is the slowest model on
        every device."""
        from repro.baselines.zoo import all_baselines

        for key, dev in devices.items():
            latencies = {
                m.name: dev.run_network_ms(m.build().layers)
                for m in all_baselines()
            }
            assert max(latencies, key=latencies.get) == "DARTS", key

    def test_anchor_levels_within_factor_two(self, devices):
        from repro.baselines.zoo import all_baselines

        for key, dev in devices.items():
            for m in all_baselines():
                sim = dev.run_network_ms(m.build().layers)
                pub = m.published.latency_ms(key)
                assert 0.5 < sim / pub < 2.0, (key, m.name)
