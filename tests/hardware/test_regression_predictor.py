"""Tests for the feature-regression latency predictor."""

import numpy as np
import pytest

from repro.hardware import (
    FeatureLatencyPredictor,
    FlopsLatencyPredictor,
    OnDeviceProfiler,
    get_device,
)
from repro.hardware.regression_predictor import architecture_features
from repro.space import Architecture, SearchSpace, proxy


@pytest.fixture(scope="module")
def small_space():
    return SearchSpace(proxy())


@pytest.fixture(scope="module")
def profiler():
    return OnDeviceProfiler(get_device("cpu"), seed=0)


@pytest.fixture(scope="module")
def fitted(small_space, profiler):
    return FeatureLatencyPredictor(small_space).fit(
        profiler, num_archs=40, seed=0
    )


class TestFeatures:
    def test_vector_shape_and_bias(self, small_space, rng):
        feats = architecture_features(small_space, small_space.sample(rng))
        assert feats.shape == (6,)
        assert feats[-1] == 1.0  # bias term

    def test_kind_split(self, small_space):
        """An all-xception arch has relatively more dw MACs than an
        all-k3 arch."""
        xcep = Architecture.uniform(small_space.num_layers, op_index=3)
        k3 = Architecture.uniform(small_space.num_layers, op_index=0)
        fx = architecture_features(small_space, xcep)
        f3 = architecture_features(small_space, k3)
        ratio_x = fx[1] / (fx[0] + fx[1])
        ratio_3 = f3[1] / (f3[0] + f3[1])
        assert ratio_x > ratio_3

    def test_skips_reduce_kernel_count(self, small_space):
        skippy = Architecture.uniform(small_space.num_layers, op_index=4)
        dense = Architecture.uniform(small_space.num_layers, op_index=0)
        f_skip = architecture_features(small_space, skippy)
        f_dense = architecture_features(small_space, dense)
        assert f_skip[3] < f_dense[3]


class TestFit:
    def test_predict_before_fit_raises(self, small_space, rng):
        pred = FeatureLatencyPredictor(small_space)
        with pytest.raises(RuntimeError):
            pred.predict(small_space.sample(rng))
        with pytest.raises(RuntimeError):
            pred.coefficients()

    def test_too_few_archs_raises(self, small_space, profiler, rng):
        pred = FeatureLatencyPredictor(small_space)
        with pytest.raises(ValueError):
            pred.fit(profiler, archs=[small_space.sample(rng)] * 3)

    def test_coefficients_named(self, fitted):
        coeffs = fitted.coefficients()
        assert set(coeffs) == {
            "conv_macs", "dwconv_macs", "bytes_moved",
            "kernel_count", "layer_count", "bias",
        }

    def test_kernel_count_costs_time_on_cpu(self, fitted):
        """The CPU's per-kernel dispatch cost must be learned as a
        positive kernel-count coefficient."""
        assert fitted.coefficients()["kernel_count"] > 0.0


class TestAccuracy:
    def test_beats_flops_affine(self, fitted, small_space, profiler):
        """More features, better model: the regression must beat the
        FLOPs-only predictor on the kernel-count-dominated CPU."""
        flops_pred = FlopsLatencyPredictor(small_space).fit(
            profiler, num_archs=40, seed=0
        )
        rng = np.random.default_rng(5)
        holdout = [small_space.sample(rng) for _ in range(40)]
        reg_report = fitted.evaluate(profiler, holdout)
        flops_report = flops_pred.evaluate(profiler, holdout)
        assert reg_report.rmse_ms < flops_report.rmse_ms

    def test_high_rank_correlation(self, fitted, small_space, profiler):
        rng = np.random.default_rng(6)
        holdout = [small_space.sample(rng) for _ in range(40)]
        report = fitted.evaluate(profiler, holdout)
        assert report.spearman_rho > 0.9

    def test_empty_evaluation_raises(self, fitted, profiler):
        with pytest.raises(ValueError):
            fitted.evaluate(profiler, [])
