"""Tests for search-cost accounting (the measurement ledger)."""

import pytest

from repro.core import EvolutionConfig, HSCoNAS, HSCoNASConfig
from repro.hardware import (
    LatencyLUT,
    LatencyPredictor,
    MeasurementLedger,
    OnDeviceProfiler,
    get_device,
)


class TestLedgerBasics:
    def test_counters_start_zero(self):
        ledger = MeasurementLedger()
        assert ledger.measurement_sessions == 0
        assert ledger.measurement_runs == 0
        assert ledger.lut_cells == 0
        assert ledger.predictor_queries == 0

    def test_record_measurement(self):
        ledger = MeasurementLedger()
        ledger.record_measurement(runs=8)
        ledger.record_measurement(runs=8)
        assert ledger.measurement_sessions == 2
        assert ledger.measurement_runs == 16

    def test_invalid_runs_raises(self):
        with pytest.raises(ValueError):
            MeasurementLedger().record_measurement(runs=0)

    def test_frozen_rejects_measurements(self):
        ledger = MeasurementLedger()
        ledger.freeze_measurements()
        with pytest.raises(RuntimeError):
            ledger.record_measurement(runs=1)
        ledger.thaw_measurements()
        ledger.record_measurement(runs=1)  # fine again

    def test_frozen_allows_predictions(self):
        ledger = MeasurementLedger()
        ledger.freeze_measurements()
        ledger.record_prediction()
        assert ledger.predictor_queries == 1

    def test_summary_mentions_all_counters(self):
        ledger = MeasurementLedger()
        ledger.record_measurement(runs=3)
        ledger.record_lut_cells(10)
        ledger.record_prediction()
        text = ledger.summary()
        assert "1" in text and "10" in text


class TestLedgerIntegration:
    def test_profiler_records_sessions(self, proxy_space, rng):
        ledger = MeasurementLedger()
        profiler = OnDeviceProfiler(
            get_device("gpu"), warmup=2, repeats=3, seed=0, ledger=ledger
        )
        profiler.measure_ms(proxy_space, proxy_space.sample(rng))
        assert ledger.measurement_sessions == 1
        assert ledger.measurement_runs == 5

    def test_lut_records_cells(self, proxy_space):
        ledger = MeasurementLedger()
        lut = LatencyLUT.build(
            proxy_space, get_device("gpu"), samples_per_cell=1,
            seed=0, ledger=ledger,
        )
        assert ledger.lut_cells == len(lut) + 1 + len(lut.head_ms)

    def test_predictor_records_queries(self, proxy_space, rng):
        ledger = MeasurementLedger()
        lut = LatencyLUT.build(proxy_space, get_device("gpu"),
                               samples_per_cell=1, seed=0)
        predictor = LatencyPredictor(lut, proxy_space, ledger=ledger)
        for _ in range(7):
            predictor.predict(proxy_space.sample(rng))
        assert ledger.predictor_queries == 7


class TestPipelineCost:
    def test_search_loop_is_measurement_free(self, proxy_space):
        """The paper's headline efficiency claim, verified: the whole
        shrinking + EA phase performs zero on-device measurements —
        only M calibration sessions before and one verification after."""
        cfg = HSCoNASConfig(
            target_ms=1.3,
            lut_samples_per_cell=1,
            bias_calibration_archs=8,
            quality_samples=10,
            evolution=EvolutionConfig(
                generations=4, population_size=12, num_parents=5
            ),
            seed=0,
        )
        nas = HSCoNAS(proxy_space, get_device("gpu"), cfg)
        result = nas.run()
        ledger = result.ledger
        assert ledger is not None

        # Sessions: M bias-calibration archs + the final verification.
        assert ledger.measurement_sessions == cfg.bias_calibration_archs + 1
        # The search itself leaned on the predictor, heavily.
        assert ledger.predictor_queries > 100
        assert ledger.predictor_queries > 10 * ledger.measurement_sessions
        # Cost summary shows up in the human-readable report.
        assert "search cost" in result.summary()
