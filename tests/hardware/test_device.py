"""Tests for device specs and the execution model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware import DeviceModel, cpu_spec, edge_spec, get_device, gpu_spec
from repro.hardware.spec import DeviceSpec, spec_by_key
from repro.space.operators import Primitive


def _prim(flops=1e6, br=1e4, bw=1e4, kind="conv"):
    return Primitive("t", kind, flops, br, bw)


class TestDeviceSpec:
    def test_paper_batch_sizes(self):
        # Sec. III-A: batch 1 / 16 / 32 for CPU / edge / GPU.
        assert gpu_spec().batch_size == 32
        assert cpu_spec().batch_size == 1
        assert edge_spec().batch_size == 16

    def test_spec_by_key(self):
        assert spec_by_key("gpu").key == "gpu"
        with pytest.raises(KeyError):
            spec_by_key("tpu")

    def test_with_time_scale(self):
        spec = gpu_spec().with_time_scale(2.0)
        assert spec.time_scale == 2.0
        assert gpu_spec().time_scale == 1.0

    def test_invalid_batch_raises(self):
        with pytest.raises(ValueError):
            DeviceSpec("x", "x", 0, 1e12, 1e11, 0, 0, 0)

    def test_invalid_throughput_raises(self):
        with pytest.raises(ValueError):
            DeviceSpec("x", "x", 1, 0, 1e11, 0, 0, 0)

    def test_missing_kind_efficiency_raises(self):
        with pytest.raises(ValueError):
            DeviceSpec("x", "x", 1, 1e12, 1e11, 0, 0, 0,
                       kind_efficiency={"conv": 0.5})

    def test_get_device(self):
        dev = get_device("cpu")
        assert isinstance(dev, DeviceModel)
        assert dev.spec.key == "cpu"

    def test_get_device_with_scale(self):
        dev = get_device("cpu", time_scale=3.0)
        assert dev.spec.time_scale == 3.0


class TestPrimitiveTime:
    def test_launch_overhead_floor(self):
        dev = get_device("gpu")
        t = dev.primitive_time_s(_prim(flops=0, br=0, bw=0, kind="memory"))
        assert t == pytest.approx(dev.spec.launch_overhead_s)

    def test_more_flops_more_time(self):
        dev = get_device("gpu")
        t_small = dev.primitive_time_s(_prim(flops=1e6))
        t_big = dev.primitive_time_s(_prim(flops=1e9))
        assert t_big > t_small

    def test_batch_scales_work(self):
        dev = get_device("gpu")
        t1 = dev.primitive_time_s(_prim(flops=1e9), batch=1)
        t32 = dev.primitive_time_s(_prim(flops=1e9), batch=32)
        assert t32 > t1

    def test_batch_improves_utilization(self):
        """Per-sample time shrinks with batch (small-batch waste)."""
        dev = get_device("gpu")
        per_sample_1 = dev.primitive_time_s(_prim(flops=1e7), batch=1)
        per_sample_32 = dev.primitive_time_s(_prim(flops=1e7), batch=32) / 32
        assert per_sample_32 < per_sample_1

    def test_dwconv_slower_than_conv_at_equal_flops(self):
        dev = get_device("gpu")
        conv = dev.primitive_time_s(_prim(flops=1e9, kind="conv"))
        dw = dev.primitive_time_s(_prim(flops=1e9, kind="dwconv"))
        assert dw > conv

    def test_memory_bound_kernel_uses_bandwidth(self):
        dev = get_device("gpu")
        t = dev.primitive_time_s(_prim(flops=0, br=1e9, bw=1e9, kind="memory"))
        expected = dev.spec.launch_overhead_s + 2e9 * dev.spec.batch_size / (
            dev.spec.bandwidth_bytes_per_s
            * dev.spec.bandwidth_efficiency["memory"]
        )
        assert t == pytest.approx(expected)

    def test_invalid_batch_raises(self):
        with pytest.raises(ValueError):
            get_device("gpu").primitive_time_s(_prim(), batch=0)


class TestRunNetwork:
    def test_empty_network_base_cost(self):
        dev = get_device("cpu")
        ms = dev.run_network_ms([])
        assert ms == pytest.approx(dev.spec.base_overhead_s * 1e3)

    def test_empty_layers_pay_no_boundary(self):
        dev = get_device("cpu")
        with_skip = dev.run_network_ms([[], [_prim()], []])
        without = dev.run_network_ms([[_prim()]])
        assert with_skip == pytest.approx(without)

    def test_layers_add_boundary_overhead(self):
        dev = get_device("cpu")
        one = dev.run_network_ms([[_prim()]])
        two = dev.run_network_ms([[_prim()], [_prim()]])
        per_prim = dev.primitive_time_s(_prim()) * dev.spec.time_scale * 1e3
        boundary = dev.spec.layer_overhead_s * dev.spec.time_scale * 1e3
        assert two - one == pytest.approx(per_prim + boundary)

    def test_noise_free_is_deterministic(self, space_a, rng):
        dev = get_device("edge")
        arch = space_a.sample(rng)
        assert dev.latency_ms(space_a, arch) == dev.latency_ms(space_a, arch)

    def test_noise_varies_measurements(self, space_a, rng):
        dev = get_device("edge")
        arch = space_a.sample(rng)
        noise_rng = np.random.default_rng(0)
        runs = {dev.latency_ms(space_a, arch, rng=noise_rng) for _ in range(5)}
        assert len(runs) == 5

    def test_noise_centered_on_truth(self, space_a, rng):
        dev = get_device("edge")
        arch = space_a.sample(rng)
        truth = dev.latency_ms(space_a, arch)
        noise_rng = np.random.default_rng(0)
        mean = np.mean(
            [dev.latency_ms(space_a, arch, rng=noise_rng) for _ in range(200)]
        )
        assert mean == pytest.approx(truth, rel=0.02)

    def test_time_scale_multiplies(self, space_a, rng):
        arch = space_a.sample(rng)
        base = get_device("gpu").latency_ms(space_a, arch)
        scaled = get_device("gpu", time_scale=2.0).latency_ms(space_a, arch)
        assert scaled == pytest.approx(2 * base)


class TestOperatorTime:
    def test_skip_stride1_free(self, space_a):
        dev = get_device("gpu")
        # layer 1 has stride 1; op 4 is skip
        assert dev.operator_time_ms(space_a, 1, 4, 1.0, cin=48) == 0.0

    def test_larger_factor_slower(self, space_a):
        dev = get_device("cpu")
        slow = dev.operator_time_ms(space_a, 5, 0, 1.0, cin=128)
        fast = dev.operator_time_ms(space_a, 5, 0, 0.3, cin=128)
        assert slow > fast

    def test_k7_slower_than_k3(self, space_a):
        dev = get_device("edge")
        t3 = dev.operator_time_ms(space_a, 5, 0, 1.0, cin=128)
        t7 = dev.operator_time_ms(space_a, 5, 2, 1.0, cin=128)
        assert t7 > t3

    @settings(max_examples=20, deadline=None)
    @given(
        layer=st.integers(min_value=0, max_value=19),
        op=st.integers(min_value=0, max_value=4),
        factor=st.sampled_from([0.1, 0.5, 1.0]),
    )
    def test_operator_time_nonnegative_property(self, layer, op, factor):
        from repro.space import SearchSpace, imagenet_a

        space = SearchSpace(imagenet_a())
        dev = get_device("gpu")
        cin = space.geometry[layer].max_in_channels
        assert dev.operator_time_ms(space, layer, op, factor, cin) >= 0.0
