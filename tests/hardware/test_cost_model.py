"""Tests for the wall-clock search-cost model and predictor breakdown."""

import pytest

from repro.hardware import (
    LatencyLUT,
    LatencyPredictor,
    MeasurementLedger,
    OnDeviceProfiler,
    SearchCostModel,
    get_device,
)


class TestSearchCostModel:
    def _ledger(self, sessions=41, cells=9550, queries=5000):
        ledger = MeasurementLedger()
        for _ in range(sessions):
            ledger.record_measurement(runs=8)
        ledger.record_lut_cells(cells)
        for _ in range(queries):
            ledger.record_prediction()
        return ledger

    def test_estimate_adds_components(self):
        model = SearchCostModel(
            seconds_per_measurement_session=10.0,
            seconds_per_lut_cell=1.0,
            seconds_per_prediction=0.0,
        )
        ledger = self._ledger(sessions=2, cells=3, queries=100)
        assert model.estimate_seconds(ledger) == pytest.approx(2 * 10 + 3)

    def test_counterfactual_dwarfs_actual(self):
        """The paper's payoff: the predictor-driven search is orders of
        magnitude cheaper than measuring every candidate."""
        model = SearchCostModel()
        ledger = self._ledger()
        assert model.savings_factor(ledger) > 10.0

    def test_empty_ledger_raises(self):
        with pytest.raises(ValueError):
            SearchCostModel().savings_factor(MeasurementLedger())

    def test_negative_cost_rejected(self):
        with pytest.raises(ValueError):
            SearchCostModel(seconds_per_measurement_session=-1.0)

    def test_pipeline_savings(self, proxy_space):
        """Savings on an actual pipeline run's ledger."""
        from repro.core import EvolutionConfig, HSCoNAS, HSCoNASConfig

        cfg = HSCoNASConfig(
            target_ms=1.3, lut_samples_per_cell=1,
            bias_calibration_archs=8, quality_samples=10,
            evolution=EvolutionConfig(generations=4, population_size=12,
                                      num_parents=5),
        )
        result = HSCoNAS(proxy_space, get_device("gpu"), cfg).run()
        factor = SearchCostModel().savings_factor(result.ledger)
        assert factor > 3.0


class TestPredictorBreakdown:
    def test_breakdown_sums_to_prediction(self, proxy_space, rng):
        device = get_device("edge")
        lut = LatencyLUT.build(proxy_space, device, samples_per_cell=1, seed=0)
        predictor = LatencyPredictor(lut, proxy_space)
        profiler = OnDeviceProfiler(device, seed=1)
        predictor.calibrate_bias(proxy_space, profiler, num_archs=10, seed=2)

        arch = proxy_space.sample(rng)
        parts = predictor.breakdown(arch)
        total = sum(ms for _, ms in parts)
        assert total == pytest.approx(predictor.predict(arch))

    def test_breakdown_labels(self, proxy_space, rng):
        device = get_device("edge")
        lut = LatencyLUT.build(proxy_space, device, samples_per_cell=1, seed=0)
        predictor = LatencyPredictor(lut, proxy_space)
        arch = proxy_space.sample(rng)
        labels = [name for name, _ in predictor.breakdown(arch)]
        assert labels[0] == "stem"
        assert labels[-1] == "bias B"
        assert any(name.startswith("layer00:") for name in labels)
        assert len(labels) == proxy_space.num_layers + 3
