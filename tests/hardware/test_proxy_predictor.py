"""Tests for the FLOPs-proxy latency predictor (the Fig. 2 straw man)."""

import numpy as np
import pytest

from repro.hardware import (
    FlopsLatencyPredictor,
    LatencyLUT,
    LatencyPredictor,
    OnDeviceProfiler,
    get_device,
)
from repro.space import SearchSpace, proxy


@pytest.fixture(scope="module")
def small_space():
    return SearchSpace(proxy())


@pytest.fixture(scope="module")
def profiler():
    return OnDeviceProfiler(get_device("gpu"), seed=0)


@pytest.fixture(scope="module")
def fitted(small_space, profiler):
    return FlopsLatencyPredictor(small_space).fit(profiler, num_archs=30, seed=0)


class TestFlopsPredictor:
    def test_predict_before_fit_raises(self, small_space, rng):
        pred = FlopsLatencyPredictor(small_space)
        with pytest.raises(RuntimeError):
            pred.predict(small_space.sample(rng))

    def test_too_few_archs_raises(self, small_space, profiler, rng):
        pred = FlopsLatencyPredictor(small_space)
        with pytest.raises(ValueError):
            pred.fit(profiler, archs=[small_space.sample(rng)])

    def test_fit_sets_device_key(self, fitted):
        assert fitted.device_key == "gpu"
        assert fitted.fitted

    def test_predictions_finite_positive_slope(self, fitted):
        assert fitted.slope > 0.0  # more FLOPs, more time

    def test_roughly_unbiased(self, fitted, small_space, profiler):
        rng = np.random.default_rng(7)
        archs = [small_space.sample(rng) for _ in range(30)]
        report = fitted.evaluate(profiler, archs)
        assert abs(report.bias_ms) < report.rmse_ms

    def test_loses_to_lut_plus_b(self, fitted, small_space, profiler):
        """The quantitative version of Fig. 2's message: an op-level
        hardware model beats any FLOPs-based one decisively."""
        device = get_device("gpu")
        lut = LatencyLUT.build(small_space, device, samples_per_cell=2, seed=0)
        lut_pred = LatencyPredictor(lut, small_space)
        lut_pred.calibrate_bias(small_space, profiler, num_archs=30, seed=2)

        rng = np.random.default_rng(9)
        archs = [small_space.sample(rng) for _ in range(40)]
        flops_report = fitted.evaluate(profiler, archs)
        lut_report = lut_pred.evaluate(small_space, profiler, archs)
        assert lut_report.rmse_ms < flops_report.rmse_ms * 0.8
        assert lut_report.spearman_rho > flops_report.spearman_rho
