"""Property-based invariants of the hardware stack (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware import EnergyModel, get_device
from repro.space import Architecture, SearchSpace, proxy
from repro.space.operators import Primitive

_SPACE = SearchSpace(proxy())
_DEVICES = {k: get_device(k) for k in ("gpu", "cpu", "edge")}

factor_choice = st.sampled_from([0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0])


@st.composite
def proxy_arch(draw):
    length = _SPACE.num_layers
    ops = tuple(draw(st.lists(st.integers(0, 4), min_size=length,
                              max_size=length)))
    factors = tuple(draw(st.lists(factor_choice, min_size=length,
                                  max_size=length)))
    return Architecture(ops, factors)


class TestLatencyProperties:
    @settings(max_examples=30, deadline=None)
    @given(arch=proxy_arch(), key=st.sampled_from(["gpu", "cpu", "edge"]))
    def test_latency_positive_and_finite(self, arch, key):
        ms = _DEVICES[key].latency_ms(_SPACE, arch)
        assert np.isfinite(ms) and ms > 0.0

    @settings(max_examples=30, deadline=None)
    @given(arch=proxy_arch(), layer=st.integers(0, 7))
    def test_widening_never_speeds_up(self, arch, layer):
        """Raising one layer's channel factor never reduces noise-free
        latency (more channels = at least as much work everywhere)."""
        device = _DEVICES["edge"]
        narrow = arch.with_factor(layer, 0.3)
        wide = arch.with_factor(layer, 1.0)
        assert device.latency_ms(_SPACE, wide) >= (
            device.latency_ms(_SPACE, narrow) - 1e-12
        )

    @settings(max_examples=30, deadline=None)
    @given(arch=proxy_arch(), layer=st.integers(0, 7))
    def test_skip_is_never_slower(self, arch, layer):
        """Replacing any stride-1 layer's op with skip cannot increase
        latency (the skip executes nothing)."""
        if _SPACE.geometry[layer].stride != 1:
            return
        device = _DEVICES["gpu"]
        skipped = arch.with_op(layer, 4)
        assert device.latency_ms(_SPACE, skipped) <= (
            device.latency_ms(_SPACE, arch) + 1e-12
        )

    @settings(max_examples=25, deadline=None)
    @given(arch=proxy_arch())
    def test_energy_positive(self, arch):
        for key, device in _DEVICES.items():
            mj = EnergyModel(device).arch_energy_mj(_SPACE, arch)
            assert np.isfinite(mj) and mj > 0.0, key

    @settings(max_examples=25, deadline=None)
    @given(
        flops=st.floats(min_value=0.0, max_value=1e10),
        byts=st.floats(min_value=0.0, max_value=1e9),
        kind=st.sampled_from(["conv", "dwconv", "memory"]),
    )
    def test_primitive_time_monotone_floor(self, flops, byts, kind):
        device = _DEVICES["edge"]
        prim = Primitive("p", kind, flops, byts, byts)
        t = device.primitive_time_s(prim)
        assert t >= device.spec.launch_overhead_s


class TestSpaceProperties:
    @settings(max_examples=30, deadline=None)
    @given(arch=proxy_arch())
    def test_flops_params_positive(self, arch):
        assert _SPACE.arch_flops(arch) > 0
        assert _SPACE.arch_params(arch) > 0

    @settings(max_examples=30, deadline=None)
    @given(arch=proxy_arch(), layer=st.integers(0, 7))
    def test_flops_monotone_in_single_factor(self, arch, layer):
        narrow = arch.with_factor(layer, 0.2)
        wide = arch.with_factor(layer, 1.0)
        assert _SPACE.arch_flops(wide) >= _SPACE.arch_flops(narrow)

    @settings(max_examples=30, deadline=None)
    @given(arch=proxy_arch())
    def test_active_channels_bounded(self, arch):
        for (cin, cout), geom in zip(
            _SPACE.active_channels(arch), _SPACE.geometry
        ):
            assert 1 <= cout <= geom.max_out_channels
            assert cin >= 1

    @settings(max_examples=20, deadline=None)
    @given(
        layer=st.integers(0, 7),
        op=st.integers(0, 4),
        seed=st.integers(0, 500),
    )
    def test_shrunk_space_subset_property(self, layer, op, seed):
        """Every sample from a shrunk space is in the parent space."""
        shrunk = _SPACE.fix_operator(layer, op)
        rng = np.random.default_rng(seed)
        arch = shrunk.sample(rng)
        assert _SPACE.contains(arch)
        assert arch.ops[layer] == op
