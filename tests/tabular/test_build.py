"""Recipe-faithful tabulation: determinism across seeds and backends."""

import numpy as np
import pytest

from repro.parallel import fork_available
from repro.tabular import RECIPES, TabularBenchmark, tabulate

from tests.tabular.conftest import micro_accuracy, micro_latency

needs_fork = pytest.mark.skipif(
    not fork_available(), reason="requires the fork start method"
)


def _columns(table):
    cols = {"accuracy": table.accuracy_column()}
    for device in table.devices:
        cols[f"latency__{device}"] = table.latency_column(device)
    return cols


def assert_identical(a, b):
    assert a.indices == b.indices
    for name, col in _columns(a).items():
        assert np.array_equal(col, _columns(b)[name]), name


class TestTabulate:
    def test_exhaustive_multi_device(self, micro_space):
        table = tabulate(micro_space, devices=("edge", "gpu"), seed=3)
        assert len(table) == 100
        assert table.exhaustive
        assert table.devices == ("edge", "gpu")
        assert table.primary_device == "edge"
        assert table.recipe == "front"
        assert table.build_seed == 3

    def test_same_seed_is_bit_identical(self, micro_space):
        first = tabulate(micro_space, devices=("edge",), seed=5)
        second = tabulate(micro_space, devices=("edge",), seed=5)
        assert_identical(first, second)

    def test_different_seed_moves_latency(self, micro_space):
        first = tabulate(micro_space, devices=("edge",), seed=0)
        second = tabulate(micro_space, devices=("edge",), seed=1)
        # The LUT micro-benchmark noise is seeded, so the recorded
        # latency columns must differ while the row set stays fixed.
        assert first.indices == second.indices
        assert not np.array_equal(
            first.latency_column("edge"), second.latency_column("edge")
        )

    def test_sampled_build(self, proxy_space):
        table = tabulate(
            proxy_space, devices=("edge",), seed=0, num_archs=20
        )
        assert len(table) == 20
        assert not table.exhaustive

    def test_search_recipe_differs_from_front(self, micro_space):
        front = tabulate(micro_space, devices=("edge",), seed=0)
        search = tabulate(
            micro_space, devices=("edge",), seed=0, recipe="search"
        )
        assert front.recipe == "front" and search.recipe == "search"
        # 2 vs 4 LUT samples per cell: the latency columns cannot agree.
        assert not np.array_equal(
            front.latency_column("edge"), search.latency_column("edge")
        )

    def test_unknown_recipe_rejected(self, micro_space):
        with pytest.raises(ValueError, match="unknown recipe"):
            tabulate(micro_space, devices=("edge",), recipe="night")
        assert set(RECIPES) == {"front", "search"}

    def test_no_devices_rejected(self, micro_space):
        with pytest.raises(ValueError, match="at least one device"):
            tabulate(micro_space, devices=())


class TestBuildBackends:
    def test_serial_backend_matches_inline(self, micro_space):
        def lat(a):
            return micro_latency(micro_space, a)

        def acc(a):
            return micro_accuracy(micro_space, a)

        inline = TabularBenchmark.build(
            micro_space, lat, acc, num_archs=None
        )
        serial = TabularBenchmark.build(
            micro_space, lat, acc, num_archs=None, backend="serial"
        )
        assert_identical(inline, serial)

    @needs_fork
    def test_multiprocess_build_matches_serial(self, micro_space):
        def lat(a):
            return micro_latency(micro_space, a)

        def acc(a):
            return micro_accuracy(micro_space, a)

        serial = TabularBenchmark.build(
            micro_space, lat, acc, num_archs=None
        )
        parallel = TabularBenchmark.build(
            micro_space,
            lat,
            acc,
            num_archs=None,
            backend="multiprocess",
            workers=2,
        )
        assert_identical(serial, parallel)

    @needs_fork
    def test_multiprocess_tabulate_matches_serial(self, micro_space):
        serial = tabulate(micro_space, devices=("edge",), seed=0)
        parallel = tabulate(
            micro_space,
            devices=("edge",),
            seed=0,
            workers=2,
            backend="multiprocess",
        )
        assert_identical(serial, parallel)

    def test_batched_fns_match_scalar_loop(self, micro_space):
        def lat(a):
            return micro_latency(micro_space, a)

        def acc(a):
            return micro_accuracy(micro_space, a)

        scalar = TabularBenchmark.build(
            micro_space, lat, acc, num_archs=None
        )
        batched = TabularBenchmark.build(
            micro_space,
            lat,
            acc,
            num_archs=None,
            latency_many_fn=lambda archs: [lat(a) for a in archs],
            accuracy_many_fn=lambda archs: [acc(a) for a in archs],
        )
        assert_identical(scalar, batched)
