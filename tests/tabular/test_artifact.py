"""Versioned artifact: round-trip fidelity and loud corruption failure."""

import json

import numpy as np
import pytest

from repro.space import space_for_layout
from repro.tabular import (
    SCHEMA_VERSION,
    TabularArtifactError,
    TabularBenchmark,
    load_artifact,
    load_manifest,
    save_artifact,
)


@pytest.fixture()
def saved(micro_table, tmp_path):
    return save_artifact(micro_table, tmp_path / "artifact")


class TestRoundTrip:
    def test_bit_identical_columns(self, micro_table, saved, micro_space):
        restored = load_artifact(saved, space=micro_space)
        assert restored.indices == micro_table.indices
        assert np.array_equal(
            restored.accuracy_column(), micro_table.accuracy_column()
        )
        for device in micro_table.devices:
            assert np.array_equal(
                restored.latency_column(device),
                micro_table.latency_column(device),
            )

    def test_provenance_preserved(self, micro_table, saved, micro_space):
        restored = load_artifact(saved, space=micro_space)
        assert restored.exhaustive
        assert restored.recipe == "front"
        assert restored.build_seed == 0
        assert restored.devices == micro_table.devices
        assert restored.primary_device == "edge"
        assert restored.fingerprint == micro_table.fingerprint

    def test_manifest_contents(self, saved):
        manifest = load_manifest(saved)
        assert manifest["format"] == SCHEMA_VERSION
        assert manifest["devices"] == ["edge", "gpu"]
        assert manifest["num_archs"] == 100
        assert set(manifest["columns"]) == {
            "index", "accuracy", "latency__edge", "latency__gpu",
        }
        # Checksums are real sha256 hex digests, one per column.
        assert all(
            len(digest) == 64 for digest in manifest["columns"].values()
        )

    def test_layout_recorded_loads_without_space(self, tmp_path):
        space = space_for_layout("mini")
        table = TabularBenchmark(
            space,
            indices=[0, 7, 19],
            accuracy=[0.1, 0.2, 0.3],
            latency={"edge": [1.0, 2.0, 3.0]},
        )
        path = save_artifact(table, tmp_path / "mini", layout="mini")
        restored = load_artifact(path)  # no space handed in
        assert restored.indices == (0, 7, 19)
        assert restored.fingerprint == table.fingerprint

    def test_no_layout_and_no_space_is_actionable(self, saved):
        with pytest.raises(TabularArtifactError, match="records no layout"):
            load_artifact(saved)


class TestCorruptionDetection:
    def test_error_is_a_value_error(self):
        assert issubclass(TabularArtifactError, ValueError)

    def test_missing_manifest(self, tmp_path, micro_space):
        with pytest.raises(
            TabularArtifactError, match="not a tabular artifact"
        ):
            load_artifact(tmp_path / "nowhere", space=micro_space)

    def test_missing_columns_file(self, saved, micro_space):
        (saved / "columns.npz").unlink()
        with pytest.raises(TabularArtifactError, match="missing"):
            load_artifact(saved, space=micro_space)

    def test_invalid_manifest_json(self, saved, micro_space):
        (saved / "manifest.json").write_text("{not json")
        with pytest.raises(TabularArtifactError, match="not valid JSON"):
            load_artifact(saved, space=micro_space)

    def test_wrong_schema_version(self, saved, micro_space):
        manifest = json.loads((saved / "manifest.json").read_text())
        manifest["format"] = SCHEMA_VERSION + 1
        (saved / "manifest.json").write_text(  # repro-lint: disable=RL106
            json.dumps(manifest)
        )
        with pytest.raises(TabularArtifactError, match="rebuild"):
            load_artifact(saved, space=micro_space)

    def test_tampered_fingerprint(self, saved, micro_space):
        manifest = json.loads((saved / "manifest.json").read_text())
        manifest["fingerprint"] = "0" * 64
        (saved / "manifest.json").write_text(  # repro-lint: disable=RL106
            json.dumps(manifest)
        )
        with pytest.raises(
            TabularArtifactError, match="different space"
        ):
            load_artifact(saved, space=micro_space)

    def test_wrong_space_fails_before_lookups(self, saved, proxy_space):
        with pytest.raises(
            TabularArtifactError, match="different space"
        ):
            load_artifact(saved, space=proxy_space)

    def test_corrupted_column_fails_checksum(self, saved, micro_space):
        with np.load(saved / "columns.npz") as payload:
            columns = {name: payload[name] for name in payload.files}
        columns["accuracy"] = columns["accuracy"].copy()
        columns["accuracy"][3] += 0.25  # a single flipped value
        with open(saved / "columns.npz", "wb") as handle:
            np.savez(handle, **columns)
        with pytest.raises(TabularArtifactError, match="checksum"):
            load_artifact(saved, space=micro_space)

    def test_column_set_mismatch(self, saved, micro_space):
        with np.load(saved / "columns.npz") as payload:
            columns = {name: payload[name] for name in payload.files}
        del columns["latency__gpu"]
        with open(saved / "columns.npz", "wb") as handle:
            np.savez(handle, **columns)
        with pytest.raises(
            TabularArtifactError, match="does not match its"
        ):
            load_artifact(saved, space=micro_space)
