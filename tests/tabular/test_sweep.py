"""Scenario sweeps: grid coverage, determinism, oracle gaps, bands."""

import numpy as np
import pytest

from repro.tabular import (
    SweepScenario,
    TabularBenchmark,
    run_scenario,
    run_sweep,
)


@pytest.fixture(scope="module")
def budget(micro_table):
    return float(np.median(micro_table.latency_column("edge")))


def small_sweep(table, budget, **overrides):
    kwargs = dict(
        targets=(budget,),
        seeds=(0, 1),
        devices=("edge",),
        generations=3,
        population_size=8,
        num_parents=3,
    )
    kwargs.update(overrides)
    return run_sweep(table, **kwargs)


class TestRunScenario:
    def test_deterministic_replay(self, micro_table, budget):
        scenario = SweepScenario(device="edge", target_ms=budget, seed=4)
        first = run_scenario(
            micro_table, scenario, generations=3, population_size=8,
            num_parents=3,
        )
        second = run_scenario(
            micro_table, scenario, generations=3, population_size=8,
            num_parents=3,
        )
        assert first.to_dict() == second.to_dict()

    def test_labels(self, budget):
        scenario = SweepScenario(device="gpu", target_ms=2.5, seed=7)
        assert scenario.label() == "gpu@2.5ms/seed7"

    def test_oracle_matches_best_under(self, micro_table, budget):
        result = run_scenario(
            micro_table,
            SweepScenario(device="edge", target_ms=budget, seed=0),
            generations=3,
            population_size=8,
            num_parents=3,
        )
        _, entry = micro_table.best_under(budget, device="edge")
        assert result.oracle_accuracy == entry.accuracy
        # The EA can only ever reach the oracle, never beat it.
        assert result.best_accuracy <= entry.accuracy

    def test_infeasible_target_has_no_oracle(self, micro_table):
        result = run_scenario(
            micro_table,
            SweepScenario(device="edge", target_ms=1e-9, seed=0),
            generations=2,
            population_size=6,
            num_parents=2,
        )
        assert result.oracle_accuracy is None

    def test_curves_span_generations(self, micro_table, budget):
        result = run_scenario(
            micro_table,
            SweepScenario(device="edge", target_ms=budget, seed=0),
            generations=4,
            population_size=6,
            num_parents=2,
        )
        assert len(result.best_score_curve) == 4
        assert len(result.best_latency_curve) == 4


class TestRunSweep:
    def test_grid_size_and_order(self, micro_table, budget):
        report = small_sweep(
            micro_table,
            budget,
            devices=("edge", "gpu"),
            targets=(budget, budget * 2),
            seeds=(0, 1, 2),
        )
        assert len(report.results) == 2 * 2 * 3
        labels = {r.scenario.label() for r in report.results}
        assert len(labels) == 12  # every scenario distinct

    def test_default_devices_cover_table(self, micro_table, budget):
        report = small_sweep(micro_table, budget, devices=None)
        assert {r.scenario.device for r in report.results} == {
            "edge", "gpu",
        }

    def test_non_exhaustive_table_rejected(self, micro_space, budget):
        sampled = TabularBenchmark(
            micro_space,
            indices=[0, 1, 2],
            accuracy=[0.1, 0.2, 0.3],
            latency={"edge": [1.0, 2.0, 3.0]},
        )
        with pytest.raises(ValueError, match="exhaustive"):
            run_sweep(sampled, targets=(2.0,), seeds=(0,))

    def test_bands_structure(self, micro_table, budget):
        report = small_sweep(micro_table, budget)
        bands = report.bands()
        assert set(bands) == {f"edge@{budget:g}ms"}
        band = bands[f"edge@{budget:g}ms"]
        assert set(band) == {"generation", "mean", "std", "min", "max"}
        for series in band.values():
            assert len(series) == report.generations
        assert band["generation"] == list(range(report.generations))
        # Two seeds: the band must bracket both curves.
        curves = report.grouped_curves()[f"edge@{budget:g}ms"]
        assert len(curves) == 2
        for gen in range(report.generations):
            values = [c[gen] for c in curves]
            assert band["min"][gen] == min(values)
            assert band["max"][gen] == max(values)
            assert band["mean"][gen] == pytest.approx(
                sum(values) / len(values)
            )

    def test_summary_rows(self, micro_table, budget):
        report = small_sweep(micro_table, budget, devices=("edge", "gpu"))
        rows = report.summary_rows()
        assert {row["group"] for row in rows} == {
            f"edge@{budget:g}ms", f"gpu@{budget:g}ms",
        }
        for row in rows:
            assert row["seeds"] == 2

    def test_to_dict_is_json_ready(self, micro_table, budget):
        import json

        report = small_sweep(micro_table, budget)
        payload = json.loads(json.dumps(report.to_dict()))
        assert payload["generations"] == 3
        assert len(payload["scenarios"]) == 2
        assert "bands" in payload and "summary" in payload
