"""Instant replay vs live search: the bit-identity contracts.

The artifact's whole value proposition is that a replayed search is the
*same* search — same candidate stream, same scores, same discovered
architecture — just read from columns instead of computed. These tests
pin that for both entry points: the front recipe
(:func:`repro.serve.pipeline.replay_front_search`) and the full HSCoNAS
pipeline (``backend="tabular"``).
"""

import numpy as np
import pytest

from repro.core import EvolutionConfig, HSCoNAS, HSCoNASConfig
from repro.hardware.calibration import calibrated_devices
from repro.serve.pipeline import (
    build_front_predictor,
    front_search,
    replay_front_search,
)
from repro.tabular import save_artifact, tabulate


def front_points(result):
    return [
        (p.arch.key(), p.latency_ms, p.accuracy) for p in result.front
    ]


class TestFrontReplay:
    @pytest.fixture(scope="class")
    def front_table(self, micro_space):
        return tabulate(
            micro_space, devices=("edge",), seed=0, recipe="front"
        )

    def test_replay_front_is_bit_identical(self, micro_space, front_table):
        predictor = build_front_predictor(micro_space, "edge", seed=0)
        live = front_search(
            micro_space, predictor, seed=0, generations=4,
            population_size=10,
        )
        replay = replay_front_search(
            micro_space, front_table, "edge", seed=0, generations=4,
            population_size=10,
        )
        # Raw floats, not rendered output: any drift must fail here.
        assert front_points(replay) == front_points(live)
        assert replay.num_evaluations == live.num_evaluations

    def test_replay_is_seed_sensitive(self, micro_space, front_table):
        base = replay_front_search(
            micro_space, front_table, "edge", seed=0, generations=4,
            population_size=10,
        )
        other = replay_front_search(
            micro_space, front_table, "edge", seed=1, generations=4,
            population_size=10,
        )
        assert front_points(base) != front_points(other)


class TestPipelineReplay:
    @pytest.fixture(scope="class")
    def search_artifact(self, micro_space, tmp_path_factory):
        table = tabulate(
            micro_space, devices=("edge",), seed=0, recipe="search"
        )
        path = tmp_path_factory.mktemp("artifact") / "micro_search"
        save_artifact(table, path)
        return path, float(np.median(table.latency_column("edge")))

    def _config(self, target_ms, **overrides):
        kwargs = dict(
            target_ms=target_ms,
            seed=0,
            quality_samples=10,
            shrink_stage_layers=((1,), (0,)),
            evolution=EvolutionConfig(
                generations=4, population_size=10, num_parents=4
            ),
        )
        kwargs.update(overrides)
        return HSCoNASConfig(**kwargs)

    def test_pipeline_replay_matches_live(self, micro_space, search_artifact):
        path, target_ms = search_artifact
        device = calibrated_devices()["edge"]
        live = HSCoNAS(
            micro_space, device, self._config(target_ms)
        ).run()
        replay = HSCoNAS(
            micro_space,
            device,
            self._config(
                target_ms, backend="tabular", table=str(path)
            ),
        ).run()
        assert replay.arch == live.arch
        assert replay.top1_error == live.top1_error
        assert replay.predicted_latency_ms == live.predicted_latency_ms
        assert replay.search.to_dict() == live.search.to_dict()
        # Shrinking took the same decisions from the same scores.
        assert (
            replay.shrink.final_space.candidate_ops
            == live.shrink.final_space.candidate_ops
        )
        assert replay.predictor is None
        # Replay never touched the device.
        assert replay.ledger.measurement_sessions == 0

    def test_sampled_artifact_rejected(
        self, micro_space, tmp_path, search_artifact
    ):
        _, target_ms = search_artifact
        sampled = tabulate(
            micro_space,
            devices=("edge",),
            seed=0,
            recipe="search",
            num_archs=10,
        )
        path = save_artifact(sampled, tmp_path / "sampled")
        device = calibrated_devices()["edge"]
        nas = HSCoNAS(
            micro_space,
            device,
            self._config(
                target_ms, backend="tabular", table=str(path)
            ),
        )
        with pytest.raises(ValueError, match="exhaustive"):
            nas.run()

    def test_config_requires_table_with_tabular_backend(self):
        with pytest.raises(ValueError, match="--backend tabular"):
            HSCoNASConfig(backend="tabular")
        with pytest.raises(ValueError, match="only meaningful"):
            HSCoNASConfig(table="/tmp/somewhere")
