"""TabularEvaluator: vectorized gathers vs scalar lookups, strict misses."""

import numpy as np
import pytest

from repro.tabular import TabularBenchmark, TabularEvaluator, decode_indices

from tests.tabular.conftest import micro_accuracy, micro_latency


@pytest.fixture(scope="module")
def archs(micro_space):
    rng = np.random.default_rng(11)
    return [micro_space.sample(rng) for _ in range(20)]


class TestGathers:
    def test_scalar_matches_recorded_functions(
        self, micro_table, micro_space, archs
    ):
        ev = TabularEvaluator(micro_table, device="edge")
        for arch in archs:
            assert ev.latency(arch) == pytest.approx(
                micro_latency(micro_space, arch)
            )
            assert ev.accuracy(arch) == pytest.approx(
                micro_accuracy(micro_space, arch)
            )

    def test_many_matches_scalar_exactly(self, micro_table, archs):
        ev = TabularEvaluator(micro_table, device="gpu")
        assert ev.latency_many(archs) == [ev.latency(a) for a in archs]
        assert ev.accuracy_many(archs) == [ev.accuracy(a) for a in archs]

    def test_columns_for_alignment(self, micro_table, archs):
        ev = TabularEvaluator(micro_table)
        latency, accuracy = ev.columns_for(archs)
        assert latency.tolist() == ev.latency_many(archs)
        assert accuracy.tolist() == ev.accuracy_many(archs)

    def test_bi_objective_many(self, micro_table, archs):
        ev = TabularEvaluator(micro_table, device="edge")
        points = ev.bi_objective_many(archs)
        assert [p.arch for p in points] == archs
        assert [p.latency_ms for p in points] == ev.latency_many(archs)
        assert [p.accuracy for p in points] == ev.accuracy_many(archs)


class TestDeviceSelection:
    def test_default_is_primary_device(self, micro_table):
        assert TabularEvaluator(micro_table).device == "edge"

    def test_devices_give_different_columns(self, micro_table, archs):
        edge = TabularEvaluator(micro_table, device="edge")
        gpu = TabularEvaluator(micro_table, device="gpu")
        assert gpu.latency_many(archs) != edge.latency_many(archs)
        # Accuracy is device-independent by construction.
        assert gpu.accuracy_many(archs) == edge.accuracy_many(archs)

    def test_unknown_device_rejected(self, micro_table):
        with pytest.raises(ValueError, match="no latency column"):
            TabularEvaluator(micro_table, device="tpu")


class TestReplayMiss:
    def test_miss_raises_key_error_never_falls_back(self, micro_space):
        sampled = TabularBenchmark(
            micro_space,
            indices=[0, 1, 2],
            accuracy=[0.1, 0.2, 0.3],
            latency={"edge": [1.0, 2.0, 3.0]},
        )
        ev = TabularEvaluator(sampled)
        hit, miss = decode_indices(micro_space, [1, 50])
        assert ev.latency(hit) == 2.0
        with pytest.raises(KeyError, match="not tabulated"):
            ev.latency(miss)
        with pytest.raises(KeyError, match="not tabulated"):
            ev.accuracy_many([hit, miss])
        with pytest.raises(KeyError, match="not tabulated"):
            ev.bi_objective_many([miss])
