"""Shared fixtures for the columnar tabular subsystem tests."""

import pytest

from repro.space import SearchSpace, SpaceConfig, StageSpec
from repro.tabular import TabularBenchmark, decode_indices, resolve_indices


def micro_config() -> SpaceConfig:
    """(5 ops x 2 factors)^2 = 100 architectures."""
    return SpaceConfig(
        name="micro",
        input_size=16,
        num_classes=4,
        stem_channels=4,
        stages=(StageSpec(1, 8), StageSpec(1, 16)),
        head_channels=16,
        channel_factors=(0.5, 1.0),
    )


def micro_latency(space, arch) -> float:
    return space.arch_flops(arch) / 1e4


def micro_accuracy(space, arch) -> float:
    return min(1.0, (space.arch_flops(arch) / 1e5) ** 0.5)


@pytest.fixture(scope="session")
def micro_space():
    return SearchSpace(micro_config())


@pytest.fixture(scope="session")
def micro_table(micro_space):
    """An exhaustive two-device table built from the micro functions."""
    indices, exhaustive = resolve_indices(micro_space, None, 0)
    archs = decode_indices(micro_space, indices)
    return TabularBenchmark(
        micro_space,
        indices=indices,
        accuracy=[micro_accuracy(micro_space, a) for a in archs],
        latency={
            "edge": [micro_latency(micro_space, a) for a in archs],
            "gpu": [micro_latency(micro_space, a) / 3.0 for a in archs],
        },
        exhaustive=exhaustive,
        primary_device="edge",
        recipe="front",
        build_seed=0,
    )
