"""Columnar table core: sampling, vectorized decode, row addressing."""

import numpy as np
import pytest

from repro.space import Architecture
from repro.space.encoding import (
    architecture_to_index,
    index_to_architecture,
    space_cardinality,
)
from repro.tabular import (
    SCHEMA_VERSION,
    TabularBenchmark,
    decode_indices,
    sample_indices,
    space_fingerprint,
)

from tests.tabular.conftest import micro_accuracy, micro_latency


class TestSampleIndices:
    def test_distinct_sorted_and_deterministic(self, proxy_space):
        first = sample_indices(proxy_space, 200, seed=3)
        assert first == sorted(set(first))
        assert len(first) == 200
        assert first == sample_indices(proxy_space, 200, seed=3)
        assert first != sample_indices(proxy_space, 200, seed=4)

    def test_whole_space_draw_does_not_stall(self, micro_space):
        """Asking for 100% of the space must terminate with every index.

        The historical rejection sampler gave up (or spun) once the
        acceptance rate collapsed; choice-without-replacement cannot.
        """
        total = space_cardinality(micro_space)
        assert sample_indices(micro_space, total, seed=0) == list(
            range(total)
        )

    def test_oversized_request_saturates(self, micro_space):
        total = space_cardinality(micro_space)
        assert len(sample_indices(micro_space, total * 7, seed=0)) == total

    def test_paper_scale_cardinality_samples(self, space_a):
        # ~9.5e33 architectures: exercises the big-int rejection path.
        indices = sample_indices(space_a, 32, seed=1)
        assert len(indices) == 32
        assert indices == sorted(set(indices))
        assert all(0 <= i < space_cardinality(space_a) for i in indices)


class TestDecodeIndices:
    def test_matches_scalar_decoder(self, micro_space):
        total = space_cardinality(micro_space)
        batch = decode_indices(micro_space, range(total))
        for index, arch in enumerate(batch):
            assert arch == index_to_architecture(micro_space, index)

    def test_round_trips_through_encoder(self, proxy_space):
        indices = sample_indices(proxy_space, 64, seed=9)
        for index, arch in zip(
            indices, decode_indices(proxy_space, indices)
        ):
            assert architecture_to_index(proxy_space, arch) == index

    def test_empty_and_out_of_range(self, micro_space):
        assert decode_indices(micro_space, []) == []
        with pytest.raises(ValueError, match="outside"):
            decode_indices(micro_space, [space_cardinality(micro_space)])
        with pytest.raises(ValueError, match="outside"):
            decode_indices(micro_space, [-1])


class TestFingerprint:
    def test_stable_and_space_sensitive(self, micro_space, proxy_space):
        assert space_fingerprint(micro_space) == space_fingerprint(
            micro_space
        )
        assert space_fingerprint(micro_space) != space_fingerprint(
            proxy_space
        )

    def test_shrunk_space_changes_fingerprint(self, micro_space):
        from repro.space import SearchSpace

        shrunk = SearchSpace(
            micro_space.config,
            candidate_ops=[
                ops[:-1] for ops in micro_space.candidate_ops
            ],
        )
        assert space_fingerprint(shrunk) != space_fingerprint(micro_space)


class TestRowAddressing:
    def test_rows_of_exhaustive_is_identity(self, micro_table, micro_space):
        archs = decode_indices(micro_space, [0, 17, 99])
        assert micro_table.rows_of(archs).tolist() == [0, 17, 99]

    def test_rows_of_sampled_binary_search(self, micro_space):
        table = TabularBenchmark(
            micro_space,
            indices=[3, 40, 77],
            accuracy=[0.1, 0.2, 0.3],
            latency={"edge": [1.0, 2.0, 3.0]},
        )
        archs = decode_indices(micro_space, [77, 3])
        assert table.rows_of(archs).tolist() == [2, 0]

    def test_miss_raises_never_falls_back(self, micro_space):
        table = TabularBenchmark(
            micro_space,
            indices=[3, 40, 77],
            accuracy=[0.1, 0.2, 0.3],
            latency={"edge": [1.0, 2.0, 3.0]},
        )
        missing = decode_indices(micro_space, [4])
        with pytest.raises(KeyError, match="not tabulated"):
            table.rows_of(missing)
        with pytest.raises(ValueError, match="not a member"):
            table.rows_of([Architecture.uniform(3)])

    def test_indices_of_matches_encoder(self, micro_table, micro_space, rng):
        archs = [micro_space.sample(rng) for _ in range(10)]
        assert micro_table.indices_of(archs) == [
            architecture_to_index(micro_space, a) for a in archs
        ]


class TestBestUnder:
    def test_masked_argmax_matches_linear_scan(self, micro_table):
        latency = micro_table.latency_column("edge")
        for budget in np.quantile(latency, [0.1, 0.5, 0.9]):
            arch, entry = micro_table.best_under(float(budget), "edge")
            best_row = None
            for row in range(len(micro_table)):
                if latency[row] > budget:
                    continue
                if (
                    best_row is None
                    or micro_table.accuracy_column()[row]
                    > micro_table.accuracy_column()[best_row]
                ):
                    best_row = row
            assert entry.accuracy == micro_table.accuracy_column()[best_row]
            assert entry.latency_ms == latency[best_row]

    def test_ties_resolve_to_lowest_index(self, micro_space):
        table = TabularBenchmark(
            micro_space,
            indices=[2, 5, 9],
            accuracy=[0.7, 0.7, 0.7],
            latency={"edge": [1.0, 1.0, 1.0]},
        )
        arch, _ = table.best_under(2.0)
        assert arch == index_to_architecture(micro_space, 2)

    def test_infeasible_budget_raises(self, micro_table):
        with pytest.raises(ValueError, match="no entry within"):
            micro_table.best_under(-1.0)

    def test_per_device_budgets_differ(self, micro_table):
        budget = float(np.median(micro_table.latency_column("edge")))
        _, edge = micro_table.best_under(budget, "edge")
        _, gpu = micro_table.best_under(budget, "gpu")
        # gpu columns are 3x faster, so more of the space is feasible.
        assert gpu.accuracy >= edge.accuracy


class TestColumns:
    def test_columns_are_read_only(self, micro_table):
        with pytest.raises(ValueError):
            micro_table.accuracy_column()[0] = 1.0
        with pytest.raises(ValueError):
            micro_table.latency_column("edge")[0] = 1.0

    def test_unknown_device_raises(self, micro_table):
        with pytest.raises(KeyError, match="no latency column"):
            micro_table.latency_column("tpu")

    def test_devices_sorted_and_primary(self, micro_table):
        assert micro_table.devices == ("edge", "gpu")
        assert micro_table.primary_device == "edge"

    def test_constructor_validation(self, micro_space):
        with pytest.raises(ValueError, match="sorted and distinct"):
            TabularBenchmark(
                micro_space,
                indices=[5, 3],
                accuracy=[0.1, 0.2],
                latency={"edge": [1.0, 2.0]},
            )
        with pytest.raises(ValueError, match="latency column"):
            TabularBenchmark(
                micro_space, indices=[3], accuracy=[0.1], latency={}
            )
        with pytest.raises(ValueError, match="shape"):
            TabularBenchmark(
                micro_space,
                indices=[3, 5],
                accuracy=[0.1],
                latency={"edge": [1.0, 2.0]},
            )
        with pytest.raises(ValueError, match="primary device"):
            TabularBenchmark(
                micro_space,
                indices=[3],
                accuracy=[0.1],
                latency={"edge": [1.0]},
                primary_device="tpu",
            )


class TestJsonPayload:
    def _table(self, micro_space):
        return TabularBenchmark(
            micro_space,
            indices=[1, 8],
            accuracy=[
                micro_accuracy(micro_space, a)
                for a in decode_indices(micro_space, [1, 8])
            ],
            latency={
                "edge": [
                    micro_latency(micro_space, a)
                    for a in decode_indices(micro_space, [1, 8])
                ]
            },
            recipe="custom",
            build_seed=4,
        )

    def test_roundtrip_preserves_provenance(self, micro_space):
        table = self._table(micro_space)
        restored = TabularBenchmark.from_json(micro_space, table.to_json())
        assert restored.build_seed == 4
        assert restored.recipe == "custom"
        assert restored.fingerprint == table.fingerprint
        assert np.array_equal(
            restored.accuracy_column(), table.accuracy_column()
        )

    def test_schema_version_enforced(self, micro_space):
        import json

        table = self._table(micro_space)
        payload = json.loads(table.to_json())
        payload["format"] = SCHEMA_VERSION + 1
        with pytest.raises(ValueError, match="schema"):
            TabularBenchmark.from_json(micro_space, json.dumps(payload))
        del payload["format"]
        with pytest.raises(ValueError, match="no schema version"):
            TabularBenchmark.from_json(micro_space, json.dumps(payload))

    def test_wrong_space_rejected(self, micro_space, proxy_space):
        table = self._table(micro_space)
        with pytest.raises(ValueError, match="different space"):
            TabularBenchmark.from_json(proxy_space, table.to_json())
