"""Tests for run directories: manifest, checkpoints, resume contracts."""

import json

import pytest

from repro.runstate import (
    CorruptCheckpointError,
    MemoryCheckpoint,
    PhaseCheckpoint,
    RunDir,
    RunStateError,
)
from repro.runstate.manifest import (
    MANIFEST_NAME,
    MANIFEST_VERSION,
    RunManifest,
    validate_manifest_dict,
)

PHASES = ("predictor", "shrink", "search")


def make_run(tmp_path, name="run"):
    return RunDir.create(
        tmp_path / name, kind="search", config={"seed": 3}, phase_order=PHASES
    )


class TestManifestValidation:
    def payload(self):
        return RunManifest(
            kind="search", config={"seed": 3}, phase_order=list(PHASES)
        ).to_dict()

    def test_fresh_manifest_is_valid(self):
        assert validate_manifest_dict(self.payload()) == []

    def test_non_object_rejected(self):
        assert validate_manifest_dict([1, 2]) != []

    def test_wrong_version_rejected(self):
        payload = self.payload()
        payload["version"] = MANIFEST_VERSION + 1
        assert any("version" in p for p in validate_manifest_dict(payload))

    def test_unknown_kind_rejected(self):
        payload = self.payload()
        payload["kind"] = "banana"
        assert any("kind" in p for p in validate_manifest_dict(payload))

    def test_phase_order_entry_mismatch(self):
        payload = self.payload()
        del payload["phases"]["shrink"]
        assert any("shrink" in p for p in validate_manifest_dict(payload))

    def test_phase_ordering_must_be_monotone(self):
        payload = self.payload()
        # A later phase complete while an earlier one is pending is
        # impossible in a real run and must be flagged.
        payload["phases"]["search"]["status"] = "complete"
        problems = validate_manifest_dict(payload)
        assert any("ordering" in p for p in problems)

    def test_at_most_one_running_phase(self):
        payload = self.payload()
        payload["phases"]["predictor"]["status"] = "running"
        payload["phases"]["shrink"]["status"] = "running"
        problems = validate_manifest_dict(payload)
        assert any("running" in p for p in problems)

    def test_invalid_status_rejected(self):
        payload = self.payload()
        payload["phases"]["shrink"]["status"] = "done"
        assert any("status" in p for p in validate_manifest_dict(payload))


class TestRunDirLifecycle:
    def test_create_then_open(self, tmp_path):
        run = make_run(tmp_path)
        assert (run.path / MANIFEST_NAME).exists()
        reopened = RunDir.open(run.path)
        assert reopened.manifest.kind == "search"
        assert reopened.config == {"seed": 3}

    def test_create_over_existing_refused(self, tmp_path):
        run = make_run(tmp_path)
        with pytest.raises(RunStateError, match="--resume"):
            RunDir.create(run.path, "search", {}, PHASES)

    def test_open_missing_dir_refused(self, tmp_path):
        with pytest.raises(RunStateError, match="does not exist"):
            RunDir.open(tmp_path / "nope")

    def test_open_non_run_dir_refused(self, tmp_path):
        (tmp_path / "plain").mkdir()
        with pytest.raises(RunStateError, match="not a run directory"):
            RunDir.open(tmp_path / "plain")

    def test_open_wrong_kind_refused(self, tmp_path):
        run = make_run(tmp_path)
        with pytest.raises(RunStateError, match="search"):
            RunDir.open(run.path, expect_kind="shrink")

    def test_open_config_mismatch_refused(self, tmp_path):
        run = make_run(tmp_path)
        with pytest.raises(RunStateError, match="seed"):
            RunDir.open(run.path, expect_config={"seed": 4})

    def test_open_matching_expectations(self, tmp_path):
        run = make_run(tmp_path)
        RunDir.open(run.path, expect_kind="search", expect_config={"seed": 3})

    def test_corrupt_manifest_refused(self, tmp_path):
        run = make_run(tmp_path)
        (run.path / MANIFEST_NAME).write_text("{not json")
        with pytest.raises(RunStateError, match="corrupt"):
            RunDir.open(run.path)


class TestCheckpoints:
    def test_round_trip(self, tmp_path):
        run = make_run(tmp_path)
        payload = {"gen": 4, "values": [0.25, 1.5]}
        run.save_checkpoint("search", payload)
        record = RunDir.open(run.path).load_checkpoint("search")
        assert record["payload"] == payload
        assert record["complete"] is False

    def test_missing_checkpoint_is_none(self, tmp_path):
        run = make_run(tmp_path)
        assert run.load_checkpoint("shrink") is None

    def test_unknown_phase_rejected(self, tmp_path):
        run = make_run(tmp_path)
        with pytest.raises(RunStateError, match="not part of this run"):
            run.save_checkpoint("training", {})
        with pytest.raises(RunStateError, match="not part of this run"):
            run.load_checkpoint("training")

    def test_complete_flag_updates_manifest(self, tmp_path):
        run = make_run(tmp_path)
        run.save_checkpoint("predictor", {"x": 1})
        assert run.manifest.status("predictor") == "running"
        run.save_checkpoint("predictor", {"x": 1}, complete=True)
        assert run.manifest.status("predictor") == "complete"
        assert run.phase_complete("predictor")

    def test_checkpoint_flag_wins_over_manifest(self, tmp_path):
        # Simulates dying between the checkpoint write and the manifest
        # update: the checkpoint says complete, the manifest still says
        # running — the resume must trust the checkpoint.
        run = make_run(tmp_path)
        run.save_checkpoint("predictor", {"x": 1}, complete=True)
        run.manifest.set_status("predictor", "running")
        run._write_manifest()
        assert RunDir.open(run.path).phase_complete("predictor")

    def test_bit_flip_detected(self, tmp_path):
        run = make_run(tmp_path)
        run.save_checkpoint("search", {"gen": 4})
        target = run._checkpoint_path("search")
        envelope = json.loads(target.read_text())
        envelope["record"]["payload"]["gen"] = 5  # tamper
        target.write_text(json.dumps(envelope))  # repro-lint: disable=RL106
        with pytest.raises(CorruptCheckpointError, match="checksum"):
            RunDir.open(run.path).load_checkpoint("search")

    def test_truncated_file_detected(self, tmp_path):
        run = make_run(tmp_path)
        run.save_checkpoint("search", {"gen": 4})
        target = run._checkpoint_path("search")
        target.write_text(target.read_text()[: len(target.read_text()) // 2])
        with pytest.raises(CorruptCheckpointError, match="unreadable"):
            run.load_checkpoint("search")

    def test_future_format_refused(self, tmp_path):
        run = make_run(tmp_path)
        run.save_checkpoint("search", {"gen": 4})
        target = run._checkpoint_path("search")
        envelope = json.loads(target.read_text())
        envelope["record"]["format"] = 99
        # Re-checksum so only the format check can fire.
        from repro.runstate.atomic import sha256_text
        from repro.runstate.rundir import _canonical_json

        envelope["sha256"] = sha256_text(_canonical_json(envelope["record"]))
        target.write_text(json.dumps(envelope))  # repro-lint: disable=RL106
        with pytest.raises(CorruptCheckpointError, match="format"):
            run.load_checkpoint("search")

    def test_reset_phase(self, tmp_path):
        run = make_run(tmp_path)
        run.save_checkpoint("search", {"gen": 4}, complete=True)
        run.reset_phase("search")
        assert run.load_checkpoint("search") is None
        assert run.manifest.status("search") == "pending"


class TestPhaseCheckpoint:
    def test_owner_state_piggybacks(self, tmp_path):
        run = make_run(tmp_path)
        owner = {"cache": {"hits": 3}}
        restored = {}
        ckpt = PhaseCheckpoint(
            run,
            "search",
            extra_save=lambda: dict(owner),
            extra_restore=restored.update,
        )
        ckpt.save({"gen": 1})
        assert ckpt.load() == {"gen": 1, "owner_state": {"cache": {"hits": 3}}}
        assert restored == {"cache": {"hits": 3}}

    def test_fresh_start_returns_none(self, tmp_path):
        run = make_run(tmp_path)
        ckpt = PhaseCheckpoint(run, "search")
        assert ckpt.load() is None
        assert not ckpt.is_complete()

    def test_complete_round_trip(self, tmp_path):
        run = make_run(tmp_path)
        ckpt = PhaseCheckpoint(run, "shrink")
        ckpt.save({"done": True}, complete=True)
        assert ckpt.is_complete()


class TestMemoryCheckpoint:
    def test_json_round_trip_semantics(self):
        ckpt = MemoryCheckpoint()
        assert ckpt.load() is None
        ckpt.save({"t": (1, 2)})
        # Tuples degrade to lists exactly as a real file would make them.
        assert ckpt.load() == {"t": [1, 2]}
        assert ckpt.saves == 1
        assert not ckpt.is_complete()
        ckpt.save({"t": [1, 2]}, complete=True)
        assert ckpt.is_complete()
