"""Tests for the atomic write-then-rename helpers."""

import json
import os

import pytest

from repro.runstate import (
    atomic_path,
    atomic_write_bytes,
    atomic_write_json,
    atomic_write_text,
    sha256_text,
)


class TestAtomicWrite:
    def test_write_text_creates_file(self, tmp_path):
        target = tmp_path / "a.txt"
        atomic_write_text(target, "hello\n")
        assert target.read_text() == "hello\n"

    def test_write_replaces_existing(self, tmp_path):
        target = tmp_path / "a.txt"
        target.write_text("old")
        atomic_write_text(target, "new")
        assert target.read_text() == "new"

    def test_creates_parent_directories(self, tmp_path):
        target = tmp_path / "deep" / "nested" / "a.txt"
        atomic_write_text(target, "x")
        assert target.read_text() == "x"

    def test_no_temp_files_left_behind(self, tmp_path):
        target = tmp_path / "a.json"
        atomic_write_json(target, {"k": 1})
        assert os.listdir(tmp_path) == ["a.json"]

    def test_write_json_round_trips_with_newline(self, tmp_path):
        target = tmp_path / "a.json"
        payload = {"floats": [0.1, 1e-300], "ints": [2**63 - 1], "s": "é"}
        atomic_write_json(target, payload)
        text = target.read_text()
        assert text.endswith("\n")
        assert json.loads(text) == payload

    def test_write_bytes(self, tmp_path):
        target = tmp_path / "a.bin"
        atomic_write_bytes(target, b"\x00\xff")
        assert target.read_bytes() == b"\x00\xff"


class TestAtomicPath:
    def test_success_renames_over_target(self, tmp_path):
        target = tmp_path / "out.npz"
        with atomic_path(target, suffix=".npz") as tmp:
            assert tmp.parent == tmp_path  # same fs -> atomic rename
            tmp.write_text("data")
            assert not target.exists()
        assert target.read_text() == "data"
        assert os.listdir(tmp_path) == ["out.npz"]

    def test_failure_leaves_target_untouched(self, tmp_path):
        target = tmp_path / "out.txt"
        target.write_text("good")
        with pytest.raises(RuntimeError):
            with atomic_path(target) as tmp:
                tmp.write_text("half-written")
                raise RuntimeError("crash mid-write")
        assert target.read_text() == "good"
        assert os.listdir(tmp_path) == ["out.txt"]


class TestSha256Text:
    def test_known_digest(self):
        assert sha256_text("") == (
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        )

    def test_sensitive_to_content(self):
        assert sha256_text("a") != sha256_text("b")
