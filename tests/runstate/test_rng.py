"""Tests for generator-state capture/restore (bit-exact resume)."""

import json

import numpy as np
import pytest

from repro.runstate import generator_state, restore_generator, set_generator_state


class TestGeneratorState:
    def test_restored_generator_continues_identically(self):
        rng = np.random.default_rng(42)
        rng.random(100)  # advance
        state = generator_state(rng)
        expected = rng.random(50)
        resumed = restore_generator(state)
        assert np.array_equal(resumed.random(50), expected)

    def test_state_survives_json_round_trip(self):
        rng = np.random.default_rng(7)
        rng.integers(0, 10, size=33)
        state = json.loads(json.dumps(generator_state(rng)))
        expected = rng.random(20)
        resumed = restore_generator(state)
        assert np.array_equal(resumed.random(20), expected)

    def test_set_state_rewinds_in_place(self):
        rng = np.random.default_rng(3)
        state = generator_state(rng)
        first = rng.random(10)
        set_generator_state(rng, state)
        assert np.array_equal(rng.random(10), first)

    def test_capture_does_not_alias_live_state(self):
        rng = np.random.default_rng(0)
        state = generator_state(rng)
        rng.random(5)  # advancing must not mutate the captured copy
        assert np.array_equal(
            restore_generator(state).random(5),
            np.random.default_rng(0).random(5),
        )

    def test_unknown_bit_generator_rejected(self):
        with pytest.raises(ValueError, match="unknown bit generator"):
            restore_generator({"bit_generator": "NoSuchGenerator"})

    def test_kind_mismatch_rejected(self):
        rng = np.random.Generator(np.random.PCG64(0))
        other = np.random.Generator(np.random.Philox(0))
        with pytest.raises(ValueError, match="kind mismatch"):
            set_generator_state(rng, generator_state(other))
