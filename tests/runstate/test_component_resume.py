"""Interrupt/resume equivalence for every checkpointed component.

Each test kills a component mid-run (the checkpoint raises
``KeyboardInterrupt`` after N saves — the in-process stand-in for
SIGKILL; the subprocess version lives in
``tests/integration/test_crash_resume.py``), resumes from the saved
state, and asserts the result is bit-identical to an uninterrupted run.
"""

import numpy as np
import pytest

from repro.core import (
    EvolutionConfig,
    EvolutionarySearch,
    Objective,
    ProgressiveSpaceShrinking,
    SubspaceQuality,
)
from repro.core.cache import EvaluationCache
from repro.core.nsga2 import Nsga2Config, Nsga2Search
from repro.data import BatchLoader
from repro.runstate import MemoryCheckpoint
from repro.supernet import Supernet
from repro.train import SupernetTrainer, TrainConfig


class InterruptingCheckpoint(MemoryCheckpoint):
    """Raises KeyboardInterrupt right after the Nth save lands.

    The payload is already persisted when the interrupt fires — exactly
    the window a SIGKILL between checkpoint and next progress hits.
    """

    def __init__(self, stop_after):
        super().__init__()
        self.stop_after = stop_after

    def save(self, payload, complete=False):
        super().save(payload, complete=complete)
        if self.stop_after is not None and self.saves >= self.stop_after:
            self.stop_after = None  # resume runs to completion
            raise KeyboardInterrupt("injected crash after checkpoint")


def make_objective(space):
    return Objective(
        accuracy_fn=lambda a: min(1.0, (space.arch_flops(a) / 2.5e5) ** 0.5),
        latency_fn=lambda a: space.arch_flops(a) / 1e4,
        target_ms=15.0,
        beta=-0.5,
    )


def ea_fingerprint(result):
    return {
        "best": result.best.arch.key(),
        "best_score": result.best.score,
        "per_gen_best": [g.best.score for g in result.generations],
        "num_generations": len(result.generations),
        "num_evaluations": result.num_evaluations,
    }


class TestEvolutionResume:
    CFG = EvolutionConfig(
        generations=6, population_size=8, num_parents=4, seed=5
    )

    def test_resume_mid_run_is_bit_exact(self, proxy_space):
        obj = make_objective(proxy_space)
        baseline = EvolutionarySearch(proxy_space, obj, self.CFG).run()

        ckpt = InterruptingCheckpoint(stop_after=3)
        cache = EvaluationCache()
        with pytest.raises(KeyboardInterrupt):
            EvolutionarySearch(
                proxy_space, obj, self.CFG, cache=cache, checkpoint=ckpt
            ).run()
        # The pipeline restores the shared cache from owner_state; the
        # unit test stands that in by reusing the same cache object.
        resumed = EvolutionarySearch(
            proxy_space, obj, self.CFG, cache=cache, checkpoint=ckpt
        ).run()
        assert ea_fingerprint(resumed) == ea_fingerprint(baseline)

    def test_resume_of_complete_run_skips_work(self, proxy_space):
        obj = make_objective(proxy_space)
        ckpt = MemoryCheckpoint()
        cache = EvaluationCache()
        first = EvolutionarySearch(
            proxy_space, obj, self.CFG, cache=cache, checkpoint=ckpt
        ).run()
        misses = cache.misses
        again = EvolutionarySearch(
            proxy_space, obj, self.CFG, cache=cache, checkpoint=ckpt
        ).run()
        assert cache.misses == misses  # nothing re-evaluated
        assert ea_fingerprint(again) == ea_fingerprint(first)

    def test_interrupt_at_every_boundary(self, proxy_space):
        """No matter which checkpoint the crash lands on, resume matches."""
        obj = make_objective(proxy_space)
        cfg = EvolutionConfig(
            generations=3, population_size=6, num_parents=3, seed=1
        )
        baseline = EvolutionarySearch(proxy_space, obj, cfg).run()
        for stop_after in (1, 2, 3):
            ckpt = InterruptingCheckpoint(stop_after=stop_after)
            cache = EvaluationCache()
            with pytest.raises(KeyboardInterrupt):
                EvolutionarySearch(
                    proxy_space, obj, cfg, cache=cache, checkpoint=ckpt
                ).run()
            resumed = EvolutionarySearch(
                proxy_space, obj, cfg, cache=cache, checkpoint=ckpt
            ).run()
            assert ea_fingerprint(resumed) == ea_fingerprint(baseline), (
                f"mismatch when interrupted after save #{stop_after}"
            )


def nsga2_fingerprint(result):
    return {
        "front": [
            (p.arch.key(), p.latency_ms, p.accuracy) for p in result.front
        ],
        "population": [p.arch.key() for p in result.population],
        "num_evaluations": result.num_evaluations,
    }


class TestNsga2Resume:
    CFG = Nsga2Config(generations=5, population_size=8, seed=2)

    def _search(self, space, cache=None, checkpoint=None):
        return Nsga2Search(
            space,
            accuracy_fn=lambda a: space.arch_flops(a) / 3e5,
            latency_fn=lambda a: space.arch_flops(a) / 1e4,
            config=self.CFG,
            cache=cache,
            checkpoint=checkpoint,
        )

    def test_resume_mid_run_is_bit_exact(self, proxy_space):
        baseline = self._search(proxy_space).run()
        ckpt = InterruptingCheckpoint(stop_after=2)
        cache = EvaluationCache()
        with pytest.raises(KeyboardInterrupt):
            self._search(proxy_space, cache=cache, checkpoint=ckpt).run()
        resumed = self._search(proxy_space, cache=cache, checkpoint=ckpt).run()
        assert nsga2_fingerprint(resumed) == nsga2_fingerprint(baseline)


def shrink_fingerprint(result):
    return {
        "decisions": [
            (d.layer, d.chosen_op, d.qualities)
            for stage in result.stages
            for d in stage
        ],
        "sizes": result.stage_log10_sizes,
        "quality_evaluations": result.quality_evaluations,
        "final_ops": result.final_space.candidate_ops,
    }


class TestShrinkingResume:
    def _quality(self, space):
        return SubspaceQuality(
            make_objective(space), num_samples=20, seed=0
        )

    def test_resume_mid_stage_is_bit_exact(self, proxy_space):
        baseline = ProgressiveSpaceShrinking(
            self._quality(proxy_space)
        ).run(proxy_space)

        ckpt = InterruptingCheckpoint(stop_after=1)
        with pytest.raises(KeyboardInterrupt):
            ProgressiveSpaceShrinking(
                self._quality(proxy_space), checkpoint=ckpt
            ).run(proxy_space)
        resumed = ProgressiveSpaceShrinking(
            self._quality(proxy_space), checkpoint=ckpt
        ).run(proxy_space)
        assert shrink_fingerprint(resumed) == shrink_fingerprint(baseline)

    def test_completed_tune_hook_not_rerun(self, proxy_space):
        calls = []

        def hook(space, stage_idx):
            calls.append(stage_idx)

        # Saves: decision, stage record, tune hook, ... — interrupt
        # right after the tune-hook completion lands.
        ckpt = InterruptingCheckpoint(stop_after=3)
        with pytest.raises(KeyboardInterrupt):
            ProgressiveSpaceShrinking(
                self._quality(proxy_space), tune_hook=hook, checkpoint=ckpt
            ).run(proxy_space)
        assert calls == [0]
        ProgressiveSpaceShrinking(
            self._quality(proxy_space), tune_hook=hook, checkpoint=ckpt
        ).run(proxy_space)
        assert calls == [0]  # stage-0 tuning ran exactly once overall


class TestTrainerResume:
    def _trainer(self, tiny_space, tiny_dataset):
        supernet = Supernet(tiny_space, seed=0)
        loader = BatchLoader(
            tiny_dataset.train_x, tiny_dataset.train_y, batch_size=8, seed=0
        )
        return SupernetTrainer(
            supernet, loader, TrainConfig(base_lr=0.05, seed=0)
        )

    def test_resume_mid_training_is_bit_exact(self, tiny_space, tiny_dataset):
        baseline = self._trainer(tiny_space, tiny_dataset)
        losses = baseline.train_epochs(tiny_space, epochs=3)
        expected_weights = baseline.supernet.state_dict()

        ckpt = InterruptingCheckpoint(stop_after=1)
        with pytest.raises(KeyboardInterrupt):
            self._trainer(tiny_space, tiny_dataset).train_epochs(
                tiny_space, epochs=3, checkpoint=ckpt
            )
        resumed = self._trainer(tiny_space, tiny_dataset)
        resumed_losses = resumed.train_epochs(
            tiny_space, epochs=3, checkpoint=ckpt
        )
        assert resumed_losses == losses
        assert resumed.global_step == baseline.global_step
        restored = resumed.supernet.state_dict()
        assert set(restored) == set(expected_weights)
        for key, value in expected_weights.items():
            assert np.array_equal(restored[key], value), key

    def test_resume_of_complete_training_returns_losses(
        self, tiny_space, tiny_dataset
    ):
        ckpt = MemoryCheckpoint()
        first = self._trainer(tiny_space, tiny_dataset)
        losses = first.train_epochs(tiny_space, epochs=2, checkpoint=ckpt)
        again = self._trainer(tiny_space, tiny_dataset)
        assert again.train_epochs(
            tiny_space, epochs=2, checkpoint=ckpt
        ) == losses
        # The restored trainer carries the completed run's end state
        # (weights + step counter) without re-training anything.
        assert again.global_step == first.global_step
        assert ckpt.saves == 2  # no new checkpoint was written
