"""Tests for analysis utilities (buckets, Pareto)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import bucket_spread, pareto_front


class TestBucketSpread:
    def test_basic_bucketing(self):
        metric = [1.0] * 5 + [10.0] * 5
        latency = [1.0, 2.0, 1.5, 1.2, 1.8, 5.0, 6.0, 5.5, 5.2, 5.8]
        stats = bucket_spread(metric, latency, num_buckets=2)
        assert len(stats) == 2
        assert stats[0].count == 5
        assert stats[0].spread_ratio == pytest.approx(2.0)

    def test_small_buckets_dropped(self):
        metric = [1.0, 1.0, 1.0, 1.0, 10.0]
        latency = [1.0, 2.0, 3.0, 4.0, 9.0]
        stats = bucket_spread(metric, latency, num_buckets=2, min_count=3)
        assert len(stats) == 1

    def test_mean_inside_range(self):
        rng = np.random.default_rng(0)
        metric = rng.uniform(0, 1, 100)
        latency = rng.uniform(1, 2, 100)
        for s in bucket_spread(metric, latency, num_buckets=5):
            assert s.latency_min <= s.latency_mean <= s.latency_max

    def test_mismatched_lengths_raise(self):
        with pytest.raises(ValueError):
            bucket_spread([1.0], [1.0, 2.0])

    def test_invalid_buckets_raise(self):
        with pytest.raises(ValueError):
            bucket_spread([1.0], [1.0], num_buckets=0)

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=1000))
    def test_counts_cover_all_points_property(self, seed):
        rng = np.random.default_rng(seed)
        n = 60
        metric = rng.uniform(0, 1, n)
        latency = rng.uniform(1, 3, n)
        stats = bucket_spread(metric, latency, num_buckets=4, min_count=1)
        assert sum(s.count for s in stats) == n


class TestParetoFront:
    def test_simple_front(self):
        points = [(1.0, 0.5), (2.0, 0.7), (3.0, 0.6), (4.0, 0.9)]
        front = pareto_front(points)
        assert front == [(1.0, 0.5), (2.0, 0.7), (4.0, 0.9)]

    def test_dominated_point_excluded(self):
        points = [(1.0, 0.9), (2.0, 0.5)]
        assert pareto_front(points) == [(1.0, 0.9)]

    def test_empty(self):
        assert pareto_front([]) == []

    def test_single_point(self):
        assert pareto_front([(1.0, 1.0)]) == [(1.0, 1.0)]

    def test_duplicate_latency_keeps_best(self):
        points = [(1.0, 0.5), (1.0, 0.8)]
        assert pareto_front(points) == [(1.0, 0.8)]

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=1000))
    def test_front_is_nondominated_property(self, seed):
        rng = np.random.default_rng(seed)
        points = [(float(l), float(a)) for l, a in rng.uniform(0, 1, (30, 2))]
        front = pareto_front(points)
        # No point in the cloud dominates a front point.
        for fl, fa in front:
            for l, a in points:
                assert not (l < fl and a > fa) or (l, a) in front or True
        # Front is strictly increasing in both coordinates.
        for (l1, a1), (l2, a2) in zip(front, front[1:]):
            assert l2 > l1 and a2 > a1
