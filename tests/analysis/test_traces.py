"""Tests for search-convergence traces."""

import pytest

from repro.analysis import (
    area_under_trace,
    best_so_far,
    evaluation_trace,
    evaluations_to_reach,
)
from repro.core import Objective, RandomSearch
from repro.core.evolution import GenerationRecord, SearchResult
from repro.core.objective import EvaluatedArch
from repro.space import Architecture


def _result(round_scores):
    """SearchResult with one EvaluatedArch per score per round."""
    generations = []
    best = None
    for i, scores in enumerate(round_scores):
        population = [
            EvaluatedArch(Architecture.uniform(2), 0.5, 1.0, s) for s in scores
        ]
        record = GenerationRecord(i, population)
        generations.append(record)
        if best is None or record.best.score > best.score:
            best = record.best
    result = SearchResult(best=best, generations=generations)
    result.num_evaluations = sum(len(s) for s in round_scores)
    return result


class TestBestSoFar:
    def test_running_max(self):
        assert best_so_far([1.0, 0.5, 2.0, 1.5]) == [1.0, 1.0, 2.0, 2.0]

    def test_empty(self):
        assert best_so_far([]) == []


class TestEvaluationTrace:
    def test_counts_and_bests(self):
        result = _result([[0.1, 0.3], [0.2, 0.25], [0.5]])
        assert evaluation_trace(result) == [(2, 0.3), (4, 0.3), (5, 0.5)]

    def test_monotone_best(self):
        result = _result([[0.4], [0.1], [0.3]])
        trace = evaluation_trace(result)
        bests = [b for _, b in trace]
        assert bests == sorted(bests)


class TestEvaluationsToReach:
    def test_reached(self):
        result = _result([[0.1], [0.6], [0.9]])
        assert evaluations_to_reach(result, 0.5) == 2
        assert evaluations_to_reach(result, 0.9) == 3

    def test_never_reached(self):
        result = _result([[0.1], [0.2]])
        assert evaluations_to_reach(result, 0.5) == -1


class TestAreaUnderTrace:
    def test_constant_curve(self):
        result = _result([[0.5, 0.5], [0.5]])
        assert area_under_trace(result) == pytest.approx(0.5)

    def test_early_riser_scores_higher(self):
        early = _result([[0.9], [0.9], [0.9]])
        late = _result([[0.1], [0.1], [0.9]])
        assert area_under_trace(early) > area_under_trace(late)

    def test_empty_raises(self):
        result = SearchResult(
            best=EvaluatedArch(Architecture.uniform(2), 0.5, 1.0, 0.5)
        )
        with pytest.raises(ValueError):
            area_under_trace(result)


class TestWithRealSearcher:
    def test_random_search_trace(self, proxy_space):
        obj = Objective(
            lambda a: min(1.0, (proxy_space.arch_flops(a) / 2.5e5) ** 0.5),
            lambda a: proxy_space.arch_flops(a) / 1e4,
            15.0,
            -0.5,
        )
        result = RandomSearch(proxy_space, obj, budget=30).run()
        trace = evaluation_trace(result)
        assert trace[-1][0] == 30
        assert trace[-1][1] == pytest.approx(result.best.score)
