"""Tests for space statistics."""

import numpy as np
import pytest

from repro.analysis import Distribution, feasible_fraction, space_statistics
from repro.hardware import get_device


class TestDistribution:
    def test_from_samples(self):
        d = Distribution.from_samples(np.array([1.0, 2.0, 3.0, 4.0]))
        assert d.mean == pytest.approx(2.5)
        assert d.minimum == 1.0 and d.maximum == 4.0
        assert d.median == pytest.approx(2.5)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            Distribution.from_samples(np.array([]))

    def test_str_contains_summary(self):
        d = Distribution.from_samples(np.array([1.0, 2.0]))
        assert "mean" in str(d)


class TestSpaceStatistics:
    def test_basic_stats(self, proxy_space):
        stats = space_statistics(proxy_space, num_samples=50, seed=0)
        assert stats.num_samples == 50
        assert stats.flops.minimum > 0
        assert 0 <= stats.depth.minimum <= stats.depth.maximum <= 8
        assert stats.latency_ms is None

    def test_with_latency(self, proxy_space):
        device = get_device("gpu")
        stats = space_statistics(
            proxy_space, num_samples=30, seed=0,
            latency_fn=lambda a: device.latency_ms(proxy_space, a),
        )
        assert stats.latency_ms is not None
        assert stats.latency_ms.minimum > 0

    def test_deterministic(self, proxy_space):
        a = space_statistics(proxy_space, num_samples=20, seed=3)
        b = space_statistics(proxy_space, num_samples=20, seed=3)
        assert a.flops.mean == b.flops.mean

    def test_shrinking_shifts_distribution(self, proxy_space):
        """Pinning every layer to skip drops the FLOPs distribution."""
        shrunk = proxy_space
        for layer in range(proxy_space.num_layers):
            shrunk = shrunk.fix_operator(layer, 4)
        full = space_statistics(proxy_space, num_samples=40, seed=0)
        skipped = space_statistics(shrunk, num_samples=40, seed=0)
        assert skipped.flops.mean < full.flops.mean

    def test_invalid_samples_raises(self, proxy_space):
        with pytest.raises(ValueError):
            space_statistics(proxy_space, num_samples=0)


class TestFeasibleFraction:
    def test_everything_feasible_with_huge_tolerance(self, proxy_space):
        frac = feasible_fraction(
            proxy_space,
            latency_fn=lambda a: 1.0,
            target_ms=1.0,
            tolerance=10.0,
            num_samples=20,
        )
        assert frac == 1.0

    def test_nothing_feasible_far_target(self, proxy_space):
        frac = feasible_fraction(
            proxy_space,
            latency_fn=lambda a: 1.0,
            target_ms=100.0,
            tolerance=0.01,
            num_samples=20,
        )
        assert frac == 0.0

    def test_real_device_fraction_in_unit_interval(self, proxy_space):
        device = get_device("gpu")
        frac = feasible_fraction(
            proxy_space,
            latency_fn=lambda a: device.latency_ms(proxy_space, a),
            target_ms=1.2,
            tolerance=0.1,
            num_samples=60,
        )
        assert 0.0 < frac < 1.0

    def test_invalid_args_raise(self, proxy_space):
        with pytest.raises(ValueError):
            feasible_fraction(proxy_space, lambda a: 1.0, target_ms=0.0)
