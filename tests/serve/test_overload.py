"""Overload behaviour end to end: shed, deadline, degrade, requeue.

The daemon's resilience contract (docs/robustness.md): a request is
answered healthily and byte-identically, answered degraded and flagged,
or refused deterministically (503 shed / 504 deadline). Nothing hangs.
"""

import threading
from http.client import HTTPConnection

import pytest

from repro.resilience import ChaosSpec
from repro.serve import ServeClient, ServeConfig, start_server
from repro.serve.query import FrontQuery
from repro.serve.service import _InFlight

from tests.serve.conftest import SMALL_QUERY_KW


@pytest.fixture
def running_server(serial_config):
    server, thread = start_server(serial_config)
    try:
        yield server
    finally:
        server.shutdown()
        server.server_close()
        server.service.close()
        thread.join(timeout=30)


def _start(config):
    server, thread = start_server(config)

    def stop():
        server.shutdown()
        server.server_close()
        server.service.close()
        thread.join(timeout=30)

    return server, stop


def _client(server) -> ServeClient:
    return ServeClient(*server.endpoint)


class TestAdmissionShedding:
    def test_full_queue_sheds_503_with_retry_after(self):
        config = ServeConfig(
            backend="serial",
            quiet=True,
            max_inflight=1,
            queue_depth=0,
            retry_after_s=2,
        )
        server, stop = _start(config)
        try:
            service = server.service
            # Occupy the single slot so the HTTP request must shed.
            assert service.admission.try_admit() == (True, None)
            try:
                host, port = server.endpoint
                conn = HTTPConnection(host, port, timeout=30)
                try:
                    conn.request(
                        "GET",
                        "/front?device=edge&layout=proxy&seed=3"
                        "&generations=3&population_size=8",
                    )
                    response = conn.getresponse()
                    body = response.read()
                    assert response.status == 503
                    assert response.getheader("Retry-After") == "2"
                finally:
                    conn.close()
                assert b'"shed": true' in body
                assert b'"retry_after_s": 2' in body
                assert b"overloaded: queue_full" in body
            finally:
                service.admission.release()
            # The slot is free again: the same query now answers 200.
            response = _client(server).front(**SMALL_QUERY_KW)
            assert response["front"]
            shed = _client(server).metrics()["resilience"]["shed"]
            assert shed["queue_full"] == 1
        finally:
            stop()

    def test_healthz_and_metrics_bypass_admission(self):
        config = ServeConfig(
            backend="serial", quiet=True, max_inflight=1, queue_depth=0
        )
        server, stop = _start(config)
        try:
            assert server.service.admission.try_admit() == (True, None)
            try:
                client = _client(server)
                assert client.health() == {"status": "ok"}
                assert "resilience" in client.metrics()
            finally:
                server.service.admission.release()
        finally:
            stop()


class TestDeadlines:
    def test_expired_deadline_answers_504_with_progress(
        self, running_server
    ):
        client = _client(running_server)
        status, body = client.request_raw(
            "POST",
            "/query",
            body={**SMALL_QUERY_KW, "seed": 11, "deadline_ms": 0.001},
        )
        assert status == 504
        import json

        payload = json.loads(body)
        assert "progress" in payload
        assert payload["progress"]["stage"] == "nsga2"
        assert payload["progress"]["generations_done"] == 0
        metrics = client.metrics()
        assert metrics["resilience"]["deadline_expired"] == 1

    def test_cached_fronts_answer_within_any_deadline(
        self, running_server
    ):
        client = _client(running_server)
        healthy = client.front(**SMALL_QUERY_KW)
        # A cache hit is milliseconds: even a tight deadline succeeds,
        # and the body carries no resilience keys.
        again = client.query(**SMALL_QUERY_KW, deadline_ms=30_000)
        assert again == healthy
        assert "degraded" not in again

    def test_invalid_deadline_is_a_400(self, running_server):
        status, body = _client(running_server).request_raw(
            "POST", "/query", body={**SMALL_QUERY_KW, "deadline_ms": -5}
        )
        assert status == 400
        assert b"deadline_ms" in body


class TestBreakerDegradation:
    def _config(self, **extra):
        return ServeConfig(
            backend="serial", quiet=True, breaker_failures=1, **extra
        )

    def test_open_breaker_serves_nearest_cached_front_flagged(self):
        server, stop = _start(self._config())
        try:
            client = _client(server)
            healthy = client.front(**SMALL_QUERY_KW)
            assert "degraded" not in healthy
            server.service.breaker.record_failure()
            assert server.service.breaker.state == "open"

            degraded = client.front(**{**SMALL_QUERY_KW, "seed": 9})
            assert degraded["degraded"] is True
            assert "nearest cached front (seed 3)" in (
                degraded["degraded_reason"]
            )
            assert degraded["served_query"]["seed"] == 3
            assert degraded["query"]["seed"] == 9
            assert degraded["front"] == healthy["front"]

            metrics = client.metrics()
            assert metrics["resilience"]["degraded"] == 1
            assert metrics["resilience"]["breaker"]["state"] == "open"
            # The degraded answer was never cached: the only computed
            # front is still the healthy seed-3 one.
            assert metrics["fronts"]["computed"] == 1
        finally:
            stop()

    def test_open_breaker_with_no_fallback_sheds_503(self):
        server, stop = _start(self._config())
        try:
            server.service.breaker.record_failure()
            status, body = _client(server).request_raw(
                "GET",
                "/front?device=edge&layout=proxy&seed=3"
                "&generations=3&population_size=8",
            )
            assert status == 503
            assert b"overloaded: breaker_open" in body
            shed = _client(server).metrics()["resilience"]["shed"]
            assert shed["breaker_open"] == 1
        finally:
            stop()


class TestLeaderDeath:
    def test_follower_retakes_leadership_after_leader_dies(
        self, running_server, monkeypatch
    ):
        # A coalescing leader that dies without publishing must not
        # strand its followers on the ready event forever.
        monkeypatch.setattr("repro.serve.service._LEADER_POLL_S", 0.05)
        service = running_server.service
        query = FrontQuery(**SMALL_QUERY_KW)

        dead = threading.Thread(target=lambda: None)
        dead.start()
        dead.join()
        flight = _InFlight()
        flight.leader = dead
        with service._lock:
            service._inflight[query.key()] = flight

        response = _client(running_server).front(**SMALL_QUERY_KW)
        assert response["front"]
        metrics = _client(running_server).metrics()
        assert metrics["resilience"]["leader_requeued"] >= 1
        assert query.key() not in service._inflight


class TestClientRetry:
    def test_transient_faults_retried_then_bit_identical(
        self, running_server
    ):
        plain = _client(running_server)
        status, healthy_body = plain.request_raw("GET", "/healthz")
        assert status == 200

        hook = ChaosSpec.parse("seed=0,fail_first=2").injector()
        flaky = ServeClient(
            *running_server.endpoint, fault_hook=hook.transport_hook()
        )
        status, body = flaky.request_raw("GET", "/healthz")
        assert status == 200
        assert body == healthy_body
        assert flaky.transport_retries == 2

    def test_healthy_client_never_draws_retry_state(self, running_server):
        client = _client(running_server)
        client.health()
        client.front(**SMALL_QUERY_KW)
        assert client.transport_retries == 0

    def test_exhausted_retries_propagate(self, running_server):
        from repro.hardware.faults import ProbeError

        hook = ChaosSpec.parse("seed=0,fail_first=10").injector()
        flaky = ServeClient(
            *running_server.endpoint, fault_hook=hook.transport_hook()
        )
        with pytest.raises(ProbeError):
            flaky.request_raw("GET", "/healthz")
