"""CI smoke driver for a running ``repro.serve`` daemon.

Usage (the daemon must already be starting/running against STATE_DIR)::

    python tests/serve/_smoke_driver.py STATE_DIR BODY_FILE [--expect-restored]
    python tests/serve/_smoke_driver.py STATE_DIR BODY_FILE --overload
    python tests/serve/_smoke_driver.py STATE_DIR BODY_FILE --chaos
    python tests/serve/_smoke_driver.py STATE_DIR BODY_FILE --drain

Default mode: connects through the state directory's ``endpoint.json``,
fires a burst of concurrent identical queries, and asserts the serving
contracts: every response is byte-identical, ``/metrics`` is live and
consistent, and the served front is point-for-point bit-exact with the
offline pipeline run. The canonical response body is written to
``BODY_FILE`` on the first run; with ``--expect-restored`` (the
post-restart run) the driver instead requires the daemon to have
restored its fronts from the snapshot — zero recomputation — and to
serve bytes equal to ``BODY_FILE``.

``--overload`` drives a saturating burst of distinct cold queries at a
daemon started with tight admission (e.g. ``--max-inflight 1
--queue-depth 2 --queue-timeout 0.2``) and asserts the overload
contract: every response is a healthy 200 or a deterministic 503 shed,
an expired ``deadline_ms`` answers 504 with partial progress, the
daemon stays live throughout, and a previously-shed query served after
the storm is byte-deterministic.

``--chaos`` hammers a daemon started with a ``--chaos`` fault spec and
asserts that every response is classifiable — 200 healthy
(byte-identical per query), 200 degraded (flagged), 503 shed, 504
deadline, or a 500 carrying the injected fault — and that the daemon
outlives the storm.

``--drain`` saturates the daemon, SIGTERMs it (pid from
``endpoint.json``) while requests are in flight, and asserts the
graceful half of the drain: every admitted request is still answered
200; refused connections are the only other acceptable outcome. The
daemon's exit code and drain line are the caller's to check.

Exit 0 on success; any broken contract raises (non-zero exit).
"""

import argparse
import json
import os
import signal
import sys
import threading
import time
from pathlib import Path
from urllib.parse import urlencode

from repro.accuracy import AccuracySurrogate
from repro.serve import ServeClient
from repro.serve.pipeline import (
    build_front_predictor,
    front_search,
    space_for_layout,
)
from repro.serve.query import FrontQuery

QUERY = dict(
    device="edge", layout="proxy", seed=3, generations=3, population_size=8
)
BURST = 8


def _burst(client: ServeClient, path: str) -> bytes:
    bodies = [None] * BURST

    def worker(i):
        status, body = client.request_raw("GET", path)
        assert status == 200, f"request {i} got HTTP {status}: {body!r}"
        bodies[i] = body

    threads = [
        threading.Thread(target=worker, args=(i,)) for i in range(BURST)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=300)
    distinct = set(bodies)
    assert len(distinct) == 1, (
        f"burst produced {len(distinct)} distinct response bodies"
    )
    return bodies[0]


def _assert_offline_bit_exact(client: ServeClient) -> None:
    served = client.front(**QUERY)
    query = FrontQuery(**QUERY)
    space = space_for_layout(query.layout)
    predictor = build_front_predictor(space, query.device, query.seed)
    offline = front_search(
        space,
        predictor,
        seed=query.seed,
        generations=query.generations,
        population_size=query.population_size,
        backend="serial",
        surrogate=AccuracySurrogate(space),
    )
    assert served["num_evaluations"] == offline.num_evaluations
    assert len(served["front"]) == len(offline.front), (
        f"front sizes differ: {len(served['front'])} served "
        f"vs {len(offline.front)} offline"
    )
    for got, want in zip(served["front"], offline.front):
        assert got["latency_ms"] == want.latency_ms, "latency not bit-exact"
        assert got["accuracy"] == want.accuracy, "accuracy not bit-exact"


def _concurrent_requests(client: ServeClient, paths):
    """Fire every path concurrently; return ``[(status, body) | exc]``."""
    outcomes = [None] * len(paths)

    def worker(i, path):
        try:
            outcomes[i] = client.request_raw("GET", path)
        except Exception as exc:  # noqa: BLE001 - classified by caller
            outcomes[i] = exc

    threads = [
        threading.Thread(target=worker, args=(i, path))
        for i, path in enumerate(paths)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=600)
        assert not t.is_alive(), "a request thread hung: daemon deadlock?"
    return outcomes


def _overload_drill(client: ServeClient) -> None:
    """Saturate tight admission; every answer must be 200 or a 503 shed."""
    seeds = list(range(10, 26))
    paths = [
        "/front?" + urlencode({**QUERY, "seed": seed}) for seed in seeds
    ]
    outcomes = _concurrent_requests(client, paths)

    ok, shed = [], []
    for seed, outcome in zip(seeds, outcomes):
        assert not isinstance(outcome, Exception), (
            f"seed {seed} failed at the transport: {outcome!r}"
        )
        status, body = outcome
        if status == 200:
            ok.append(seed)
        elif status == 503:
            payload = json.loads(body)
            assert payload["shed"] is True, f"503 without shed flag: {body!r}"
            assert payload["retry_after_s"] >= 1
            shed.append(seed)
        else:
            raise AssertionError(
                f"seed {seed}: unexpected HTTP {status}: {body!r}"
            )
    assert ok, "saturating burst produced no healthy responses"
    assert shed, "saturating burst shed nothing: admission not engaged"
    print(
        f"overload burst: {len(ok)} served, {len(shed)} deterministically "
        f"shed (503 + Retry-After)"
    )

    # The daemon is still observable and still serving.
    assert client.health() == {"status": "ok"}

    # A request whose deadline expires mid-computation answers 504 with
    # partial progress, not a hang.
    status, body = client.request_raw(
        "POST", "/query", body={**QUERY, "seed": 97, "deadline_ms": 1}
    )
    assert status == 504, f"expected 504 deadline, got {status}: {body!r}"
    progress = json.loads(body)["progress"]
    assert "stage" in progress, f"504 without progress stage: {body!r}"
    print(f"deadline_ms=1 answered 504 with progress {progress}")

    # A shed query is refusal, not corruption: served after the storm it
    # is byte-deterministic.
    path = "/front?" + urlencode({**QUERY, "seed": shed[0]})
    status, first = client.request_raw("GET", path)
    assert status == 200, f"post-storm retry got {status}"
    status, second = client.request_raw("GET", path)
    assert status == 200 and first == second, (
        "post-storm responses not byte-identical"
    )
    print(f"previously-shed seed {shed[0]} now serves byte-identically")

    metrics = client.metrics()
    resilience = metrics["resilience"]
    assert resilience["shed_total"] >= len(shed)
    assert resilience["deadline_expired"] >= 1
    print(
        f"metrics: shed={resilience['shed']} "
        f"deadline_expired={resilience['deadline_expired']}"
    )


def _chaos_drill(client: ServeClient) -> None:
    """Chaos-injected overload: every response classifiable, none hung.

    The daemon runs with seeded fault injection on live computations
    (``--chaos``). The contract: each response is 200 healthy
    (byte-identical per query), 200 degraded (flagged), 503 shed, 504
    deadline, or a 500 carrying the injected ChaosError — and the
    daemon answers ``/healthz`` afterwards.
    """
    seeds = [3, 4, 5] * 8
    paths = [
        "/front?" + urlencode({**QUERY, "seed": seed}) for seed in seeds
    ]
    outcomes = _concurrent_requests(client, paths)

    counts = {
        "healthy": 0, "degraded": 0, "shed": 0, "deadline": 0, "fault": 0,
    }
    healthy_bodies = {}
    for path, outcome in zip(paths, outcomes):
        assert not isinstance(outcome, Exception), (
            f"{path} failed at the transport: {outcome!r}"
        )
        status, body = outcome
        if status == 200:
            payload = json.loads(body)
            if payload.get("degraded"):
                assert payload["degraded_reason"], "degraded without reason"
                counts["degraded"] += 1
            else:
                healthy_bodies.setdefault(path, set()).add(body)
                counts["healthy"] += 1
        elif status == 503:
            assert json.loads(body)["shed"] is True
            counts["shed"] += 1
        elif status == 504:
            assert "progress" in json.loads(body)
            counts["deadline"] += 1
        elif status == 500:
            assert b"ChaosError" in body, f"unexpected 500: {body!r}"
            counts["fault"] += 1
        else:
            raise AssertionError(f"{path}: unclassifiable {status}: {body!r}")

    assert counts["healthy"] >= 1, f"no healthy responses at all: {counts}"
    for path, bodies in healthy_bodies.items():
        assert len(bodies) == 1, (
            f"{path}: {len(bodies)} distinct healthy bodies under chaos"
        )
    assert client.health() == {"status": "ok"}
    print(
        "chaos drill: every response classified "
        + ", ".join(f"{k}={v}" for k, v in sorted(counts.items()))
        + "; healthy bodies byte-identical per query; daemon live"
    )


def _drain_drill(client: ServeClient, state_dir: str) -> None:
    """SIGTERM under load: admitted requests answered, then a clean exit."""
    endpoint = json.loads(
        (Path(state_dir) / "endpoint.json").read_text()
    )
    pid = int(endpoint["pid"])

    seeds = list(range(40, 46))
    paths = [
        "/front?" + urlencode({**QUERY, "seed": seed}) for seed in seeds
    ]
    outcomes = [None] * len(paths)

    def worker(i, path):
        try:
            outcomes[i] = client.request_raw("GET", path)
        except Exception as exc:  # noqa: BLE001 - classified below
            outcomes[i] = exc

    threads = [
        threading.Thread(target=worker, args=(i, path))
        for i, path in enumerate(paths)
    ]
    for t in threads:
        t.start()

    # Wait until the daemon actually has work in flight, then pull the
    # plug mid-computation.
    deadline = time.monotonic() + 60
    while time.monotonic() < deadline:
        snap = client.metrics()["resilience"]["admission"]
        if snap["in_flight"] >= 1:
            break
        time.sleep(0.05)
    else:
        raise AssertionError("no request ever went in flight")
    os.kill(pid, signal.SIGTERM)
    print(f"SIGTERM sent to pid {pid} with work in flight")

    for t in threads:
        t.join(timeout=600)
        assert not t.is_alive(), "a request thread hung across the drain"

    served = shed = refused = 0
    for seed, outcome in zip(seeds, outcomes):
        if isinstance(outcome, tuple):
            status, body = outcome
            if status == 200:
                served += 1
            elif status == 503:
                # Admission stays engaged while draining: a shed is a
                # deterministic answer, not a casualty.
                assert json.loads(body)["shed"] is True
                shed += 1
            else:
                raise AssertionError(
                    f"seed {seed}: drain answered HTTP {status}: {body!r}"
                )
        else:
            # Requests that had not connected when the socket closed
            # are refused/reset — never half-answered.
            refused += 1
    assert served >= 1, "drain answered none of the in-flight requests"
    print(
        f"drain: {served} in-flight requests answered, "
        f"{shed} shed, {refused} refused"
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("state_dir")
    parser.add_argument("body_file", type=Path)
    parser.add_argument(
        "--expect-restored", action="store_true",
        help="require restored-from-snapshot state (post-restart run): "
             "zero front computations and bytes equal to BODY_FILE",
    )
    parser.add_argument(
        "--overload", action="store_true",
        help="overload drill against tight admission: assert the "
             "200-or-deterministic-refusal contract (BODY_FILE unused)",
    )
    parser.add_argument(
        "--chaos", action="store_true",
        help="chaos drill against a fault-injected daemon: every "
             "response must be classifiable, none hung (BODY_FILE "
             "unused)",
    )
    parser.add_argument(
        "--drain", action="store_true",
        help="SIGTERM the daemon under load and assert the graceful "
             "drain contract (BODY_FILE unused)",
    )
    args = parser.parse_args(argv)

    client = ServeClient.from_state_dir(args.state_dir, wait_s=60)
    print(f"connected to daemon at {client.host}:{client.port}")

    if args.overload:
        _overload_drill(client)
        return 0
    if args.chaos:
        _chaos_drill(client)
        return 0
    if args.drain:
        _drain_drill(client, args.state_dir)
        return 0

    path = "/front?" + urlencode({**QUERY, "target_ms": 50})
    body = _burst(client, path)
    print(f"burst of {BURST} concurrent queries: all byte-identical")

    metrics = client.metrics()
    assert metrics, "/metrics returned an empty payload"
    assert metrics["queries"]["total"] >= BURST
    assert metrics["queries"]["errors"] == 0
    assert metrics["front_cache"]["size"] >= 1
    hits = metrics["front_cache"]["hits"]
    coalesced = metrics["queries"]["coalesced"]
    if args.expect_restored:
        assert metrics["fronts"]["restored"] >= 1, (
            f"expected restored fronts, got {metrics['fronts']}"
        )
        assert metrics["fronts"]["computed"] == 0, (
            f"restored daemon recomputed: {metrics['fronts']}"
        )
        previous = args.body_file.read_bytes()
        assert body == previous, "post-restart bytes differ from pre-kill"
        print("warm restart: restored state, zero recompute, same bytes")
    else:
        assert metrics["fronts"]["computed"] == 1, (
            f"burst must cost exactly one computation: {metrics['fronts']}"
        )
        args.body_file.write_bytes(body)
    print(
        f"metrics: {metrics['queries']['total']} queries, "
        f"{hits} cache hits, {coalesced} coalesced, "
        f"p99 {metrics['latency_ms']['p99']:.2f} ms"
    )

    _assert_offline_bit_exact(client)
    print("served front is bit-exact with the offline pipeline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
