"""CI smoke driver for a running ``repro.serve`` daemon.

Usage (the daemon must already be starting/running against STATE_DIR)::

    python tests/serve/_smoke_driver.py STATE_DIR BODY_FILE [--expect-restored]

Connects through the state directory's ``endpoint.json``, fires a burst
of concurrent identical queries, and asserts the serving contracts:
every response is byte-identical, ``/metrics`` is live and consistent,
and the served front is point-for-point bit-exact with the offline
pipeline run. The canonical response body is written to ``BODY_FILE``
on the first run; with ``--expect-restored`` (the post-restart run) the
driver instead requires the daemon to have restored its fronts from the
snapshot — zero recomputation — and to serve bytes equal to
``BODY_FILE``.

Exit 0 on success; any broken contract raises (non-zero exit).
"""

import argparse
import sys
import threading
from pathlib import Path
from urllib.parse import urlencode

from repro.accuracy import AccuracySurrogate
from repro.serve import ServeClient
from repro.serve.pipeline import (
    build_front_predictor,
    front_search,
    space_for_layout,
)
from repro.serve.query import FrontQuery

QUERY = dict(
    device="edge", layout="proxy", seed=3, generations=3, population_size=8
)
BURST = 8


def _burst(client: ServeClient, path: str) -> bytes:
    bodies = [None] * BURST

    def worker(i):
        status, body = client.request_raw("GET", path)
        assert status == 200, f"request {i} got HTTP {status}: {body!r}"
        bodies[i] = body

    threads = [
        threading.Thread(target=worker, args=(i,)) for i in range(BURST)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=300)
    distinct = set(bodies)
    assert len(distinct) == 1, (
        f"burst produced {len(distinct)} distinct response bodies"
    )
    return bodies[0]


def _assert_offline_bit_exact(client: ServeClient) -> None:
    served = client.front(**QUERY)
    query = FrontQuery(**QUERY)
    space = space_for_layout(query.layout)
    predictor = build_front_predictor(space, query.device, query.seed)
    offline = front_search(
        space,
        predictor,
        seed=query.seed,
        generations=query.generations,
        population_size=query.population_size,
        backend="serial",
        surrogate=AccuracySurrogate(space),
    )
    assert served["num_evaluations"] == offline.num_evaluations
    assert len(served["front"]) == len(offline.front), (
        f"front sizes differ: {len(served['front'])} served "
        f"vs {len(offline.front)} offline"
    )
    for got, want in zip(served["front"], offline.front):
        assert got["latency_ms"] == want.latency_ms, "latency not bit-exact"
        assert got["accuracy"] == want.accuracy, "accuracy not bit-exact"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("state_dir")
    parser.add_argument("body_file", type=Path)
    parser.add_argument(
        "--expect-restored", action="store_true",
        help="require restored-from-snapshot state (post-restart run): "
             "zero front computations and bytes equal to BODY_FILE",
    )
    args = parser.parse_args(argv)

    client = ServeClient.from_state_dir(args.state_dir, wait_s=60)
    print(f"connected to daemon at {client.host}:{client.port}")

    path = "/front?" + urlencode({**QUERY, "target_ms": 50})
    body = _burst(client, path)
    print(f"burst of {BURST} concurrent queries: all byte-identical")

    metrics = client.metrics()
    assert metrics, "/metrics returned an empty payload"
    assert metrics["queries"]["total"] >= BURST
    assert metrics["queries"]["errors"] == 0
    assert metrics["front_cache"]["size"] >= 1
    hits = metrics["front_cache"]["hits"]
    coalesced = metrics["queries"]["coalesced"]
    if args.expect_restored:
        assert metrics["fronts"]["restored"] >= 1, (
            f"expected restored fronts, got {metrics['fronts']}"
        )
        assert metrics["fronts"]["computed"] == 0, (
            f"restored daemon recomputed: {metrics['fronts']}"
        )
        previous = args.body_file.read_bytes()
        assert body == previous, "post-restart bytes differ from pre-kill"
        print("warm restart: restored state, zero recompute, same bytes")
    else:
        assert metrics["fronts"]["computed"] == 1, (
            f"burst must cost exactly one computation: {metrics['fronts']}"
        )
        args.body_file.write_bytes(body)
    print(
        f"metrics: {metrics['queries']['total']} queries, "
        f"{hits} cache hits, {coalesced} coalesced, "
        f"p99 {metrics['latency_ms']['p99']:.2f} ms"
    )

    _assert_offline_bit_exact(client)
    print("served front is bit-exact with the offline pipeline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
