"""Tests for the ``repro.serve`` search-as-a-service subsystem."""
