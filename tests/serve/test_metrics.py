"""ServeMetrics: percentiles, counters, and the snapshot schema."""

import pytest

from repro.serve import ServeMetrics
from repro.serve.metrics import percentile


class TestPercentile:
    def test_empty_window_is_zero(self):
        assert percentile([], 0.99) == 0.0

    def test_nearest_rank(self):
        values = sorted(float(v) for v in range(1, 101))
        assert percentile(values, 0.50) == 50.0
        assert percentile(values, 0.99) == 99.0
        assert percentile(values, 1.00) == 100.0

    def test_single_sample(self):
        assert percentile([7.0], 0.50) == 7.0
        assert percentile([7.0], 0.99) == 7.0


class TestServeMetrics:
    def test_query_counters_and_latency_window(self):
        metrics = ServeMetrics(window=4)
        for ms in (1.0, 2.0, 3.0):
            metrics.record_query("/front", ms)
        metrics.record_query("/query", 0.0, error=True)
        snap = metrics.snapshot()
        assert snap["queries"]["total"] == 4
        assert snap["queries"]["errors"] == 1
        assert snap["queries"]["by_endpoint"] == {"/front": 3, "/query": 1}
        # Errors do not pollute the latency percentiles.
        assert snap["latency_ms"]["window"] == 3
        assert snap["latency_ms"]["p50"] == 2.0
        assert snap["latency_ms"]["max"] == 3.0

    def test_window_is_bounded(self):
        metrics = ServeMetrics(window=2)
        for ms in (10.0, 20.0, 30.0):
            metrics.record_query("/front", ms)
        snap = metrics.snapshot()
        assert snap["latency_ms"]["window"] == 2
        assert snap["latency_ms"]["p50"] == 20.0

    def test_front_and_coalescing_counters(self):
        metrics = ServeMetrics()
        metrics.record_front_computation()
        metrics.record_front_computation(warm=True)
        metrics.record_front_computation(replayed=True)
        metrics.record_coalesced()
        metrics.record_restored(3)
        snap = metrics.snapshot()
        assert snap["fronts"] == {
            "computed": 3, "warm_precomputed": 1, "replayed": 1,
            "restored": 3,
        }
        assert snap["queries"]["coalesced"] == 1

    def test_backend_rollup_accumulates_counters_only(self):
        metrics = ServeMetrics()
        metrics.add_backend_stats(
            {"backend": "serial", "batches": 3, "items": 16}
        )
        metrics.add_backend_stats(
            {"backend": "multiprocess", "batches": 2, "items": 10,
             "chunks_dispatched": 4, "chunk_retries": 1,
             "workers": 8, "cache": {"hits": 5}}
        )
        backend = metrics.snapshot()["backend"]
        assert backend["batches"] == 5
        assert backend["items"] == 26
        assert backend["chunks_dispatched"] == 4
        assert backend["chunk_retries"] == 1
        assert backend["runs_by_backend"] == {"serial": 1, "multiprocess": 1}
        # Identity fields (workers, nested cache) stay out of the rollup.
        assert "workers" not in backend and "cache" not in backend

    def test_snapshot_embeds_cache_stats_unchanged(self):
        metrics = ServeMetrics()
        stats = {"size": 1, "hits": 2, "misses": 1, "evictions": 0,
                 "hit_rate": 2 / 3}
        assert metrics.snapshot(front_cache_stats=stats)["front_cache"] == stats
        assert "front_cache" not in metrics.snapshot()

    def test_invalid_window_raises(self):
        with pytest.raises(ValueError):
            ServeMetrics(window=0)
