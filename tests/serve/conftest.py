"""Shared fixtures for the serve tests.

Everything runs on the tiny ``proxy`` layout with a 3-generation,
8-individual NSGA-II so a full served front costs well under a second;
the contracts under test (caching, coalescing, byte-determinism,
warm restart) are size-independent.
"""

import pytest

from repro.serve import FrontQuery, ServeConfig

# The canonical cheap query the serve tests resolve.
SMALL_QUERY_KW = dict(
    device="edge", layout="proxy", seed=3, generations=3, population_size=8
)


@pytest.fixture
def small_query() -> FrontQuery:
    return FrontQuery(**SMALL_QUERY_KW)


@pytest.fixture
def serial_config() -> ServeConfig:
    return ServeConfig(backend="serial", quiet=True)
