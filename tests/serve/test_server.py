"""The HTTP skin: endpoints, byte-determinism, errors, endpoint file."""

import json
import threading
from urllib.parse import urlencode

import pytest

from repro.serve import ServeClient, ServeConfig, ServeError, start_server
from repro.serve.server import ENDPOINT_FILE, _json_bytes

from tests.serve.conftest import SMALL_QUERY_KW


@pytest.fixture
def running_server(serial_config):
    server, thread = start_server(serial_config)
    try:
        yield server
    finally:
        server.shutdown()
        server.server_close()
        server.service.close()
        thread.join(timeout=30)


def _client(server) -> ServeClient:
    return ServeClient(*server.endpoint)


def _front_path(**extra) -> str:
    return "/front?" + urlencode({**SMALL_QUERY_KW, **extra})


class TestEndpoints:
    def test_healthz(self, running_server):
        assert _client(running_server).health() == {"status": "ok"}

    def test_front_get_and_query_post_agree(self, running_server):
        client = _client(running_server)
        via_get = client.front(**SMALL_QUERY_KW, target_ms=100.0)
        via_post = client.query(**SMALL_QUERY_KW, target_ms=100.0)
        assert via_get == via_post
        assert via_get["front"]

    def test_identical_requests_get_byte_identical_responses(
        self, running_server
    ):
        client = _client(running_server)
        status1, body1 = client.request_raw("GET", _front_path(target_ms=50))
        status2, body2 = client.request_raw("GET", _front_path(target_ms=50))
        assert status1 == status2 == 200
        assert body1 == body2
        # The canonical encoding: sorted keys, one trailing newline.
        assert body1 == _json_bytes(json.loads(body1))

    def test_metrics_reflect_traffic(self, running_server):
        client = _client(running_server)
        client.front(**SMALL_QUERY_KW)
        client.front(**SMALL_QUERY_KW)
        metrics = client.metrics()
        assert metrics["queries"]["total"] >= 2
        assert metrics["queries"]["by_endpoint"]["/front"] >= 2
        assert metrics["fronts"]["computed"] == 1
        assert metrics["front_cache"]["hits"] >= 1
        assert metrics["latency_ms"]["p99"] >= metrics["latency_ms"]["p50"]

    def test_bad_query_is_400_with_actionable_error(self, running_server):
        client = _client(running_server)
        with pytest.raises(ServeError) as excinfo:
            client.front(device="toaster", layout="proxy")
        assert excinfo.value.status == 400
        assert "device" in excinfo.value.body
        with pytest.raises(ServeError) as excinfo:
            client.query(**SMALL_QUERY_KW, sneed=1)
        assert excinfo.value.status == 400

    def test_unknown_paths_are_404(self, running_server):
        client = _client(running_server)
        for method, path in (("GET", "/fronts"), ("POST", "/metrics")):
            status, body = client.request_raw(method, path)
            assert status == 404, (method, path)
            assert b"unknown path" in body

    def test_malformed_post_body_is_400(self, running_server):
        client = _client(running_server)
        # A JSON array is valid JSON but not a query object.
        status, body = client.request_raw("POST", "/query", body=["nope"])
        assert status == 400
        assert b"bad query body" in body


class TestCoalescedTraffic:
    def test_concurrent_http_bursts_coalesce_and_match_bytes(
        self, running_server
    ):
        client = _client(running_server)
        path = _front_path(target_ms=25)
        bodies = [None] * 4

        def worker(i):
            status, body = client.request_raw("GET", path)
            assert status == 200
            bodies[i] = body

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120)
        assert len(set(bodies)) == 1
        metrics = client.metrics()
        # One cold computation total, regardless of how the race between
        # the four requests resolved (followers either coalesced on the
        # in-flight leader or hit the freshly-filled cache).
        assert metrics["fronts"]["computed"] == 1


class TestEndpointFile:
    def test_endpoint_file_written_and_client_connects(self, tmp_path):
        config = ServeConfig(
            backend="serial", quiet=True, state_dir=str(tmp_path)
        )
        server, thread = start_server(config)
        try:
            payload = json.loads((tmp_path / ENDPOINT_FILE).read_text())
            assert (payload["host"], payload["port"]) == server.endpoint
            client = ServeClient.from_state_dir(tmp_path, wait_s=5)
            assert client.health() == {"status": "ok"}
        finally:
            server.shutdown()
            server.server_close()
            server.service.close()
            thread.join(timeout=30)

    def test_from_state_dir_times_out_without_daemon(self, tmp_path):
        with pytest.raises(TimeoutError):
            ServeClient.from_state_dir(tmp_path, wait_s=0.2)
