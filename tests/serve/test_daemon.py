"""``python -m repro.serve`` lifecycle: start, drain, warm restart.

These run the real daemon in a subprocess — the same way the CI
serve-smoke job and an operator would — and assert the full contract:
one ``listening on`` line, graceful SIGTERM drain with exit 0, and a
restart that serves byte-identical responses from restored state
without recomputing.
"""

import json
import os
import signal
import subprocess
import sys
from pathlib import Path
from urllib.parse import urlencode

from repro.serve import ServeClient

from tests.serve.conftest import SMALL_QUERY_KW

REPO_SRC = str(Path(__file__).resolve().parents[2] / "src")


def _spawn_daemon(state_dir, *extra_args):
    env = dict(os.environ)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        REPO_SRC + os.pathsep + existing if existing else REPO_SRC
    )
    return subprocess.Popen(
        [
            sys.executable, "-m", "repro.serve",
            "--backend", "serial",
            "--state-dir", str(state_dir),
            "--quiet",
            *extra_args,
        ],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )


def _drain(proc) -> str:
    proc.send_signal(signal.SIGTERM)
    out, _ = proc.communicate(timeout=60)
    return out


class TestDaemonLifecycle:
    def test_serve_sigterm_drain_and_warm_restart(self, tmp_path):
        state = tmp_path / "state"
        front_path = "/front?" + urlencode({**SMALL_QUERY_KW,
                                            "target_ms": 50})

        proc = _spawn_daemon(state)
        try:
            client = ServeClient.from_state_dir(state, wait_s=30)
            status, cold_body = client.request_raw("GET", front_path)
            assert status == 200
            metrics = client.metrics()
            assert metrics["fronts"]["computed"] == 1
        finally:
            out = _drain(proc)
        assert proc.returncode == 0
        assert "repro-serve listening on http://" in out
        assert "repro-serve drained:" in out

        # Warm restart: restored state, zero recomputation, same bytes.
        proc = _spawn_daemon(state)
        try:
            client = ServeClient.from_state_dir(state, wait_s=30)
            status, warm_body = client.request_raw("GET", front_path)
            assert status == 200
            assert warm_body == cold_body
            metrics = client.metrics()
            assert metrics["fronts"]["restored"] == 1
            assert metrics["fronts"]["computed"] == 0
        finally:
            out = _drain(proc)
        assert proc.returncode == 0
        assert "restored=1" in out

    def test_bad_state_dir_exits_2_with_one_line_error(self, tmp_path):
        # A state dir created by a different run kind must be refused.
        from repro.runstate import RunDir

        foreign = tmp_path / "foreign"
        RunDir.create(foreign, "search", {"seed": 0}, ("search",))
        proc = _spawn_daemon(foreign)
        out, _ = proc.communicate(timeout=60)
        assert proc.returncode == 2
        assert out.startswith("error:")
        assert "\nTraceback" not in out
