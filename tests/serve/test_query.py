"""FrontQuery: validation, canonical keys, and strict parsing."""

import pytest

from repro.serve import FrontQuery, warm_query_from_spec
from repro.serve.query import SERVABLE_DEVICES, SERVABLE_LAYOUTS


class TestFrontQuery:
    def test_defaults_mirror_the_cli_front_recipe(self):
        q = FrontQuery()
        assert (q.device, q.layout) == ("edge", "a")
        assert (q.seed, q.generations, q.population_size) == (0, 20, 50)

    def test_key_is_canonical_and_hashable(self):
        q = FrontQuery(device="gpu", layout="mini", seed=7)
        assert q.key() == ("front", "gpu", "mini", 7, 20, 50)
        assert hash(q.key())
        assert FrontQuery(device="gpu", layout="mini", seed=7).key() == q.key()

    def test_key_separates_every_result_changing_field(self):
        base = FrontQuery()
        variants = [
            FrontQuery(device="gpu"),
            FrontQuery(layout="mini"),
            FrontQuery(seed=1),
            FrontQuery(generations=19),
            FrontQuery(population_size=48),
        ]
        keys = {q.key() for q in [base] + variants}
        assert len(keys) == len(variants) + 1

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"device": "tpu"},
            {"layout": "imagenet"},
            {"generations": 0},
            {"population_size": 3},
        ],
    )
    def test_invalid_fields_raise(self, kwargs):
        with pytest.raises(ValueError):
            FrontQuery(**kwargs)

    def test_roundtrip_through_dict(self):
        q = FrontQuery(device="cpu", layout="b", seed=5, generations=9,
                       population_size=12)
        assert FrontQuery.from_dict(q.to_dict()) == q

    def test_from_dict_casts_url_string_numerics(self):
        q = FrontQuery.from_dict(
            {"device": "edge", "layout": "proxy", "seed": "3",
             "generations": "4", "population_size": "8"}
        )
        assert (q.seed, q.generations, q.population_size) == (3, 4, 8)

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown query field"):
            FrontQuery.from_dict({"device": "edge", "generation": 5})

    def test_from_dict_rejects_non_numeric(self):
        with pytest.raises(ValueError, match="seed"):
            FrontQuery.from_dict({"seed": "lots"})

    def test_servable_sets_cover_all_cli_layouts(self):
        assert set(SERVABLE_LAYOUTS) == {"a", "b", "mini", "proxy"}
        assert set(SERVABLE_DEVICES) == {"gpu", "cpu", "edge"}


class TestWarmSpec:
    def test_device_layout(self):
        q = warm_query_from_spec("edge:a")
        assert (q.device, q.layout, q.seed) == ("edge", "a", 0)

    def test_device_layout_seed(self):
        q = warm_query_from_spec("gpu:mini:7")
        assert (q.device, q.layout, q.seed) == ("gpu", "mini", 7)

    @pytest.mark.parametrize("spec", ["edge", "a:b:c:d", "edge:a:x"])
    def test_malformed_specs_raise(self, spec):
        with pytest.raises(ValueError):
            warm_query_from_spec(spec)
