"""SearchService: caching, coalescing, bit-exactness, warm restart."""

import json
import threading
import time
from dataclasses import replace

import pytest

from repro.accuracy import AccuracySurrogate
from repro.serve import FrontQuery, SearchService, ServeConfig
from repro.serve.pipeline import (
    build_front_predictor,
    front_search,
    space_for_layout,
)
from repro.serve.service import CachedFront

from tests.serve.conftest import SMALL_QUERY_KW

# The expected EvaluationCache.stats() schema — the single cache-stats
# shape shared by SearchResult, ShrinkResult, and /metrics.
CACHE_STATS_KEYS = {"size", "hits", "misses", "evictions", "hit_rate"}


def _offline_front(query: FrontQuery):
    """The offline pipeline run with entirely fresh objects."""
    space = space_for_layout(query.layout)
    predictor = build_front_predictor(space, query.device, query.seed)
    return front_search(
        space,
        predictor,
        seed=query.seed,
        generations=query.generations,
        population_size=query.population_size,
        backend="serial",
        surrogate=AccuracySurrogate(space),
    )


class TestCachingAndExactness:
    def test_served_front_is_bit_identical_to_offline(
        self, serial_config, small_query
    ):
        service = SearchService(serial_config)
        served = service.front(small_query)
        offline = _offline_front(small_query)
        assert served.num_evaluations == offline.num_evaluations
        assert len(served.front) == len(offline.front)
        for got, want in zip(served.front, offline.front):
            assert got.arch.ops == want.arch.ops
            assert got.arch.factors == want.arch.factors
            assert got.latency_ms == want.latency_ms  # bit-equal floats
            assert got.accuracy == want.accuracy

    def test_repeat_query_is_a_cache_hit_not_a_recompute(
        self, serial_config, small_query
    ):
        service = SearchService(serial_config)
        first = service.front(small_query)
        second = service.front(small_query)
        assert second is first
        assert service.metrics.front_computations == 1
        stats = service.metrics_snapshot()["front_cache"]
        assert stats["hits"] == 1 and stats["misses"] == 1

    def test_lru_eviction_with_tiny_cache(self, serial_config):
        config = replace(serial_config, front_cache_size=1)
        service = SearchService(config)
        q1 = FrontQuery(**SMALL_QUERY_KW)
        q2 = replace(q1, seed=q1.seed + 1)
        service.front(q1)
        service.front(q2)  # evicts q1
        service.front(q1)  # recompute
        assert service.metrics.front_computations == 3
        stats = service.metrics_snapshot()["front_cache"]
        assert stats["evictions"] == 2
        assert stats["size"] == 1

    def test_metrics_cache_stats_use_the_shared_schema(
        self, serial_config, small_query
    ):
        service = SearchService(serial_config)
        service.front(small_query)
        stats = service.metrics_snapshot()["front_cache"]
        assert set(stats) == CACHE_STATS_KEYS

    def test_backend_dispatch_counters_roll_up(
        self, serial_config, small_query
    ):
        service = SearchService(serial_config)
        served = service.front(small_query)
        backend = service.metrics_snapshot()["backend"]
        assert backend["runs_by_backend"] == {"serial": 1}
        assert backend["items"] == served.num_evaluations
        assert backend["batches"] >= 1


class TestResolve:
    def test_resolve_with_target_adds_knee_cut(
        self, serial_config, small_query
    ):
        service = SearchService(serial_config)
        response = service.resolve(
            {**SMALL_QUERY_KW, "target_ms": 1e9}
        )
        assert response["feasible"] is True
        assert response["best"] in response["front"]
        assert response["query"] == small_query.to_dict()

    def test_resolve_with_unreachable_target_is_infeasible(
        self, serial_config
    ):
        service = SearchService(serial_config)
        response = service.resolve(
            {**SMALL_QUERY_KW, "target_ms": 1e-9}
        )
        assert response["feasible"] is False
        assert response["best"] is None
        assert response["front"]  # the front itself is still served

    def test_resolve_without_target_omits_best(self, serial_config):
        service = SearchService(serial_config)
        response = service.resolve(dict(SMALL_QUERY_KW))
        assert "best" not in response and "feasible" not in response

    def test_resolve_rejects_bad_target_and_unknown_fields(
        self, serial_config
    ):
        service = SearchService(serial_config)
        with pytest.raises(ValueError, match="target_ms"):
            service.resolve({**SMALL_QUERY_KW, "target_ms": "soon"})
        with pytest.raises(ValueError, match="unknown query field"):
            service.resolve({**SMALL_QUERY_KW, "tarmac": 1})


class TestCoalescing:
    def _gate_compute(self, monkeypatch):
        """Patch _compute to block until released, counting real calls."""
        release = threading.Event()
        computed = []
        original = SearchService._compute

        def gated(self, query, warm, cancel=None):
            computed.append(query)
            assert release.wait(timeout=60), "gate never released"
            return original(self, query, warm, cancel=cancel)

        monkeypatch.setattr(SearchService, "_compute", gated)
        return release, computed

    def _await_value(self, read, want, timeout=30.0):
        deadline = time.monotonic() + timeout
        while read() < want:
            assert time.monotonic() < deadline, "condition never reached"
            time.sleep(0.005)

    def test_identical_concurrent_queries_share_one_computation(
        self, monkeypatch, serial_config, small_query
    ):
        service = SearchService(serial_config)
        release, computed = self._gate_compute(monkeypatch)
        results = [None] * 5

        def worker(i):
            results[i] = service.front(small_query)

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(5)
        ]
        for t in threads:
            t.start()
        # One leader is inside the gated compute; the other four must
        # all have registered as coalesced followers before we release.
        self._await_value(lambda: service.metrics.coalesced, 4)
        assert len(computed) == 1
        release.set()
        for t in threads:
            t.join(timeout=60)
        assert len(computed) == 1
        assert all(r is results[0] for r in results)
        # Identical object => identical serialized bytes, trivially.
        payloads = {
            json.dumps(r.to_dict(), sort_keys=True) for r in results
        }
        assert len(payloads) == 1
        assert service.metrics.front_computations == 1

    def test_queries_differing_by_seed_do_not_coalesce(
        self, monkeypatch, serial_config, small_query
    ):
        service = SearchService(serial_config)
        release, computed = self._gate_compute(monkeypatch)
        other = replace(small_query, seed=small_query.seed + 1)
        results = {}

        def worker(query):
            results[query.seed] = service.front(query)

        threads = [
            threading.Thread(target=worker, args=(q,))
            for q in (small_query, other)
        ]
        for t in threads:
            t.start()
        # Both are leaders of distinct keys: two real computations are
        # in flight simultaneously, nobody coalesces.
        self._await_value(lambda: len(computed), 2)
        release.set()
        for t in threads:
            t.join(timeout=60)
        assert service.metrics.coalesced == 0
        assert service.metrics.front_computations == 2
        assert results[small_query.seed].query != results[other.seed].query

    def test_leader_failure_propagates_to_followers(
        self, monkeypatch, serial_config, small_query
    ):
        service = SearchService(serial_config)
        release = threading.Event()

        def exploding(self, query, warm, cancel=None):
            assert release.wait(timeout=60)
            raise RuntimeError("boom")

        monkeypatch.setattr(SearchService, "_compute", exploding)
        errors = []

        def worker():
            try:
                service.front(small_query)
            except RuntimeError as exc:
                errors.append(str(exc))

        threads = [threading.Thread(target=worker) for _ in range(3)]
        for t in threads:
            t.start()
        self._await_value(lambda: service.metrics.coalesced, 2)
        release.set()
        for t in threads:
            t.join(timeout=60)
        assert errors == ["boom"] * 3
        # A failed computation must not poison the cache.
        assert len(service._front_cache) == 0
        assert not service._inflight


class TestWarmRestart:
    def test_restart_restores_and_serves_identical_bytes(
        self, tmp_path, small_query
    ):
        config = ServeConfig(
            backend="serial", quiet=True, state_dir=str(tmp_path / "state")
        )
        first = SearchService(config)
        served = first.front(small_query)
        payload = json.dumps(served.to_dict(), sort_keys=True)
        # No close(): persist-after-compute alone must survive a kill.
        del first

        second = SearchService(config)
        assert second.metrics.restored_fronts == 1
        restored = second.front(small_query)
        assert second.metrics.front_computations == 0
        assert json.dumps(restored.to_dict(), sort_keys=True) == payload

    def test_warm_start_precomputes_and_restores_skip_recompute(
        self, tmp_path, small_query
    ):
        config = ServeConfig(
            backend="serial",
            quiet=True,
            state_dir=str(tmp_path / "state"),
            warm=(small_query,),
        )
        first = SearchService(config)
        assert first.warm_start() == 1
        assert first.metrics.warm_precomputed == 1
        first.close()

        second = SearchService(config)
        assert second.warm_start() == 0  # satisfied from the snapshot
        assert second.metrics.front_computations == 0

    def test_cached_front_roundtrips_through_snapshot_payload(
        self, serial_config, small_query
    ):
        service = SearchService(serial_config)
        served = service.front(small_query)
        clone = CachedFront.from_dict(
            json.loads(json.dumps(served.to_dict()))
        )
        assert clone == served
        assert clone.key() == small_query.key()
