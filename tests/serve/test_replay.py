"""SearchService tabular replay: covered queries served from columns.

A daemon started with ``--table`` must answer covered queries by
replaying the artifact — same bytes as a live search, milliseconds of
work — and must fall back to the live pipeline (without counting a
replay) the moment any coverage condition fails: wrong seed, wrong
device, wrong layout, or a non-"front" recipe.
"""

import pytest

from repro.serve import FrontQuery, SearchService, ServeConfig
from repro.serve.pipeline import space_for_layout
from repro.tabular import TabularArtifactError, save_artifact, tabulate

# The mini layout is the only registered layout small enough to
# tabulate exhaustively (15^4 = 50,625 architectures).
MINI_QUERY_KW = dict(
    device="edge", layout="mini", seed=3, generations=3, population_size=8
)


@pytest.fixture(scope="module")
def mini_artifact(tmp_path_factory):
    table = tabulate(
        space_for_layout("mini"), devices=("edge",), seed=3,
        recipe="front",
    )
    path = tmp_path_factory.mktemp("serve_table") / "mini_front"
    return save_artifact(table, path, layout="mini")


def replay_config(mini_artifact) -> ServeConfig:
    return ServeConfig(
        backend="serial", quiet=True, table=str(mini_artifact)
    )


def front_bytes(result) -> list:
    return [
        (p.arch.ops, p.arch.factors, p.latency_ms, p.accuracy)
        for p in result.front
    ]


class TestCoveredReplay:
    def test_covered_query_replays_identical_bytes(self, mini_artifact):
        query = FrontQuery(**MINI_QUERY_KW)
        live = SearchService(ServeConfig(backend="serial", quiet=True))
        replaying = SearchService(replay_config(mini_artifact))
        want = live.front(query)
        got = replaying.front(query)
        assert front_bytes(got) == front_bytes(want)
        assert got.num_evaluations == want.num_evaluations
        assert live.metrics.snapshot()["fronts"]["replayed"] == 0
        assert replaying.metrics.snapshot()["fronts"] == {
            "computed": 1, "warm_precomputed": 0, "replayed": 1,
            "restored": 0,
        }

    def test_repeat_covered_query_hits_front_cache(self, mini_artifact):
        service = SearchService(replay_config(mini_artifact))
        query = FrontQuery(**MINI_QUERY_KW)
        first = service.front(query)
        second = service.front(query)
        assert front_bytes(first) == front_bytes(second)
        # Still one replay: the second answer came from the front cache.
        assert service.metrics.snapshot()["fronts"]["replayed"] == 1


class TestCoverageBoundaries:
    @pytest.fixture()
    def service(self, mini_artifact):
        return SearchService(replay_config(mini_artifact))

    def _assert_live(self, service, query):
        service.front(query)
        fronts = service.metrics.snapshot()["fronts"]
        assert fronts["computed"] == 1
        assert fronts["replayed"] == 0

    def test_seed_mismatch_falls_back_to_live(self, service):
        self._assert_live(
            service, FrontQuery(**{**MINI_QUERY_KW, "seed": 4})
        )

    def test_device_not_tabulated_falls_back_to_live(self, service):
        self._assert_live(
            service, FrontQuery(**{**MINI_QUERY_KW, "device": "gpu"})
        )

    def test_other_layout_falls_back_to_live(self, service):
        self._assert_live(
            service, FrontQuery(**{**MINI_QUERY_KW, "layout": "proxy"})
        )

    def test_search_recipe_artifact_never_replays_fronts(
        self, tmp_path, monkeypatch
    ):
        # A "search"-recipe table holds different columns than the
        # front recipe computes; serving from it would change bytes.
        table = tabulate(
            space_for_layout("mini"), devices=("edge",), seed=3,
            recipe="search",
        )
        path = save_artifact(table, tmp_path / "mini_search", layout="mini")
        service = SearchService(
            ServeConfig(backend="serial", quiet=True, table=str(path))
        )
        self._assert_live(service, FrontQuery(**MINI_QUERY_KW))


class TestStartupValidation:
    def test_bad_artifact_fails_at_startup_not_first_query(self, tmp_path):
        config = ServeConfig(
            backend="serial", quiet=True, table=str(tmp_path / "nowhere")
        )
        with pytest.raises(TabularArtifactError, match="not a tabular"):
            SearchService(config)

    def test_no_table_serves_live(self, serial_config, small_query):
        service = SearchService(serial_config)
        service.front(small_query)
        assert service.metrics.snapshot()["fronts"]["replayed"] == 0
