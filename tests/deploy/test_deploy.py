"""Tests for model bundles and quantization."""

import numpy as np
import pytest

from repro.deploy import (
    QuantizationReport,
    export_bundle,
    fake_quantize_array,
    load_bundle,
    quantize_model_weights,
)
from repro.space import Architecture
from repro.supernet import Supernet
from repro.train import SupernetTrainer, TrainConfig, top_k_accuracy


@pytest.fixture()
def trained(tiny_space, tiny_loader):
    net = Supernet(tiny_space, seed=0)
    trainer = SupernetTrainer(net, tiny_loader, TrainConfig(base_lr=0.1, seed=0))
    trainer.train_epochs(tiny_space, epochs=2)
    return net


class TestBundle:
    def test_roundtrip_preserves_outputs(self, tiny_space, trained, rng, tmp_path):
        arch = tiny_space.sample(rng)
        path = export_bundle(trained, arch, tmp_path / "model")
        assert path.suffix == ".npz"

        restored = load_bundle(path)
        trained.set_architecture(arch)
        trained.eval()
        x = rng.normal(size=(2, 3, 16, 16))
        np.testing.assert_allclose(trained(x), restored(x))
        trained.train()

    def test_restored_is_independent(self, tiny_space, trained, rng, tmp_path):
        arch = tiny_space.sample(rng)
        path = export_bundle(trained, arch, tmp_path / "model")
        restored = load_bundle(path)
        next(iter(trained.parameters())).data += 100.0
        # restored model unaffected
        assert not np.allclose(
            next(iter(trained.parameters())).data,
            next(iter(restored.parameters())).data,
        )

    def test_architecture_restored(self, tiny_space, trained, rng, tmp_path):
        arch = tiny_space.sample(rng)
        path = export_bundle(trained, arch, tmp_path / "model")
        restored = load_bundle(path)
        assert restored.active_architecture == arch

    def test_foreign_arch_rejected(self, trained, tmp_path):
        with pytest.raises(ValueError):
            export_bundle(trained, Architecture.uniform(3), tmp_path / "m")

    def test_non_bundle_file_rejected(self, tmp_path):
        path = tmp_path / "junk.npz"
        np.savez(path, a=np.zeros(3))
        with pytest.raises(ValueError):
            load_bundle(path)


class TestFakeQuantize:
    def test_identity_on_zero_tensor(self):
        z = np.zeros((3, 3))
        np.testing.assert_array_equal(fake_quantize_array(z, bits=8), z)

    def test_error_bounded_by_half_step(self):
        rng = np.random.default_rng(0)
        w = rng.normal(size=(8, 16))
        q = fake_quantize_array(w, bits=8, per_channel_axis=0)
        for ch in range(8):
            step = np.abs(w[ch]).max() / 127
            assert np.abs(q[ch] - w[ch]).max() <= step / 2 + 1e-12

    def test_fewer_bits_more_error(self):
        rng = np.random.default_rng(0)
        w = rng.normal(size=(4, 32))
        err8 = np.abs(fake_quantize_array(w, bits=8) - w).mean()
        err4 = np.abs(fake_quantize_array(w, bits=4) - w).mean()
        assert err4 > err8

    def test_values_on_grid(self):
        rng = np.random.default_rng(0)
        w = rng.normal(size=(64,))
        q = fake_quantize_array(w, bits=4)
        scale = np.abs(w).max() / 7
        grid = np.round(q / scale)
        np.testing.assert_allclose(grid, np.round(grid), atol=1e-9)

    def test_invalid_bits_raises(self):
        with pytest.raises(ValueError):
            fake_quantize_array(np.ones(3), bits=1)


class TestQuantizeModel:
    def test_report_counts_tensors(self, tiny_space, trained):
        report = quantize_model_weights(trained, bits=8)
        assert isinstance(report, QuantizationReport)
        assert report.tensors_quantized > 10
        assert report.max_abs_error > 0.0
        assert "int8" in str(report)

    def test_int8_accuracy_nearly_preserved(self, tiny_space, tiny_dataset,
                                            trained, rng):
        arch = tiny_space.sample(rng)
        trained.set_architecture(arch)
        trained.train()
        before = top_k_accuracy(trained(tiny_dataset.test_x), tiny_dataset.test_y)
        quantize_model_weights(trained, bits=8)
        after = top_k_accuracy(trained(tiny_dataset.test_x), tiny_dataset.test_y)
        assert abs(after - before) <= 0.15

    def test_int2_degrades_more_than_int8(self, tiny_space, trained, rng):
        """Aggressive quantization perturbs outputs much more."""
        arch = tiny_space.sample(rng)
        x = rng.normal(size=(4, 3, 16, 16))

        def perturbation(bits):
            import copy

            from repro.supernet import extract_subnet

            model = extract_subnet(trained, arch)
            model.train()
            reference = model(x.copy())
            quantize_model_weights(model, bits=bits)
            return float(np.abs(model(x.copy()) - reference).mean())

        assert perturbation(2) > perturbation(8) * 2
