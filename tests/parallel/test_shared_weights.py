"""SharedWeightStore: layout, read-only views, cross-process visibility."""

import numpy as np
import pytest

from repro.parallel import (
    SharedWeightStore,
    WorkerPool,
    fork_available,
)
from repro.supernet import Supernet


@pytest.fixture()
def store(tiny_supernet):
    with SharedWeightStore.create_from(tiny_supernet) as s:
        yield s


class TestLayoutAndViews:
    def test_roundtrip_matches_state_dict(self, tiny_supernet, store):
        state = tiny_supernet.state_dict()
        exported = store.export_state()
        assert set(exported) == set(state)
        for name, value in state.items():
            np.testing.assert_array_equal(exported[name], value)

    def test_shared_view_is_read_only(self, store):
        name = store.parameter_names()[0]
        view = store.shared_view(name)
        assert not view.flags.writeable
        # The writes RL103 warns about are exactly what this test proves
        # impossible at runtime.
        with pytest.raises(ValueError):
            view[...] = 0.0  # repro-lint: disable=RL103
        with pytest.raises(ValueError):
            view -= 1.0  # repro-lint: disable=RL103

    def test_unknown_parameter_raises(self, store):
        with pytest.raises(KeyError, match="no parameter"):
            store.shared_view("not.a.parameter")

    def test_handle_is_picklable(self, store):
        import pickle

        handle = pickle.loads(pickle.dumps(store.handle()))
        assert handle.shm_name == store.handle().shm_name
        assert handle.num_parameters == sum(
            store.shared_view(n).size for n in store.parameter_names()
        )


class TestModuleIntegration:
    def test_install_rebinds_every_parameter(self, tiny_space, store):
        other = Supernet(tiny_space, seed=99)
        count = store.install(other)
        assert count == sum(1 for _ in other.named_parameters())
        for name, param in other.named_parameters():
            assert not param.data.flags.writeable
            np.testing.assert_array_equal(
                param.data, store.shared_view(name)
            )

    def test_installed_forward_matches_source(
        self, tiny_space, tiny_supernet, store, rng
    ):
        # A differently-initialized supernet, once installed, must
        # compute exactly what the source supernet computes.
        other = Supernet(tiny_space, seed=99)
        store.install(other)
        x = rng.standard_normal((4, 3, 16, 16))
        for _ in range(3):
            arch = tiny_space.sample(rng)
            tiny_supernet.set_architecture(arch)
            other.set_architecture(arch)
            np.testing.assert_array_equal(
                tiny_supernet.train()(x), other.train()(x)
            )

    def test_installed_weights_reject_optimizer_writes(
        self, tiny_space, store
    ):
        # The protection the read-only views buy: a worker accidentally
        # running a training step fails loudly instead of corrupting
        # every sibling's evaluations.
        other = Supernet(tiny_space, seed=99)
        store.install(other)
        param = next(iter(dict(other.named_parameters()).values()))
        with pytest.raises(ValueError):
            param.data -= 0.1 * np.ones_like(param.data)

    def test_install_shape_mismatch_raises(self, store):
        class Wrong:
            def named_parameters(self):
                from repro.nn.module import Parameter

                name = store.parameter_names()[0]
                yield name, Parameter(np.zeros(7))

        with pytest.raises(ValueError, match="shape mismatch"):
            store.install(Wrong())

    def test_refresh_from_propagates_updates(self, tiny_space, tiny_supernet, store):
        name, param = next(iter(tiny_supernet.named_parameters()))
        param.data = param.data + 1.5
        store.refresh_from(tiny_supernet)
        np.testing.assert_array_equal(store.shared_view(name), param.data)


@pytest.mark.skipif(not fork_available(), reason="requires fork")
class TestCrossProcess:
    def test_worker_rebuilds_module_from_handle(
        self, tiny_space, tiny_supernet, store, rng
    ):
        # The spawn-style worker path: attach by handle, rebuild the
        # module tree around the shared buffers, forward — no inherited
        # weights involved (the worker net is seeded differently).
        handle = store.handle()
        x = rng.standard_normal((4, 3, 16, 16))
        archs = [tiny_space.sample(rng) for _ in range(4)]

        def eval_chunk(chunk_archs):
            worker_store = SharedWeightStore.attach(handle)
            try:
                net = Supernet(tiny_space, seed=1234)
                worker_store.install(net)
                out = []
                for arch in chunk_archs:
                    net.set_architecture(arch)
                    out.append(net.train()(x))
                return out
            finally:
                worker_store.close()

        with WorkerPool(eval_chunk, workers=2, chunk_size=2) as pool:
            results = pool.map(archs)
        for arch, logits in zip(archs, results):
            tiny_supernet.set_architecture(arch)
            np.testing.assert_array_equal(tiny_supernet.train()(x), logits)

    def test_refresh_is_visible_to_live_workers(self, tiny_supernet, store):
        # Workers forked *before* a weight update must read the new
        # values through shared memory — the property that lets tuning
        # between shrinking stages skip a pool restart.
        name = store.parameter_names()[0]

        def read_chunk(items):
            return [float(np.sum(store.shared_view(name))) for _ in items]

        with WorkerPool(read_chunk, workers=2, chunk_size=1) as pool:
            before = pool.map([0])[0]
            pname, param = next(iter(tiny_supernet.named_parameters()))
            assert pname == name
            param.data = param.data + 1.0
            store.refresh_from(tiny_supernet)
            after = pool.map([0])[0]
        assert before == pytest.approx(float(np.sum(param.data)) - param.data.size)
        assert after == pytest.approx(float(np.sum(param.data)))


class TestLifecycle:
    def test_close_is_idempotent_and_owner_unlinks(self, tiny_supernet):
        store = SharedWeightStore.create_from(tiny_supernet)
        handle = store.handle()
        store.close()
        store.close()
        assert store.closed
        with pytest.raises(RuntimeError):
            store.handle()
        with pytest.raises(FileNotFoundError):
            SharedWeightStore.attach(handle)

    def test_attached_store_does_not_unlink(self, tiny_supernet):
        owner = SharedWeightStore.create_from(tiny_supernet)
        worker = SharedWeightStore.attach(owner.handle())
        worker.close()
        # The owner's block must survive a worker detach.
        again = SharedWeightStore.attach(owner.handle())
        again.close()
        owner.close()
