"""Hang watchdog + cooperative cancellation in the worker pool.

A hung worker is indistinguishable from a slow one except by wall
clock, so the pool's only defence is a dispatch timeout: no chunk
completion within ``dispatch_timeout_s`` kills the whole worker set,
re-forks it, and retries the windowed chunks. Unlike a crash, a hang is
never retried serially in the parent — that would hang the daemon.
"""

import os
import tempfile
import time

import pytest

from repro.parallel import WorkerHangError, WorkerPool, fork_available
from repro.resilience import CancelToken, DeadlineExceeded

pytestmark = pytest.mark.skipif(
    not fork_available(), reason="requires the fork start method"
)


def square_chunk(items):
    return [x * x for x in items]


def make_hang_while_sentinel_chunk(sentinel_path):
    """Chunk fn that hangs (sleeps far past any timeout) while the
    sentinel exists; the first hanging execution removes it, so the
    post-kill retry proceeds normally."""

    def chunk(items):
        try:
            os.remove(sentinel_path)
        except FileNotFoundError:
            return [x * x for x in items]
        time.sleep(300)
        return [x * x for x in items]  # pragma: no cover - killed first

    return chunk


def make_hang_always_chunk():
    def chunk(items):
        time.sleep(300)
        return [x * x for x in items]  # pragma: no cover - killed first

    return chunk


def slow_chunk(items):
    time.sleep(0.2)
    return [x * x for x in items]


def _sentinel() -> str:
    handle = tempfile.NamedTemporaryFile(delete=False)
    handle.close()
    return handle.name


class TestHangWatchdog:
    def test_hang_once_killed_retried_and_correct(self):
        sentinel = _sentinel()
        try:
            with WorkerPool(
                make_hang_while_sentinel_chunk(sentinel),
                workers=2,
                chunk_size=4,
                dispatch_timeout_s=1.0,
            ) as pool:
                assert pool.map(range(8)) == [x * x for x in range(8)]
                assert pool.hang_kills == 1
                assert pool.pool_rebuilds >= 1
                assert pool.chunk_retries >= 1
        finally:
            if os.path.exists(sentinel):
                os.remove(sentinel)

    def test_persistent_hang_raises_worker_hang_error(self):
        with WorkerPool(
            make_hang_always_chunk(),
            workers=2,
            chunk_size=4,
            max_retries=1,
            dispatch_timeout_s=0.5,
        ) as pool:
            with pytest.raises(WorkerHangError) as excinfo:
                pool.map(range(8))
            assert "no progress" in str(excinfo.value)
            assert pool.hang_kills >= 1

    def test_no_timeout_means_no_watchdog_counters(self):
        with WorkerPool(square_chunk, workers=2, chunk_size=4) as pool:
            assert pool.map(range(8)) == [x * x for x in range(8)]
            assert pool.hang_kills == 0

    def test_invalid_timeout_rejected(self):
        with pytest.raises(ValueError):
            WorkerPool(square_chunk, workers=2, dispatch_timeout_s=0)


class TestPoolCancellation:
    def test_expired_token_stops_parallel_map(self):
        token = CancelToken(deadline_s=0.4)
        with WorkerPool(slow_chunk, workers=2, chunk_size=1) as pool:
            pool.set_cancel(token)
            with pytest.raises(DeadlineExceeded) as excinfo:
                pool.map(range(64))
            assert excinfo.value.progress["stage"] == "worker-pool"
            assert "chunks_dispatched" in excinfo.value.progress

    def test_expired_token_stops_serial_map(self):
        token = CancelToken(deadline_s=1.0)
        token.cancel()
        with WorkerPool(slow_chunk, workers=0) as pool:
            pool.set_cancel(token)
            with pytest.raises(DeadlineExceeded):
                pool.map(range(4))

    def test_clearing_the_token_restores_normal_maps(self):
        token = CancelToken(deadline_s=1.0)
        token.cancel()
        with WorkerPool(square_chunk, workers=0) as pool:
            pool.set_cancel(token)
            with pytest.raises(DeadlineExceeded):
                pool.map(range(4))
            pool.set_cancel(None)
            assert pool.map(range(4)) == [0, 1, 4, 9]

    def test_healthy_run_unaffected_by_generous_token(self):
        with WorkerPool(square_chunk, workers=2, chunk_size=4) as pool:
            bare = pool.map(range(16))
        with WorkerPool(square_chunk, workers=2, chunk_size=4) as pool:
            pool.set_cancel(CancelToken(deadline_s=600))
            with_token = pool.map(range(16))
        assert bare == with_token
