"""Serial vs parallel bit-exactness across every wired call site.

The contract under test: ``workers`` is a pure wall-clock knob. Every
assertion here is exact equality — no tolerances — between a serial run
and a run whose evaluations fanned out across worker processes.
"""

import os
import signal

import numpy as np
import pytest

from repro.core import (
    EvaluationCache,
    EvolutionConfig,
    EvolutionarySearch,
    HSCoNAS,
    HSCoNASConfig,
    Nsga2Config,
    Nsga2Search,
    Objective,
    ProgressiveSpaceShrinking,
    SubspaceQuality,
)
from repro.hardware import LatencyLUT
from repro.hardware.calibration import calibrated_devices
from repro.parallel import ParallelEvaluator, fork_available

pytestmark = pytest.mark.skipif(
    not fork_available(), reason="requires the fork start method"
)

PARENT_PID = os.getpid()


def make_objective(space, state=None):
    """Deterministic FLOPs-based Eq. 1 objective (no device needed).

    ``state`` (a mutable dict) stands in for tunable supernet weights:
    mutating it changes every accuracy, the way tuning would.
    """
    state = state if state is not None else {"scale": 1.0}
    return Objective(
        accuracy_fn=lambda a: state["scale"] * space.arch_flops(a) / 3e8,
        latency_fn=lambda a: space.arch_flops(a) / 1e7,
        target_ms=15.0,
        beta=-0.3,
    )


class TestQualityEstimate:
    def test_estimate_matches_serial(self, proxy_space):
        obj = make_objective(proxy_space)
        serial = SubspaceQuality(obj, num_samples=40, seed=7).estimate(
            proxy_space
        )
        with ParallelEvaluator(obj.evaluate_many, workers=2) as evaluator:
            parallel = SubspaceQuality(
                obj, num_samples=40, seed=7, evaluator=evaluator
            ).estimate(proxy_space)
        assert parallel == serial

    def test_estimate_many_matches_estimate_loop(self, proxy_space):
        obj = make_objective(proxy_space)
        subspaces = [
            proxy_space.fix_operator(0, op)
            for op in proxy_space.candidate_ops[0]
        ]
        loop = SubspaceQuality(obj, num_samples=25, seed=3)
        expected = [loop.estimate(s) for s in subspaces]
        with ParallelEvaluator(obj.evaluate_many, workers=2) as evaluator:
            batched = SubspaceQuality(
                obj, num_samples=25, seed=3, evaluator=evaluator
            ).estimate_many(subspaces)
        assert batched == expected

    def test_estimate_many_preserves_shared_cache_accounting(
        self, proxy_space
    ):
        obj = make_objective(proxy_space)
        subspaces = [
            proxy_space.fix_operator(1, op)
            for op in proxy_space.candidate_ops[1]
        ]
        cache_loop = EvaluationCache()
        loop = SubspaceQuality(obj, num_samples=30, seed=9, cache=cache_loop)
        expected = [loop.estimate(s) for s in subspaces]
        cache_batch = EvaluationCache()
        batched = SubspaceQuality(
            obj, num_samples=30, seed=9, cache=cache_batch
        ).estimate_many(subspaces)
        assert batched == expected
        assert cache_batch.stats() == cache_loop.stats()

    def test_explicit_index_decouples_from_call_order(self, proxy_space):
        # The satellite fix: an estimate's draw depends only on its
        # index, never on how many estimates ran before it.
        obj = make_objective(proxy_space)
        s0 = proxy_space.fix_operator(0, 0)
        s1 = proxy_space.fix_operator(0, 1)
        a = SubspaceQuality(obj, num_samples=20, seed=5)
        q0_first = a.estimate(s0, index=0)
        q1_second = a.estimate(s1, index=1)
        b = SubspaceQuality(obj, num_samples=20, seed=5)
        assert b.estimate(s1, index=1) == q1_second
        assert b.estimate(s0, index=0) == q0_first

    def test_internal_counter_matches_explicit_indices(self, proxy_space):
        obj = make_objective(proxy_space)
        s = proxy_space.fix_operator(0, 2)
        implicit = SubspaceQuality(obj, num_samples=20, seed=5)
        explicit = SubspaceQuality(obj, num_samples=20, seed=5)
        assert implicit.estimate(s) == explicit.estimate(s, index=0)
        assert implicit.estimate(s) == explicit.estimate(s, index=1)

    def test_reserve_indices_are_consecutive(self, proxy_space):
        q = SubspaceQuality(make_objective(proxy_space), num_samples=5)
        assert q.reserve_indices(3) == [0, 1, 2]
        assert q.reserve_indices(2) == [3, 4]
        with pytest.raises(ValueError):
            q.reserve_indices(0)

    def test_index_count_mismatch_raises(self, proxy_space):
        q = SubspaceQuality(make_objective(proxy_space), num_samples=5)
        with pytest.raises(ValueError, match="indices"):
            q.estimate_many([proxy_space, proxy_space], indices=[0])


class TestWorkerItemAccounting:
    def test_parallel_map_reports_worker_items(self, proxy_space, rng):
        obj = make_objective(proxy_space)
        archs = [proxy_space.sample(rng) for _ in range(12)]
        counts = []
        with ParallelEvaluator(
            obj.evaluate_many, workers=2, on_worker_items=counts.append
        ) as evaluator:
            evaluator.map(archs)
        assert sum(counts) == len(archs)

    def test_serial_map_reports_nothing(self, proxy_space, rng):
        # Inline evaluation already performs its own parent-side
        # accounting; replaying it would double-count.
        obj = make_objective(proxy_space)
        archs = [proxy_space.sample(rng) for _ in range(5)]
        counts = []
        with ParallelEvaluator(
            obj.evaluate_many, workers=0, on_worker_items=counts.append
        ) as evaluator:
            evaluator.map(archs)
        assert counts == []


class TestShrinkEquivalence:
    def _run(self, space, workers, state=None):
        state = state if state is not None else {"scale": 1.0}
        obj = make_objective(space, state)
        cache = EvaluationCache()

        def tune_hook(shrunk_space, stage_idx):
            # Stands in for supernet tuning: every accuracy changes.
            state["scale"] *= 1.1

        with ParallelEvaluator(
            obj.evaluate_many, workers=workers, cache=cache
        ) as evaluator:
            quality = SubspaceQuality(
                obj,
                num_samples=20,
                seed=11,
                cache=cache,
                evaluator=evaluator,
            )
            return ProgressiveSpaceShrinking(
                quality, tune_hook=tune_hook
            ).run(space)

    def test_two_stage_shrink_identical(self, proxy_space):
        serial = self._run(proxy_space, workers=0)
        parallel = self._run(proxy_space, workers=2)
        assert parallel.to_dict() == serial.to_dict()
        assert parallel.final_space.candidate_ops == (
            serial.final_space.candidate_ops
        )
        assert len(serial.stages) == 2
        assert serial.cache_stats is not None
        assert len(serial.stage_cache_stats) == 2


class TestSearchEquivalence:
    def _ea(self, space, workers):
        obj = make_objective(space)
        cfg = EvolutionConfig(
            generations=4, population_size=12, num_parents=5, seed=2
        )
        cache = EvaluationCache()
        with ParallelEvaluator(
            obj.evaluate_many, workers=workers, cache=cache
        ) as evaluator:
            return EvolutionarySearch(
                space, obj, cfg, cache=cache, evaluator=evaluator
            ).run()

    def test_ea_identical(self, tiny_space):
        serial = self._ea(tiny_space, workers=0)
        parallel = self._ea(tiny_space, workers=2)
        assert parallel.to_dict() == serial.to_dict()
        assert parallel.cache_stats == serial.cache_stats

    def test_nsga2_identical(self, tiny_space):
        def run(workers):
            return Nsga2Search(
                tiny_space,
                accuracy_fn=lambda a: tiny_space.arch_flops(a) / 3e8,
                latency_fn=lambda a: tiny_space.arch_flops(a) / 1e7,
                config=Nsga2Config(
                    generations=4, population_size=8, seed=6
                ),
                workers=workers,
            ).run()

        serial = run(0)
        parallel = run(2)
        assert [p.arch for p in parallel.front] == [
            p.arch for p in serial.front
        ]
        assert [p.latency_ms for p in parallel.population] == [
            p.latency_ms for p in serial.population
        ]
        assert parallel.num_evaluations == serial.num_evaluations


class TestLutAndPipeline:
    def test_lut_build_identical(self, proxy_space):
        device = calibrated_devices()["edge"]
        serial = LatencyLUT.build(
            proxy_space, device, samples_per_cell=3, seed=4, workers=0
        )
        parallel = LatencyLUT.build(
            proxy_space, device, samples_per_cell=3, seed=4, workers=2
        )
        assert parallel.entries == serial.entries
        assert parallel.stem_ms == serial.stem_ms
        assert parallel.head_ms == serial.head_ms

    def test_full_pipeline_identical(self, proxy_space):
        device = calibrated_devices()["edge"]

        def run(workers):
            cfg = HSCoNASConfig(
                target_ms=34.0,
                seed=0,
                workers=workers,
                quality_samples=15,
                evolution=EvolutionConfig(
                    generations=3, population_size=8, num_parents=3, seed=3
                ),
            )
            return HSCoNAS(proxy_space, device, cfg).run()

        serial = run(0)
        parallel = run(2)
        assert parallel.arch == serial.arch
        assert parallel.search.to_dict() == serial.search.to_dict()
        assert parallel.shrink.to_dict() == serial.shrink.to_dict()
        assert parallel.predicted_latency_ms == serial.predicted_latency_ms
        assert parallel.measured_latency_ms == serial.measured_latency_ms
        # Search-cost accounting is part of the wall-clock-knob contract:
        # predictor queries made inside workers are replayed into the
        # parent ledger, so the cost summary matches the serial run.
        assert parallel.ledger.summary() == serial.ledger.summary()


class TestFaultInjection:
    def test_killed_worker_does_not_change_quality_estimate(
        self, proxy_space, tmp_path
    ):
        # A worker dies mid-chunk during a parallel quality estimate;
        # the retry must deliver the exact serial result.
        obj = make_objective(proxy_space)
        serial = SubspaceQuality(obj, num_samples=40, seed=7).estimate(
            proxy_space
        )
        sentinel = tmp_path / "kill"
        sentinel.touch()

        def murderous_eval_many(archs):
            try:
                os.remove(str(sentinel))
            except FileNotFoundError:
                pass
            else:
                if os.getpid() != PARENT_PID:
                    os.kill(os.getpid(), signal.SIGKILL)
            return obj.evaluate_many(archs)

        with ParallelEvaluator(murderous_eval_many, workers=2) as evaluator:
            parallel = SubspaceQuality(
                obj, num_samples=40, seed=7, evaluator=evaluator
            ).estimate(proxy_space)
            stats = evaluator.stats()
        assert parallel == serial
        assert stats["pool_rebuilds"] >= 1
