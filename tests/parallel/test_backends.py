"""EvaluationBackend: factory semantics and cross-backend equivalence.

The contract under test: the backend is a pure dispatch knob. A search
run gives *byte-identical* results (JSON fingerprints of the
``SearchResult``) whether evaluations go through the default inline
path, an explicit :class:`SerialBackend`, the multiprocess backend, or
a :class:`TabularBackend` replaying recorded results.
"""

import json

import numpy as np
import pytest

from repro.core import (
    EvaluationCache,
    EvolutionConfig,
    EvolutionarySearch,
    Nsga2Config,
    Nsga2Search,
    Objective,
    SubspaceQuality,
)
from repro.parallel import (
    BACKEND_NAMES,
    EvaluationBackend,
    ParallelEvaluator,
    SerialBackend,
    TabularBackend,
    create_backend,
    fork_available,
    resolve_backend_name,
)

needs_fork = pytest.mark.skipif(
    not fork_available(), reason="requires the fork start method"
)


def make_objective(space):
    """Deterministic FLOPs-based Eq. 1 objective (no device needed)."""
    return Objective(
        accuracy_fn=lambda a: space.arch_flops(a) / 3e8,
        latency_fn=lambda a: space.arch_flops(a) / 1e7,
        target_ms=15.0,
        beta=-0.3,
    )


def fingerprint(result) -> bytes:
    return json.dumps(result.to_dict(), sort_keys=True).encode()


def nsga2_fingerprint(result) -> bytes:
    """Nsga2Result has no to_dict; serialize its fields directly."""
    payload = {
        "front": [
            (p.arch.key(), p.latency_ms, p.accuracy) for p in result.front
        ],
        "population": [
            (p.arch.key(), p.latency_ms, p.accuracy)
            for p in result.population
        ],
        "num_evaluations": result.num_evaluations,
    }
    return json.dumps(payload, sort_keys=True).encode()


class _Item:
    """Minimal arch-like value: EvaluationCache keys items by .key()."""

    def __init__(self, value):
        self.value = value

    def key(self):
        return (self.value,)


class TestResolveAndFactory:
    def test_auto_resolution_tracks_workers(self):
        assert resolve_backend_name("auto", workers=0) == "serial"
        assert resolve_backend_name("auto", workers=1) == "serial"
        assert resolve_backend_name("auto", workers=2) == "multiprocess"
        assert resolve_backend_name("serial", workers=8) == "serial"

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            resolve_backend_name("threads")
        with pytest.raises(ValueError, match="unknown backend"):
            create_backend("threads", eval_many_fn=lambda a: a)

    def test_required_arguments(self):
        with pytest.raises(ValueError, match="eval_many_fn"):
            create_backend("serial")
        with pytest.raises(ValueError, match="lookup_fn"):
            create_backend("tabular")

    def test_factory_types_and_names(self):
        serial = create_backend("serial", eval_many_fn=lambda a: a)
        assert isinstance(serial, SerialBackend)
        assert serial.name == "serial"
        mp = create_backend("multiprocess", eval_many_fn=lambda a: a)
        assert isinstance(mp, ParallelEvaluator)
        assert mp.name == "multiprocess"
        mp.close()
        tab = create_backend("tabular", lookup_fn=lambda a: a)
        assert isinstance(tab, TabularBackend)
        assert tab.name == "tabular"
        assert set(BACKEND_NAMES) == {"auto", "serial", "multiprocess", "tabular"}

    def test_inline_backends_ignore_multiprocess_options(self):
        # Call sites pass one uniform argument set; the in-process
        # backends must accept and ignore the worker-only options.
        backend = create_backend(
            "serial",
            eval_many_fn=lambda a: a,
            workers=0,
            on_worker_items=lambda n: None,
            chunk_size=3,
            max_retries=2,
            weight_store=None,
            source_module=None,
        )
        assert isinstance(backend, SerialBackend)


class TestSerialBackend:
    def test_map_preserves_order_and_counts(self):
        backend = SerialBackend(lambda archs: [a * 10 for a in archs])
        assert backend.map([3, 1, 2]) == [30, 10, 20]
        assert backend.map((4,)) == [40]
        assert backend.batches == 2
        assert backend.stats() == {
            "backend": "serial", "batches": 2, "items": 4,
        }

    def test_evaluate_many_routes_through_cache(self):
        calls = []

        def eval_many(archs):
            calls.append([a.value for a in archs])
            return [a.value + 1 for a in archs]

        one, two, three = _Item(1), _Item(2), _Item(3)
        cache = EvaluationCache()
        backend = SerialBackend(eval_many, cache=cache)
        assert backend.evaluate_many([one, two, one]) == [2, 3, 2]
        assert backend.evaluate_many([two, three]) == [3, 4]
        # Dedup and hits happen in the cache: 1 appears once, 2 only in
        # the first batch.
        assert calls == [[1, 2], [3]]
        assert backend.stats()["cache"] == cache.stats()

    def test_sync_is_noop_and_context_manager(self):
        with SerialBackend(lambda a: a) as backend:
            assert backend.sync() == "noop"
            assert backend.sync(module=object()) == "noop"


class TestTabularBackend:
    def test_replays_and_raises_on_miss(self):
        table = {1: "one", 2: "two"}
        backend = TabularBackend(lambda a: table[a])
        assert backend.map([2, 1]) == ["two", "one"]
        with pytest.raises(KeyError):
            backend.map([3])

    def test_evaluate_many_with_cache_counts_hits(self):
        lookups = []

        def lookup(a):
            lookups.append(a.value)
            return a.value * 2

        one, two = _Item(1), _Item(2)
        backend = TabularBackend(lookup, cache=EvaluationCache())
        assert backend.evaluate_many([one, one, two]) == [2, 2, 4]
        assert backend.evaluate_many([two]) == [4]
        assert lookups == [1, 2]

    def test_batched_replay_via_eval_many_fn(self):
        batches = []

        def gather(archs):
            batches.append(list(archs))
            return [a * 3 for a in archs]

        backend = TabularBackend(eval_many_fn=gather)
        assert backend.map([2, 1, 4]) == [6, 3, 12]
        # One vectorized gather per batch, never per-item lookups.
        assert batches == [[2, 1, 4]]
        assert backend.stats() == {
            "backend": "tabular", "batches": 1, "items": 3,
        }

    def test_batched_replay_miss_propagates(self):
        def gather(archs):
            raise KeyError("architecture not tabulated")

        backend = TabularBackend(eval_many_fn=gather)
        with pytest.raises(KeyError, match="not tabulated"):
            backend.map([1])

    def test_exactly_one_evaluation_path_required(self):
        with pytest.raises(ValueError, match="exactly one"):
            TabularBackend(lookup_fn=lambda a: a, eval_many_fn=lambda a: a)
        with pytest.raises(ValueError, match="exactly one"):
            TabularBackend()

    def test_factory_accepts_eval_many_fn(self):
        backend = create_backend(
            "tabular", eval_many_fn=lambda archs: [a + 1 for a in archs]
        )
        assert isinstance(backend, TabularBackend)
        assert backend.map([1, 2]) == [2, 3]
        # When both are given the factory prefers per-arch lookup (the
        # historical signature); the backend itself rejects ambiguity.
        preferred = create_backend(
            "tabular",
            lookup_fn=lambda a: a * 10,
            eval_many_fn=lambda archs: [a + 1 for a in archs],
        )
        assert preferred.map([1, 2]) == [10, 20]


class TestSearchFingerprints:
    CFG = dict(generations=3, population_size=10, num_parents=4, seed=5)

    def _run_ea(self, space, evaluator):
        obj = make_objective(space)
        return EvolutionarySearch(
            space, obj, EvolutionConfig(**self.CFG), evaluator=evaluator
        ).run()

    def test_explicit_serial_backend_matches_inline(self, proxy_space):
        baseline = fingerprint(self._run_ea(proxy_space, None))
        obj = make_objective(proxy_space)
        with create_backend("serial", obj.evaluate_many) as backend:
            explicit = fingerprint(self._run_ea(proxy_space, backend))
        assert explicit == baseline

    @needs_fork
    def test_multiprocess_backend_matches_inline(self, proxy_space):
        baseline = fingerprint(self._run_ea(proxy_space, None))
        obj = make_objective(proxy_space)
        with create_backend(
            "multiprocess", obj.evaluate_many, workers=2
        ) as backend:
            assert backend.parallel
            parallel = fingerprint(self._run_ea(proxy_space, backend))
        assert parallel == baseline

    def test_tabular_replay_matches_live_run(self, proxy_space):
        obj = make_objective(proxy_space)
        table = {}

        def recording_eval_many(archs):
            results = obj.evaluate_many(archs)
            for arch, res in zip(archs, results):
                table[arch.key()] = res
            return results

        with create_backend("serial", recording_eval_many) as backend:
            live = fingerprint(self._run_ea(proxy_space, backend))
        # Replay: same seeds -> same candidate stream -> every lookup
        # hits; a miss would KeyError, which is the tabular contract.
        with create_backend(
            "tabular", lookup_fn=lambda a: table[a.key()]
        ) as backend:
            replay = fingerprint(self._run_ea(proxy_space, backend))
        assert replay == live

    def test_quality_estimate_identical_across_backends(self, proxy_space):
        obj = make_objective(proxy_space)
        baseline = SubspaceQuality(obj, num_samples=30, seed=7).estimate(
            proxy_space
        )
        with create_backend("serial", obj.evaluate_many) as backend:
            serial = SubspaceQuality(
                obj, num_samples=30, seed=7, evaluator=backend
            ).estimate(proxy_space)
        assert serial == baseline

    def test_nsga2_identical_across_backends(self, proxy_space):
        obj = make_objective(proxy_space)

        def run(**kwargs):
            return Nsga2Search(
                proxy_space,
                accuracy_fn=obj.accuracy_fn,
                latency_fn=obj.latency_fn,
                config=Nsga2Config(
                    generations=3, population_size=12, seed=2
                ),
                **kwargs,
            ).run()

        baseline = nsga2_fingerprint(run())
        explicit = nsga2_fingerprint(run(backend="serial"))
        assert explicit == baseline

    @needs_fork
    def test_nsga2_multiprocess_matches_serial(self, proxy_space):
        obj = make_objective(proxy_space)

        def run(**kwargs):
            return Nsga2Search(
                proxy_space,
                accuracy_fn=obj.accuracy_fn,
                latency_fn=obj.latency_fn,
                config=Nsga2Config(
                    generations=3, population_size=12, seed=2
                ),
                **kwargs,
            ).run()

        baseline = nsga2_fingerprint(run())
        parallel = nsga2_fingerprint(run(backend="multiprocess", workers=2))
        assert parallel == baseline

    def test_base_class_map_is_abstract(self):
        backend = EvaluationBackend()
        with pytest.raises(NotImplementedError):
            backend.map([1])
