"""WorkerPool mechanics: dispatch, ordering, crash containment.

The fault-injection tests arrange for worker processes to SIGKILL
themselves mid-chunk (guarded by a pid check so the parent never dies)
and assert the pool's retry / serial-fallback machinery returns exactly
the results an undisturbed run would.
"""

import os
import signal
import time

import pytest

from repro.parallel import WorkerPool, fork_available, resolve_workers

pytestmark = pytest.mark.skipif(
    not fork_available(), reason="requires the fork start method"
)

PARENT_PID = os.getpid()


def square_chunk(items):
    return [x * x for x in items]


def slow_square_chunk(items):
    time.sleep(0.01)
    return [x * x for x in items]


def short_chunk(items):
    return [x * x for x in items[:-1]] if len(items) > 1 else []


def _die_if_worker():
    if os.getpid() != PARENT_PID:
        os.kill(os.getpid(), signal.SIGKILL)


def make_kill_once_chunk(sentinel_path):
    """Chunk fn whose first worker execution kills its process.

    Removing the sentinel is the atomic claim: exactly one worker wins
    the removal and dies; racers get ``FileNotFoundError`` and proceed.
    """

    def chunk(items):
        try:
            os.remove(sentinel_path)
        except FileNotFoundError:
            pass
        else:
            _die_if_worker()
        return [x * x for x in items]

    return chunk


def make_kill_always_chunk(sentinel_path):
    """Chunk fn that kills every worker that ever runs it."""

    def chunk(items):
        if os.path.exists(sentinel_path):
            _die_if_worker()
        return [x * x for x in items]

    return chunk


class TestSerialPath:
    def test_workers_zero_and_one_run_inline(self):
        for workers in (0, 1):
            with WorkerPool(square_chunk, workers=workers) as pool:
                assert not pool.parallel
                assert pool.map(range(7)) == [x * x for x in range(7)]
                assert pool.chunks_dispatched == 0

    def test_resolve_workers(self):
        assert resolve_workers(None) == 0
        assert resolve_workers(0) == 0
        assert resolve_workers(1) == 0
        assert resolve_workers(-3) == 0
        assert resolve_workers(4) == 4

    def test_empty_input(self):
        with WorkerPool(square_chunk, workers=2) as pool:
            assert pool.map([]) == []

    def test_serial_length_mismatch_raises(self):
        with WorkerPool(short_chunk, workers=0) as pool:
            with pytest.raises(ValueError, match="results"):
                pool.map([1, 2, 3])


class TestParallelDispatch:
    def test_order_preserved(self):
        items = list(range(37))
        with WorkerPool(square_chunk, workers=2, chunk_size=3) as pool:
            assert pool.map(items) == [x * x for x in items]
            assert pool.chunks_dispatched == 13

    def test_matches_serial(self):
        items = list(range(101))
        with WorkerPool(square_chunk, workers=2) as pool:
            parallel = pool.map(items)
        with WorkerPool(square_chunk, workers=0) as pool:
            assert parallel == pool.map(items)

    def test_pool_reusable_across_maps(self):
        with WorkerPool(square_chunk, workers=2, chunk_size=5) as pool:
            for _ in range(3):
                assert pool.map(range(11)) == [x * x for x in range(11)]

    def test_inflight_window_bounds_dispatch(self):
        # 20 chunks, window = 2 workers x 1 chunk: the pool must drain
        # and refill rather than submitting everything at once.
        with WorkerPool(
            slow_square_chunk, workers=2, chunk_size=1, inflight_per_worker=1
        ) as pool:
            assert pool.map(range(20)) == [x * x for x in range(20)]
            assert pool.chunks_dispatched == 20

    def test_parallel_length_mismatch_raises(self):
        with WorkerPool(short_chunk, workers=2, chunk_size=2) as pool:
            with pytest.raises(ValueError, match="results"):
                pool.map([1, 2, 3, 4])

    def test_invalid_params_rejected(self):
        with pytest.raises(ValueError):
            WorkerPool(square_chunk, workers=2, chunk_size=0)
        with pytest.raises(ValueError):
            WorkerPool(square_chunk, workers=2, max_retries=-1)
        with pytest.raises(ValueError):
            WorkerPool(square_chunk, workers=2, inflight_per_worker=0)


class TestCrashContainment:
    def test_killed_worker_retried_with_identical_results(self, tmp_path):
        sentinel = tmp_path / "kill-once"
        sentinel.touch()
        items = list(range(24))
        with WorkerPool(
            make_kill_once_chunk(str(sentinel)), workers=2, chunk_size=4
        ) as pool:
            assert pool.map(items) == [x * x for x in items]
            assert pool.pool_rebuilds >= 1
            assert pool.chunk_retries >= 1
            assert pool.serial_fallbacks == 0
        assert not sentinel.exists()

    def test_always_killed_chunk_falls_back_to_parent(self, tmp_path):
        # The sentinel stays, so every retry dies too; after max_retries
        # the parent must evaluate the chunks itself (the pid guard makes
        # the chunk fn harmless in-parent) — results still identical.
        sentinel = tmp_path / "kill-always"
        sentinel.touch()
        items = list(range(10))
        with WorkerPool(
            make_kill_always_chunk(str(sentinel)),
            workers=2,
            chunk_size=5,
            max_retries=1,
        ) as pool:
            assert pool.map(items) == [x * x for x in items]
            assert pool.serial_fallbacks >= 1

    def test_restart_refreshes_forked_state(self):
        # Workers snapshot parent memory at fork; restart() must pick up
        # parent-side mutations for the next map().
        state = {"offset": 0}

        def chunk(items):
            return [x + state["offset"] for x in items]

        with WorkerPool(chunk, workers=2, chunk_size=2) as pool:
            assert pool.map(range(6)) == list(range(6))
            state["offset"] = 100
            # Without a restart, live workers keep the old snapshot (the
            # parent-side serial path would see the new value, so only
            # assert the restart contract, not the stale read).
            pool.restart()
            assert pool.map(range(6)) == [x + 100 for x in range(6)]
