"""Tests for the accuracy surrogate and its calibration."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.accuracy import (
    ACCURACY_ANCHORS,
    AccuracySurrogate,
    fit_capacity_curve,
    fit_top5_mapping,
    frontier_curve,
)
from repro.accuracy.calibration import CapacityCurve
from repro.accuracy.features import extract_features
from repro.space import Architecture


class TestCapacityCurve:
    def test_monotone_decreasing_in_flops(self):
        curve = frontier_curve()
        errors = [curve.error_at(f) for f in (100e6, 200e6, 400e6, 800e6)]
        assert errors == sorted(errors, reverse=True)

    def test_frontier_passes_near_mobilenetv3(self):
        # MobileNetV3-Large: 219M MACs, 24.8% top-1 error.
        assert frontier_curve().error_at(219e6) == pytest.approx(24.8, abs=0.4)

    def test_nonpositive_flops_raises(self):
        with pytest.raises(ValueError):
            frontier_curve().error_at(0.0)

    def test_fit_reduces_residuals_vs_flat(self):
        curve = fit_capacity_curve()
        flat_err = np.mean(
            [(a[2] - np.mean([x[2] for x in ACCURACY_ANCHORS])) ** 2
             for a in ACCURACY_ANCHORS]
        )
        fit_err = np.mean(
            [(a[2] - curve.error_at(a[1])) ** 2 for a in ACCURACY_ANCHORS]
        )
        # The anchor cloud is nearly FLOPs-flat (that scatter is *why*
        # the surrogate models architecture quality separately), so the
        # fit may only match the flat baseline to numerical tolerance.
        assert fit_err <= flat_err + 1e-6


class TestTop5Mapping:
    def test_fitted_on_paper_pairs(self):
        mapping = fit_top5_mapping()
        # Table I pairs: 24.8 top-1 <-> 7.5 top-5, 26.7 <-> 8.7.
        assert mapping.top5_of(24.8) == pytest.approx(7.5, abs=0.25)
        assert mapping.top5_of(26.7) == pytest.approx(8.7, abs=0.25)

    def test_monotone(self):
        mapping = fit_top5_mapping()
        assert mapping.top5_of(23.0) < mapping.top5_of(28.0)

    def test_floor(self):
        mapping = fit_top5_mapping()
        assert mapping.top5_of(0.0) >= 0.1


class TestFeatures:
    def test_depth_and_skips(self, space_a):
        arch = Architecture((0, 4) * 10, (1.0,) * 20)
        feats = extract_features(space_a, arch)
        assert feats.depth == 10
        assert feats.num_layers == 20

    def test_factor_stats(self, space_a):
        arch = Architecture.uniform(20, 0, 0.5)
        feats = extract_features(space_a, arch)
        assert feats.mean_factor == pytest.approx(0.5)
        assert feats.std_factor == pytest.approx(0.0)
        assert feats.min_factor == pytest.approx(0.5)

    def test_kernel_and_diversity(self, space_a):
        arch = Architecture((0, 1, 2, 3) * 5, (1.0,) * 20)
        feats = extract_features(space_a, arch)
        assert feats.num_distinct_ops == 4
        assert 3.0 < feats.mean_kernel < 5.0

    def test_all_skip_arch(self, space_a):
        arch = Architecture.uniform(20, 4, 1.0)
        feats = extract_features(space_a, arch)
        assert feats.depth == 0
        assert feats.mean_kernel == 0.0


class TestSurrogate:
    @pytest.fixture(scope="class")
    def surrogate(self, space_a):
        return AccuracySurrogate(space_a)

    def test_deterministic(self, surrogate, space_a, rng):
        arch = space_a.sample(rng)
        assert surrogate.top1_error(arch) == surrogate.top1_error(arch)
        assert surrogate.proxy_accuracy(arch) == surrogate.proxy_accuracy(arch)

    def test_bigger_network_more_accurate(self, surrogate):
        small = Architecture.uniform(20, 0, 0.4)
        large = Architecture.uniform(20, 0, 1.0)
        assert surrogate.top1_error(large) < surrogate.top1_error(small)

    def test_excessive_skips_penalized(self, surrogate, space_a):
        normal = Architecture.uniform(20, 0, 1.0)
        skippy = Architecture((0,) * 5 + (4,) * 15, (1.0,) * 20)
        # the skip-heavy net is cheaper but must lose far more accuracy
        # than its FLOPs reduction alone would explain
        flops_only = surrogate.curve.error_at(space_a.arch_flops(skippy))
        assert surrogate.top1_error(skippy) > flops_only + 1.0
        assert surrogate.top1_error(skippy) > surrogate.top1_error(normal)

    def test_bottleneck_penalized(self, surrogate):
        smooth = Architecture.uniform(20, 0, 0.7)
        pinched = smooth.with_factor(10, 0.1)
        assert surrogate.top1_error(pinched) > surrogate.top1_error(smooth)

    def test_error_in_plausible_range(self, surrogate, space_a, rng):
        for _ in range(25):
            err = surrogate.top1_error(space_a.sample(rng))
            assert 15.0 < err < 60.0

    def test_top5_below_top1(self, surrogate, space_a, rng):
        arch = space_a.sample(rng)
        assert surrogate.top5_error(arch) < surrogate.top1_error(arch)

    def test_accuracy_complements_error(self, surrogate, space_a, rng):
        arch = space_a.sample(rng)
        assert surrogate.accuracy(arch) == pytest.approx(
            (100.0 - surrogate.top1_error(arch)) / 100.0
        )

    def test_proxy_below_standalone(self, surrogate, space_a, rng):
        """Weight-sharing accuracy is systematically lower."""
        for _ in range(10):
            arch = space_a.sample(rng)
            assert surrogate.proxy_accuracy(arch) < surrogate.accuracy(arch)

    def test_proxy_rank_correlated(self, surrogate, space_a):
        from repro.hardware.metrics import spearman

        rng = np.random.default_rng(3)
        archs = [space_a.sample(rng) for _ in range(60)]
        proxy = [surrogate.proxy_accuracy(a) for a in archs]
        standalone = [surrogate.accuracy(a) for a in archs]
        assert spearman(proxy, standalone) > 0.8

    def test_residual_creates_scatter(self, space_a):
        surrogate = AccuracySurrogate(space_a)
        base = Architecture.uniform(20, 0, 1.0)
        variants = [base.with_factor(0, f) for f in (0.9, 1.0)]
        errs = [surrogate.top1_error(a) for a in variants]
        assert errs[0] != errs[1]

    def test_invalid_sigma_raises(self, space_a):
        with pytest.raises(ValueError):
            AccuracySurrogate(space_a, residual_sigma=-1.0)

    def test_custom_curve_respected(self, space_a, rng):
        flat = CapacityCurve(floor=30.0, scale=0.0001, gamma=0.5)
        surrogate = AccuracySurrogate(space_a, curve=flat, residual_sigma=0.0)
        arch = Architecture.uniform(20, 0, 1.0)
        assert surrogate.top1_error(arch) == pytest.approx(30.0, abs=0.5)

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_bounds_property(self, space_a, seed):
        surrogate = AccuracySurrogate(space_a)
        arch = space_a.sample(np.random.default_rng(seed))
        assert 5.0 <= surrogate.top1_error(arch) <= 95.0
        assert 0.0 <= surrogate.proxy_accuracy(arch) <= 1.0
