"""Tests for the architecture encoding."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.space import Architecture
from repro.space.architecture import validate_sequence

_FACTORS = [round(0.1 * i, 1) for i in range(1, 11)]

@st.composite
def arch_strategy(draw):
    """Random valid architectures (matched ops/factors lengths)."""
    length = draw(st.integers(min_value=1, max_value=20))
    ops = tuple(draw(st.lists(st.integers(0, 4), min_size=length, max_size=length)))
    factors = tuple(
        draw(st.lists(st.sampled_from(_FACTORS), min_size=length, max_size=length))
    )
    return Architecture(ops, factors)


def make_arch(ops, factors):
    return Architecture(tuple(ops), tuple(factors))


class TestValidation:
    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            make_arch([0, 1], [1.0])

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            make_arch([], [])

    def test_bad_op_raises(self):
        with pytest.raises(ValueError):
            make_arch([7], [1.0])

    def test_bad_factor_raises(self):
        with pytest.raises(ValueError):
            make_arch([0], [0.0])
        with pytest.raises(ValueError):
            make_arch([0], [1.5])

    def test_validate_sequence_coerces(self):
        arch = validate_sequence([0, 1], ["0.5", 1.0])
        assert arch.factors == (0.5, 1.0)


class TestIdentity:
    def test_key_equality(self):
        a = make_arch([0, 1], [0.5, 1.0])
        b = make_arch([0, 1], [0.5, 1.0])
        assert a == b
        assert a.key() == b.key()

    def test_digest_stable(self):
        a = make_arch([0, 1, 2], [0.5, 1.0, 0.3])
        assert a.digest() == make_arch([0, 1, 2], [0.5, 1.0, 0.3]).digest()

    def test_digest_differs(self):
        a = make_arch([0, 1], [0.5, 1.0])
        b = make_arch([0, 2], [0.5, 1.0])
        c = make_arch([0, 1], [0.5, 0.9])
        assert len({a.digest(), b.digest(), c.digest()}) == 3

    def test_hashable_in_set(self):
        archs = {make_arch([0], [1.0]), make_arch([0], [1.0]), make_arch([1], [1.0])}
        assert len(archs) == 2


class TestIntrospection:
    def test_depth_counts_non_skips(self):
        arch = make_arch([0, 4, 1, 4], [1.0] * 4)
        assert arch.depth() == 2
        assert arch.num_layers == 4

    def test_operator_names(self):
        arch = make_arch([0, 4], [1.0, 1.0])
        assert arch.operator_names() == ("shuffle3x3", "skip")

    def test_with_op(self):
        arch = make_arch([0, 0], [1.0, 1.0])
        mutated = arch.with_op(1, 3)
        assert mutated.ops == (0, 3)
        assert arch.ops == (0, 0)  # original untouched

    def test_with_factor(self):
        arch = make_arch([0, 0], [1.0, 1.0])
        mutated = arch.with_factor(0, 0.5)
        assert mutated.factors == (0.5, 1.0)

    def test_uniform_constructor(self):
        arch = Architecture.uniform(5, op_index=2, factor=0.8)
        assert arch.ops == (2,) * 5
        assert arch.factors == (0.8,) * 5

    def test_str_contains_ops(self):
        text = str(make_arch([0], [0.5]))
        assert "shuffle3x3" in text and "0.5" in text


class TestSerialization:
    def test_roundtrip(self):
        arch = make_arch([0, 3, 4], [0.2, 1.0, 0.7])
        assert Architecture.from_dict(arch.to_dict()) == arch

    @settings(max_examples=50, deadline=None)
    @given(arch=arch_strategy())
    def test_roundtrip_property(self, arch):
        restored = Architecture.from_dict(arch.to_dict())
        assert restored == arch
        assert restored.digest() == arch.digest()

    @settings(max_examples=30, deadline=None)
    @given(arch=arch_strategy())
    def test_depth_bounds_property(self, arch):
        assert 0 <= arch.depth() <= arch.num_layers
