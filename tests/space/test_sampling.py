"""Tests for sampling utilities."""

import numpy as np
import pytest

from repro.space import SearchSpace, proxy, sample_architectures, sample_uniform
from repro.space.sampling import latin_op_sweep


class TestSampleUniform:
    def test_returns_contained_arch(self, proxy_space, rng):
        arch = sample_uniform(proxy_space, rng)
        assert proxy_space.contains(arch)


class TestSampleArchitectures:
    def test_count(self, proxy_space, rng):
        archs = sample_architectures(proxy_space, 17, rng)
        assert len(archs) == 17

    def test_zero_count(self, proxy_space, rng):
        assert sample_architectures(proxy_space, 0, rng) == []

    def test_negative_raises(self, proxy_space, rng):
        with pytest.raises(ValueError):
            sample_architectures(proxy_space, -1, rng)

    def test_unique_mode_dedups(self, proxy_space, rng):
        archs = sample_architectures(proxy_space, 30, rng, unique=True)
        assert len({a.key() for a in archs}) == 30

    def test_unique_exhaustion_raises(self):
        # A space with exactly 2 architectures cannot yield 10 unique ones.
        cfg = proxy()
        space = SearchSpace(
            cfg,
            candidate_ops=[[0]] * cfg.num_layers,
            candidate_factors=[[1.0]] * (cfg.num_layers - 1) + [[0.5, 1.0]],
        )
        with pytest.raises(RuntimeError):
            sample_architectures(space, 10, np.random.default_rng(0), unique=True)


class TestLatinOpSweep:
    def test_covers_every_candidate(self, proxy_space, rng):
        archs = latin_op_sweep(proxy_space, layer=3, rng=rng, per_op=2)
        ops_seen = {a.ops[3] for a in archs}
        assert ops_seen == set(proxy_space.candidate_ops[3])
        assert len(archs) == 2 * len(proxy_space.candidate_ops[3])
