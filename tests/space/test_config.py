"""Tests for space configuration presets."""

import pytest

from repro.space import SpaceConfig, StageSpec, imagenet_a, imagenet_b, proxy


class TestStageSpec:
    def test_valid(self):
        s = StageSpec(4, 48)
        assert s.num_blocks == 4 and s.channels == 48

    def test_zero_blocks_raises(self):
        with pytest.raises(ValueError):
            StageSpec(0, 48)

    def test_one_channel_raises(self):
        with pytest.raises(ValueError):
            StageSpec(4, 1)


class TestSpaceConfig:
    def test_imagenet_a_matches_paper(self):
        cfg = imagenet_a()
        assert cfg.num_layers == 20  # L = 20
        assert cfg.num_factors == 10  # n = 10 channel factors
        assert [s.channels for s in cfg.stages] == [48, 128, 256, 512]
        assert cfg.input_size == 224
        assert cfg.num_classes == 1000

    def test_imagenet_b_matches_paper(self):
        cfg = imagenet_b()
        assert cfg.num_layers == 20
        assert [s.channels for s in cfg.stages] == [68, 168, 336, 672]

    def test_proxy_is_small_but_same_family(self):
        cfg = proxy()
        assert cfg.num_layers == 8
        assert cfg.num_factors == 10
        assert cfg.input_size == 32

    def test_layer_channels(self):
        cfg = imagenet_a()
        channels = cfg.layer_channels()
        assert len(channels) == 20
        assert channels[:4] == [48] * 4
        assert channels[-4:] == [512] * 4

    def test_layer_strides_at_stage_starts(self):
        cfg = imagenet_a()
        strides = cfg.layer_strides()
        assert [i for i, s in enumerate(strides) if s == 2] == [0, 4, 8, 16]

    def test_stage_of_layer(self):
        cfg = imagenet_a()
        assert cfg.stage_of_layer(0) == 0
        assert cfg.stage_of_layer(7) == 1
        assert cfg.stage_of_layer(15) == 2
        assert cfg.stage_of_layer(19) == 3

    def test_stage_of_layer_out_of_range(self):
        with pytest.raises(IndexError):
            imagenet_a().stage_of_layer(20)

    def test_no_stages_raises(self):
        with pytest.raises(ValueError):
            SpaceConfig(name="bad", stages=())

    def test_bad_factor_raises(self):
        with pytest.raises(ValueError):
            SpaceConfig(
                name="bad",
                stages=(StageSpec(1, 8),),
                input_size=32,
                channel_factors=(0.0, 1.0),
            )

    def test_indivisible_input_raises(self):
        with pytest.raises(ValueError):
            SpaceConfig(name="bad", input_size=30, stages=(StageSpec(1, 8),))


class TestChannelFactorValidation:
    @staticmethod
    def _config(factors):
        return SpaceConfig(
            name="factors",
            stages=(StageSpec(1, 8),),
            input_size=32,
            channel_factors=factors,
        )

    def test_empty_raises(self):
        with pytest.raises(ValueError, match="at least one channel factor"):
            self._config(())

    def test_zero_factor_raises(self):
        with pytest.raises(ValueError, match=r"outside \(0, 1\]"):
            self._config((0.0, 0.5))

    def test_factor_above_one_raises(self):
        with pytest.raises(ValueError, match=r"outside \(0, 1\]"):
            self._config((0.5, 1.1))

    def test_quantization_collision_raises(self):
        # 0.75 and 0.8 both quantize to 0.8 on the LUT's one-decimal grid.
        with pytest.raises(ValueError, match="one-decimal quantization"):
            self._config((0.5, 0.75, 0.8, 1.0))

    def test_exact_duplicate_raises(self):
        with pytest.raises(ValueError, match="one-decimal quantization"):
            self._config((0.5, 0.5, 1.0))

    def test_unsorted_raises(self):
        with pytest.raises(ValueError, match="sorted ascending"):
            self._config((1.0, 0.5))

    def test_off_grid_but_distinct_factors_accepted(self):
        # mini() uses 0.75; quantizes to 0.8 without colliding.
        cfg = self._config((0.5, 0.75, 1.0))
        assert cfg.num_factors == 3
