"""Tests for the operator set and its analytic cost model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.space import (
    NUM_OPERATORS,
    SKIP_INDEX,
    get_operator,
    operators,
)


class TestOperatorSet:
    def test_paper_has_five_operators(self):
        assert NUM_OPERATORS == 5  # K = 5

    def test_kernel_sizes(self):
        kernels = {op.name: op.kernel_size for op in operators()}
        assert kernels["shuffle3x3"] == 3
        assert kernels["shuffle5x5"] == 5
        assert kernels["shuffle7x7"] == 7

    def test_skip_index(self):
        assert get_operator(SKIP_INDEX).is_skip

    def test_indices_match_positions(self):
        for i, op in enumerate(operators()):
            assert op.index == i
            assert get_operator(i) is op

    def test_out_of_range_raises(self):
        with pytest.raises(IndexError):
            get_operator(5)
        with pytest.raises(IndexError):
            get_operator(-1)


class TestPrimitives:
    def test_skip_stride1_is_free(self):
        skip = get_operator(SKIP_INDEX)
        assert skip.primitives(32, 32, 28, 1) == []
        assert skip.flops(32, 32, 28, 1) == 0.0
        assert skip.params(32, 32, 1) == 0.0

    def test_skip_stride2_projects(self):
        skip = get_operator(SKIP_INDEX)
        prims = skip.primitives(32, 64, 28, 2)
        assert any(p.kind == "conv" for p in prims)
        # projection: 14*14*32*64 MACs
        assert skip.flops(32, 64, 28, 2) == 14 * 14 * 32 * 64

    def test_shuffle3x3_stride1_flops_hand_computed(self):
        op = get_operator(0)
        # cin=cout=64, hw=28: two 1x1 on 32ch halves + dw3x3 on 32
        expected = (
            28 * 28 * 32 * 32  # pw1
            + 28 * 28 * 32 * 9  # dw3
            + 28 * 28 * 32 * 32  # pw2
        )
        assert op.flops(64, 64, 28, 1) == expected

    def test_stride2_halves_spatial(self):
        op = get_operator(0)
        prims = op.primitives(32, 64, 28, 2)
        # Final memory (shuffle) op writes at 14x14.
        shuffle = prims[-1]
        assert shuffle.kind == "memory"
        assert shuffle.bytes_written == 2 * 32 * 14 * 14 * 4

    def test_larger_kernel_more_flops(self):
        f3 = get_operator(0).flops(64, 64, 28, 1)
        f5 = get_operator(1).flops(64, 64, 28, 1)
        f7 = get_operator(2).flops(64, 64, 28, 1)
        assert f3 < f5 < f7

    def test_xception_heavier_than_basic(self):
        fx = get_operator(3).flops(64, 64, 28, 1)
        f3 = get_operator(0).flops(64, 64, 28, 1)
        assert fx > f3

    def test_invalid_stride_raises(self):
        with pytest.raises(ValueError):
            get_operator(0).primitives(8, 8, 8, 3)

    def test_invalid_channels_raises(self):
        with pytest.raises(ValueError):
            get_operator(0).primitives(0, 8, 8, 1)

    def test_params_positive_for_conv_ops(self):
        for op in operators():
            if op.is_skip:
                continue
            assert op.params(32, 32, 1) > 0
            assert op.params(32, 64, 2) > 0

    @settings(max_examples=30, deadline=None)
    @given(
        op_idx=st.integers(min_value=0, max_value=4),
        cin=st.integers(min_value=2, max_value=128),
        cout=st.sampled_from([8, 16, 32, 64]),
        hw=st.sampled_from([7, 14, 28]),
        stride=st.sampled_from([1, 2]),
    )
    def test_costs_nonnegative_property(self, op_idx, cin, cout, hw, stride):
        op = get_operator(op_idx)
        for prim in op.primitives(cin, cout, hw, stride):
            assert prim.flops >= 0
            assert prim.bytes_read >= 0
            assert prim.bytes_written >= 0
        assert op.flops(cin, cout, hw, stride) >= 0
        assert op.params(cin, cout, stride) >= 0

    @settings(max_examples=20, deadline=None)
    @given(
        op_idx=st.integers(min_value=0, max_value=3),
        hw=st.sampled_from([14, 28]),
    )
    def test_flops_monotone_in_channels(self, op_idx, hw):
        op = get_operator(op_idx)
        flops = [op.flops(c, c, hw, 1) for c in (16, 32, 64, 128)]
        assert flops == sorted(flops)
        assert flops[0] < flops[-1]


class TestPrimitiveValidation:
    def test_unknown_kind_raises(self):
        from repro.space.operators import Primitive

        with pytest.raises(ValueError):
            Primitive("x", "gemm", 1.0, 1.0, 1.0)

    def test_negative_cost_raises(self):
        from repro.space.operators import Primitive

        with pytest.raises(ValueError):
            Primitive("x", "conv", -1.0, 1.0, 1.0)
