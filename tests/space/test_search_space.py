"""Tests for the search space, shrinking, and analytic costs."""

import numpy as np
import pytest

from repro.nn.layers.mask import channels_kept
from repro.space import Architecture, SearchSpace, proxy
from repro.space.geometry import build_layer_geometry


class TestGeometry:
    def test_layer_zero_sees_stem(self, space_a):
        geom = space_a.geometry[0]
        assert geom.max_in_channels == space_a.config.stem_channels
        assert geom.in_size == 112  # 224 after the stride-2 stem

    def test_resolution_halves_per_stage(self, space_a):
        sizes = [g.in_size for g in space_a.geometry]
        assert sizes[0] == 112
        assert sizes[4] == 56
        assert sizes[8] == 28
        assert sizes[16] == 14
        assert space_a.geometry[-1].out_size == 7

    def test_in_channels_chain(self, space_a):
        geoms = space_a.geometry
        for prev, cur in zip(geoms, geoms[1:]):
            assert cur.max_in_channels == prev.max_out_channels

    def test_build_function_matches_space(self, space_a):
        rebuilt = build_layer_geometry(space_a.config)
        assert rebuilt == space_a.geometry


class TestSpaceSize:
    def test_paper_size(self, space_a):
        # |A| = (5 ops x 10 factors)^20 ~= 9.5e33 (paper Sec. III-A)
        assert space_a.space_size() == pytest.approx(9.54e33, rel=0.01)

    def test_log10_consistent(self, space_a):
        assert space_a.log10_size() == pytest.approx(
            np.log10(space_a.space_size()), rel=1e-9
        )

    def test_shrinking_reduces_size(self, space_a):
        shrunk = space_a.fix_operator(19, 0)
        assert shrunk.space_size() < space_a.space_size()
        # fixing one layer removes a factor of K=5
        assert space_a.space_size() / shrunk.space_size() == pytest.approx(5.0)


class TestSampling:
    def test_sample_inside_space(self, space_a, rng):
        for _ in range(20):
            arch = space_a.sample(rng)
            assert space_a.contains(arch)
            assert arch.num_layers == 20

    def test_sampling_deterministic_with_seed(self, space_a):
        a = space_a.sample(np.random.default_rng(5))
        b = space_a.sample(np.random.default_rng(5))
        assert a == b

    def test_shrunk_space_sampling_respects_fix(self, space_a, rng):
        shrunk = space_a.fix_operator(10, 3)
        for _ in range(20):
            assert shrunk.sample(rng).ops[10] == 3

    def test_max_architecture_uses_max_factor(self, space_a):
        arch = space_a.max_architecture()
        assert all(f == 1.0 for f in arch.factors)
        assert space_a.contains(arch)


class TestContains:
    def test_wrong_length_not_contained(self, space_a):
        assert not space_a.contains(Architecture.uniform(5))

    def test_fixed_layer_mismatch_not_contained(self, space_a):
        shrunk = space_a.fix_operator(0, 1)
        arch = Architecture.uniform(20, op_index=0)
        assert not shrunk.contains(arch)

    def test_factor_not_in_candidates(self, space_a):
        arch = Architecture.uniform(20, op_index=0, factor=0.55)
        assert not space_a.contains(arch)


class TestShrinkingOps:
    def test_fix_operator_out_of_candidates_raises(self, space_a):
        shrunk = space_a.fix_operator(3, 1)
        with pytest.raises(ValueError):
            shrunk.fix_operator(3, 2)

    def test_fix_operator_bad_layer_raises(self, space_a):
        with pytest.raises(IndexError):
            space_a.fix_operator(20, 0)

    def test_fixed_layers_tracking(self, space_a):
        shrunk = space_a.fix_operator(19, 2).fix_operator(18, 0)
        assert shrunk.fixed_layers() == {19: 2, 18: 0}

    def test_original_space_unchanged(self, space_a):
        before = space_a.space_size()
        space_a.fix_operator(0, 0)
        assert space_a.space_size() == before

    def test_restrict_equals_fix(self, space_a):
        a = space_a.fix_operator(5, 2)
        b = space_a.restrict_to_operator_subspace(5, 2)
        assert a.candidate_ops == b.candidate_ops


class TestActiveChannels:
    def test_full_factors_give_max_channels(self, space_a):
        arch = Architecture.uniform(20, op_index=0, factor=1.0)
        channels = space_a.active_channels(arch)
        expected_out = space_a.config.layer_channels()
        assert [c for _, c in channels] == expected_out

    def test_scaling_propagates_to_next_layer(self, space_a):
        arch = Architecture.uniform(20, op_index=0, factor=0.5)
        channels = space_a.active_channels(arch)
        # layer 1 input = layer 0 active output
        assert channels[1][0] == channels[0][1]
        assert channels[0][1] == channels_kept(48, 0.5)

    def test_wrong_layer_count_raises(self, space_a):
        with pytest.raises(ValueError):
            space_a.active_channels(Architecture.uniform(3))


class TestAnalyticCosts:
    def test_flops_within_mobile_range(self, space_a):
        # The A-layout tops out around 200-240M MACs (between
        # ShuffleNetV2 1.0x and 1.5x), as the channel layout implies.
        arch = Architecture.uniform(20, op_index=0, factor=1.0)
        flops = space_a.arch_flops(arch)
        assert 100e6 < flops < 260e6

    def test_flops_monotone_in_factor(self, space_a):
        flops = [
            space_a.arch_flops(Architecture.uniform(20, op_index=0, factor=f))
            for f in (0.3, 0.6, 1.0)
        ]
        assert flops == sorted(flops)

    def test_skip_only_arch_is_cheapest(self, space_a):
        skip_arch = Architecture.uniform(20, op_index=4, factor=1.0)
        conv_arch = Architecture.uniform(20, op_index=0, factor=1.0)
        assert space_a.arch_flops(skip_arch) < space_a.arch_flops(conv_arch)

    def test_params_positive_and_monotone(self, space_a):
        small = space_a.arch_params(Architecture.uniform(20, 0, 0.2))
        large = space_a.arch_params(Architecture.uniform(20, 0, 1.0))
        assert 0 < small < large

    def test_primitives_grouped_per_layer(self, space_a, rng):
        arch = space_a.sample(rng)
        prims = space_a.arch_primitives(arch)
        assert len(prims) == 20

    def test_stride1_skip_has_no_primitives(self, space_a):
        arch = Architecture.uniform(20, op_index=4, factor=1.0)
        prims = space_a.arch_primitives(arch)
        # stride-1 layers: identity skip -> no kernels
        stride1_layers = [
            i for i, g in enumerate(space_a.geometry) if g.stride == 1
        ]
        for i in stride1_layers:
            assert prims[i] == []

    def test_stem_head_primitives(self, space_a, rng):
        arch = space_a.sample(rng)
        extra = space_a.stem_head_primitives(arch)
        names = [p.name for p in extra]
        assert names[0] == "stem-conv3x3"
        assert "head-fc" in names

    def test_b_layout_heavier_than_a(self, space_a, space_b):
        arch = Architecture.uniform(20, op_index=0, factor=1.0)
        assert space_b.arch_flops(arch) > space_a.arch_flops(arch)


class TestConstruction:
    def test_candidate_list_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            SearchSpace(proxy(), candidate_ops=[[0]])

    def test_empty_candidates_raise(self):
        cfg = proxy()
        ops = [[0]] * cfg.num_layers
        ops[2] = []
        with pytest.raises(ValueError):
            SearchSpace(cfg, candidate_ops=ops)

    def test_out_of_range_candidate_raises(self):
        cfg = proxy()
        ops = [[0, 9]] * cfg.num_layers
        with pytest.raises(ValueError):
            SearchSpace(cfg, candidate_ops=ops)
