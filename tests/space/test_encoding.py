"""Tests for the mixed-radix architecture encoding."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.space import (
    SearchSpace,
    architecture_to_index,
    imagenet_a,
    index_to_architecture,
    proxy,
    space_cardinality,
)


class TestCardinality:
    def test_matches_float_size(self, proxy_space):
        exact = space_cardinality(proxy_space)
        assert float(exact) == pytest.approx(proxy_space.space_size())

    def test_paper_space_exact(self, space_a):
        # 50^20 exactly, as a big integer.
        assert space_cardinality(space_a) == 50 ** 20

    def test_shrunk_space_smaller(self, proxy_space):
        shrunk = proxy_space.fix_operator(0, 1)
        assert space_cardinality(shrunk) * 5 == space_cardinality(proxy_space)


class TestBijection:
    def test_roundtrip_sampled(self, proxy_space, rng):
        for _ in range(25):
            arch = proxy_space.sample(rng)
            index = architecture_to_index(proxy_space, arch)
            assert index_to_architecture(proxy_space, index) == arch

    def test_roundtrip_paper_scale(self, space_a, rng):
        arch = space_a.sample(rng)
        index = architecture_to_index(space_a, arch)
        assert 0 <= index < 50 ** 20
        assert index_to_architecture(space_a, index) == arch

    def test_extremes(self, proxy_space):
        first = index_to_architecture(proxy_space, 0)
        last = index_to_architecture(
            proxy_space, space_cardinality(proxy_space) - 1
        )
        assert architecture_to_index(proxy_space, first) == 0
        assert architecture_to_index(proxy_space, last) == (
            space_cardinality(proxy_space) - 1
        )

    def test_distinct_archs_distinct_indices(self, proxy_space, rng):
        archs = {proxy_space.sample(rng) for _ in range(30)}
        indices = {architecture_to_index(proxy_space, a) for a in archs}
        assert len(indices) == len(archs)

    def test_out_of_range_raises(self, proxy_space):
        with pytest.raises(ValueError):
            index_to_architecture(proxy_space, -1)
        with pytest.raises(ValueError):
            index_to_architecture(
                proxy_space, space_cardinality(proxy_space)
            )

    def test_foreign_arch_raises(self, proxy_space):
        from repro.space import Architecture

        with pytest.raises(ValueError):
            architecture_to_index(proxy_space, Architecture.uniform(3))

    def test_shrunk_space_bijection(self, proxy_space, rng):
        shrunk = proxy_space.fix_operator(7, 2).fix_operator(0, 1)
        for _ in range(15):
            arch = shrunk.sample(rng)
            index = architecture_to_index(shrunk, arch)
            assert index_to_architecture(shrunk, index) == arch

    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_roundtrip_property(self, seed):
        space = SearchSpace(proxy())
        arch = space.sample(np.random.default_rng(seed))
        assert index_to_architecture(
            space, architecture_to_index(space, arch)
        ) == arch
