"""Tests for the synthetic dataset, loader, and augmentations."""

import numpy as np
import pytest

from repro.data import BatchLoader, SyntheticImageDataset, pad_and_crop, random_flip
from repro.data.augment import cutout


class TestSyntheticDataset:
    @pytest.fixture(scope="class")
    def dataset(self):
        return SyntheticImageDataset.generate(
            num_classes=5, train_per_class=6, test_per_class=3,
            image_size=16, seed=0,
        )

    def test_shapes(self, dataset):
        assert dataset.train_x.shape == (30, 3, 16, 16)
        assert dataset.test_x.shape == (15, 3, 16, 16)
        assert dataset.image_shape == (3, 16, 16)
        assert len(dataset) == 30

    def test_balanced_classes(self, dataset):
        counts = np.bincount(dataset.train_y, minlength=5)
        np.testing.assert_array_equal(counts, [6] * 5)

    def test_deterministic(self):
        a = SyntheticImageDataset.generate(num_classes=3, train_per_class=4,
                                           test_per_class=2, image_size=8, seed=5)
        b = SyntheticImageDataset.generate(num_classes=3, train_per_class=4,
                                           test_per_class=2, image_size=8, seed=5)
        np.testing.assert_array_equal(a.train_x, b.train_x)
        np.testing.assert_array_equal(a.train_y, b.train_y)

    def test_seed_changes_data(self):
        a = SyntheticImageDataset.generate(num_classes=3, train_per_class=4,
                                           test_per_class=2, image_size=8, seed=1)
        b = SyntheticImageDataset.generate(num_classes=3, train_per_class=4,
                                           test_per_class=2, image_size=8, seed=2)
        assert not np.allclose(a.train_x, b.train_x)

    def test_classes_separable_by_prototype_correlation(self, dataset):
        """Within-class samples must correlate more strongly than
        across-class ones — otherwise the task is pure noise and
        training experiments would be meaningless."""
        x = dataset.train_x.reshape(len(dataset.train_y), -1)
        x = (x - x.mean(axis=1, keepdims=True))
        x /= np.linalg.norm(x, axis=1, keepdims=True)
        sim = x @ x.T
        same = []
        diff = []
        y = dataset.train_y
        for i in range(len(y)):
            for j in range(i + 1, len(y)):
                (same if y[i] == y[j] else diff).append(sim[i, j])
        # Translation augmentation decorrelates raw pixels, so the gap
        # is modest at pixel level — but it must be clearly positive.
        assert np.mean(same) > np.mean(diff) + 0.03

    def test_too_few_classes_raises(self):
        with pytest.raises(ValueError):
            SyntheticImageDataset.generate(num_classes=1)


class TestBatchLoader:
    def _loader(self, n=10, batch=4, **kwargs):
        x = np.arange(n, dtype=np.float64).reshape(n, 1, 1, 1)
        y = np.arange(n)
        return BatchLoader(x, y, batch_size=batch, **kwargs)

    def test_num_batches(self):
        assert len(self._loader(n=10, batch=4)) == 3

    def test_epoch_covers_all_samples(self):
        loader = self._loader(n=10, batch=4)
        seen = []
        for batch, labels in loader.epoch(augment=False):
            seen.extend(labels.tolist())
        assert sorted(seen) == list(range(10))

    def test_shuffling_changes_order(self):
        loader = self._loader(n=32, batch=32)
        first = next(iter(loader.epoch(augment=False)))[1]
        second = next(iter(loader.epoch(augment=False)))[1]
        assert not np.array_equal(first, second)

    def test_labels_match_images(self):
        loader = self._loader(n=12, batch=5)
        for batch, labels in loader.epoch(augment=False):
            np.testing.assert_array_equal(batch[:, 0, 0, 0], labels)

    def test_augmentations_applied_in_training_only(self):
        calls = []

        def spy(batch, rng):
            calls.append(len(batch))
            return batch

        loader = self._loader(n=8, batch=4, augmentations=[spy])
        list(loader.epoch(augment=True))
        assert calls == [4, 4]
        calls.clear()
        list(loader.epoch(augment=False))
        assert calls == []

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            BatchLoader(np.zeros((3, 1, 1, 1)), np.zeros(4))

    def test_invalid_batch_raises(self):
        with pytest.raises(ValueError):
            BatchLoader(np.zeros((3, 1, 1, 1)), np.zeros(3), batch_size=0)


class TestAugmentations:
    def test_flip_preserves_shape_and_content_set(self, rng):
        batch = np.random.default_rng(0).normal(size=(6, 3, 8, 8))
        flipped = random_flip(batch, rng)
        assert flipped.shape == batch.shape
        for orig, out in zip(batch, flipped):
            assert np.allclose(out, orig) or np.allclose(out, orig[:, :, ::-1])

    def test_flip_does_not_mutate_input(self, rng):
        batch = np.ones((4, 1, 4, 4))
        before = batch.copy()
        random_flip(batch, rng)
        np.testing.assert_array_equal(batch, before)

    def test_pad_and_crop_shape(self, rng):
        batch = np.random.default_rng(0).normal(size=(5, 3, 16, 16))
        out = pad_and_crop(batch, rng, padding=2)
        assert out.shape == batch.shape

    def test_pad_and_crop_is_translation(self, rng):
        batch = np.zeros((1, 1, 8, 8))
        batch[0, 0, 4, 4] = 1.0
        out = pad_and_crop(batch, rng, padding=2)
        assert out.sum() <= 1.0  # the single pixel moved or was cropped out

    def test_pad_invalid_raises(self, rng):
        with pytest.raises(ValueError):
            pad_and_crop(np.zeros((1, 1, 4, 4)), rng, padding=0)

    def test_cutout_zeroes_patch(self, rng):
        batch = np.ones((3, 2, 16, 16))
        out = cutout(batch, rng, length=8)
        assert out.min() == 0.0
        assert out.sum() < batch.sum()
