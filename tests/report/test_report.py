"""Tests for table and figure rendering."""

import pytest

from repro.report import TableRow, ascii_histogram, render_table1, series_to_csv
from repro.report.tables import render_markdown


def _rows():
    return [
        TableRow("MobileNetV2 1.0x", "manual", 28.0, None, 11.5, 25.2, 61.9),
        TableRow("MnasNet-A1", "nas", 24.8, 7.5, 10.9, 26.4, 51.8),
        TableRow("HSCoNet-Edge-A", "hsconas", 25.7, 8.1, 9.9, 25.8, 34.9),
    ]


class TestTable:
    def test_group_headers_present(self):
        text = render_table1(_rows())
        assert "Manually-Designed Models" in text
        assert "State-of-the-art NAS Models" in text
        assert "Hardware-Aware Models Discovered by HSCoNAS" in text

    def test_missing_top5_dash(self):
        text = render_table1(_rows())
        line = [l for l in text.splitlines() if "MobileNetV2" in l][0]
        assert "-" in line

    def test_values_formatted(self):
        text = render_table1(_rows())
        assert "34.9" in text
        assert "24.8" in text

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            render_table1([])

    def test_markdown_shape(self):
        md = render_markdown(_rows())
        lines = md.splitlines()
        assert lines[0].startswith("| Model")
        assert len(lines) == 2 + len(_rows())
        assert all(l.startswith("|") for l in lines)


class TestFigures:
    def test_csv_roundtrip_shape(self):
        csv = series_to_csv({"x": [1.0, 2.0], "y": [3.0, 4.0]})
        lines = csv.splitlines()
        assert lines[0] == "x,y"
        assert lines[1] == "1,3"

    def test_csv_unequal_lengths_raise(self):
        with pytest.raises(ValueError):
            series_to_csv({"x": [1.0], "y": [1.0, 2.0]})

    def test_csv_empty_raises(self):
        with pytest.raises(ValueError):
            series_to_csv({})

    def test_histogram_renders_all_bins(self):
        text = ascii_histogram([1.0, 1.1, 1.2, 5.0], bins=4, label="lat")
        lines = text.splitlines()
        assert lines[0] == "lat"
        assert len(lines) == 5

    def test_histogram_counts_sum(self):
        values = list(range(20))
        text = ascii_histogram(values, bins=5)
        counts = [int(line.rsplit(" ", 1)[1]) for line in text.splitlines()]
        assert sum(counts) == 20

    def test_histogram_empty_raises(self):
        with pytest.raises(ValueError):
            ascii_histogram([])
