"""Tests for the ASCII scatter renderer."""

import pytest

from repro.report import ascii_scatter


class TestAsciiScatter:
    def test_dimensions(self):
        text = ascii_scatter([1, 2, 3], [1, 4, 9], width=20, height=6)
        lines = text.splitlines()
        # label + height rows + axis + label
        assert len(lines) == 1 + 6 + 2
        assert all(len(l) == 21 for l in lines[1:7])

    def test_corners_plotted(self):
        text = ascii_scatter([0.0, 1.0], [0.0, 1.0], width=10, height=4)
        lines = text.splitlines()
        assert lines[1][10] == "*"  # top-right = max x, max y
        assert lines[4][1] == "*"   # bottom-left = min x, min y

    def test_overlap_marked(self):
        text = ascii_scatter([1.0, 1.0, 2.0], [1.0, 1.0, 2.0],
                             width=10, height=4)
        assert "#" in text

    def test_labels_and_ranges(self):
        text = ascii_scatter([1, 2], [10, 20], x_label="flops",
                             y_label="ms")
        assert "flops" in text and "ms" in text
        assert "10" in text and "20" in text

    def test_constant_series_ok(self):
        text = ascii_scatter([1.0, 1.0], [2.0, 2.0])
        assert "*" in text or "#" in text

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            ascii_scatter([], [])

    def test_mismatched_raises(self):
        with pytest.raises(ValueError):
            ascii_scatter([1.0], [1.0, 2.0])

    def test_too_small_raises(self):
        with pytest.raises(ValueError):
            ascii_scatter([1.0], [1.0], width=2, height=2)
