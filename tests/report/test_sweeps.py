"""Sweep reporting helpers: bands, group summaries, text rendering."""

import pytest

from repro.report.sweeps import (
    generation_bands,
    render_sweep_summary,
    summarize_group,
)


class TestGenerationBands:
    def test_bands_across_curves(self):
        bands = generation_bands([[1.0, 2.0, 4.0], [3.0, 2.0, 2.0]])
        assert bands["generation"] == [0, 1, 2]
        assert bands["mean"] == [2.0, 2.0, 3.0]
        assert bands["min"] == [1.0, 2.0, 2.0]
        assert bands["max"] == [3.0, 2.0, 4.0]
        assert bands["std"][1] == 0.0

    def test_single_curve_degenerates(self):
        bands = generation_bands([[0.5, 0.6]])
        assert bands["mean"] == [0.5, 0.6]
        assert bands["std"] == [0.0, 0.0]

    def test_validation(self):
        with pytest.raises(ValueError, match="at least one curve"):
            generation_bands([])
        with pytest.raises(ValueError, match="generation count"):
            generation_bands([[1.0], [1.0, 2.0]])


def scenario(seed, accuracy, oracle=0.9):
    return {
        "device": "edge",
        "target_ms": 3.0,
        "seed": seed,
        "best_accuracy": accuracy,
        "best_latency_ms": 2.5,
        "best_score": accuracy,
        "num_evaluations": 30,
        "best_score_curve": [accuracy],
        "best_latency_curve": [2.5],
        "oracle_accuracy": oracle,
    }


class TestSummarizeGroup:
    def test_aggregates_across_seeds(self):
        row = summarize_group(
            "edge@3ms", [scenario(0, 0.8), scenario(1, 0.9)]
        )
        assert row["group"] == "edge@3ms"
        assert row["seeds"] == 2
        assert row["best_accuracy_mean"] == pytest.approx(0.85)
        assert row["evaluations_total"] == 60
        assert row["oracle_accuracy"] == 0.9
        assert row["oracle_gap_mean"] == pytest.approx(0.05)

    def test_without_oracle(self):
        row = summarize_group(
            "edge@3ms", [scenario(0, 0.8, oracle=None)]
        )
        assert "oracle_accuracy" not in row
        assert "oracle_gap_mean" not in row

    def test_empty_group_rejected(self):
        with pytest.raises(ValueError, match="at least one scenario"):
            summarize_group("edge@3ms", [])


class TestRenderSweepSummary:
    def test_renders_rows_and_missing_oracle(self):
        rows = [
            summarize_group("edge@3ms", [scenario(0, 0.8)]),
            summarize_group(
                "gpu@1ms", [scenario(0, 0.7, oracle=None)]
            ),
        ]
        text = render_sweep_summary(rows)
        lines = text.splitlines()
        assert lines[0].startswith("scenario")
        assert "edge@3ms" in lines[1]
        assert "n/a" in lines[2]
