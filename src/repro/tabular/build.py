"""Recipe-faithful tabulation: one build, every device, batch paths.

:func:`tabulate` precomputes the columns a replay needs so that the
replayed search is *bit-identical* to the live one. That only works if
the table is built by the very recipes the live searchers run, so two
named recipes ship:

* ``"front"`` — the ``repro front`` / serving recipe
  (:func:`repro.serve.pipeline.build_front_predictor`: 2 LUT samples
  per cell, 25 calibration architectures, calibration at ``seed + 1``)
  with :class:`~repro.accuracy.AccuracySurrogate`'s proxy accuracy;
* ``"search"`` — the HSCoNAS pipeline recipe
  (:meth:`repro.core.search.HSCoNAS.build_predictor`: 4 samples per
  cell, 40 calibration architectures) with the space-calibrated
  ``AccuracySurrogate.for_space`` accuracy.

Accuracy evaluation fans out through
:func:`repro.parallel.create_backend` (``workers``/``backend`` are
wall-clock-only knobs) and latency columns come from one
``predict_many`` gather per device — never a per-architecture loop.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.space.search_space import SearchSpace
from repro.tabular.table import (
    TabularBenchmark,
    decode_indices,
    resolve_indices,
)

RECIPES = ("front", "search")


def recipe_predictor(
    recipe: str,
    space: SearchSpace,
    device_name: str,
    seed: int,
    workers: int = 0,
    backend: str = "auto",
):
    """The latency predictor a named recipe uses for one device."""
    if recipe == "front":
        # Lazy import: serve.pipeline is a consumer of this package too.
        from repro.serve.pipeline import build_front_predictor

        return build_front_predictor(
            space, device_name, seed, workers=workers, backend=backend
        )
    if recipe == "search":
        from repro.hardware import (
            LatencyLUT,
            LatencyPredictor,
            OnDeviceProfiler,
        )
        from repro.hardware.calibration import calibrated_devices

        device = calibrated_devices()[device_name]
        lut = LatencyLUT.build(
            space, device, samples_per_cell=4, seed=seed,
            workers=workers, backend=backend,
        )
        predictor = LatencyPredictor(lut, space)
        profiler = OnDeviceProfiler(device, seed=seed)
        predictor.calibrate_bias(
            space, profiler, num_archs=40, seed=seed + 1
        )
        return predictor
    raise ValueError(
        f"unknown recipe {recipe!r}; expected one of {RECIPES}"
    )


def recipe_surrogate(recipe: str, space: SearchSpace):
    """The accuracy model a named recipe scores with."""
    from repro.accuracy import AccuracySurrogate

    if recipe == "front":
        return AccuracySurrogate(space)
    if recipe == "search":
        return AccuracySurrogate.for_space(space)
    raise ValueError(
        f"unknown recipe {recipe!r}; expected one of {RECIPES}"
    )


def tabulate(
    space: SearchSpace,
    devices: Sequence[str] = ("edge",),
    *,
    seed: int = 0,
    num_archs: Optional[int] = None,
    recipe: str = "front",
    workers: int = 0,
    backend: str = "auto",
) -> TabularBenchmark:
    """Precompute a multi-device :class:`TabularBenchmark`.

    ``num_archs=None`` tabulates exhaustively (small spaces only);
    otherwise that many architectures are sampled without replacement.
    The result replays bit-identically against the matching live
    recipe at the same ``seed``, for every listed device.
    """
    if recipe not in RECIPES:
        raise ValueError(
            f"unknown recipe {recipe!r}; expected one of {RECIPES}"
        )
    devices = list(devices)
    if not devices:
        raise ValueError("at least one device is required")
    indices, exhaustive = resolve_indices(space, num_archs, seed)
    archs = decode_indices(space, indices)

    surrogate = recipe_surrogate(recipe, space)

    def _accuracy_rows(batch):
        return [float(surrogate.proxy_accuracy(a)) for a in batch]

    from repro.parallel.backend import create_backend

    with create_backend(
        backend, _accuracy_rows, workers=workers
    ) as pool:
        accuracy = pool.map(archs)

    latency = {}
    for device_name in devices:
        predictor = recipe_predictor(
            recipe, space, device_name, seed,
            workers=workers, backend=backend,
        )
        latency[device_name] = [
            float(v) for v in predictor.predict_many(archs)
        ]

    return TabularBenchmark(
        space,
        indices=indices,
        accuracy=accuracy,
        latency=latency,
        exhaustive=exhaustive,
        primary_device=devices[0],
        recipe=recipe,
        build_seed=seed,
    )
