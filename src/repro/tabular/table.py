"""Columnar tabular NAS benchmark (HW-NAS-Bench style).

Precomputes accuracy and per-device latency (plus optional energy) for
a set of architectures and serves them as vectorized column lookups —
the standard way to let search-algorithm research iterate without
touching the simulator (or, in the real world, the device farm).
Architectures are keyed by their exact mixed-radix index
(:mod:`repro.space.encoding`), so the table is stable across processes
and compact on disk.

Storage is columnar (``np.ndarray`` per metric), which is what makes
replay fast: scoring an EA generation is one fancy-indexed gather per
column instead of a Python loop over per-architecture dictionaries.
Small spaces (the ``mini`` demo space: 50 625 architectures) can be
tabulated *exhaustively*; paper-scale spaces are sampled without
replacement.

Every table knows the :func:`space_fingerprint` of the space it was
built from; (de)serialization embeds it together with a schema version
so a table can never be silently replayed against the wrong space.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import (
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import numpy as np

from repro.runstate.atomic import atomic_write_text, sha256_text
from repro.space.architecture import Architecture
from repro.space.encoding import (
    _layer_choices,
    index_to_architecture,
    space_cardinality,
)
from repro.space.search_space import SearchSpace

# Bump when the serialized payload shape changes; loaders refuse other
# versions loudly instead of returning garbage lookups.
SCHEMA_VERSION = 2

# Exhaustive tabulation guard (paper-scale spaces must be sampled).
EXHAUSTIVE_CAP = 1_000_000

_INT64_MAX = 2**63 - 1


def _factor_centile(factor: float) -> int:
    """Integer centile key of a channel factor (0.75 -> 75).

    Centiles (not deciles) because Python's banker's rounding makes
    ``round(0.75 * 10)`` collide with ``round(0.8 * 10)``; at centile
    resolution every candidate factor in every layout is distinct.
    """
    return int(round(factor * 100))


def space_fingerprint(space: SearchSpace) -> str:
    """A content hash pinning the space a table was built from.

    Covers the cardinality and the exact per-layer (operator, factor)
    candidate sets — so a shrunk space, a different layout, or a
    different factor grid all produce different fingerprints — plus the
    config identity fields that change what the metrics *mean* (input
    resolution, class count).
    """
    config = space.config
    payload = {
        "name": config.name,
        "input_size": int(config.input_size),
        "num_classes": int(config.num_classes),
        "cardinality": str(space_cardinality(space)),
        "layers": [
            {
                "ops": [int(op) for op in space.candidate_ops[layer]],
                "factor_centiles": [
                    _factor_centile(f)
                    for f in space.candidate_factors[layer]
                ],
            }
            for layer in range(space.num_layers)
        ],
    }
    return sha256_text(json.dumps(payload, sort_keys=True))


def sample_indices(
    space: SearchSpace, num_archs: int, seed: int
) -> List[int]:
    """``num_archs`` distinct architecture indices, sorted ascending.

    When the cardinality fits in int64 this is a single
    ``rng.choice(total, replace=False)`` — no rejection loop, so asking
    for a large fraction of the space (or all of it) cannot stall or
    give up early. Paper-scale cardinalities (~9.5e33) fall back to
    rejection sampling over raw index draws, where the acceptance rate
    is indistinguishable from 1.
    """
    total = space_cardinality(space)
    target = min(num_archs, total)
    rng = np.random.default_rng(seed)
    if total <= _INT64_MAX:
        drawn = rng.choice(total, size=target, replace=False)
        return [int(i) for i in np.sort(drawn)]
    radices = [
        len(_layer_choices(space, layer))
        for layer in range(space.num_layers)
    ]
    picked: set = set()
    attempts = 0
    while len(picked) < target and attempts < target * 50:
        attempts += 1
        index = 0
        for radix in radices:
            index = index * radix + int(rng.integers(radix))
        picked.add(index)
    return sorted(picked)


def resolve_indices(
    space: SearchSpace, num_archs: Optional[int], seed: int
) -> Tuple[List[int], bool]:
    """The (sorted indices, exhaustive?) pair a build request names.

    ``num_archs=None`` means exhaustive (guarded by
    :data:`EXHAUSTIVE_CAP`); a count saturating the cardinality is
    exhaustive too.
    """
    total = space_cardinality(space)
    if num_archs is None:
        if total > EXHAUSTIVE_CAP:
            raise ValueError(
                f"space has {total} architectures; exhaustive "
                "tabulation is capped at 1e6 — pass num_archs instead"
            )
        return list(range(total)), True
    if num_archs < 1:
        raise ValueError("num_archs must be >= 1 (or None for exhaustive)")
    indices = sample_indices(space, num_archs, seed)
    return indices, len(indices) == total


def decode_indices(
    space: SearchSpace, indices: Sequence[int]
) -> List[Architecture]:
    """Vectorized ``index_to_architecture`` over a batch.

    Bit-identical to the scalar decoder — the per-layer digits are the
    same mixed-radix remainders, just computed with one array modulo
    per layer instead of a Python loop per architecture.
    """
    indices = list(indices)
    if not indices:
        return []
    total = space_cardinality(space)
    if total > _INT64_MAX or max(indices) > _INT64_MAX:
        return [index_to_architecture(space, i) for i in indices]
    choices = [
        _layer_choices(space, layer) for layer in range(space.num_layers)
    ]
    remainder = np.asarray(indices, dtype=np.int64)
    if remainder.min() < 0 or remainder.max() >= total:
        bad = int(remainder.min()) if remainder.min() < 0 else int(remainder.max())
        raise ValueError(f"index {bad} outside [0, {total})")
    digit_columns: List[np.ndarray] = []
    for layer in reversed(range(space.num_layers)):
        radix = len(choices[layer])
        digit_columns.append(remainder % radix)
        remainder = remainder // radix
    digit_columns.reverse()
    archs = []
    for row in range(len(indices)):
        ops = []
        factors = []
        for layer in range(space.num_layers):
            op, factor = choices[layer][int(digit_columns[layer][row])]
            ops.append(op)
            factors.append(factor)
        archs.append(Architecture(tuple(ops), tuple(factors)))
    return archs


@dataclass(frozen=True)
class TableEntry:
    """Precomputed metrics of one architecture (one device's latency)."""

    latency_ms: float
    accuracy: float
    energy_mj: Optional[float] = None


class TabularBenchmark:
    """An immutable arch -> metrics table over one search space.

    Construction is keyword-only and columnar: sorted architecture
    ``indices`` plus an ``accuracy`` column and one latency column per
    device. Use :meth:`build` to tabulate from evaluation functions, or
    :func:`repro.tabular.load_artifact` to reopen a saved artifact.
    """

    def __init__(
        self,
        space: SearchSpace,
        *,
        indices: Sequence[int],
        accuracy: Sequence[float],
        latency: Dict[str, Sequence[float]],
        energy: Optional[Sequence[float]] = None,
        exhaustive: bool = False,
        primary_device: Optional[str] = None,
        recipe: str = "custom",
        build_seed: int = 0,
    ):
        self.space = space
        self.exhaustive = bool(exhaustive)
        self.recipe = str(recipe)
        self.build_seed = int(build_seed)
        self.fingerprint = space_fingerprint(space)
        self._indices = [int(i) for i in indices]
        if self._indices != sorted(set(self._indices)):
            raise ValueError("indices must be sorted and distinct")
        if not latency:
            raise ValueError("at least one latency column is required")
        n = len(self._indices)
        self._accuracy = self._column("accuracy", accuracy, n)
        self._latency = {
            str(name): self._column(f"latency[{name}]", col, n)
            for name, col in sorted(latency.items())
        }
        self._energy = (
            self._column("energy", energy, n) if energy is not None else None
        )
        self.primary_device = (
            str(primary_device)
            if primary_device is not None
            else next(iter(self._latency))
        )
        if self.primary_device not in self._latency:
            raise ValueError(
                f"primary device {self.primary_device!r} has no latency "
                f"column; table has {self.devices}"
            )
        total = space_cardinality(space)
        self._cardinality = total
        self._index_arr = (
            np.asarray(self._indices, dtype=np.int64)
            if (n == 0 or self._indices[-1] <= _INT64_MAX)
            else None
        )
        if self._index_arr is not None:
            self._index_arr.flags.writeable = False
        self._positions: Optional[Dict[int, int]] = None
        self._encoder_tables = None

    @staticmethod
    def _column(name: str, values, n: int) -> np.ndarray:
        col = np.ascontiguousarray(values, dtype=np.float64)
        if col.shape != (n,):
            raise ValueError(
                f"column {name} has shape {col.shape}, expected ({n},)"
            )
        col.flags.writeable = False
        return col

    # -- construction -----------------------------------------------------------

    @classmethod
    def build(
        cls,
        space: SearchSpace,
        latency_fn: Callable[[Architecture], float],
        accuracy_fn: Callable[[Architecture], float],
        energy_fn: Optional[Callable[[Architecture], float]] = None,
        num_archs: Optional[int] = 1000,
        seed: int = 0,
        *,
        device: str = "default",
        latency_many_fn: Optional[Callable] = None,
        accuracy_many_fn: Optional[Callable] = None,
        workers: int = 0,
        backend: str = "auto",
        recipe: str = "custom",
    ) -> "TabularBenchmark":
        """Tabulate the space into one latency column named ``device``.

        ``num_archs=None`` tabulates *exhaustively* (guarded to spaces
        of at most one million architectures); otherwise ``num_archs``
        distinct architectures are sampled uniformly without
        replacement. Evaluation fans out through
        :func:`repro.parallel.create_backend` (``workers``/``backend``
        are wall-clock-only: columns are bit-identical for any
        setting), and the batched ``*_many`` functions — when given —
        score whole chunks per call instead of looping per
        architecture.
        """
        indices, exhaustive = resolve_indices(space, num_archs, seed)
        archs = decode_indices(space, indices)

        def _eval_rows(batch: Sequence[Architecture]) -> List[tuple]:
            batch = list(batch)
            if latency_many_fn is not None:
                lats = [float(v) for v in latency_many_fn(batch)]
            else:
                lats = [float(latency_fn(a)) for a in batch]
            if accuracy_many_fn is not None:
                accs = [float(v) for v in accuracy_many_fn(batch)]
            else:
                accs = [float(accuracy_fn(a)) for a in batch]
            if energy_fn is not None:
                ens: List[float] = [float(energy_fn(a)) for a in batch]
            else:
                ens = []
            return list(zip(lats, accs, ens)) if ens else [
                (lat, acc) for lat, acc in zip(lats, accs)
            ]

        from repro.parallel.backend import create_backend

        with create_backend(backend, _eval_rows, workers=workers) as pool:
            rows = pool.map(archs)
        return cls(
            space,
            indices=indices,
            accuracy=[r[1] for r in rows],
            latency={device: [r[0] for r in rows]},
            energy=(
                [r[2] for r in rows] if energy_fn is not None else None
            ),
            exhaustive=exhaustive,
            primary_device=device,
            recipe=recipe,
            build_seed=seed,
        )

    # -- columnar access ----------------------------------------------------------

    @property
    def devices(self) -> Tuple[str, ...]:
        """Latency column names, sorted."""
        return tuple(self._latency)

    @property
    def indices(self) -> Tuple[int, ...]:
        """Tabulated architecture indices, sorted ascending."""
        return tuple(self._indices)

    def accuracy_column(self) -> np.ndarray:
        """The (read-only) accuracy column, row-aligned with ``indices``."""
        return self._accuracy

    def latency_column(self, device: Optional[str] = None) -> np.ndarray:
        """The (read-only) latency column of one device (default primary)."""
        name = self.primary_device if device is None else device
        if name not in self._latency:
            raise KeyError(
                f"no latency column for device {name!r}; "
                f"table has {self.devices}"
            )
        return self._latency[name]

    def energy_column(self) -> Optional[np.ndarray]:
        """The (read-only) energy column, or ``None`` if not tabulated."""
        return self._energy

    # -- row addressing -----------------------------------------------------------

    def _encoder(self):
        """Per-layer digit maps keyed on (op, factor-centile) integers."""
        if self._encoder_tables is None:
            maps = []
            radices = []
            for layer in range(self.space.num_layers):
                choices = _layer_choices(self.space, layer)
                maps.append(
                    {
                        (op, _factor_centile(f)): digit
                        for digit, (op, f) in enumerate(choices)
                    }
                )
                radices.append(len(choices))
            self._encoder_tables = (maps, radices)
        return self._encoder_tables

    def indices_of(self, archs: Sequence[Architecture]) -> List[int]:
        """Mixed-radix indices of a batch (``architecture_to_index``,
        amortized through precomputed per-layer digit maps).

        Raises ``ValueError`` for architectures outside the space.
        """
        maps, radices = self._encoder()
        num_layers = self.space.num_layers
        out = []
        for arch in archs:
            if len(arch.ops) != num_layers:
                raise ValueError(
                    "architecture is not a member of the space"
                )
            index = 0
            try:
                for layer in range(num_layers):
                    digit = maps[layer][
                        (
                            arch.ops[layer],
                            _factor_centile(arch.factors[layer]),
                        )
                    ]
                    index = index * radices[layer] + digit
            except KeyError:
                raise ValueError(
                    "architecture is not a member of the space"
                ) from None
            out.append(index)
        return out

    def _miss_error(self) -> KeyError:
        return KeyError(
            "architecture not tabulated "
            f"(table holds {len(self)} of {self._cardinality})"
        )

    def rows_of(self, archs: Sequence[Architecture]) -> np.ndarray:
        """Row positions of a batch — the replay hot path.

        On an exhaustive table the row *is* the index, so this is pure
        arithmetic; sampled tables binary-search the sorted index
        column. Untabulated architectures raise ``KeyError`` — replay
        must never silently fall back to live evaluation.
        """
        indices = self.indices_of(archs)
        if self.exhaustive:
            return np.asarray(indices, dtype=np.int64)
        if self._index_arr is not None:
            wanted = np.asarray(indices, dtype=np.int64)
            pos = np.searchsorted(self._index_arr, wanted)
            pos = np.minimum(pos, max(len(self._index_arr) - 1, 0))
            if len(self._index_arr) == 0 or not np.all(
                self._index_arr[pos] == wanted
            ):
                raise self._miss_error()
            return pos
        if self._positions is None:
            self._positions = {
                index: row for row, index in enumerate(self._indices)
            }
        try:
            return np.asarray(
                [self._positions[i] for i in indices], dtype=np.int64
            )
        except KeyError:
            raise self._miss_error() from None

    # -- queries -----------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._indices)

    def __contains__(self, arch: Architecture) -> bool:
        try:
            self.rows_of([arch])
        except (ValueError, KeyError):
            return False
        return True

    def _entry(self, row: int, latency: np.ndarray) -> TableEntry:
        return TableEntry(
            latency_ms=float(latency[row]),
            accuracy=float(self._accuracy[row]),
            energy_mj=(
                float(self._energy[row]) if self._energy is not None else None
            ),
        )

    def query(
        self, arch: Architecture, device: Optional[str] = None
    ) -> TableEntry:
        """O(1) metrics lookup; raises ``KeyError`` for untabulated archs."""
        latency = self.latency_column(device)
        row = int(self.rows_of([arch])[0])
        return self._entry(row, latency)

    def entries(
        self, device: Optional[str] = None
    ) -> Iterator[Tuple[Architecture, TableEntry]]:
        """Iterate (architecture, entry) pairs (index order)."""
        latency = self.latency_column(device)
        for row, index in enumerate(self._indices):
            yield (
                index_to_architecture(self.space, index),
                self._entry(row, latency),
            )

    def best_under(
        self, latency_budget_ms: float, device: Optional[str] = None
    ) -> Tuple[Architecture, TableEntry]:
        """Most accurate tabulated architecture within a latency budget.

        On an exhaustive table this is the space's *true* optimum — the
        oracle answer search algorithms are benchmarked against. One
        masked argmax over the columns (ties resolve to the lowest
        index, deterministically).
        """
        latency = self.latency_column(device)
        feasible = latency <= latency_budget_ms
        if not bool(feasible.any()):
            raise ValueError(f"no entry within {latency_budget_ms} ms")
        row = int(np.argmax(np.where(feasible, self._accuracy, -np.inf)))
        return (
            index_to_architecture(self.space, self._indices[row]),
            self._entry(row, latency),
        )

    # -- (de)serialization ----------------------------------------------------------

    def to_json(self) -> str:
        payload = {
            "format": SCHEMA_VERSION,
            "fingerprint": self.fingerprint,
            "cardinality": str(self._cardinality),
            "exhaustive": self.exhaustive,
            "recipe": self.recipe,
            "build_seed": self.build_seed,
            "primary_device": self.primary_device,
            "indices": [str(i) for i in self._indices],  # big ints as strings
            "accuracy": self._accuracy.tolist(),
            "latency": {
                name: col.tolist() for name, col in self._latency.items()
            },
            "energy": (
                self._energy.tolist() if self._energy is not None else None
            ),
        }
        return json.dumps(payload)

    @classmethod
    def from_json(cls, space: SearchSpace, text: str) -> "TabularBenchmark":
        payload = json.loads(text)
        if "format" not in payload:
            raise ValueError(
                "tabular payload has no schema version (pre-v2 format); "
                "rebuild the table with TabularBenchmark.build"
            )
        if int(payload["format"]) != SCHEMA_VERSION:
            raise ValueError(
                f"tabular payload is schema v{payload['format']}; this "
                f"build reads v{SCHEMA_VERSION} — rebuild the table"
            )
        expected = space_fingerprint(space)
        found = str(payload["fingerprint"])
        if found != expected:
            raise ValueError(
                "table was built for a different space: fingerprint "
                f"{found[:12]} != {expected[:12]} (check the layout and "
                "any shrink state before replaying)"
            )
        energy = payload.get("energy")
        return cls(
            space,
            indices=[int(i) for i in payload["indices"]],
            accuracy=payload["accuracy"],
            latency=payload["latency"],
            energy=energy,
            exhaustive=bool(payload["exhaustive"]),
            primary_device=payload["primary_device"],
            recipe=payload.get("recipe", "custom"),
            build_seed=int(payload.get("build_seed", 0)),
        )

    def save(self, path: Union[str, Path]) -> Path:
        return atomic_write_text(Path(path), self.to_json() + "\n")

    @classmethod
    def load(
        cls, space: SearchSpace, path: Union[str, Path]
    ) -> "TabularBenchmark":
        return cls.from_json(space, Path(path).read_text())
