"""Tabular NAS benchmark artifacts (HW-NAS-Bench style).

The subsystem has two ends:

* **Build** (:mod:`repro.tabular.build`, :meth:`TabularBenchmark.build`)
  — precompute accuracy + per-device latency columns for a space,
  fanning evaluation out through the :mod:`repro.parallel` backends and
  the vectorized ``predict_many`` batch paths, and ship the result as a
  versioned, checksummed artifact (:mod:`repro.tabular.artifact`).
* **Replay** (:class:`TabularEvaluator`, :mod:`repro.tabular.sweep`) —
  re-run entire EA / NSGA-II searches against the dense columns,
  bit-identical to the live recipe and orders of magnitude faster,
  including whole ``(device x target x seed)`` scenario sweeps.

See ``docs/performance.md`` ("Tabular replay") for the artifact format
and the speedup numbers.
"""

from repro.tabular.artifact import (
    TabularArtifactError,
    load_artifact,
    load_manifest,
    save_artifact,
)
from repro.tabular.build import RECIPES, tabulate
from repro.tabular.evaluator import TabularEvaluator
from repro.tabular.sweep import (
    ScenarioResult,
    SweepReport,
    SweepScenario,
    run_scenario,
    run_sweep,
)
from repro.tabular.table import (
    SCHEMA_VERSION,
    TableEntry,
    TabularBenchmark,
    decode_indices,
    resolve_indices,
    sample_indices,
    space_fingerprint,
)

__all__ = [
    "SCHEMA_VERSION",
    "TableEntry",
    "TabularBenchmark",
    "TabularEvaluator",
    "TabularArtifactError",
    "RECIPES",
    "ScenarioResult",
    "SweepReport",
    "SweepScenario",
    "decode_indices",
    "load_artifact",
    "load_manifest",
    "resolve_indices",
    "run_scenario",
    "run_sweep",
    "sample_indices",
    "save_artifact",
    "space_fingerprint",
    "tabulate",
]
