"""Versioned on-disk artifact for :class:`TabularBenchmark`.

An artifact is a directory of two files, both written through the
:mod:`repro.runstate` atomic helpers (write-then-rename — a crash never
leaves a torn artifact):

* ``columns.npz`` — the dense columns (``index``, ``accuracy``, one
  ``latency__<device>`` per device, optional ``energy``);
* ``manifest.json`` — schema version, space fingerprint, optional
  layout name, recipe, build seed, device list, and a sha256 checksum
  per column (over dtype + shape + raw bytes).

Loading verifies the schema version, every checksum, and the space
fingerprint before a single lookup is served; any mismatch raises
:class:`TabularArtifactError` with a one-line actionable message. A
corrupted, truncated, or wrong-space artifact therefore fails loudly —
silent garbage replay is the failure mode this module exists to close.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Dict, Optional, Union

import numpy as np

from repro.runstate.atomic import atomic_path, atomic_write_json
from repro.space.encoding import space_cardinality
from repro.space.search_space import SearchSpace
from repro.tabular.table import (
    SCHEMA_VERSION,
    TabularBenchmark,
    space_fingerprint,
)

MANIFEST_NAME = "manifest.json"
COLUMNS_NAME = "columns.npz"


class TabularArtifactError(ValueError):
    """A tabular artifact that cannot be trusted (or found)."""


def _column_sha256(column: np.ndarray) -> str:
    digest = hashlib.sha256()
    digest.update(str(column.dtype).encode("utf-8"))
    digest.update(str(column.shape).encode("utf-8"))
    digest.update(np.ascontiguousarray(column).tobytes())
    return digest.hexdigest()


def _index_column(table: TabularBenchmark) -> np.ndarray:
    indices = table.indices
    if not indices or indices[-1] <= np.iinfo(np.int64).max:
        return np.asarray(indices, dtype=np.int64)
    # Paper-scale indices overflow int64; store them as decimal strings.
    return np.asarray([str(i) for i in indices], dtype=np.str_)


def save_artifact(
    table: TabularBenchmark,
    path: Union[str, Path],
    layout: Optional[str] = None,
) -> Path:
    """Write ``table`` as a versioned, checksummed artifact directory.

    ``layout`` (when the caller knows it) lets :func:`load_artifact`
    reconstruct the space without being handed one.
    """
    out = Path(path)
    out.mkdir(parents=True, exist_ok=True)
    columns: Dict[str, np.ndarray] = {"index": _index_column(table)}
    columns["accuracy"] = table.accuracy_column()
    for device in table.devices:
        columns[f"latency__{device}"] = table.latency_column(device)
    energy = table.energy_column()
    if energy is not None:
        columns["energy"] = energy
    with atomic_path(out / COLUMNS_NAME) as tmp:
        with open(tmp, "wb") as handle:
            np.savez(handle, **columns)
    manifest = {
        "format": SCHEMA_VERSION,
        "fingerprint": table.fingerprint,
        "layout": layout,
        "cardinality": str(space_cardinality(table.space)),
        "num_archs": len(table),
        "exhaustive": table.exhaustive,
        "recipe": table.recipe,
        "build_seed": table.build_seed,
        "devices": list(table.devices),
        "primary_device": table.primary_device,
        "columns": {
            name: _column_sha256(column)
            for name, column in columns.items()
        },
    }
    atomic_write_json(out / MANIFEST_NAME, manifest)
    return out


def load_manifest(path: Union[str, Path]) -> dict:
    """The parsed, version-checked manifest of an artifact directory."""
    root = Path(path)
    manifest_path = root / MANIFEST_NAME
    if not manifest_path.exists():
        raise TabularArtifactError(
            f"{root} is not a tabular artifact (no {MANIFEST_NAME})"
        )
    try:
        manifest = json.loads(manifest_path.read_text())
    except json.JSONDecodeError as exc:
        raise TabularArtifactError(
            f"{manifest_path} is not valid JSON: {exc}"
        ) from exc
    if int(manifest.get("format", 0)) != SCHEMA_VERSION:
        raise TabularArtifactError(
            f"{root} is schema v{manifest.get('format')}; this build "
            f"reads v{SCHEMA_VERSION} — rebuild the artifact"
        )
    return manifest


def load_artifact(
    path: Union[str, Path], space: Optional[SearchSpace] = None
) -> TabularBenchmark:
    """Reopen an artifact, verifying schema, checksums, and fingerprint.

    Pass ``space`` to replay into an explicitly constructed (possibly
    shrunk) space; otherwise the manifest's recorded ``layout`` is
    resolved through :func:`repro.space.space_for_layout`. Either way
    the space fingerprint must match the manifest's — a table is never
    silently replayed against the wrong space.
    """
    root = Path(path)
    manifest = load_manifest(root)
    if space is None:
        layout = manifest.get("layout")
        if layout is None:
            raise TabularArtifactError(
                f"{root} records no layout; pass the search space "
                "explicitly to load_artifact"
            )
        from repro.space import space_for_layout

        space = space_for_layout(layout)
    expected = space_fingerprint(space)
    found = str(manifest["fingerprint"])
    if found != expected:
        raise TabularArtifactError(
            f"{root} was built for a different space: fingerprint "
            f"{found[:12]} != {expected[:12]} (check the layout and any "
            "shrink state before replaying)"
        )
    columns_path = root / COLUMNS_NAME
    if not columns_path.exists():
        raise TabularArtifactError(f"{root} is missing {COLUMNS_NAME}")
    with np.load(columns_path, allow_pickle=False) as payload:
        columns = {name: payload[name] for name in payload.files}
    checksums = manifest.get("columns", {})
    if sorted(checksums) != sorted(columns):
        raise TabularArtifactError(
            f"{root} column set {sorted(columns)} does not match its "
            f"manifest {sorted(checksums)}"
        )
    for name, column in columns.items():
        if _column_sha256(column) != checksums[name]:
            raise TabularArtifactError(
                f"{root} column {name!r} fails its checksum — the "
                "artifact is corrupt; rebuild it"
            )
    # int64 or decimal-string index column; both decode to Python ints.
    indices = [int(value) for value in columns.pop("index")]
    latency = {
        name[len("latency__"):]: column
        for name, column in columns.items()
        if name.startswith("latency__")
    }
    return TabularBenchmark(
        space,
        indices=indices,
        accuracy=columns["accuracy"],
        latency=latency,
        energy=columns.get("energy"),
        exhaustive=bool(manifest["exhaustive"]),
        primary_device=manifest["primary_device"],
        recipe=manifest.get("recipe", "custom"),
        build_seed=int(manifest.get("build_seed", 0)),
    )
