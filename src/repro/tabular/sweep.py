"""Scenario sweeps over a tabular artifact (Fig. 6 / Table I bands).

The paper's headline figures are single-seed runs because every point
used to cost a full supernet-backed search. With an exhaustive
:class:`TabularBenchmark` the same search replays in milliseconds, so
:func:`run_sweep` re-runs the Sec. III-D evolutionary search across a
grid of ``(device x latency-target x seed)`` scenarios in one process
and reports per-generation variance bands plus an oracle-gap summary —
hundreds of scenarios where one live search used to fit.

Each scenario is a faithful replay: the same
:class:`~repro.core.Objective`, the same EA configuration and seed,
scored through ``create_backend("tabular")`` — so any single scenario
is bit-identical to the live search it replaces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.core.evolution import EvolutionConfig, EvolutionarySearch
from repro.core.objective import Objective
from repro.parallel.backend import create_backend
from repro.space.encoding import space_cardinality
from repro.tabular.evaluator import TabularEvaluator
from repro.tabular.table import TabularBenchmark


@dataclass(frozen=True)
class SweepScenario:
    """One (device, latency target, seed) replay."""

    device: str
    target_ms: float
    seed: int

    def label(self) -> str:
        return f"{self.device}@{self.target_ms:g}ms/seed{self.seed}"


@dataclass
class ScenarioResult:
    """One replayed search: final best plus per-generation curves."""

    scenario: SweepScenario
    best_accuracy: float
    best_latency_ms: float
    best_score: float
    num_evaluations: int
    best_score_curve: List[float]
    best_latency_curve: List[float]
    oracle_accuracy: Optional[float] = None

    def to_dict(self) -> dict:
        return {
            "device": self.scenario.device,
            "target_ms": self.scenario.target_ms,
            "seed": self.scenario.seed,
            "best_accuracy": self.best_accuracy,
            "best_latency_ms": self.best_latency_ms,
            "best_score": self.best_score,
            "num_evaluations": self.num_evaluations,
            "best_score_curve": self.best_score_curve,
            "best_latency_curve": self.best_latency_curve,
            "oracle_accuracy": self.oracle_accuracy,
        }


@dataclass
class SweepReport:
    """Every scenario result of one sweep, grouping helpers included."""

    generations: int
    population_size: int
    results: List[ScenarioResult]

    def group_label(self, result: ScenarioResult) -> str:
        return (
            f"{result.scenario.device}@{result.scenario.target_ms:g}ms"
        )

    def grouped_curves(self) -> Dict[str, List[List[float]]]:
        """Per-(device, target) best-score curves across seeds."""
        groups: Dict[str, List[List[float]]] = {}
        for result in self.results:
            groups.setdefault(self.group_label(result), []).append(
                result.best_score_curve
            )
        return groups

    def bands(self) -> Dict[str, Dict[str, List[float]]]:
        """Per-group generation-wise variance bands (Fig. 6 style)."""
        from repro.report.sweeps import generation_bands

        return {
            label: generation_bands(curves)
            for label, curves in self.grouped_curves().items()
        }

    def summary_rows(self) -> List[dict]:
        """One aggregate row per (device, target) across seeds."""
        from repro.report.sweeps import summarize_group

        groups: Dict[str, List[ScenarioResult]] = {}
        for result in self.results:
            groups.setdefault(self.group_label(result), []).append(result)
        return [
            summarize_group(label, [r.to_dict() for r in members])
            for label, members in groups.items()
        ]

    def to_dict(self) -> dict:
        return {
            "generations": self.generations,
            "population_size": self.population_size,
            "scenarios": [r.to_dict() for r in self.results],
            "bands": self.bands(),
            "summary": self.summary_rows(),
        }


def run_scenario(
    table: TabularBenchmark,
    scenario: SweepScenario,
    *,
    generations: int = 20,
    population_size: int = 50,
    num_parents: int = 20,
    beta: float = -0.5,
    oracle: bool = True,
) -> ScenarioResult:
    """Replay one evolutionary search against the table's columns."""
    evaluator = TabularEvaluator(table, device=scenario.device)
    objective = Objective(
        accuracy_fn=evaluator.accuracy,
        latency_fn=evaluator.latency,
        target_ms=scenario.target_ms,
        beta=beta,
        accuracy_many_fn=evaluator.accuracy_many,
        latency_many_fn=evaluator.latency_many,
    )
    backend = create_backend(
        "tabular", eval_many_fn=objective.evaluate_many
    )
    try:
        result = EvolutionarySearch(
            table.space,
            objective,
            EvolutionConfig(
                generations=generations,
                population_size=population_size,
                num_parents=num_parents,
                seed=scenario.seed,
            ),
            evaluator=backend,
        ).run()
    finally:
        backend.close()
    oracle_accuracy: Optional[float] = None
    if oracle:
        try:
            _, entry = table.best_under(
                scenario.target_ms, device=scenario.device
            )
            oracle_accuracy = entry.accuracy
        except ValueError:
            oracle_accuracy = None
    return ScenarioResult(
        scenario=scenario,
        best_accuracy=result.best.accuracy,
        best_latency_ms=result.best.latency_ms,
        best_score=result.best.score,
        num_evaluations=result.num_evaluations,
        best_score_curve=[g.best.score for g in result.generations],
        best_latency_curve=[
            g.best.latency_ms for g in result.generations
        ],
        oracle_accuracy=oracle_accuracy,
    )


def run_sweep(
    table: TabularBenchmark,
    *,
    targets: Sequence[float],
    seeds: Sequence[int],
    devices: Optional[Sequence[str]] = None,
    generations: int = 20,
    population_size: int = 50,
    num_parents: int = 20,
    beta: float = -0.5,
) -> SweepReport:
    """Replay the full ``(device x target x seed)`` scenario grid.

    Requires an *exhaustive* table: the EA samples freely from the
    space, and replay must never silently fall back to live
    evaluation, so a sampled table would abort mid-run on the first
    untabulated architecture.
    """
    if not table.exhaustive:
        raise ValueError(
            "scenario sweeps need an exhaustive table; this one holds "
            f"{len(table)} of {space_cardinality(table.space)} "
            "architectures — rebuild with num_archs=None"
        )
    devices = list(devices) if devices is not None else list(table.devices)
    results = []
    for device in devices:
        for target_ms in targets:
            for seed in seeds:
                results.append(
                    run_scenario(
                        table,
                        SweepScenario(
                            device=device,
                            target_ms=float(target_ms),
                            seed=int(seed),
                        ),
                        generations=generations,
                        population_size=population_size,
                        num_parents=num_parents,
                        beta=beta,
                    )
                )
    return SweepReport(
        generations=generations,
        population_size=population_size,
        results=results,
    )
