"""Vectorized replay scoring against a :class:`TabularBenchmark`.

:class:`TabularEvaluator` is the bridge between the searchers and the
table's dense columns: a generation of architectures becomes one row-
position batch (:meth:`TabularBenchmark.rows_of`) plus one fancy-
indexed gather per metric — no per-architecture ``lookup_fn`` round
trips. Wire it into the search stack through
``create_backend("tabular", eval_many_fn=...)``:

* EA / pipeline replay — hand an :class:`~repro.core.Objective` the
  ``accuracy``/``latency`` scalar functions plus the ``*_many``
  batched ones, and pass ``objective.evaluate_many`` to the backend;
* NSGA-II front replay — pass :meth:`bi_objective_many` directly.

Untabulated architectures raise ``KeyError`` (from ``rows_of``): a
replay that silently fell back to live evaluation would not be a
replay, so there is deliberately no fallback path here.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.space.architecture import Architecture
from repro.tabular.table import TabularBenchmark


class TabularEvaluator:
    """Score architectures by gathering one device's recorded columns."""

    def __init__(
        self, table: TabularBenchmark, device: Optional[str] = None
    ):
        self.table = table
        self.device = (
            table.primary_device if device is None else str(device)
        )
        if self.device not in table.devices:
            raise ValueError(
                f"no latency column for device {self.device!r}; "
                f"table has {table.devices}"
            )
        self._latency = table.latency_column(self.device)
        self._accuracy = table.accuracy_column()

    # -- scalar lookups (Objective accuracy_fn / latency_fn) ----------------------

    def accuracy(self, arch: Architecture) -> float:
        return float(self._accuracy[int(self.table.rows_of([arch])[0])])

    def latency(self, arch: Architecture) -> float:
        return float(self._latency[int(self.table.rows_of([arch])[0])])

    # -- batched lookups (Objective *_many_fn / backend eval_many_fn) -------------

    def accuracy_many(
        self, archs: Sequence[Architecture]
    ) -> List[float]:
        rows = self.table.rows_of(archs)
        return [float(v) for v in self._accuracy[rows]]

    def latency_many(self, archs: Sequence[Architecture]) -> List[float]:
        rows = self.table.rows_of(archs)
        return [float(v) for v in self._latency[rows]]

    def bi_objective_many(self, archs: Sequence[Architecture]) -> List:
        """(latency, accuracy) points for NSGA-II, one gather per column."""
        from repro.core.nsga2 import BiObjective

        archs = list(archs)
        rows = self.table.rows_of(archs)
        latency = self._latency[rows]
        accuracy = self._accuracy[rows]
        return [
            BiObjective(
                arch=arch,
                latency_ms=float(latency[i]),
                accuracy=float(accuracy[i]),
            )
            for i, arch in enumerate(archs)
        ]

    def columns_for(
        self, archs: Sequence[Architecture]
    ) -> "tuple[np.ndarray, np.ndarray]":
        """(latency, accuracy) arrays for a batch, row-aligned."""
        rows = self.table.rows_of(archs)
        return self._latency[rows], self._accuracy[rows]
