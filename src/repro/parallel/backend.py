"""Pluggable evaluation backends behind one search-facing interface.

Every consumer of architecture evaluations — subspace quality (Eq. 4),
progressive shrinking, the Sec. III-D EA, NSGA-II, LUT builds — talks to
an :class:`EvaluationBackend`:

* :meth:`~EvaluationBackend.map` — evaluate a batch, order-preserving,
  no caching;
* :meth:`~EvaluationBackend.evaluate_many` — the same through the
  backend's :class:`~repro.core.cache.EvaluationCache`, if one is set;
* :meth:`~EvaluationBackend.sync` — make the backend observe parent
  state mutated since construction (supernet tuning between shrink
  stages); a no-op wherever evaluation already runs in-process;
* :meth:`~EvaluationBackend.stats`, :meth:`~EvaluationBackend.close`,
  and context-manager support.

Three implementations ship: :class:`SerialBackend` (inline calls — the
default, bit-exact with the historical serial path), the multiprocess
backend (:class:`~repro.parallel.evaluator.ParallelEvaluator`, which
*is* the backend for forked workers), and :class:`TabularBackend`
(per-architecture lookup against a recorded table, the replay path of
:class:`repro.tabular.TabularBenchmark`).

Construction goes through :func:`create_backend` — the only sanctioned
place that instantiates :class:`~repro.parallel.pool.WorkerPool`-backed
evaluation outside this package (lint rule RL107 enforces this). Name
``"auto"`` keeps the historical behaviour of the ``workers`` knob:
``workers >= 2`` selects multiprocess, anything else serial, and results
are bit-identical either way (see ``docs/parallel.md``).
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

BACKEND_NAMES = ("auto", "serial", "multiprocess", "tabular")


class EvaluationBackend:
    """Interface every evaluation backend implements.

    The base class provides cache plumbing, trivial lifecycle, and
    context-manager support; subclasses supply :meth:`map` and override
    whatever else is non-trivial for them.
    """

    name = "base"

    def __init__(self, cache=None):
        self.cache = cache
        self.batches = 0
        self.items = 0
        self.cancel_token = None

    # -- evaluation --------------------------------------------------------------

    def map(self, archs: Sequence) -> List:
        """Evaluate ``archs`` (no caching), preserving input order."""
        raise NotImplementedError

    def set_cancel(self, token) -> None:
        """Install (or clear, with ``None``) a cooperative cancel token.

        In-process backends check it at each :meth:`map` entry; the
        multiprocess backend additionally polls between dispatch waits.
        """
        self.cancel_token = token

    def _check_cancel(self) -> None:
        token = self.cancel_token
        if token is not None:
            token.check(stage=self.name, batches=self.batches)

    def evaluate_many(self, archs: Sequence) -> List:
        """Evaluate ``archs`` through the backend's cache, if set.

        Lookups, dedup, and bookkeeping happen in the caller's process;
        only misses reach :meth:`map` — byte-for-byte the established
        cache semantics regardless of backend.
        """
        if self.cache is not None:
            return self.cache.get_or_eval_many(archs, self.map)
        return self.map(archs)

    # -- state synchronization ----------------------------------------------------

    def sync(self, module=None) -> str:
        """Observe parent-state mutations; returns the strategy used."""
        return "noop"

    # -- observability / lifecycle -----------------------------------------------

    def stats(self) -> dict:
        """Dispatch counters for run artifacts and logs."""
        out = {"backend": self.name, "batches": self.batches,
               "items": self.items}
        if self.cache is not None:
            out["cache"] = self.cache.stats()
        return out

    def close(self) -> None:
        """Release any resources (processes, shared memory views)."""

    def __enter__(self) -> "EvaluationBackend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class SerialBackend(EvaluationBackend):
    """Evaluate inline in the calling process.

    The default backend, and the reference for bit-exactness: its
    :meth:`map` is a direct call to the evaluation function, exactly
    what the pre-backend code path did with ``workers <= 1``.
    """

    name = "serial"

    def __init__(self, eval_many_fn: Callable[[List], Sequence], cache=None):
        super().__init__(cache=cache)
        self.eval_many_fn = eval_many_fn

    def map(self, archs: Sequence) -> List:
        self._check_cancel()
        archs = list(archs)
        self.batches += 1
        self.items += len(archs)
        return list(self.eval_many_fn(archs))


class TabularBackend(EvaluationBackend):
    """Replay recorded per-architecture results instead of evaluating.

    Two wiring styles, exactly one of which must be given:

    * ``eval_many_fn`` — a *batched* replay function scoring a whole
      population in one call, e.g. an :class:`repro.core.Objective`
      whose accuracy/latency functions are a
      :class:`repro.tabular.TabularEvaluator`'s vectorized column
      gathers. This is the fast path: one fancy-indexed gather per
      generation.
    * ``lookup_fn`` — a per-architecture lookup, e.g. ``table.query``
      of a :class:`repro.tabular.TabularBenchmark`, or any closure
      assembling the search stack's expected result type from a table
      row.

    Either way, missing architectures raise ``KeyError`` (a tabular
    run that silently falls back to live evaluation would not be a
    replay).
    """

    name = "tabular"

    def __init__(
        self,
        lookup_fn: Optional[Callable[[object], object]] = None,
        cache=None,
        eval_many_fn: Optional[Callable[[List], Sequence]] = None,
    ):
        super().__init__(cache=cache)
        if (lookup_fn is None) == (eval_many_fn is None):
            raise ValueError(
                "tabular backend requires exactly one of lookup_fn "
                "(per-arch) or eval_many_fn (batched replay)"
            )
        self.lookup_fn = lookup_fn
        self.eval_many_fn = eval_many_fn

    def map(self, archs: Sequence) -> List:
        self._check_cancel()
        archs = list(archs)
        self.batches += 1
        self.items += len(archs)
        if self.eval_many_fn is not None:
            return list(self.eval_many_fn(archs))
        return [self.lookup_fn(arch) for arch in archs]


def resolve_backend_name(name: str, workers: int = 0) -> str:
    """Resolve ``"auto"`` to a concrete backend for a worker count."""
    if name not in BACKEND_NAMES:
        raise ValueError(
            f"unknown backend {name!r}; expected one of {BACKEND_NAMES}"
        )
    if name == "auto":
        return "multiprocess" if workers >= 2 else "serial"
    return name


def create_backend(
    name: str = "auto",
    eval_many_fn: Optional[Callable[[List], Sequence]] = None,
    workers: int = 0,
    cache=None,
    weight_store=None,
    source_module=None,
    on_worker_items: Optional[Callable[[int], None]] = None,
    chunk_size: Optional[int] = None,
    max_retries: int = 1,
    lookup_fn: Optional[Callable[[object], object]] = None,
    dispatch_timeout_s: Optional[float] = None,
) -> EvaluationBackend:
    """Build an evaluation backend by name — the single factory.

    ``"auto"`` resolves via :func:`resolve_backend_name`, preserving the
    historical meaning of ``workers``. ``"serial"`` and
    ``"multiprocess"`` require ``eval_many_fn``; ``"tabular"`` requires
    ``lookup_fn`` (per-arch replay) or ``eval_many_fn`` (batched replay
    — preferred, one vectorized gather per generation). The
    multiprocess-only options (``weight_store``, ``source_module``,
    ``on_worker_items``, ``chunk_size``, ``max_retries``,
    ``dispatch_timeout_s``) are accepted and ignored by the in-process
    backends so call sites don't need to branch.
    """
    resolved = resolve_backend_name(name, workers=workers)
    if resolved == "tabular":
        if lookup_fn is None and eval_many_fn is None:
            raise ValueError(
                "tabular backend requires lookup_fn or eval_many_fn"
            )
        if lookup_fn is not None:
            return TabularBackend(lookup_fn, cache=cache)
        return TabularBackend(cache=cache, eval_many_fn=eval_many_fn)
    if eval_many_fn is None:
        raise ValueError(f"{resolved} backend requires eval_many_fn")
    if resolved == "serial":
        return SerialBackend(eval_many_fn, cache=cache)
    # Import here: evaluator -> pool has fork machinery the in-process
    # backends never need.
    from repro.parallel.evaluator import ParallelEvaluator

    return ParallelEvaluator(
        eval_many_fn,
        workers=workers,
        cache=cache,
        weight_store=weight_store,
        source_module=source_module,
        on_worker_items=on_worker_items,
        chunk_size=chunk_size,
        max_retries=max_retries,
        dispatch_timeout_s=dispatch_timeout_s,
    )
