"""Cache- and weight-store-aware front end over :class:`WorkerPool`.

One :class:`ParallelEvaluator` wraps one batched evaluation function
(typically :meth:`~repro.core.objective.Objective.evaluate_many`) and is
shared by every search phase that scores architectures — subspace
quality, progressive shrinking, and the evolutionary search — so a
single set of forked workers serves the whole run.

The division of labour that keeps parallel runs bit-exact with serial:

* **All randomness stays in the parent.** Architectures are sampled (or
  bred) before dispatch; the evaluation function draws nothing.
* **The cache stays in the parent.** Callers route batches through
  :meth:`~repro.core.cache.EvaluationCache.get_or_eval_many` with
  :meth:`map` as the miss evaluator, so deduplication, hit/miss
  accounting, and insertion order are byte-for-byte the serial
  semantics; only the deduplicated misses fan out to workers.
* **Order survives dispatch.** :class:`WorkerPool` reassembles chunk
  results by index, independent of worker scheduling.

With ``workers <= 1`` (the default) every call degrades to invoking the
evaluation function inline — the evaluator is then pure plumbing, which
is what makes ``workers`` a wall-clock-only knob.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

from repro.core.cache import EvaluationCache
from repro.parallel.pool import WorkerPool
from repro.parallel.shared_weights import SharedWeightStore


class ParallelEvaluator:
    """Fan a batched evaluation function out across worker processes.

    Parameters
    ----------
    eval_many_fn:
        ``archs -> results``, one result per architecture, deterministic
        per architecture. Captured by the workers at fork time (never
        pickled), so closures over objectives/predictors/trainers work.
    workers:
        Worker process count; ``<= 1`` evaluates inline in the parent.
    cache:
        Optional :class:`EvaluationCache` consulted by
        :meth:`evaluate_many`. Lives in the parent only — workers never
        see it — so cache semantics are identical to serial runs.
    weight_store, source_module:
        Optional shared-memory weight block and the live module it
        mirrors. When both are set, :meth:`sync` refreshes the block in
        place (running workers observe the update); otherwise
        :meth:`sync` restarts the pool so the next fork snapshots
        current parent state.
    on_worker_items:
        Optional ``count -> None`` callback invoked after each
        :meth:`map` with the number of items that were evaluated in
        worker processes (parent-side evaluations are excluded). Side
        effects the evaluation function performs on parent state —
        ledger accounting, most relevantly — happen in the workers'
        address space and vanish with them; this hook lets the owner
        replay them, keeping cost accounting identical to serial runs.
    chunk_size, max_retries, dispatch_timeout_s:
        Forwarded to :class:`WorkerPool` (``dispatch_timeout_s`` arms
        its hang watchdog).
    """

    name = "multiprocess"

    def __init__(
        self,
        eval_many_fn: Callable[[List], Sequence],
        workers: int = 0,
        cache: Optional[EvaluationCache] = None,
        weight_store: Optional[SharedWeightStore] = None,
        source_module=None,
        on_worker_items: Optional[Callable[[int], None]] = None,
        chunk_size: Optional[int] = None,
        max_retries: int = 1,
        dispatch_timeout_s: Optional[float] = None,
    ):
        self._pool = WorkerPool(
            eval_many_fn,
            workers=workers,
            chunk_size=chunk_size,
            max_retries=max_retries,
            dispatch_timeout_s=dispatch_timeout_s,
        )
        self.cache = cache
        self.weight_store = weight_store
        self.source_module = source_module
        self.on_worker_items = on_worker_items
        self.batches = 0
        self.items = 0

    # -- evaluation --------------------------------------------------------------

    @property
    def workers(self) -> int:
        return self._pool.workers

    @property
    def parallel(self) -> bool:
        """Whether evaluations actually run in worker processes."""
        return self._pool.parallel

    def map(self, archs: Sequence) -> List:
        """Evaluate ``archs`` (no caching), preserving input order."""
        archs = list(archs)
        self.batches += 1
        self.items += len(archs)
        parent_before = self._pool.items_run_in_parent
        results = self._pool.map(archs)
        if self.on_worker_items is not None:
            in_parent = self._pool.items_run_in_parent - parent_before
            if len(archs) > in_parent:
                self.on_worker_items(len(archs) - in_parent)
        return results

    def evaluate_many(self, archs: Sequence) -> List:
        """Evaluate ``archs`` through the shared cache, if one is set.

        Cache lookups, dedup, and bookkeeping happen parent-side; only
        the missing architectures are dispatched to workers.
        """
        if self.cache is not None:
            return self.cache.get_or_eval_many(archs, self.map)
        return self.map(archs)

    def set_cancel(self, token) -> None:
        """Install (or clear, with ``None``) a cooperative cancel token.

        The pool checks it between dispatch waits, so an expired
        deadline stops within one chunk wait rather than one batch.
        """
        self._pool.set_cancel(token)

    # -- state synchronization ----------------------------------------------------

    def sync(self, module=None) -> str:
        """Make workers see the parent's current evaluation state.

        Call after anything the evaluation function depends on mutates
        (e.g. supernet tuning between shrinking stages). With a weight
        store, the shared block is refreshed in place and running
        workers pick the new weights up immediately; without one, the
        worker processes are restarted so the next dispatch re-forks
        from current parent memory. Returns which strategy ran
        (``"refreshed"`` / ``"restarted"``) for logging.
        """
        source = module if module is not None else self.source_module
        if self.weight_store is not None and source is not None:
            self.weight_store.refresh_from(source)
            return "refreshed"
        self._pool.restart()
        return "restarted"

    # -- observability -----------------------------------------------------------

    def stats(self) -> dict:
        """Dispatch/fault counters for run artifacts and logs."""
        out = {
            "backend": self.name,
            "workers": self._pool.workers,
            "parallel": self._pool.parallel,
            "batches": self.batches,
            "items": self.items,
            "chunks_dispatched": self._pool.chunks_dispatched,
            "chunk_retries": self._pool.chunk_retries,
            "serial_fallbacks": self._pool.serial_fallbacks,
            "pool_rebuilds": self._pool.pool_rebuilds,
            "hang_kills": self._pool.hang_kills,
        }
        if self.cache is not None:
            out["cache"] = self.cache.stats()
        return out

    # -- lifecycle ---------------------------------------------------------------

    def close(self) -> None:
        """Shut worker processes down (the weight store is not closed:
        the evaluator borrows it, the creator owns its lifecycle)."""
        self._pool.close()

    def __enter__(self) -> "ParallelEvaluator":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
