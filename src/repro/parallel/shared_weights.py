"""Supernet weights in POSIX shared memory, visible to worker processes.

A trained supernet's parameters are the one large piece of state every
evaluation worker needs. Pickling them per task would dominate dispatch
cost; fork's copy-on-write snapshot is free but *frozen* — a worker
forked before supernet tuning keeps evaluating the stale weights. A
:class:`SharedWeightStore` solves both: the parent packs every parameter
into one ``multiprocessing.shared_memory`` block, workers map the same
physical pages and rebuild their module tree around **read-only** views
(:meth:`install`), and a parent-side :meth:`refresh_from` after tuning
is immediately visible to already-running workers — no restart, no
copies.

Read-only is load-bearing, not cosmetic: a worker that accidentally ran
an optimizer step against shared views would corrupt every sibling's
evaluations. Views handed out by :meth:`shared_view` have
``writeable=False``, so ``p.data -= lr * g`` raises in the worker
instead.

Lifecycle: exactly one process owns the block (the creator). Workers
:meth:`attach` by name and :meth:`close` their mapping; the owner
:meth:`unlink` s the block when evaluation is done. Attaching on
CPython < 3.13 spuriously re-registers the segment with the resource
tracker (bpo-39959), which this module compensates for so worker exits
do not unlink the owner's memory or warn about leaks.
"""

from __future__ import annotations

from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory
from typing import Dict, Optional, Tuple

import numpy as np

_DTYPE = np.float64

# (dotted parameter name, byte offset, shape) — the layout contract
# between the owner and every attached worker.
_SpecEntry = Tuple[str, int, Tuple[int, ...]]


@dataclass(frozen=True)
class SharedWeightHandle:
    """Picklable pointer to a live store: block name + layout."""

    shm_name: str
    spec: Tuple[_SpecEntry, ...]

    @property
    def num_parameters(self) -> int:
        return sum(int(np.prod(shape)) for _, _, shape in self.spec)


def _attach_untracked(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing block without resource-tracker ownership.

    CPython 3.13+ supports ``track=False`` directly; earlier versions
    register every attach with the resource tracker as if it were a new
    allocation, so the spurious registration is reverted by hand.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:
        pass
    shm = shared_memory.SharedMemory(name=name)
    try:
        resource_tracker.unregister(getattr(shm, "_name", shm.name), "shared_memory")
    except Exception:
        # Losing the unregister only risks a benign tracker warning at
        # interpreter exit; attaching must not fail over it.
        pass
    return shm


class SharedWeightStore:
    """One shared-memory block holding every parameter of a module tree.

    Create with :meth:`create_from` (owner side), or :meth:`attach` from
    a :class:`SharedWeightHandle` (worker side). All parameters are
    stored as ``float64``, matching :class:`repro.nn.module.Parameter`.
    """

    def __init__(
        self,
        shm: shared_memory.SharedMemory,
        spec: Tuple[_SpecEntry, ...],
        owner: bool,
    ):
        self._shm: Optional[shared_memory.SharedMemory] = shm
        self._spec: Dict[str, Tuple[int, Tuple[int, ...]]] = {
            name: (offset, tuple(shape)) for name, offset, shape in spec
        }
        self._spec_entries = tuple(
            (name, int(offset), tuple(shape)) for name, offset, shape in spec
        )
        self._owner = owner

    # -- construction ------------------------------------------------------------

    @classmethod
    def create_from(cls, module, name: Optional[str] = None) -> "SharedWeightStore":
        """Allocate a block sized for ``module`` and copy its weights in."""
        spec = []
        offset = 0
        for pname, param in module.named_parameters():
            shape = tuple(param.data.shape)
            spec.append((pname, offset, shape))
            offset += int(np.prod(shape, dtype=np.int64)) * _DTYPE().itemsize
        shm = shared_memory.SharedMemory(
            create=True, size=max(1, offset), name=name
        )
        store = cls(shm, tuple(spec), owner=True)
        store.refresh_from(module)
        return store

    @classmethod
    def attach(cls, handle: SharedWeightHandle) -> "SharedWeightStore":
        """Map an existing store from its handle (worker side)."""
        return cls(_attach_untracked(handle.shm_name), handle.spec, owner=False)

    def handle(self) -> SharedWeightHandle:
        """A picklable handle workers can :meth:`attach` from."""
        if self._shm is None:
            raise RuntimeError("store is closed")
        return SharedWeightHandle(
            shm_name=self._shm.name, spec=self._spec_entries
        )

    # -- views -------------------------------------------------------------------

    def _buffer_view(self, name: str) -> np.ndarray:
        if self._shm is None:
            raise RuntimeError("store is closed")
        try:
            offset, shape = self._spec[name]
        except KeyError:
            raise KeyError(
                f"store has no parameter {name!r} "
                f"({len(self._spec)} parameters in layout)"
            ) from None
        return np.ndarray(
            shape, dtype=_DTYPE, buffer=self._shm.buf, offset=offset
        )

    def shared_view(self, name: str) -> np.ndarray:
        """Read-only array over one parameter's shared storage.

        The view aliases memory owned by the store and visible to every
        attached process; it must never be mutated in place (enforced by
        ``writeable=False`` at runtime and lint rule RL103 statically).
        Copy before modifying.
        """
        view = self._buffer_view(name)
        view.flags.writeable = False
        return view

    def parameter_names(self) -> Tuple[str, ...]:
        return tuple(name for name, _, _ in self._spec_entries)

    # -- module integration --------------------------------------------------------

    def install(self, module) -> int:
        """Point every parameter of ``module`` at its shared storage.

        Worker-side: after this, forward passes read the owner's current
        weights with zero copies, and any in-place write to a parameter
        raises (the views are read-only). Returns the number of
        parameters rebound. Names and shapes must match the layout the
        store was created from.
        """
        count = 0
        for pname, param in module.named_parameters():
            view = self.shared_view(pname)
            if view.shape != tuple(param.data.shape):
                raise ValueError(
                    f"shape mismatch for {pname}: store has {view.shape}, "
                    f"module has {tuple(param.data.shape)}"
                )
            param.data = view
            count += 1
        return count

    def refresh_from(self, module) -> None:
        """Copy ``module``'s current weights into the shared block.

        Owner-side, e.g. after a supernet tuning stage: attached workers
        observe the new values on their next read, without restarting.
        """
        for pname, param in module.named_parameters():
            target = self._buffer_view(pname)
            if target.shape != tuple(param.data.shape):
                raise ValueError(
                    f"shape mismatch for {pname}: store has {target.shape}, "
                    f"module has {tuple(param.data.shape)}"
                )
            np.copyto(target, np.asarray(param.data, dtype=_DTYPE))

    def export_state(self) -> Dict[str, np.ndarray]:
        """A detached copy of every stored parameter (state-dict shaped)."""
        return {
            name: np.array(self.shared_view(name))
            for name in self.parameter_names()
        }

    # -- lifecycle -----------------------------------------------------------------

    @property
    def closed(self) -> bool:
        return self._shm is None

    def close(self) -> None:
        """Drop this process's mapping (idempotent); owner also unlinks."""
        if self._shm is None:
            return
        shm, self._shm = self._shm, None
        shm.close()
        if self._owner:
            try:
                shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass

    def __enter__(self) -> "SharedWeightStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:
            pass
