"""Process-pool evaluation engine: parallel search, bit-exact with serial.

Layers, bottom to top:

* :class:`~repro.parallel.pool.WorkerPool` — forked workers, chunked
  order-preserving dispatch, crash retry with serial fallback.
* :class:`~repro.parallel.shared_weights.SharedWeightStore` — supernet
  parameters in shared memory; workers mount read-only views, the owner
  refreshes after tuning.
* :class:`~repro.parallel.evaluator.ParallelEvaluator` — the object the
  search stack talks to: batched evaluation with parent-side caching
  and worker-state synchronization.

See ``docs/parallel.md`` for the architecture and determinism
guarantees.
"""

from repro.parallel.evaluator import ParallelEvaluator
from repro.parallel.pool import WorkerPool, fork_available, resolve_workers
from repro.parallel.shared_weights import SharedWeightHandle, SharedWeightStore

__all__ = [
    "ParallelEvaluator",
    "SharedWeightHandle",
    "SharedWeightStore",
    "WorkerPool",
    "fork_available",
    "resolve_workers",
]
