"""Process-pool evaluation engine: parallel search, bit-exact with serial.

Layers, bottom to top:

* :class:`~repro.parallel.pool.WorkerPool` — forked workers, chunked
  order-preserving dispatch, crash retry with serial fallback.
* :class:`~repro.parallel.shared_weights.SharedWeightStore` — supernet
  parameters in shared memory; workers mount read-only views, the owner
  refreshes after tuning.
* :class:`~repro.parallel.evaluator.ParallelEvaluator` — the
  multiprocess backend: batched evaluation with parent-side caching
  and worker-state synchronization.
* :mod:`~repro.parallel.backend` — the :class:`EvaluationBackend`
  interface the search stack talks to, with serial / multiprocess /
  tabular implementations behind the :func:`create_backend` factory.

See ``docs/parallel.md`` for the architecture and determinism
guarantees, and ``docs/performance.md`` for backend selection.
"""

from repro.parallel.backend import (
    BACKEND_NAMES,
    EvaluationBackend,
    SerialBackend,
    TabularBackend,
    create_backend,
    resolve_backend_name,
)
from repro.parallel.evaluator import ParallelEvaluator
from repro.parallel.pool import (
    WorkerHangError,
    WorkerPool,
    fork_available,
    resolve_workers,
)
from repro.parallel.shared_weights import SharedWeightHandle, SharedWeightStore

__all__ = [
    "BACKEND_NAMES",
    "EvaluationBackend",
    "ParallelEvaluator",
    "SerialBackend",
    "SharedWeightHandle",
    "SharedWeightStore",
    "TabularBackend",
    "WorkerHangError",
    "WorkerPool",
    "create_backend",
    "fork_available",
    "resolve_backend_name",
    "resolve_workers",
]
