"""Fork-based worker pool: chunked, order-preserving parallel map.

The pool is the machinery under :class:`~repro.parallel.ParallelEvaluator`
and the parallel LUT build. Design constraints, in order:

1. **Determinism** — results are keyed by chunk index and reassembled in
   submission order, so the output is independent of worker scheduling.
   The chunk function itself must be deterministic per item (every
   search-stack evaluation function is); the pool adds no randomness.
2. **No pickling of the work function** — the pool only starts under the
   ``fork`` start method, where the chunk function (typically a closure
   over an :class:`~repro.core.objective.Objective`, a device model, or
   a trainer) is inherited by reference at fork time. Only the *items*
   and *results* cross the process boundary and must be picklable.
3. **Crash containment** — a worker dying (OOM kill, segfault, explicit
   ``SIGKILL``) breaks the executor; the pool rebuilds it and retries
   the in-flight chunks, and any chunk that keeps failing is evaluated
   serially in the parent. A crashed worker can therefore never change
   results — only cost wall-clock.
4. **Hang containment** — with ``dispatch_timeout_s`` set, a window
   that makes no progress for that long is treated as hung: the worker
   processes are killed outright, the executor is rebuilt, and the
   in-flight chunks are retried. A chunk that hangs on every allowed
   attempt raises :class:`WorkerHangError` — it is *not* retried
   serially, because a hanging chunk function would then wedge the
   parent, which is exactly what the watchdog exists to prevent.
5. **Bounded in-flight work** — at most ``inflight_per_worker`` chunks
   per worker are submitted at a time, bounding parent-side memory for
   pickled tasks and pending results.

A cooperative :class:`~repro.resilience.deadline.CancelToken` installed
via :meth:`WorkerPool.set_cancel` is checked between dispatches; on
expiry the workers are killed (in-flight chunks would otherwise keep
burning CPU) and :class:`~repro.resilience.deadline.DeadlineExceeded`
propagates with the pool's progress counters attached.

Platforms without ``fork`` (Windows, macOS under spawn) degrade to the
serial path — same results, no processes.
"""

from __future__ import annotations

import multiprocessing
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Dict, List, Optional, Sequence, TypeVar

from repro.resilience.deadline import DeadlineExceeded


class WorkerHangError(RuntimeError):
    """A chunk exceeded the dispatch timeout on every allowed attempt."""

Item = TypeVar("Item")
Result = TypeVar("Result")

# Worker-side chunk function, installed once per worker process by the
# pool initializer. Module-level so the task sent through the call queue
# is just ``(_run_chunk, chunk_id, items)`` — always picklable.
_WORKER_CHUNK_FN: Optional[Callable] = None


def _init_worker(chunk_fn: Callable) -> None:
    global _WORKER_CHUNK_FN
    _WORKER_CHUNK_FN = chunk_fn


def _run_chunk(chunk_id: int, items: List) -> tuple:
    assert _WORKER_CHUNK_FN is not None, "worker initializer did not run"
    return chunk_id, list(_WORKER_CHUNK_FN(items))


def fork_available() -> bool:
    """Whether the ``fork`` start method exists on this platform."""
    return "fork" in multiprocessing.get_all_start_methods()


def resolve_workers(workers: Optional[int]) -> int:
    """Normalize a worker-count knob: ``None``/``0``/``1`` mean serial."""
    if workers is None or workers <= 1:
        return 0
    return int(workers)


class WorkerPool:
    """Apply a chunk function over items across forked worker processes.

    Parameters
    ----------
    chunk_fn:
        ``items -> results`` over a *list* of items, returning one result
        per item in order (e.g. ``Objective.evaluate_many``). Runs in the
        workers — and in the parent, for the serial path and the crash
        fallback — so it must be deterministic per item. It is captured
        by reference at fork time and never pickled.
    workers:
        Number of worker processes; ``<= 1`` disables the pool (pure
        serial execution in the parent).
    chunk_size:
        Items per dispatched chunk. Defaults to splitting the input into
        ``~4`` chunks per worker, balancing scheduling slack against
        per-chunk IPC overhead.
    max_retries:
        How many times a chunk is re-dispatched after a worker crash
        (or hang kill) before the parent evaluates it serially (crash)
        or :class:`WorkerHangError` is raised (hang).
    inflight_per_worker:
        Bound on submitted-but-unfinished chunks per worker.
    dispatch_timeout_s:
        Optional hang watchdog: when no in-flight chunk completes for
        this long, the worker processes are killed and the window's
        chunks are retried on a fresh pool. ``None`` (the default)
        disables the watchdog — historical behaviour.
    """

    _CHUNKS_PER_WORKER = 4

    def __init__(
        self,
        chunk_fn: Callable[[List[Item]], Sequence[Result]],
        workers: int = 0,
        chunk_size: Optional[int] = None,
        max_retries: int = 1,
        inflight_per_worker: int = 2,
        dispatch_timeout_s: Optional[float] = None,
    ):
        if chunk_size is not None and chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        if max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if inflight_per_worker < 1:
            raise ValueError("inflight_per_worker must be >= 1")
        if dispatch_timeout_s is not None and dispatch_timeout_s <= 0:
            raise ValueError("dispatch_timeout_s must be positive")
        self._chunk_fn = chunk_fn
        self.workers = resolve_workers(workers)
        self._chunk_size = chunk_size
        self._max_retries = max_retries
        self._max_inflight = max(1, self.workers) * inflight_per_worker
        self._dispatch_timeout_s = dispatch_timeout_s
        self._executor: Optional[ProcessPoolExecutor] = None
        # Optional cooperative CancelToken (see set_cancel).
        self.cancel_token = None
        # Observability counters (surfaced by ParallelEvaluator.stats()).
        self.chunks_dispatched = 0
        self.chunk_retries = 0
        self.serial_fallbacks = 0
        self.pool_rebuilds = 0
        self.hang_kills = 0
        # Items chunk_fn evaluated in the parent (serial path + crash
        # fallback). Lets callers split parent-side from worker-side
        # work — worker-side chunk_fn calls can't reach parent state,
        # so e.g. ledger accounting they'd normally do is lost and must
        # be replayed by the caller.
        self.items_run_in_parent = 0

    # -- lifecycle ---------------------------------------------------------------

    @property
    def parallel(self) -> bool:
        """Whether map() will actually use worker processes."""
        return self.workers >= 2 and fork_available()

    def _ensure_executor(self) -> ProcessPoolExecutor:
        if self._executor is None:
            self._executor = ProcessPoolExecutor(
                max_workers=self.workers,
                mp_context=multiprocessing.get_context("fork"),
                initializer=_init_worker,
                initargs=(self._chunk_fn,),
            )
        return self._executor

    def _discard_executor(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None

    def _kill_workers(self) -> None:
        """SIGKILL the worker processes and drop the executor.

        Used by the hang watchdog and the deadline path: a stuck (or
        no-longer-wanted) chunk cannot be cancelled cooperatively once
        it is inside ``chunk_fn``, so the only way to reclaim the CPU
        is to kill the process running it. Results are unaffected —
        killed chunks are either retried or abandoned with the map.
        """
        executor = self._executor
        if executor is None:
            return
        for proc in list(getattr(executor, "_processes", {}).values()):
            try:
                proc.kill()
            except (OSError, ValueError):  # already gone / closed
                pass
        self._discard_executor()

    def set_cancel(self, token) -> None:
        """Install (or clear, with ``None``) a cooperative CancelToken.

        The token is checked between dispatches — at map entry, before
        each serial chunk, and each time the dispatch wait wakes — and
        on expiry the workers are killed before
        :class:`~repro.resilience.deadline.DeadlineExceeded` propagates.
        """
        self.cancel_token = token

    def _check_cancel(self) -> None:
        token = self.cancel_token
        if token is not None:
            token.check(
                stage="worker-pool",
                chunks_dispatched=self.chunks_dispatched,
            )

    def restart(self) -> None:
        """Drop the worker processes; the next map() re-forks them.

        Forked workers snapshot the parent's memory at creation time, so
        a caller that mutates evaluation state (e.g. tunes the supernet
        between shrinking stages) must either restart the pool or route
        the mutable state through a
        :class:`~repro.parallel.SharedWeightStore`.
        """
        self._discard_executor()

    def close(self) -> None:
        """Shut the worker processes down (idempotent)."""
        self._discard_executor()

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:
            pass

    # -- mapping -----------------------------------------------------------------

    def _resolve_chunk_size(self, num_items: int) -> int:
        if self._chunk_size is not None:
            return self._chunk_size
        target_chunks = max(1, self.workers) * self._CHUNKS_PER_WORKER
        return max(1, -(-num_items // target_chunks))

    def _run_serial(self, items: List[Item]) -> List[Result]:
        self._check_cancel()
        results = list(self._chunk_fn(items))
        if len(results) != len(items):
            raise ValueError(
                f"chunk_fn returned {len(results)} results for "
                f"{len(items)} items"
            )
        self.items_run_in_parent += len(items)
        return results

    def map(self, items: Sequence[Item]) -> List[Result]:
        """``chunk_fn`` over ``items``; order-preserving, crash-tolerant."""
        items = list(items)
        if not items:
            return []
        if not self.parallel:
            return self._run_serial(items)

        size = self._resolve_chunk_size(len(items))
        chunks = [items[i : i + size] for i in range(0, len(items), size)]
        results: Dict[int, List[Result]] = {}
        attempts = [0] * len(chunks)
        remaining = deque(range(len(chunks)))

        while len(results) < len(chunks):
            window: Dict[int, object] = {}
            try:
                self._check_cancel()
                executor = self._ensure_executor()
                while remaining and len(window) < self._max_inflight:
                    cid = remaining.popleft()
                    window[cid] = executor.submit(_run_chunk, cid, chunks[cid])
                    self.chunks_dispatched += 1
                last_progress = time.monotonic()
                while window:
                    done, _ = wait(
                        list(window.values()),
                        timeout=self._wait_timeout_s(),
                        return_when=FIRST_COMPLETED,
                    )
                    if not done:
                        # Woke without progress: the caller's deadline
                        # may have expired (check raises), or the
                        # window may be hung (watchdog kills), or this
                        # was just a cancel-poll tick (loop again).
                        self._check_cancel()
                        if (
                            self._dispatch_timeout_s is not None
                            and time.monotonic() - last_progress
                            >= self._dispatch_timeout_s
                        ):
                            self._handle_hang(
                                window, attempts, remaining
                            )
                            break
                        continue
                    last_progress = time.monotonic()
                    for future in done:
                        cid = next(
                            c for c, f in window.items() if f is future
                        )
                        returned_id, values = future.result()
                        del window[cid]
                        if len(values) != len(chunks[returned_id]):
                            raise ValueError(
                                f"chunk_fn returned {len(values)} results "
                                f"for {len(chunks[returned_id])} items"
                            )
                        results[returned_id] = values
                    while remaining and len(window) < self._max_inflight:
                        cid = remaining.popleft()
                        window[cid] = executor.submit(
                            _run_chunk, cid, chunks[cid]
                        )
                        self.chunks_dispatched += 1
            except BrokenProcessPool:
                # A worker died. Every chunk still in the window is
                # unaccounted for: retry each a bounded number of times
                # on a fresh pool, then fall back to evaluating it in
                # the parent — results are identical either way because
                # chunk_fn is deterministic.
                self.pool_rebuilds += 1
                self._discard_executor()
                for cid in sorted(window):
                    attempts[cid] += 1
                    if attempts[cid] > self._max_retries:
                        self.serial_fallbacks += 1
                        results[cid] = self._run_serial(chunks[cid])
                    else:
                        self.chunk_retries += 1
                        remaining.append(cid)
            except DeadlineExceeded:
                # The caller's deadline expired mid-dispatch. The
                # in-flight chunks would keep burning CPU in the
                # workers; kill them before propagating.
                self._kill_workers()
                raise

        return [value for cid in range(len(chunks)) for value in results[cid]]

    def _wait_timeout_s(self) -> Optional[float]:
        """How long one dispatch wait may block.

        Bounded by the hang watchdog (if configured) and by a short
        poll tick whenever a cancel token is installed — the token has
        no wakeup callback, so expiry is detected by polling. ``None``
        (wait forever) only when neither is in play.
        """
        candidates = []
        if self._dispatch_timeout_s is not None:
            candidates.append(self._dispatch_timeout_s)
        token = self.cancel_token
        if token is not None:
            remaining = token.remaining_s()
            poll = 0.5 if remaining is None else min(0.5, remaining)
            candidates.append(max(0.01, poll))
        return min(candidates) if candidates else None

    def _handle_hang(self, window: Dict, attempts, remaining) -> None:
        """The watchdog fired: kill the workers, retry the window.

        Every in-flight chunk is charged an attempt (the pool cannot
        tell which one is stuck). A chunk out of attempts raises
        :class:`WorkerHangError` instead of falling back to the serial
        path — running a hanging chunk function in the parent would
        hang the parent.
        """
        self.hang_kills += 1
        self.pool_rebuilds += 1
        self._kill_workers()
        for cid in sorted(window):
            attempts[cid] += 1
            if attempts[cid] > self._max_retries:
                raise WorkerHangError(
                    f"chunk {cid} made no progress within "
                    f"{self._dispatch_timeout_s}s on {attempts[cid]} "
                    "attempts; workers killed"
                )
            self.chunk_retries += 1
            remaining.append(cid)
