"""repro — a full reproduction of HSCoNAS (DATE 2021).

HSCoNAS is a multi-objective hardware-aware neural architecture search
(NAS) framework that couples

* a **hardware performance model** — per-operator latency lookup tables
  plus a calibrated communication-overhead bias (paper Eq. 2-3),
* **dynamic channel scaling** — per-layer channel scaling factors explored
  jointly with the operator choice (paper Sec. III-B),
* **progressive space shrinking** — a staged pruning of the search space
  guided by subspace quality estimates (paper Eq. 4, Sec. III-C), and
* an **evolutionary architecture search** (paper Sec. III-D)

into one pipeline that designs DNNs that are accurate *and* fast on a
specific target device (GPU / CPU / edge).

Because this reproduction runs without physical devices or ImageNet, the
package also implements the substrates the paper depends on:

* :mod:`repro.nn` — a from-scratch numpy neural-network framework with
  manual backpropagation (convolutions, batch norm, channel shuffle,
  channel masking, SGD, cosine schedules).
* :mod:`repro.hardware` — analytical roofline-style device simulators
  standing in for the Quadro GV100 / Xeon Gold 6136 / Jetson Xavier.
* :mod:`repro.accuracy` — a calibrated ImageNet-accuracy surrogate used
  where numpy training at ImageNet scale is infeasible.
* :mod:`repro.data` — a procedurally generated image-classification task
  for the real-training path.

See ``DESIGN.md`` for the substitution rationale and the per-experiment
index, and ``EXPERIMENTS.md`` for paper-vs-measured results.
"""

from repro.space import Architecture, SearchSpace
from repro.hardware import DeviceModel, LatencyPredictor, get_device
from repro.accuracy import AccuracySurrogate
from repro.core import (
    EvolutionarySearch,
    HSCoNAS,
    HSCoNASConfig,
    Objective,
    ProgressiveSpaceShrinking,
    SubspaceQuality,
)
from repro.tabular import TabularBenchmark

__version__ = "1.0.0"

__all__ = [
    "Architecture",
    "SearchSpace",
    "DeviceModel",
    "LatencyPredictor",
    "get_device",
    "AccuracySurrogate",
    "Objective",
    "SubspaceQuality",
    "ProgressiveSpaceShrinking",
    "EvolutionarySearch",
    "HSCoNAS",
    "HSCoNASConfig",
    "TabularBenchmark",
    "__version__",
]
