"""Subspace quality estimation (paper Eq. 4 / Definition 1).

``Q(A_sub) = (1/N) * sum_i F(arch_i, T)`` over ``N`` architectures
sampled uniformly from the subspace. The paper uses ``N = 100``
(sufficient per Radosavovic et al., "On Network Design Spaces for
Visual Recognition").
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.objective import Objective
from repro.space.search_space import SearchSpace


class SubspaceQuality:
    """Monte-Carlo estimator of subspace quality.

    Parameters
    ----------
    objective:
        The trade-off objective ``F`` (Eq. 1).
    num_samples:
        ``N`` in Eq. 4; the paper fixes 100.
    seed:
        Base seed; every :meth:`estimate` call advances an internal
        counter so repeated estimates of *different* subspaces use
        independent draws while a fresh estimator is fully reproducible.
    """

    def __init__(self, objective: Objective, num_samples: int = 100, seed: int = 0):
        if num_samples < 1:
            raise ValueError("num_samples must be >= 1")
        self.objective = objective
        self.num_samples = num_samples
        self._seed_seq = np.random.SeedSequence(seed)
        self.evaluations = 0  # total F() calls, for the complexity claim

    def estimate(self, subspace: SearchSpace, rng: Optional[np.random.Generator] = None) -> float:
        """``Q(subspace)`` — the mean objective of N uniform samples."""
        if rng is None:
            rng = np.random.default_rng(self._seed_seq.spawn(1)[0])
        total = 0.0
        for _ in range(self.num_samples):
            arch = subspace.sample(rng)
            total += self.objective(arch)
            self.evaluations += 1
        return total / self.num_samples
