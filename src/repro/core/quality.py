"""Subspace quality estimation (paper Eq. 4 / Definition 1).

``Q(A_sub) = (1/N) * sum_i F(arch_i, T)`` over ``N`` architectures
sampled uniformly from the subspace. The paper uses ``N = 100``
(sufficient per Radosavovic et al., "On Network Design Spaces for
Visual Recognition").

The estimator draws its ``N`` samples first and then scores them in one
:meth:`~repro.core.objective.Objective.evaluate_many` call, so a
batched latency predictor serves the whole sample with a single LUT
gather; an optional shared :class:`~repro.core.cache.EvaluationCache`
additionally makes architectures re-drawn across overlapping subspaces
free. Neither changes the estimate: draws, per-architecture scores, and
the accumulation order are identical to the one-at-a-time loop.

Seeding is keyed by an explicit **estimate index**, not by call order:
estimate ``i`` always draws from ``SeedSequence(seed, spawn_key=(i,))``
— the same stream the i-th ``spawn()`` child of ``SeedSequence(seed)``
would produce, so historical results are unchanged — which makes a
subspace's draw independent of *when* it is evaluated. That is both a
reproducibility fix (inserting an extra estimate no longer perturbs
every later one) and the property that lets :meth:`estimate_many` hand
a batch of subspaces to a :class:`~repro.parallel.ParallelEvaluator`
in any dispatch order and still match the serial loop bit for bit.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.core.cache import EvaluationCache
from repro.core.objective import Objective
from repro.space.search_space import SearchSpace


class SubspaceQuality:
    """Monte-Carlo estimator of subspace quality.

    Parameters
    ----------
    objective:
        The trade-off objective ``F`` (Eq. 1).
    num_samples:
        ``N`` in Eq. 4; the paper fixes 100.
    seed:
        Base seed. Estimate ``i`` uses the stream
        ``SeedSequence(seed, spawn_key=(i,))``; callers may pass ``i``
        explicitly, otherwise an internal counter allocates the next
        index — so a fresh estimator remains fully reproducible while
        explicit indices decouple draws from evaluation order.
    cache:
        Optional shared evaluation cache. ``evaluations`` still counts
        every F() draw (the paper's complexity accounting), even when a
        draw is served from cache.
    evaluator:
        Optional :class:`~repro.parallel.ParallelEvaluator` that fans
        the N objective evaluations out across worker processes.
        Results are bit-identical with or without it.
    """

    def __init__(
        self,
        objective: Objective,
        num_samples: int = 100,
        seed: int = 0,
        cache: Optional[EvaluationCache] = None,
        evaluator=None,
    ):
        if num_samples < 1:
            raise ValueError("num_samples must be >= 1")
        self.objective = objective
        self.num_samples = num_samples
        self._entropy = seed
        self._next_index = 0
        self.evaluations = 0  # total F() calls, for the complexity claim
        self.cache = cache
        self.evaluator = evaluator

    # -- seeding -----------------------------------------------------------------

    def rng_for(self, index: int) -> np.random.Generator:
        """The generator estimate ``index`` draws its N samples from."""
        if index < 0:
            raise ValueError("estimate index must be >= 0")
        return np.random.default_rng(
            np.random.SeedSequence(self._entropy, spawn_key=(index,))
        )

    def reserve_indices(self, count: int) -> List[int]:
        """Claim the next ``count`` estimate indices (for batched calls)."""
        if count < 1:
            raise ValueError("count must be >= 1")
        start = self._next_index
        self._next_index += count
        return list(range(start, start + count))

    # -- checkpointing -----------------------------------------------------------

    def state(self) -> dict:
        """Resumable state: the index counter and the F() call count.

        Indexed seeding means no generator state needs saving — estimate
        ``i`` always draws the same stream, so restoring the counter is
        enough for a resumed run to allocate the same indices.
        """
        return {
            "next_index": self._next_index,
            "evaluations": self.evaluations,
        }

    def set_state(self, state: dict) -> None:
        self._next_index = int(state["next_index"])
        self.evaluations = int(state["evaluations"])

    # -- estimation --------------------------------------------------------------

    def _eval_many_fn(self):
        if self.evaluator is not None:
            return self.evaluator.map
        return self.objective.evaluate_many

    def estimate(
        self,
        subspace: SearchSpace,
        rng: Optional[np.random.Generator] = None,
        index: Optional[int] = None,
    ) -> float:
        """``Q(subspace)`` — the mean objective of N uniform samples.

        ``index`` pins the sample stream regardless of call order;
        without it the internal counter assigns the next index. An
        explicit ``rng`` bypasses indexed seeding entirely (the caller
        owns the stream).
        """
        if rng is None:
            if index is None:
                (index,) = self.reserve_indices(1)
            rng = self.rng_for(index)
        archs = [subspace.sample(rng) for _ in range(self.num_samples)]
        eval_many = self._eval_many_fn()
        if self.cache is not None:
            evaluated = self.cache.get_or_eval_many(archs, eval_many)
        else:
            evaluated = eval_many(archs)
        self.evaluations += self.num_samples
        total = 0.0
        for e in evaluated:
            total += e.score
        return total / self.num_samples

    def estimate_many(
        self,
        subspaces: Sequence[SearchSpace],
        indices: Optional[Sequence[int]] = None,
    ) -> List[float]:
        """``Q`` for several subspaces with one batched evaluation.

        Sampling happens up front (per-subspace, from each subspace's
        indexed stream), then the concatenated sample is scored in a
        single ``evaluate_many``/cache call — with a parallel evaluator
        the whole ``len(subspaces) x N`` batch fans out at once instead
        of subspace by subspace. Bit-identical to calling
        :meth:`estimate` per subspace with the same indices: draws and
        per-architecture scores match, and a shared cache sees the same
        first-occurrence evaluation order, so hit/miss totals agree.
        """
        subspaces = list(subspaces)
        if not subspaces:
            return []
        if indices is None:
            indices = self.reserve_indices(len(subspaces))
        indices = list(indices)
        if len(indices) != len(subspaces):
            raise ValueError(
                f"got {len(indices)} indices for {len(subspaces)} subspaces"
            )
        all_archs = []
        for subspace, index in zip(subspaces, indices):
            rng = self.rng_for(index)
            all_archs.extend(
                subspace.sample(rng) for _ in range(self.num_samples)
            )
        eval_many = self._eval_many_fn()
        if self.cache is not None:
            evaluated = self.cache.get_or_eval_many(all_archs, eval_many)
        else:
            evaluated = eval_many(all_archs)
        self.evaluations += self.num_samples * len(subspaces)
        qualities = []
        for group in range(len(subspaces)):
            total = 0.0
            for e in evaluated[
                group * self.num_samples : (group + 1) * self.num_samples
            ]:
                total += e.score
            qualities.append(total / self.num_samples)
        return qualities
