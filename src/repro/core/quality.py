"""Subspace quality estimation (paper Eq. 4 / Definition 1).

``Q(A_sub) = (1/N) * sum_i F(arch_i, T)`` over ``N`` architectures
sampled uniformly from the subspace. The paper uses ``N = 100``
(sufficient per Radosavovic et al., "On Network Design Spaces for
Visual Recognition").

The estimator draws its ``N`` samples first and then scores them in one
:meth:`~repro.core.objective.Objective.evaluate_many` call, so a
batched latency predictor serves the whole sample with a single LUT
gather; an optional shared :class:`~repro.core.cache.EvaluationCache`
additionally makes architectures re-drawn across overlapping subspaces
free. Neither changes the estimate: draws, per-architecture scores, and
the accumulation order are identical to the one-at-a-time loop.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.cache import EvaluationCache
from repro.core.objective import Objective
from repro.space.search_space import SearchSpace


class SubspaceQuality:
    """Monte-Carlo estimator of subspace quality.

    Parameters
    ----------
    objective:
        The trade-off objective ``F`` (Eq. 1).
    num_samples:
        ``N`` in Eq. 4; the paper fixes 100.
    seed:
        Base seed; every :meth:`estimate` call advances an internal
        counter so repeated estimates of *different* subspaces use
        independent draws while a fresh estimator is fully reproducible.
    cache:
        Optional shared evaluation cache. ``evaluations`` still counts
        every F() draw (the paper's complexity accounting), even when a
        draw is served from cache.
    """

    def __init__(
        self,
        objective: Objective,
        num_samples: int = 100,
        seed: int = 0,
        cache: Optional[EvaluationCache] = None,
    ):
        if num_samples < 1:
            raise ValueError("num_samples must be >= 1")
        self.objective = objective
        self.num_samples = num_samples
        self._seed_seq = np.random.SeedSequence(seed)
        self.evaluations = 0  # total F() calls, for the complexity claim
        self.cache = cache

    def estimate(self, subspace: SearchSpace, rng: Optional[np.random.Generator] = None) -> float:
        """``Q(subspace)`` — the mean objective of N uniform samples."""
        if rng is None:
            rng = np.random.default_rng(self._seed_seq.spawn(1)[0])
        archs = [subspace.sample(rng) for _ in range(self.num_samples)]
        if self.cache is not None:
            evaluated = self.cache.get_or_eval_many(
                archs, self.objective.evaluate_many
            )
        else:
            evaluated = self.objective.evaluate_many(archs)
        self.evaluations += self.num_samples
        total = 0.0
        for e in evaluated:
            total += e.score
        return total / self.num_samples
