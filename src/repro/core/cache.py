"""Shared memoization of architecture evaluations.

Every search component re-visits architectures: the EA's elitism keeps
parents across generations, progressive shrinking estimates overlapping
subspaces, and the NSGA-II front carries survivors forward. Before this
module each component kept its own private ``Dict[key, value]``; an
:class:`EvaluationCache` replaces those copies with one object that can
also be *shared* across pipeline phases (shrinking and the EA evaluate
the same ``Objective``, so a hit in one phase is a hit in the other).

The cache is only sound while the evaluation function is deterministic
and fixed. If the underlying model changes — e.g. the supernet is tuned
between shrinking stages — call :meth:`EvaluationCache.clear`;
:class:`~repro.core.shrinking.ProgressiveSpaceShrinking` does this
automatically around its ``tune_hook``.

For week-long searches the memo can be bounded with ``max_size``:
entries are evicted least-recently-used and counted, so memory stays
flat while the stats still tell you how much re-evaluation the cap
cost. For crash-safe runs the full contents *and* counters round-trip
through :meth:`snapshot`/:meth:`restore`, which is what keeps a resumed
run's hit/miss accounting bit-identical to an uninterrupted one.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Dict, List, Optional, Sequence, Tuple, TypeVar

from repro.space.architecture import Architecture

T = TypeVar("T")


class EvaluationCache:
    """Memo of ``arch.key() -> evaluation result`` with hit accounting.

    One cache instance must only ever be fed by a single evaluation
    function (mixing, say, ``Objective.evaluate`` and a ``BiObjective``
    factory in the same cache would hand one component the other's
    value type).

    Parameters
    ----------
    max_size:
        Optional entry cap. When set, insertions beyond the cap evict
        the least-recently-used entry (lookups refresh recency) and
        increment :attr:`evictions`. ``None`` (default) = unbounded,
        the exact semantics every result before the cap existed.
    """

    def __init__(self, max_size: Optional[int] = None) -> None:
        if max_size is not None and max_size < 1:
            raise ValueError("max_size must be >= 1 (or None for unbounded)")
        self._store: "OrderedDict[Tuple, object]" = OrderedDict()
        self.max_size = max_size
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._store)

    def __contains__(self, arch: Architecture) -> bool:
        return arch.key() in self._store

    # -- internals ---------------------------------------------------------------

    def _touch(self, key: Tuple) -> None:
        """Mark ``key`` most-recently-used (no-op when unbounded: recency
        only matters once eviction can happen)."""
        if self.max_size is not None:
            self._store.move_to_end(key)

    def _insert(self, key: Tuple, value: object) -> None:
        self._store[key] = value
        if self.max_size is not None:
            while len(self._store) > self.max_size:
                self._store.popitem(last=False)
                self.evictions += 1

    # -- lookup ------------------------------------------------------------------

    def get_or_eval(
        self, arch: Architecture, eval_fn: Callable[[Architecture], T]
    ) -> T:
        """Return the cached evaluation of ``arch``, computing on a miss."""
        key = arch.key()
        try:
            value = self._store[key]
        except KeyError:
            self.misses += 1
            value = eval_fn(arch)
            self._insert(key, value)
            return value
        self.hits += 1
        self._touch(key)
        return value

    def get_or_eval_many(
        self,
        archs: Sequence[Architecture],
        eval_many_fn: Callable[[List[Architecture]], Sequence[T]],
    ) -> List[T]:
        """Batched :meth:`get_or_eval`: one ``eval_many_fn`` call covers
        every miss (duplicates within the batch are evaluated once)."""
        archs = list(archs)
        keys = [a.key() for a in archs]
        # Hit values are captured before any insertion so a bounded
        # cache can evict them mid-batch without corrupting the result.
        hit_values: Dict[Tuple, object] = {}
        pending: Dict[Tuple, Architecture] = {}
        for arch, key in zip(archs, keys):
            if key in self._store:
                if key not in hit_values:
                    hit_values[key] = self._store[key]
                    self._touch(key)
            elif key not in pending:
                pending[key] = arch
        fresh_values: Dict[Tuple, object] = {}
        if pending:
            fresh = eval_many_fn(list(pending.values()))
            if len(fresh) != len(pending):
                raise ValueError(
                    f"eval_many_fn returned {len(fresh)} results for "
                    f"{len(pending)} architectures"
                )
            for key, value in zip(pending, fresh):
                fresh_values[key] = value
                self._insert(key, value)
        self.misses += len(pending)
        self.hits += len(archs) - len(pending)
        return [
            fresh_values[key] if key in fresh_values else hit_values[key]
            for key in keys
        ]

    def values(self) -> List[object]:
        """All cached values, insertion/recency order, no recency touch.

        A read-only scan for consumers that pick among cached entries
        without looking one up — e.g. the serving layer's
        nearest-cached-front degraded fallback. Counters and LRU order
        are untouched, so scanning never perturbs cache behaviour.
        """
        return list(self._store.values())

    def clear(self) -> None:
        """Drop all memoized results (hit/miss/eviction counters are kept).

        Required whenever the evaluation function's result for a given
        architecture may have changed — e.g. after supernet tuning.
        """
        self._store.clear()

    def stats(self) -> Dict[str, object]:
        """One snapshot every consumer reuses verbatim: size, hits,
        misses, evictions, and the derived hit rate.

        This is the *single* cache-stats schema in the codebase —
        ``SearchResult.cache_stats``, ``ShrinkResult.cache_stats``,
        backend ``stats()["cache"]``, and the serving layer's
        ``/metrics`` endpoint all carry exactly this dict.
        """
        total = self.hits + self.misses
        return {
            "size": len(self._store),
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": (self.hits / total) if total else 0.0,
        }

    # -- checkpointing -----------------------------------------------------------

    def snapshot(self, encode_value: Callable[[T], dict]) -> dict:
        """JSON-ready image of the cache: entries (in recency order),
        counters, and the cap. ``encode_value`` serializes one stored
        value (e.g. ``EvaluatedArch.to_dict``)."""
        return {
            "max_size": self.max_size,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "entries": [encode_value(v) for v in self._store.values()],
        }

    def restore(
        self,
        payload: dict,
        decode_value: Callable[[dict], T],
        key_fn: Optional[Callable[[T], Tuple]] = None,
    ) -> None:
        """Rebuild contents and counters from a :meth:`snapshot`.

        Keys are re-derived from the decoded values (``key_fn``,
        defaulting to ``value.arch.key()`` — true for every value type
        the search stack caches), so the snapshot stays a plain value
        list. After a restore the cache behaves bit-identically to the
        instance that was snapshotted, including future LRU evictions
        (entry order is preserved).
        """
        if key_fn is None:
            def key_fn(value):
                return value.arch.key()
        self._store.clear()
        for encoded in payload["entries"]:
            value = decode_value(encoded)
            self._store[key_fn(value)] = value
        self.max_size = payload.get("max_size")
        self.hits = int(payload["hits"])
        self.misses = int(payload["misses"])
        self.evictions = int(payload.get("evictions", 0))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"EvaluationCache(size={len(self._store)}, "
            f"hits={self.hits}, misses={self.misses}, "
            f"evictions={self.evictions})"
        )
