"""Shared memoization of architecture evaluations.

Every search component re-visits architectures: the EA's elitism keeps
parents across generations, progressive shrinking estimates overlapping
subspaces, and the NSGA-II front carries survivors forward. Before this
module each component kept its own private ``Dict[key, value]``; an
:class:`EvaluationCache` replaces those copies with one object that can
also be *shared* across pipeline phases (shrinking and the EA evaluate
the same ``Objective``, so a hit in one phase is a hit in the other).

The cache is only sound while the evaluation function is deterministic
and fixed. If the underlying model changes — e.g. the supernet is tuned
between shrinking stages — call :meth:`EvaluationCache.clear`;
:class:`~repro.core.shrinking.ProgressiveSpaceShrinking` does this
automatically around its ``tune_hook``.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence, Tuple, TypeVar

from repro.space.architecture import Architecture

T = TypeVar("T")


class EvaluationCache:
    """Memo of ``arch.key() -> evaluation result`` with hit accounting.

    One cache instance must only ever be fed by a single evaluation
    function (mixing, say, ``Objective.evaluate`` and a ``BiObjective``
    factory in the same cache would hand one component the other's
    value type).
    """

    def __init__(self) -> None:
        self._store: Dict[Tuple, object] = {}
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._store)

    def __contains__(self, arch: Architecture) -> bool:
        return arch.key() in self._store

    def get_or_eval(
        self, arch: Architecture, eval_fn: Callable[[Architecture], T]
    ) -> T:
        """Return the cached evaluation of ``arch``, computing on a miss."""
        key = arch.key()
        try:
            value = self._store[key]
        except KeyError:
            self.misses += 1
            value = self._store[key] = eval_fn(arch)
            return value
        self.hits += 1
        return value

    def get_or_eval_many(
        self,
        archs: Sequence[Architecture],
        eval_many_fn: Callable[[List[Architecture]], Sequence[T]],
    ) -> List[T]:
        """Batched :meth:`get_or_eval`: one ``eval_many_fn`` call covers
        every miss (duplicates within the batch are evaluated once)."""
        archs = list(archs)
        keys = [a.key() for a in archs]
        pending: Dict[Tuple, Architecture] = {}
        for arch, key in zip(archs, keys):
            if key not in self._store and key not in pending:
                pending[key] = arch
        if pending:
            fresh = eval_many_fn(list(pending.values()))
            if len(fresh) != len(pending):
                raise ValueError(
                    f"eval_many_fn returned {len(fresh)} results for "
                    f"{len(pending)} architectures"
                )
            for key, value in zip(pending, fresh):
                self._store[key] = value
        self.misses += len(pending)
        self.hits += len(archs) - len(pending)
        return [self._store[key] for key in keys]

    def clear(self) -> None:
        """Drop all memoized results (hit/miss counters are kept).

        Required whenever the evaluation function's result for a given
        architecture may have changed — e.g. after supernet tuning.
        """
        self._store.clear()

    def stats(self) -> Dict[str, int]:
        """Counters for logs: size, hits, misses."""
        return {"size": len(self._store), "hits": self.hits, "misses": self.misses}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"EvaluationCache(size={len(self._store)}, "
            f"hits={self.hits}, misses={self.misses})"
        )
