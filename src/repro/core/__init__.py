"""HSCoNAS core — the paper's primary contribution.

* :class:`~repro.core.objective.Objective` — the multi-objective score
  ``F(arch, T) = ACC(arch) + beta * |LAT(arch)/T - 1|`` (Eq. 1).
* :class:`~repro.core.quality.SubspaceQuality` — ``Q(A_sub)`` via N
  uniform samples (Eq. 4).
* :class:`~repro.core.shrinking.ProgressiveSpaceShrinking` — the staged
  layer-by-layer operator fixing of Sec. III-C.
* :class:`~repro.core.evolution.EvolutionarySearch` — the EA of
  Sec. III-D (20 generations, population 50, 20 parents, crossover and
  mutation probability 0.25).
* :class:`~repro.core.search.HSCoNAS` — the end-to-end pipeline gluing
  hardware modeling, channel scaling, shrinking, and the EA together.
"""

from repro.core.cache import EvaluationCache
from repro.core.objective import EvaluatedArch, Objective
from repro.core.quality import SubspaceQuality
from repro.core.shrinking import (
    JointShrinking,
    ProgressiveSpaceShrinking,
    ShrinkDecision,
    ShrinkResult,
)
from repro.core.evolution import (
    EvolutionConfig,
    EvolutionarySearch,
    RandomSearch,
    SearchResult,
)
from repro.core.multi_constraint import MultiConstraintObjective
from repro.core.nsga2 import BiObjective, Nsga2Config, Nsga2Result, Nsga2Search
from repro.core.reinforce import ReinforceConfig, ReinforceSearch
from repro.core.channel_scaling import (
    best_uniform_factor,
    greedy_fit_factors,
    uniform_scaled,
)
from repro.core.search import HSCoNAS, HSCoNASConfig, HSCoNASResult

__all__ = [
    "EvaluationCache",
    "Objective",
    "EvaluatedArch",
    "SubspaceQuality",
    "ProgressiveSpaceShrinking",
    "JointShrinking",
    "ShrinkDecision",
    "ShrinkResult",
    "EvolutionConfig",
    "EvolutionarySearch",
    "RandomSearch",
    "SearchResult",
    "MultiConstraintObjective",
    "BiObjective",
    "Nsga2Config",
    "Nsga2Result",
    "Nsga2Search",
    "ReinforceConfig",
    "ReinforceSearch",
    "uniform_scaled",
    "best_uniform_factor",
    "greedy_fit_factors",
    "HSCoNAS",
    "HSCoNASConfig",
    "HSCoNASResult",
]
