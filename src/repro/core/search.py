"""The end-to-end HSCoNAS pipeline (paper Fig. 1).

Given a target device and latency constraint ``T``, the pipeline

1. builds the per-operator latency LUT by micro-benchmarking on the
   device and calibrates the bias ``B`` from ``M`` end-to-end
   measurements (Sec. III-A);
2. forms the Eq. 1 objective from the weight-sharing proxy accuracy and
   the latency *predictor* (no on-device measurement inside the loop);
3. progressively shrinks the search space (Sec. III-C);
4. runs the evolutionary search inside the shrunk space (Sec. III-D);
5. reports the discovered architecture with stand-alone accuracy and a
   fresh on-device latency measurement.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional


from repro.accuracy.surrogate import AccuracySurrogate
from repro.core.cache import EvaluationCache
from repro.core.evolution import EvolutionConfig, EvolutionarySearch, SearchResult
from repro.core.objective import Objective
from repro.core.quality import SubspaceQuality
from repro.core.shrinking import ProgressiveSpaceShrinking, ShrinkResult
from repro.hardware.device import DeviceModel
from repro.hardware.ledger import MeasurementLedger
from repro.hardware.lut import LatencyLUT
from repro.hardware.predictor import LatencyPredictor
from repro.hardware.profiler import OnDeviceProfiler
from repro.parallel.evaluator import ParallelEvaluator
from repro.space.architecture import Architecture
from repro.space.search_space import SearchSpace


@dataclass(frozen=True)
class HSCoNASConfig:
    """All pipeline hyper-parameters; defaults follow the paper."""

    target_ms: float = 34.0
    beta: float = -0.5
    # Hardware modeling (Sec. III-A).
    lut_samples_per_cell: int = 4
    bias_calibration_archs: int = 40  # M in Eq. 3
    # Space shrinking (Sec. III-C).
    enable_shrinking: bool = True
    quality_samples: int = 100  # N in Eq. 4
    shrink_stage_layers: Optional[tuple] = None  # None = paper schedule
    # Evolutionary search (Sec. III-D).
    evolution: EvolutionConfig = field(default_factory=EvolutionConfig)
    seed: int = 0
    # Worker processes for LUT profiling, quality estimates, and EA
    # population scoring; 0/1 = serial. A pure wall-clock knob: results
    # are bit-identical for any value (see docs/parallel.md).
    workers: int = 0

    def __post_init__(self) -> None:
        if self.target_ms <= 0:
            raise ValueError("target_ms must be positive")
        if self.beta >= 0:
            raise ValueError("beta must be negative")
        if self.lut_samples_per_cell < 1 or self.bias_calibration_archs < 1:
            raise ValueError("LUT/bias sampling counts must be >= 1")
        if self.workers < 0:
            raise ValueError("workers must be >= 0")


@dataclass
class HSCoNASResult:
    """Everything produced by one pipeline run."""

    arch: Architecture
    top1_error: float
    top5_error: float
    predicted_latency_ms: float
    measured_latency_ms: float
    bias_ms: float
    search: SearchResult
    shrink: Optional[ShrinkResult]
    predictor: LatencyPredictor
    final_space: SearchSpace
    ledger: Optional[MeasurementLedger] = None

    def summary(self) -> str:
        lines = [
            f"discovered architecture: {self.arch}",
            f"top-1/top-5 error: {self.top1_error:.1f}% / {self.top5_error:.1f}%",
            (
                f"latency: predicted {self.predicted_latency_ms:.1f} ms, "
                f"measured {self.measured_latency_ms:.1f} ms "
                f"(bias B = {self.bias_ms:+.2f} ms)"
            ),
            f"EA evaluations: {self.search.num_evaluations}",
        ]
        if self.shrink is not None:
            removed = sum(self.shrink.orders_of_magnitude_removed())
            lines.append(
                f"space shrinking: -{removed:.1f} orders of magnitude "
                f"({self.shrink.quality_evaluations} quality evaluations)"
            )
        if self.ledger is not None:
            lines.append(f"search cost: {self.ledger.summary()}")
        return "\n".join(lines)


class HSCoNAS:
    """Hardware-software co-design NAS for one device/target pair.

    Parameters
    ----------
    space:
        The initial search space ``A``.
    device:
        Target device model (simulated hardware).
    surrogate:
        Accuracy model; defaults to the calibrated ImageNet surrogate
        for the given space.
    config:
        Pipeline hyper-parameters.
    """

    def __init__(
        self,
        space: SearchSpace,
        device: DeviceModel,
        config: Optional[HSCoNASConfig] = None,
        surrogate: Optional[AccuracySurrogate] = None,
    ):
        self.space = space
        self.device = device
        self.config = config if config is not None else HSCoNASConfig()
        self.surrogate = (
            surrogate
            if surrogate is not None
            else AccuracySurrogate.for_space(space)
        )
        self.ledger = MeasurementLedger()
        self.profiler = OnDeviceProfiler(
            device, seed=self.config.seed, ledger=self.ledger
        )

    # -- stage 1: hardware performance modeling ---------------------------------

    def build_predictor(self) -> LatencyPredictor:
        """Build the LUT and calibrate ``B`` (Eq. 2-3)."""
        cfg = self.config
        lut = LatencyLUT.build(
            self.space,
            self.device,
            samples_per_cell=cfg.lut_samples_per_cell,
            seed=cfg.seed,
            ledger=self.ledger,
            workers=cfg.workers,
        )
        predictor = LatencyPredictor(lut, self.space, ledger=self.ledger)
        predictor.calibrate_bias(
            self.space,
            self.profiler,
            num_archs=cfg.bias_calibration_archs,
            seed=cfg.seed + 1,
        )
        return predictor

    # -- full pipeline --------------------------------------------------------------

    def run(self) -> HSCoNASResult:
        """Execute the whole pipeline and return the discovered network."""
        cfg = self.config
        predictor = self.build_predictor()

        objective = Objective(
            accuracy_fn=self.surrogate.proxy_accuracy,
            latency_fn=predictor.predict,
            target_ms=cfg.target_ms,
            beta=cfg.beta,
            latency_many_fn=predictor.predict_many,
        )
        # One cache spans shrinking and the EA: the proxy accuracy and
        # the predictor are both frozen for the whole run, so a score
        # computed during shrinking is still valid when the EA re-visits
        # the same architecture.
        eval_cache = EvaluationCache()
        # One set of worker processes likewise serves both phases; with
        # workers <= 1 the evaluator degrades to calling evaluate_many
        # inline, so the serial pipeline is untouched. Worker-side
        # evaluations query the predictor in the workers' address space,
        # where its ledger increments are lost — the hook replays them
        # (one query per architecture) so search-cost accounting matches
        # the serial run.
        evaluator = ParallelEvaluator(
            objective.evaluate_many,
            workers=cfg.workers,
            on_worker_items=self.ledger.record_prediction,
        )

        # From here until the final verification measurement the search
        # is measurement-free — the property Eq. 2-3 buys. The frozen
        # ledger turns an accidental on-device call into a hard error.
        self.ledger.freeze_measurements()

        try:
            shrink_result: Optional[ShrinkResult] = None
            search_space = self.space
            if cfg.enable_shrinking:
                quality = SubspaceQuality(
                    objective,
                    num_samples=cfg.quality_samples,
                    seed=cfg.seed + 2,
                    cache=eval_cache,
                    evaluator=evaluator,
                )
                shrinker = ProgressiveSpaceShrinking(
                    quality, stage_layers=cfg.shrink_stage_layers
                )
                shrink_result = shrinker.run(search_space)
                assert shrink_result.final_space is not None
                search_space = shrink_result.final_space

            # The EA seed is always derived from the pipeline seed so that
            # one knob controls the whole run's determinism; the rest of the
            # EvolutionConfig (budgets, probabilities) is honoured as given.
            evolution_cfg = EvolutionConfig(
                generations=cfg.evolution.generations,
                population_size=cfg.evolution.population_size,
                num_parents=cfg.evolution.num_parents,
                crossover_prob=cfg.evolution.crossover_prob,
                mutation_prob=cfg.evolution.mutation_prob,
                per_layer_mutation_prob=cfg.evolution.per_layer_mutation_prob,
                seed=cfg.seed + 3,
            )
            search = EvolutionarySearch(
                search_space,
                objective,
                evolution_cfg,
                cache=eval_cache,
                evaluator=evaluator,
            )
            search_result = search.run()
        finally:
            evaluator.close()

        self.ledger.thaw_measurements()
        best = search_result.best.arch
        return HSCoNASResult(
            arch=best,
            top1_error=self.surrogate.top1_error(best),
            top5_error=self.surrogate.top5_error(best),
            predicted_latency_ms=predictor.predict(best),
            measured_latency_ms=self.profiler.measure_ms(self.space, best),
            bias_ms=predictor.bias_ms,
            search=search_result,
            shrink=shrink_result,
            predictor=predictor,
            final_space=search_space,
            ledger=self.ledger,
        )
