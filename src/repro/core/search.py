"""The end-to-end HSCoNAS pipeline (paper Fig. 1).

Given a target device and latency constraint ``T``, the pipeline

1. builds the per-operator latency LUT by micro-benchmarking on the
   device and calibrates the bias ``B`` from ``M`` end-to-end
   measurements (Sec. III-A);
2. forms the Eq. 1 objective from the weight-sharing proxy accuracy and
   the latency *predictor* (no on-device measurement inside the loop);
3. progressively shrinks the search space (Sec. III-C);
4. runs the evolutionary search inside the shrunk space (Sec. III-D);
5. reports the discovered architecture with stand-alone accuracy and a
   fresh on-device latency measurement.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional


from repro.accuracy.surrogate import AccuracySurrogate
from repro.core.cache import EvaluationCache
from repro.core.evolution import EvolutionConfig, EvolutionarySearch, SearchResult
from repro.core.objective import EvaluatedArch, Objective
from repro.core.quality import SubspaceQuality
from repro.core.shrinking import ProgressiveSpaceShrinking, ShrinkResult
from repro.hardware.degradation import DegradationReport
from repro.hardware.device import DeviceModel
from repro.hardware.faults import RetryPolicy
from repro.hardware.ledger import MeasurementLedger
from repro.hardware.lut import LatencyLUT
from repro.hardware.predictor import LatencyPredictor
from repro.hardware.profiler import OnDeviceProfiler
from repro.parallel.backend import BACKEND_NAMES, create_backend
from repro.runstate import PhaseCheckpoint, RunDir
from repro.space.architecture import Architecture
from repro.space.search_space import SearchSpace


@dataclass(frozen=True)
class HSCoNASConfig:
    """All pipeline hyper-parameters; defaults follow the paper."""

    target_ms: float = 34.0
    beta: float = -0.5
    # Hardware modeling (Sec. III-A).
    lut_samples_per_cell: int = 4
    bias_calibration_archs: int = 40  # M in Eq. 3
    # Space shrinking (Sec. III-C).
    enable_shrinking: bool = True
    quality_samples: int = 100  # N in Eq. 4
    shrink_stage_layers: Optional[tuple] = None  # None = paper schedule
    # Evolutionary search (Sec. III-D).
    evolution: EvolutionConfig = field(default_factory=EvolutionConfig)
    seed: int = 0
    # Worker processes for LUT profiling, quality estimates, and EA
    # population scoring; 0/1 = serial. A pure wall-clock knob: results
    # are bit-identical for any value (see docs/parallel.md).
    workers: int = 0
    # Evaluation backend (docs/performance.md): "auto" picks
    # multiprocess when workers >= 2, serial otherwise — the historical
    # behaviour of the workers knob. "serial"/"multiprocess" force a
    # backend; forcing multiprocess with workers <= 1 still evaluates
    # inline. Results are bit-identical across backends. "tabular"
    # replays a prebuilt artifact (``table``) instead of evaluating:
    # shrinking and the EA score against the table's recorded columns,
    # bit-identical to a live run when the artifact was built with the
    # matching "search" recipe at the same seed and device.
    backend: str = "auto"
    # Tabular replay (docs/performance.md, "Tabular replay"): path of a
    # saved artifact directory (repro.tabular.save_artifact) and the
    # latency column to replay; None picks the artifact's primary
    # device. Only meaningful with backend="tabular".
    table: Optional[str] = None
    table_device: Optional[str] = None
    # Fault tolerance (docs/robustness.md). ``retry`` fights individual
    # probe failures during LUT building and measurement; its backoff
    # jitter never touches the measurement-noise stream, so a healthy
    # device's results are bit-identical with or without it.
    # ``degraded_ok`` lets the predictor serve missing LUT cells from
    # the nearest present cell (recorded on the degradation report)
    # instead of raising mid-search.
    retry: Optional[RetryPolicy] = field(default_factory=RetryPolicy)
    degraded_ok: bool = True

    def __post_init__(self) -> None:
        if self.target_ms <= 0:
            raise ValueError("target_ms must be positive")
        if self.beta >= 0:
            raise ValueError("beta must be negative")
        if self.lut_samples_per_cell < 1 or self.bias_calibration_archs < 1:
            raise ValueError("LUT/bias sampling counts must be >= 1")
        if self.workers < 0:
            raise ValueError("workers must be >= 0")
        if self.backend not in BACKEND_NAMES:
            raise ValueError(
                f"backend must be one of {BACKEND_NAMES}, got {self.backend!r}"
            )
        if self.backend == "tabular" and self.table is None:
            raise ValueError(
                "backend 'tabular' replays a prebuilt artifact; set "
                "HSCoNASConfig.table to a saved artifact directory "
                "(CLI: --backend tabular --table PATH)"
            )
        if self.table is not None and self.backend != "tabular":
            raise ValueError(
                "table is only meaningful with backend='tabular' "
                f"(got backend={self.backend!r})"
            )


@dataclass
class HSCoNASResult:
    """Everything produced by one pipeline run."""

    arch: Architecture
    top1_error: float
    top5_error: float
    predicted_latency_ms: float
    measured_latency_ms: float
    bias_ms: float
    search: SearchResult
    shrink: Optional[ShrinkResult]
    # None on a tabular replay (the artifact's columns replace it).
    predictor: Optional[LatencyPredictor]
    final_space: SearchSpace
    ledger: Optional[MeasurementLedger] = None
    degradation: Optional[DegradationReport] = None

    def summary(self) -> str:
        lines = [
            f"discovered architecture: {self.arch}",
            f"top-1/top-5 error: {self.top1_error:.1f}% / {self.top5_error:.1f}%",
            (
                f"latency: predicted {self.predicted_latency_ms:.1f} ms, "
                f"measured {self.measured_latency_ms:.1f} ms "
                f"(bias B = {self.bias_ms:+.2f} ms)"
            ),
            f"EA evaluations: {self.search.num_evaluations}",
        ]
        if self.shrink is not None:
            removed = sum(self.shrink.orders_of_magnitude_removed())
            lines.append(
                f"space shrinking: -{removed:.1f} orders of magnitude "
                f"({self.shrink.quality_evaluations} quality evaluations)"
            )
        if self.ledger is not None:
            lines.append(f"search cost: {self.ledger.summary()}")
        if self.degradation is not None and self.degradation.degraded():
            lines.append(f"measurement health: {self.degradation.summary()}")
        return "\n".join(lines)


class HSCoNAS:
    """Hardware-software co-design NAS for one device/target pair.

    Parameters
    ----------
    space:
        The initial search space ``A``.
    device:
        Target device model (simulated hardware).
    surrogate:
        Accuracy model; defaults to the calibrated ImageNet surrogate
        for the given space.
    config:
        Pipeline hyper-parameters.
    """

    def __init__(
        self,
        space: SearchSpace,
        device: DeviceModel,
        config: Optional[HSCoNASConfig] = None,
        surrogate: Optional[AccuracySurrogate] = None,
    ):
        self.space = space
        self.device = device
        self.config = config if config is not None else HSCoNASConfig()
        self.surrogate = (
            surrogate
            if surrogate is not None
            else AccuracySurrogate.for_space(space)
        )
        self.ledger = MeasurementLedger()
        # One degradation report spans the whole run: LUT-build faults,
        # measurement retries, and in-search fallbacks all land here.
        self.degradation = DegradationReport()
        self.profiler = OnDeviceProfiler(
            device,
            seed=self.config.seed,
            ledger=self.ledger,
            retry=self.config.retry,
            degradation=self.degradation,
        )

    # -- stage 1: hardware performance modeling ---------------------------------

    def build_predictor(self) -> LatencyPredictor:
        """Build the LUT and calibrate ``B`` (Eq. 2-3)."""
        cfg = self.config
        lut = LatencyLUT.build(
            self.space,
            self.device,
            samples_per_cell=cfg.lut_samples_per_cell,
            seed=cfg.seed,
            ledger=self.ledger,
            workers=cfg.workers,
            backend=cfg.backend,
            retry=cfg.retry,
        )
        predictor = LatencyPredictor(
            lut,
            self.space,
            ledger=self.ledger,
            degraded_ok=cfg.degraded_ok,
            degradation=self.degradation,
        )
        predictor.calibrate_bias(
            self.space,
            self.profiler,
            num_archs=cfg.bias_calibration_archs,
            seed=cfg.seed + 1,
        )
        return predictor

    # -- checkpoint plumbing -----------------------------------------------------

    PHASES = ("predictor", "shrink", "search")

    def _restore_predictor(self, saved: dict) -> LatencyPredictor:
        lut = LatencyLUT.from_json(saved["lut"])
        self.ledger.restore(saved["ledger"])
        self.degradation.restore(saved["degradation"])
        self.profiler.set_rng_state(saved["profiler_rng"])
        predictor = LatencyPredictor(
            lut,
            self.space,
            bias_ms=float(saved["bias_ms"]),
            ledger=self.ledger,
            degraded_ok=self.config.degraded_ok,
            degradation=self.degradation,
        )
        predictor.calibrated = True
        return predictor

    def _predictor_payload(self, predictor: LatencyPredictor) -> dict:
        return {
            "format": 1,
            "lut": predictor.lut.to_json(),
            "bias_ms": predictor.bias_ms,
            "profiler_rng": self.profiler.rng_state(),
            "ledger": self.ledger.to_dict(),
            "degradation": self.degradation.to_dict(),
        }

    def checkpointed_predictor(
        self, run_state: Optional[RunDir]
    ) -> LatencyPredictor:
        """Stage 1, resumable: restore the LUT + bias from a completed
        ``predictor`` phase checkpoint, or build and checkpoint them.

        The profiler's measurement-noise rng state is saved *after*
        bias calibration, so the final verification measurement of a
        resumed run draws the same noise as an uninterrupted one.
        """
        if run_state is None:
            return self.build_predictor()
        checkpoint = PhaseCheckpoint(run_state, "predictor")
        saved = checkpoint.load()
        if saved is not None and checkpoint.is_complete():
            return self._restore_predictor(saved)
        predictor = self.build_predictor()
        checkpoint.save(self._predictor_payload(predictor), complete=True)
        return predictor

    # -- tabular replay -----------------------------------------------------------

    def _replay_objective(self) -> Objective:
        """The Eq. 1 objective scored from a prebuilt tabular artifact.

        Loading verifies the artifact's schema, checksums, and space
        fingerprint (:mod:`repro.tabular.artifact`), so a wrong-space
        or corrupt table fails loudly here rather than replaying
        garbage. The table must be exhaustive: shrinking and the EA
        sample freely from the space, and replay never silently falls
        back to live evaluation.
        """
        cfg = self.config
        # Local import: repro.tabular builds tables *through* this
        # pipeline's recipes, so the dependency must stay one-way at
        # module-import time.
        from repro.space.encoding import space_cardinality
        from repro.tabular import TabularEvaluator, load_artifact

        table = load_artifact(cfg.table, space=self.space)
        if not table.exhaustive:
            raise ValueError(
                "pipeline replay needs an exhaustive table; "
                f"{cfg.table} holds {len(table)} of "
                f"{space_cardinality(self.space)} architectures — "
                "rebuild with num_archs=None"
            )
        evaluator = TabularEvaluator(table, device=cfg.table_device)
        return Objective(
            accuracy_fn=evaluator.accuracy,
            latency_fn=evaluator.latency,
            target_ms=cfg.target_ms,
            beta=cfg.beta,
            accuracy_many_fn=evaluator.accuracy_many,
            latency_many_fn=evaluator.latency_many,
        )

    # -- full pipeline --------------------------------------------------------------

    def run(
        self, run_state: Optional[RunDir] = None, cancel=None
    ) -> HSCoNASResult:
        """Execute the whole pipeline and return the discovered network.

        With a ``run_state``, every phase boundary and every unit of
        intra-phase progress (per-layer shrink decisions, per-generation
        EA populations) is checkpointed crash-safely, and a killed run
        re-invoked with the same ``run_state`` resumes bit-exact — same
        architecture, same numbers — for any ``workers`` setting.

        ``cancel`` is an optional cooperative
        :class:`~repro.resilience.CancelToken` forwarded into the EA
        (checked per generation); an expired deadline raises
        :class:`~repro.resilience.DeadlineExceeded` with partial
        progress, and with a ``run_state`` the completed generations
        remain resumable.
        """
        cfg = self.config
        replay = cfg.backend == "tabular"
        if replay:
            # Stage 1 is already done: the artifact's columns *are* the
            # predictor (and surrogate) outputs, recorded at build time.
            predictor = None
            objective = self._replay_objective()
            evaluator = create_backend(
                "tabular", eval_many_fn=objective.evaluate_many
            )
        else:
            predictor = self.checkpointed_predictor(run_state)
            objective = Objective(
                accuracy_fn=self.surrogate.proxy_accuracy,
                latency_fn=predictor.predict,
                target_ms=cfg.target_ms,
                beta=cfg.beta,
                latency_many_fn=predictor.predict_many,
            )
            # One evaluation backend serves both phases; "auto"
            # resolves to multiprocess when workers >= 2, serial
            # otherwise. Worker-side evaluations query the predictor in
            # the workers' address space, where its ledger increments
            # are lost — the hook replays them (one query per
            # architecture) so search-cost accounting matches the
            # serial run. The serial backend performs those increments
            # inline and ignores the hook.
            evaluator = create_backend(
                cfg.backend,
                objective.evaluate_many,
                workers=cfg.workers,
                on_worker_items=self.ledger.record_prediction,
            )
        # One cache spans shrinking and the EA: the proxy accuracy and
        # the predictor (or the replay table) are both frozen for the
        # whole run, so a score computed during shrinking is still
        # valid when the EA re-visits the same architecture.
        eval_cache = EvaluationCache()

        # From here until the final verification measurement the search
        # is measurement-free — the property Eq. 2-3 buys. The frozen
        # ledger turns an accidental on-device call into a hard error.
        self.ledger.freeze_measurements()

        # Shrink/search checkpoints piggyback the pipeline-owned state
        # (shared cache, ledger, degradation report) on every save, so
        # a resume restores the exact counters and memo the searcher
        # saw — without the searchers knowing any of it exists.
        def _owner_save() -> dict:
            return {
                "cache": eval_cache.snapshot(lambda e: e.to_dict()),
                "ledger": self.ledger.to_dict(),
                "degradation": self.degradation.to_dict(),
            }

        def _owner_restore(state: dict) -> None:
            eval_cache.restore(state["cache"], EvaluatedArch.from_dict)
            self.ledger.restore(state["ledger"])
            self.degradation.restore(state["degradation"])

        shrink_ckpt = search_ckpt = None
        if run_state is not None:
            shrink_ckpt = PhaseCheckpoint(
                run_state,
                "shrink",
                extra_save=_owner_save,
                extra_restore=_owner_restore,
            )
            search_ckpt = PhaseCheckpoint(
                run_state,
                "search",
                extra_save=_owner_save,
                extra_restore=_owner_restore,
            )

        try:
            shrink_result: Optional[ShrinkResult] = None
            search_space = self.space
            if cfg.enable_shrinking:
                quality = SubspaceQuality(
                    objective,
                    num_samples=cfg.quality_samples,
                    seed=cfg.seed + 2,
                    cache=eval_cache,
                    evaluator=evaluator,
                )
                shrinker = ProgressiveSpaceShrinking(
                    quality,
                    stage_layers=cfg.shrink_stage_layers,
                    checkpoint=shrink_ckpt,
                )
                shrink_result = shrinker.run(search_space)
                assert shrink_result.final_space is not None
                search_space = shrink_result.final_space

            # The EA seed is always derived from the pipeline seed so that
            # one knob controls the whole run's determinism; the rest of the
            # EvolutionConfig (budgets, probabilities) is honoured as given.
            evolution_cfg = EvolutionConfig(
                generations=cfg.evolution.generations,
                population_size=cfg.evolution.population_size,
                num_parents=cfg.evolution.num_parents,
                crossover_prob=cfg.evolution.crossover_prob,
                mutation_prob=cfg.evolution.mutation_prob,
                per_layer_mutation_prob=cfg.evolution.per_layer_mutation_prob,
                seed=cfg.seed + 3,
            )
            search = EvolutionarySearch(
                search_space,
                objective,
                evolution_cfg,
                cache=eval_cache,
                evaluator=evaluator,
                checkpoint=search_ckpt,
                cancel=cancel,
            )
            search_result = search.run()
        finally:
            evaluator.close()

        self.ledger.thaw_measurements()
        best = search_result.best.arch
        if replay:
            # Replay never touches a device: the recorded column is
            # both the prediction and the "measurement", and the bias
            # is whatever the build recipe calibrated into the column.
            predicted = objective.latency_fn(best)
            return HSCoNASResult(
                arch=best,
                top1_error=self.surrogate.top1_error(best),
                top5_error=self.surrogate.top5_error(best),
                predicted_latency_ms=predicted,
                measured_latency_ms=predicted,
                bias_ms=0.0,
                search=search_result,
                shrink=shrink_result,
                predictor=None,
                final_space=search_space,
                ledger=self.ledger,
                degradation=self.degradation,
            )
        return HSCoNASResult(
            arch=best,
            top1_error=self.surrogate.top1_error(best),
            top5_error=self.surrogate.top5_error(best),
            predicted_latency_ms=predictor.predict(best),
            measured_latency_ms=self.profiler.measure_ms(self.space, best),
            bias_ms=predictor.bias_ms,
            search=search_result,
            shrink=shrink_result,
            predictor=predictor,
            final_space=search_space,
            ledger=self.ledger,
            degradation=self.degradation,
        )
