"""NSGA-II multi-objective search — a Pareto-front extension.

The paper folds accuracy and latency into one scalar (Eq. 1), which
finds one architecture per constraint ``T``. A deployment team usually
wants the whole accuracy/latency *front* in a single search; this module
provides it with the standard NSGA-II machinery (fast non-dominated
sorting + crowding distance) over the same genetic operators as the
Sec. III-D EA. The front it returns can then be cut at any latency
budget — equivalent to sweeping ``T`` in Eq. 1, at a fraction of the
evaluations (see ``benchmarks/bench_nsga2_front.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.core.cache import EvaluationCache
from repro.runstate.rng import generator_state, set_generator_state
from repro.space.architecture import Architecture
from repro.space.search_space import SearchSpace

CHECKPOINT_FORMAT = 1


@dataclass(frozen=True)
class BiObjective:
    """An architecture scored on (latency to minimize, accuracy to maximize)."""

    arch: Architecture
    latency_ms: float
    accuracy: float

    def dominates(self, other: "BiObjective") -> bool:
        """Pareto dominance: no worse on both axes, better on one."""
        no_worse = (
            self.latency_ms <= other.latency_ms
            and self.accuracy >= other.accuracy
        )
        better = (
            self.latency_ms < other.latency_ms
            or self.accuracy > other.accuracy
        )
        return no_worse and better

    def to_dict(self) -> dict:
        return {
            "arch": self.arch.to_dict(),
            "latency_ms": self.latency_ms,
            "accuracy": self.accuracy,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "BiObjective":
        return cls(
            arch=Architecture.from_dict(payload["arch"]),
            latency_ms=float(payload["latency_ms"]),
            accuracy=float(payload["accuracy"]),
        )


@dataclass(frozen=True)
class Nsga2Config:
    """NSGA-II hyper-parameters (genetic operators match the EA's)."""

    generations: int = 20
    population_size: int = 50
    crossover_prob: float = 0.25
    mutation_prob: float = 0.25
    per_layer_mutation_prob: float = 0.1
    seed_corners: bool = True
    seed: int = 0

    def __post_init__(self) -> None:
        if self.generations < 1 or self.population_size < 4:
            raise ValueError("need >= 1 generation and population >= 4")
        for p in (self.crossover_prob, self.mutation_prob,
                  self.per_layer_mutation_prob):
            if not 0.0 <= p <= 1.0:
                raise ValueError("probabilities must be in [0, 1]")


@dataclass
class Nsga2Result:
    """Final population and its first non-dominated front."""

    front: List[BiObjective]
    population: List[BiObjective] = field(default_factory=list)
    num_evaluations: int = 0
    # Dispatch counters of the evaluation backend that scored the run
    # (EvaluationBackend.stats()); surfaced in artifacts and /metrics.
    backend_stats: Optional[Dict] = None

    def knee_under(self, latency_budget_ms: float) -> BiObjective:
        """Most accurate front member within a latency budget."""
        feasible = [p for p in self.front if p.latency_ms <= latency_budget_ms]
        if not feasible:
            raise ValueError(
                f"no front member within {latency_budget_ms} ms "
                f"(front spans {min(p.latency_ms for p in self.front):.1f}-"
                f"{max(p.latency_ms for p in self.front):.1f} ms)"
            )
        return max(feasible, key=lambda p: p.accuracy)


def non_dominated_sort(points: List[BiObjective]) -> List[List[int]]:
    """Fast non-dominated sorting; returns index fronts, best first."""
    n = len(points)
    dominated_by: List[List[int]] = [[] for _ in range(n)]
    domination_count = [0] * n
    fronts: List[List[int]] = [[]]
    for i in range(n):
        for j in range(n):
            if i == j:
                continue
            if points[i].dominates(points[j]):
                dominated_by[i].append(j)
            elif points[j].dominates(points[i]):
                domination_count[i] += 1
        if domination_count[i] == 0:
            fronts[0].append(i)
    current = 0
    while fronts[current]:
        next_front: List[int] = []
        for i in fronts[current]:
            for j in dominated_by[i]:
                domination_count[j] -= 1
                if domination_count[j] == 0:
                    next_front.append(j)
        current += 1
        fronts.append(next_front)
    return [f for f in fronts if f]


def crowding_distance(points: List[BiObjective], front: List[int]) -> Dict[int, float]:
    """Crowding distance of each front member (bigger = more isolated)."""
    if not front:
        return {}
    distance = {i: 0.0 for i in front}
    for key in ("latency_ms", "accuracy"):
        ordered = sorted(front, key=lambda i: getattr(points[i], key))
        lo = getattr(points[ordered[0]], key)
        hi = getattr(points[ordered[-1]], key)
        distance[ordered[0]] = float("inf")
        distance[ordered[-1]] = float("inf")
        span = hi - lo
        if span <= 0:
            continue
        for prev, cur, nxt in zip(ordered, ordered[1:], ordered[2:]):
            gap = getattr(points[nxt], key) - getattr(points[prev], key)
            distance[cur] += gap / span
    return distance


class Nsga2Search:
    """NSGA-II over a search space with (latency, accuracy) objectives."""

    def __init__(
        self,
        space: SearchSpace,
        accuracy_fn: Callable[[Architecture], float],
        latency_fn: Callable[[Architecture], float],
        config: Nsga2Config = Nsga2Config(),
        cache: Optional[EvaluationCache] = None,
        workers: int = 0,
        backend: str = "auto",
        checkpoint=None,
        latency_many_fn: Optional[
            Callable[[List[Architecture]], "List[float]"]
        ] = None,
        evaluator=None,
        cancel=None,
    ):
        self.space = space
        self.accuracy_fn = accuracy_fn
        self.latency_fn = latency_fn
        # Optional batched latency counterpart ``archs -> [ms]`` (e.g.
        # LatencyPredictor.predict_many). Must return exactly what
        # ``latency_fn`` would per architecture — the batched path is a
        # throughput knob, never a semantics change.
        self.latency_many_fn = latency_many_fn
        self.config = config
        # The shared-cache contract: a cache passed in here must only
        # ever hold BiObjective values (i.e. be private to NSGA-II runs
        # over the same accuracy/latency functions).
        self.cache = cache if cache is not None else EvaluationCache()
        # Worker processes for population evaluation; 0/1 = serial.
        # Results are identical either way (see docs/parallel.md).
        # ``backend`` picks the evaluation backend explicitly; "auto"
        # resolves from ``workers`` (docs/performance.md).
        self.workers = workers
        self.backend = backend
        # Optional externally-owned EvaluationBackend; when set, the
        # search uses it for population batches (and does not close it)
        # instead of constructing one from ``backend``/``workers`` —
        # this is how the serving layer funnels every query through one
        # observable backend.
        self.evaluator = evaluator
        # Optional per-generation checkpoint slot (see
        # EvolutionarySearch); a resumed run is bit-identical.
        self.checkpoint = checkpoint
        # Optional cooperative CancelToken (repro.resilience.deadline),
        # checked once per generation and forwarded to the evaluation
        # backend; expiry raises DeadlineExceeded with the generation
        # counters as partial progress. Checks draw no randomness, so a
        # run that finishes in time is bit-identical with or without a
        # token.
        self.cancel = cancel

    # -- checkpointing ------------------------------------------------------------

    def _save_checkpoint(
        self,
        rng: np.random.Generator,
        population: List[BiObjective],
        misses_before: int,
        completed_generations: int,
        complete: bool = False,
    ) -> None:
        if self.checkpoint is None:
            return
        self.checkpoint.save(
            {
                "format": CHECKPOINT_FORMAT,
                "completed_generations": completed_generations,
                "rng": generator_state(rng),
                "population": [p.to_dict() for p in population],
                "evaluations_so_far": self.cache.misses - misses_before,
            },
            complete=complete,
        )

    # -- cancellation -------------------------------------------------------------

    def _check_cancel(self, generations_done: int, misses_before: int) -> None:
        if self.cancel is not None:
            self.cancel.check(
                stage="nsga2",
                generations_done=generations_done,
                total_generations=self.config.generations,
                evaluations=self.cache.misses - misses_before,
            )

    # -- evaluation -------------------------------------------------------------

    def _evaluate(self, arch: Architecture) -> BiObjective:
        return self.cache.get_or_eval(
            arch,
            lambda a: BiObjective(
                arch=a,
                latency_ms=self.latency_fn(a),
                accuracy=self.accuracy_fn(a),
            ),
        )

    def eval_many(self, archs: List[Architecture]) -> List[BiObjective]:
        """Uncached batch scoring (the worker-pool chunk function).

        With ``latency_many_fn`` set, one batched call scores every
        latency (bit-exact with the scalar path by contract).
        """
        if self.latency_many_fn is not None:
            latencies = self.latency_many_fn(list(archs))
            return [
                BiObjective(
                    arch=a,
                    latency_ms=float(lat),
                    accuracy=self.accuracy_fn(a),
                )
                for a, lat in zip(archs, latencies)
            ]
        return [
            BiObjective(
                arch=a,
                latency_ms=self.latency_fn(a),
                accuracy=self.accuracy_fn(a),
            )
            for a in archs
        ]

    # -- genetic operators (same shapes as the Sec. III-D EA) -------------------

    def _crossover(self, a: Architecture, b: Architecture,
                   rng: np.random.Generator) -> Architecture:
        take_a = rng.random(a.num_layers) < 0.5
        ops = tuple(a.ops[i] if take_a[i] else b.ops[i]
                    for i in range(a.num_layers))
        factors = tuple(a.factors[i] if take_a[i] else b.factors[i]
                        for i in range(a.num_layers))
        return Architecture(ops, factors)

    def _mutate(self, arch: Architecture, rng: np.random.Generator) -> Architecture:
        ops = list(arch.ops)
        factors = list(arch.factors)
        p = self.config.per_layer_mutation_prob
        for layer in range(arch.num_layers):
            if rng.random() < p:
                ops[layer] = int(rng.choice(self.space.candidate_ops[layer]))
            if rng.random() < p:
                factors[layer] = float(
                    rng.choice(self.space.candidate_factors[layer])
                )
        return Architecture(tuple(ops), tuple(factors))

    # -- selection ----------------------------------------------------------------

    @staticmethod
    def _rank_population(points: List[BiObjective]) -> List[int]:
        """Indices ordered by (front rank, descending crowding)."""
        fronts = non_dominated_sort(points)
        ordered: List[int] = []
        for front in fronts:
            crowd = crowding_distance(points, front)
            ordered.extend(sorted(front, key=lambda i: -crowd[i]))
        return ordered

    # -- main loop ------------------------------------------------------------------

    def _corner_architectures(self) -> List[Architecture]:
        """Full-width single-operator networks — high-latency anchors.

        Uniform sampling almost never draws the slow-accurate corner of
        the space, so the front would otherwise take many generations to
        stretch there; seeding with the corners is standard practice.
        """
        corners = []
        for op in range(5):
            try:
                arch = Architecture(
                    tuple(
                        op if op in self.space.candidate_ops[layer]
                        else self.space.candidate_ops[layer][0]
                        for layer in range(self.space.num_layers)
                    ),
                    tuple(
                        max(self.space.candidate_factors[layer])
                        for layer in range(self.space.num_layers)
                    ),
                )
            except ValueError:  # pragma: no cover - defensive
                continue
            if self.space.contains(arch):
                corners.append(arch)
        return corners

    def run(self) -> Nsga2Result:
        """Run NSGA-II; deterministic for a fixed config seed.

        As in :class:`~repro.core.evolution.EvolutionarySearch`, each
        generation breeds first (all rng use, parent-side) and scores
        the offspring in one cached batch — with ``workers >= 2`` the
        batch fans out across processes, with identical results.
        """
        import contextlib

        from repro.parallel.backend import create_backend

        cfg = self.config
        rng = np.random.default_rng(cfg.seed)
        misses_before = self.cache.misses

        population: Optional[List[BiObjective]] = None
        done = 0
        if self.checkpoint is not None:
            saved = self.checkpoint.load()
            if saved is not None:
                if int(saved.get("format", 0)) != CHECKPOINT_FORMAT:
                    raise ValueError(
                        "unsupported NSGA-II checkpoint format "
                        f"{saved.get('format')!r}"
                    )
                population = [
                    BiObjective.from_dict(p) for p in saved["population"]
                ]
                set_generator_state(rng, saved["rng"])
                misses_before = self.cache.misses - int(
                    saved["evaluations_so_far"]
                )
                done = int(saved["completed_generations"])

        # An externally-owned evaluator outlives this run (the caller
        # closes it); an internally-built one is torn down on exit.
        if self.evaluator is not None:
            backend_ctx = contextlib.nullcontext(self.evaluator)
        else:
            backend_ctx = create_backend(
                self.backend, self.eval_many, workers=self.workers
            )
        with backend_ctx as pool:
            # Forward the deadline into the backend so it also stops
            # between chunk dispatches, not just between generations.
            # An externally-owned evaluator gets the token cleared on
            # exit — it outlives this run.
            forwarded_cancel = self.cancel is not None and hasattr(
                pool, "set_cancel"
            )
            if forwarded_cancel:
                pool.set_cancel(self.cancel)

            def eval_batch(archs: List[Architecture]) -> List[BiObjective]:
                return self.cache.get_or_eval_many(archs, pool.map)

            try:
                if population is None:
                    self._check_cancel(done, misses_before)
                    seeds: List[Architecture] = (
                        self._corner_architectures() if cfg.seed_corners else []
                    )
                    seeds = seeds[: cfg.population_size // 2]
                    population = eval_batch(
                        seeds
                        + [
                            self.space.sample(rng)
                            for _ in range(cfg.population_size - len(seeds))
                        ]
                    )
                    self._save_checkpoint(rng, population, misses_before, 0)

                for gen in range(done, cfg.generations - 1):
                    self._check_cancel(gen, misses_before)
                    ranked = self._rank_population(population)
                    parents = [
                        population[i]
                        for i in ranked[: cfg.population_size // 2]
                    ]
                    child_archs: List[Architecture] = []
                    seen = {p.arch.key() for p in parents}
                    attempts = 0
                    needed = cfg.population_size - len(parents)
                    while len(child_archs) < needed and attempts < needed * 40:
                        attempts += 1
                        child = parents[int(rng.integers(len(parents)))].arch
                        if (
                            rng.random() < cfg.crossover_prob
                            and len(parents) > 1
                        ):
                            other = parents[
                                int(rng.integers(len(parents)))
                            ].arch
                            child = self._crossover(child, other, rng)
                        if rng.random() < cfg.mutation_prob:
                            child = self._mutate(child, rng)
                        if (
                            child.key() in seen
                            or not self.space.contains(child)
                        ):
                            continue
                        seen.add(child.key())
                        child_archs.append(child)
                    while len(child_archs) < needed:
                        child_archs.append(self.space.sample(rng))
                    population = parents + eval_batch(child_archs)
                    self._save_checkpoint(
                        rng, population, misses_before, gen + 1
                    )
            finally:
                if forwarded_cancel:
                    pool.set_cancel(None)
            pool_stats = pool.stats()

        fronts = non_dominated_sort(population)
        front = sorted(
            (population[i] for i in fronts[0]), key=lambda p: p.latency_ms
        )
        self._save_checkpoint(
            rng, population, misses_before, cfg.generations - 1, complete=True
        )
        return Nsga2Result(
            front=front,
            population=population,
            num_evaluations=self.cache.misses - misses_before,
            backend_stats=pool_stats,
        )
