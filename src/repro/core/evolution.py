"""Evolutionary architecture search (paper Sec. III-D).

The EA maximizes the Eq. 1 objective over the (shrunk) search space with
the paper's hyper-parameters: 20 generations, population 50, 20 parents,
crossover probability 0.25 and mutation probability 0.25. Crossover and
mutation act on *both* the operator gene and the channel-factor gene of
each layer — "efficient explorations not only on the operator level but
also on the channel level".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.core.cache import EvaluationCache
from repro.core.objective import EvaluatedArch, Objective
from repro.runstate.rng import generator_state, set_generator_state
from repro.space.architecture import Architecture
from repro.space.search_space import SearchSpace

CHECKPOINT_FORMAT = 1


@dataclass(frozen=True)
class EvolutionConfig:
    """EA hyper-parameters; defaults match the paper."""

    generations: int = 20
    population_size: int = 50
    num_parents: int = 20
    crossover_prob: float = 0.25
    mutation_prob: float = 0.25
    per_layer_mutation_prob: float = 0.1
    seed: int = 0

    def __post_init__(self) -> None:
        if self.generations < 1 or self.population_size < 2:
            raise ValueError("need >= 1 generation and population >= 2")
        if not 1 <= self.num_parents <= self.population_size:
            raise ValueError("num_parents must be in [1, population_size]")
        for p in (self.crossover_prob, self.mutation_prob, self.per_layer_mutation_prob):
            if not 0.0 <= p <= 1.0:
                raise ValueError("probabilities must be in [0, 1]")


@dataclass
class GenerationRecord:
    """Everything evaluated in one generation."""

    index: int
    population: List[EvaluatedArch]

    @property
    def best(self) -> EvaluatedArch:
        return max(self.population, key=lambda e: e.score)

    def latencies(self) -> List[float]:
        return [e.latency_ms for e in self.population]

    def accuracies(self) -> List[float]:
        return [e.accuracy for e in self.population]


@dataclass
class SearchResult:
    """Outcome of one EA run."""

    best: EvaluatedArch
    generations: List[GenerationRecord] = field(default_factory=list)
    num_evaluations: int = 0
    # Hit/miss/size counters of the evaluation cache at the end of the
    # run — how much of the search the memo actually absorbed.
    cache_stats: Optional[dict] = None

    def all_evaluated(self) -> List[EvaluatedArch]:
        return [e for g in self.generations for e in g.population]

    def best_per_generation(self) -> List[EvaluatedArch]:
        return [g.best for g in self.generations]

    # -- (de)serialization (archiving search runs as JSON artifacts) --------

    def to_dict(self) -> dict:
        return {
            "best": self.best.to_dict(),
            "num_evaluations": self.num_evaluations,
            "cache_stats": self.cache_stats,
            "generations": [
                {
                    "index": g.index,
                    "population": [e.to_dict() for e in g.population],
                }
                for g in self.generations
            ],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "SearchResult":
        result = cls(best=EvaluatedArch.from_dict(payload["best"]))
        result.num_evaluations = int(payload["num_evaluations"])
        result.cache_stats = payload.get("cache_stats")
        result.generations = [
            GenerationRecord(
                index=int(g["index"]),
                population=[
                    EvaluatedArch.from_dict(e) for e in g["population"]
                ],
            )
            for g in payload["generations"]
        ]
        return result


class EvolutionarySearch:
    """Regularized-evolution-style search over a :class:`SearchSpace`.

    Parameters
    ----------
    space, objective, config:
        The (shrunk) search space, the Eq. 1 objective, and the EA
        hyper-parameters.
    cache:
        Optional shared :class:`~repro.core.cache.EvaluationCache`. The
        pipeline passes the same cache it used during space shrinking so
        architectures already scored there are free; by default the
        search memoizes privately (weight sharing makes re-evaluation
        cheap but the predictor result is deterministic anyway).
    evaluator:
        Optional :class:`~repro.parallel.ParallelEvaluator` that fans
        each generation's evaluations across worker processes. Breeding
        (all rng use) stays in the parent, so results are bit-identical
        with or without it.
    checkpoint:
        Optional checkpoint slot (e.g.
        :class:`~repro.runstate.PhaseCheckpoint`). When set, the search
        saves its full resumable state — rng stream, every generation
        evaluated so far, and the evaluation count — after each
        generation, and :meth:`run` continues from the saved point
        instead of starting over. A resumed run is bit-identical to an
        uninterrupted one.
    cancel:
        Optional cooperative :class:`~repro.resilience.CancelToken`,
        checked once per generation (and forwarded to the evaluator
        between dispatches). Expiry raises
        :class:`~repro.resilience.DeadlineExceeded` carrying the
        generation counters as partial progress; combined with a
        checkpoint, the generations completed before expiry remain
        resumable. Checks draw no randomness, so a run that finishes in
        time is bit-identical with or without a token.
    """

    def __init__(
        self,
        space: SearchSpace,
        objective: Objective,
        config: Optional[EvolutionConfig] = None,
        cache: Optional[EvaluationCache] = None,
        evaluator=None,
        checkpoint=None,
        cancel=None,
    ):
        self.space = space
        self.objective = objective
        self.config = config if config is not None else EvolutionConfig()
        self.cache = cache if cache is not None else EvaluationCache()
        self.evaluator = evaluator
        self.checkpoint = checkpoint
        self.cancel = cancel

    # -- genetic operators ------------------------------------------------------

    def _crossover(
        self, a: Architecture, b: Architecture, rng: np.random.Generator
    ) -> Architecture:
        """Uniform crossover: each layer's (op, factor) pair comes from
        one of the two parents."""
        take_a = rng.random(a.num_layers) < 0.5
        ops = tuple(
            a.ops[i] if take_a[i] else b.ops[i] for i in range(a.num_layers)
        )
        factors = tuple(
            a.factors[i] if take_a[i] else b.factors[i] for i in range(a.num_layers)
        )
        return Architecture(ops, factors)

    def _mutate(self, arch: Architecture, rng: np.random.Generator) -> Architecture:
        """Per-layer resampling of the op and/or factor genes."""
        ops = list(arch.ops)
        factors = list(arch.factors)
        p = self.config.per_layer_mutation_prob
        for layer in range(arch.num_layers):
            if rng.random() < p:
                ops[layer] = int(rng.choice(self.space.candidate_ops[layer]))
            if rng.random() < p:
                factors[layer] = float(
                    rng.choice(self.space.candidate_factors[layer])
                )
        return Architecture(tuple(ops), tuple(factors))

    def _make_child(
        self, parents: List[EvaluatedArch], rng: np.random.Generator
    ) -> Architecture:
        """One offspring: crossover w.p. 0.25, mutation w.p. 0.25,
        otherwise clone a parent (then dedup forces diversity)."""
        idx = rng.integers(len(parents))
        child = parents[idx].arch
        if rng.random() < self.config.crossover_prob and len(parents) > 1:
            other = parents[int(rng.integers(len(parents)))].arch
            child = self._crossover(child, other, rng)
        if rng.random() < self.config.mutation_prob:
            child = self._mutate(child, rng)
        return child

    # -- cancellation ------------------------------------------------------------

    def _check_cancel(self, generations_done: int, misses_before: int) -> None:
        if self.cancel is not None:
            self.cancel.check(
                stage="evolution",
                generations_done=generations_done,
                total_generations=self.config.generations,
                evaluations=self.cache.misses - misses_before,
            )

    # -- evaluation --------------------------------------------------------------

    def _evaluate(self, arch: Architecture) -> EvaluatedArch:
        return self.cache.get_or_eval(arch, self.objective.evaluate)

    def _eval_batch(self, archs: List[Architecture]) -> List[EvaluatedArch]:
        """Score a batch through the cache (misses fan out if parallel).

        Batched semantics are bit-identical to mapping :meth:`_evaluate`:
        misses are evaluated in first-occurrence order, duplicate and
        already-cached architectures cost the same hits, and
        ``Objective.evaluate_many`` matches ``evaluate`` per item.
        """
        eval_many = (
            self.evaluator.map
            if self.evaluator is not None
            else self.objective.evaluate_many
        )
        return self.cache.get_or_eval_many(archs, eval_many)

    # -- checkpointing -----------------------------------------------------------

    def _save_checkpoint(
        self,
        rng: np.random.Generator,
        result: SearchResult,
        misses_before: int,
        next_generation: int,
        complete: bool = False,
    ) -> None:
        if self.checkpoint is None:
            return
        self.checkpoint.save(
            {
                "format": CHECKPOINT_FORMAT,
                "next_generation": next_generation,
                "rng": generator_state(rng),
                "best": result.best.to_dict(),
                "generations": [
                    {
                        "index": g.index,
                        "population": [e.to_dict() for e in g.population],
                    }
                    for g in result.generations
                ],
                # Fresh-evaluation count relative to *this run's* cache
                # baseline; a resumed run re-derives its baseline from
                # it so the final ``num_evaluations`` matches exactly.
                "evaluations_so_far": self.cache.misses - misses_before,
            },
            complete=complete,
        )

    def _restore(self, saved: dict) -> SearchResult:
        if int(saved.get("format", 0)) != CHECKPOINT_FORMAT:
            raise ValueError(
                f"unsupported EA checkpoint format {saved.get('format')!r}"
            )
        result = SearchResult(best=EvaluatedArch.from_dict(saved["best"]))
        result.generations = [
            GenerationRecord(
                index=int(g["index"]),
                population=[
                    EvaluatedArch.from_dict(e) for e in g["population"]
                ],
            )
            for g in saved["generations"]
        ]
        return result

    # -- main loop ---------------------------------------------------------------

    def run(self) -> SearchResult:
        """Run the EA; deterministic for a fixed config seed.

        Each generation *breeds* first (every rng draw, dedup, and
        containment check — parent-side, sequential) and *evaluates*
        second (one batch). Evaluation consumes no randomness, so the
        reordering leaves the rng stream — and therefore the whole
        run — identical to evaluating each child as it is bred.

        With a ``checkpoint``, a run killed at any point replays the
        completed generations from the saved state (restoring the rng
        stream mid-sequence) and continues; every number in the final
        :class:`SearchResult` matches the uninterrupted run.
        """
        cfg = self.config
        rng = np.random.default_rng(cfg.seed)
        misses_before = self.cache.misses

        result: Optional[SearchResult] = None
        start_gen = 1
        if self.checkpoint is not None:
            saved = self.checkpoint.load()
            if saved is not None:
                result = self._restore(saved)
                set_generator_state(rng, saved["rng"])
                misses_before = self.cache.misses - int(
                    saved["evaluations_so_far"]
                )
                start_gen = int(saved["next_generation"])
                if self.checkpoint.is_complete():
                    result.num_evaluations = self.cache.misses - misses_before
                    result.cache_stats = self.cache.stats()
                    return result

        forwarded_cancel = self.cancel is not None and hasattr(
            self.evaluator, "set_cancel"
        )
        if forwarded_cancel:
            self.evaluator.set_cancel(self.cancel)
        try:
            if result is None:
                self._check_cancel(0, misses_before)
                population = self._eval_batch(
                    [
                        self.space.sample(rng)
                        for _ in range(cfg.population_size)
                    ]
                )
                result = SearchResult(
                    best=max(population, key=lambda e: e.score)
                )
                result.generations.append(
                    GenerationRecord(0, list(population))
                )
                self._save_checkpoint(
                    rng, result, misses_before, next_generation=1
                )
            else:
                population = list(result.generations[-1].population)

            for gen in range(start_gen, cfg.generations):
                self._check_cancel(gen, misses_before)
                self._run_generation(
                    gen, population, result, rng, misses_before
                )
                population = result.generations[-1].population
        finally:
            # The evaluator outlives this run (the caller owns it);
            # leaving a request-scoped token installed would expire
            # every later run through it.
            if forwarded_cancel:
                self.evaluator.set_cancel(None)

        # Fresh objective evaluations this run — identical to the old
        # ``len(private_dict)`` accounting when the cache is private, and
        # still meaningful when a shared cache arrives pre-warmed.
        result.num_evaluations = self.cache.misses - misses_before
        result.cache_stats = self.cache.stats()
        self._save_checkpoint(
            rng,
            result,
            misses_before,
            next_generation=cfg.generations,
            complete=True,
        )
        return result

    def _run_generation(
        self,
        gen: int,
        population: List[EvaluatedArch],
        result: SearchResult,
        rng: np.random.Generator,
        misses_before: int,
    ) -> None:
        """Breed and score generation ``gen`` in place on ``result``."""
        cfg = self.config
        ranked = sorted(population, key=lambda e: e.score, reverse=True)
        parents = ranked[: cfg.num_parents]
        # Elitism: parents survive; the rest of the population is
        # regenerated from them.
        child_archs: List[Architecture] = []
        seen = {p.arch.key() for p in parents}
        attempts = 0
        needed = cfg.population_size - len(parents)
        while len(child_archs) < needed and attempts < needed * 40:
            attempts += 1
            child = self._make_child(parents, rng)
            if child.key() in seen:
                continue
            if not self.space.contains(child):
                continue
            seen.add(child.key())
            child_archs.append(child)
        # If dedup starved us (tiny shrunk spaces), fill with samples.
        while len(child_archs) < needed:
            child_archs.append(self.space.sample(rng))
        children = self._eval_batch(child_archs)
        record = GenerationRecord(gen, parents + children)
        result.generations.append(record)
        if record.best.score > result.best.score:
            result.best = record.best
        self._save_checkpoint(
            rng, result, misses_before, next_generation=gen + 1
        )


class RandomSearch:
    """Uniform random search baseline (the EA ablation comparator)."""

    def __init__(self, space: SearchSpace, objective: Objective, budget: int, seed: int = 0):
        if budget < 1:
            raise ValueError("budget must be >= 1")
        self.space = space
        self.objective = objective
        self.budget = budget
        self.seed = seed

    def run(self) -> SearchResult:
        rng = np.random.default_rng(self.seed)
        evaluated = [
            self.objective.evaluate(self.space.sample(rng))
            for _ in range(self.budget)
        ]
        record = GenerationRecord(0, evaluated)
        return SearchResult(
            best=record.best,
            generations=[record],
            num_evaluations=len(evaluated),
        )
