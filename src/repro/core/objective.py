"""The multi-objective trade-off score (paper Eq. 1).

``F(arch, T) = ACC(arch) + beta * |LAT(arch)/T - 1|`` with ``beta < 0``:
an architecture is penalized both for exceeding the latency target *and*
for undershooting it (leaving accuracy on the table), which is why the
EA's population concentrates *at* the constraint (paper Fig. 6).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from repro.space.architecture import Architecture


@dataclass(frozen=True)
class EvaluatedArch:
    """An architecture together with its objective breakdown."""

    arch: Architecture
    accuracy: float
    latency_ms: float
    score: float

    def __lt__(self, other: "EvaluatedArch") -> bool:
        return self.score < other.score

    def to_dict(self) -> dict:
        return {
            "arch": self.arch.to_dict(),
            "accuracy": self.accuracy,
            "latency_ms": self.latency_ms,
            "score": self.score,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "EvaluatedArch":
        return cls(
            arch=Architecture.from_dict(payload["arch"]),
            accuracy=float(payload["accuracy"]),
            latency_ms=float(payload["latency_ms"]),
            score=float(payload["score"]),
        )


class Objective:
    """Callable implementing Eq. 1 for a fixed device/target.

    Parameters
    ----------
    accuracy_fn:
        ``arch -> accuracy`` as a fraction in [0, 1]. During search this
        is the weight-sharing proxy accuracy; see
        :meth:`repro.accuracy.AccuracySurrogate.proxy_accuracy`.
    latency_fn:
        ``arch -> latency in ms`` — normally the LUT+B predictor
        (Eq. 2), which is the whole point: no on-device measurement in
        the search loop.
    target_ms:
        The latency constraint ``T``.
    beta:
        Trade-off coefficient; must be negative.
    accuracy_many_fn, latency_many_fn:
        Optional batched counterparts ``archs -> [value]``. When given,
        :meth:`evaluate_many` routes whole populations through them
        (e.g. :meth:`repro.hardware.LatencyPredictor.predict_many`'s
        fancy-indexed LUT sum) instead of looping per architecture.
    """

    def __init__(
        self,
        accuracy_fn: Callable[[Architecture], float],
        latency_fn: Callable[[Architecture], float],
        target_ms: float,
        beta: float = -0.5,
        accuracy_many_fn: Optional[
            Callable[[List[Architecture]], Sequence[float]]
        ] = None,
        latency_many_fn: Optional[
            Callable[[List[Architecture]], Sequence[float]]
        ] = None,
    ):
        if target_ms <= 0:
            raise ValueError("target_ms must be positive")
        if beta >= 0:
            raise ValueError("beta must be negative (it is a penalty weight)")
        self.accuracy_fn = accuracy_fn
        self.latency_fn = latency_fn
        self.target_ms = target_ms
        self.beta = beta
        self.accuracy_many_fn = accuracy_many_fn
        self.latency_many_fn = latency_many_fn

    def score_parts(self, accuracy: float, latency_ms: float) -> float:
        """Eq. 1 from precomputed accuracy/latency."""
        return accuracy + self.beta * abs(latency_ms / self.target_ms - 1.0)

    def evaluate(self, arch: Architecture) -> EvaluatedArch:
        """Evaluate one architecture, returning the full breakdown."""
        accuracy = self.accuracy_fn(arch)
        latency = self.latency_fn(arch)
        return EvaluatedArch(
            arch=arch,
            accuracy=accuracy,
            latency_ms=latency,
            score=self.score_parts(accuracy, latency),
        )

    def evaluate_many(self, archs: Sequence[Architecture]) -> List[EvaluatedArch]:
        """Batched :meth:`evaluate`; identical results, one pass.

        Accuracy/latency go through their ``*_many`` functions when
        configured (falling back to per-architecture loops), so a
        population evaluation costs one LUT batch sum instead of ``P``
        predictor calls.
        """
        archs = list(archs)
        if self.accuracy_many_fn is not None:
            accuracies = list(self.accuracy_many_fn(archs))
        else:
            accuracies = [self.accuracy_fn(a) for a in archs]
        if self.latency_many_fn is not None:
            latencies = list(self.latency_many_fn(archs))
        else:
            latencies = [self.latency_fn(a) for a in archs]
        return [
            EvaluatedArch(
                arch=arch,
                accuracy=accuracy,
                latency_ms=latency,
                score=self.score_parts(accuracy, latency),
            )
            for arch, accuracy, latency in zip(archs, accuracies, latencies)
        ]

    def __call__(self, arch: Architecture) -> float:
        return self.evaluate(arch).score
