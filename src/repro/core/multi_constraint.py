"""Multi-constraint objective: latency target + energy budget.

The paper's conclusion announces extending HSCoNAS with "different
hardware constraints like power consumption". This module generalizes
the Eq. 1 objective:

``F(arch, T, B) = ACC(arch) + beta * |LAT(arch)/T - 1|
                  + beta_energy * max(0, E(arch)/B - 1)``

The latency term keeps its symmetric shape (hit the target exactly);
the energy term is one-sided — a *budget*, not a target: being under
budget is free, exceeding it is penalized proportionally.
"""

from __future__ import annotations

from typing import Callable, List, Sequence

from repro.core.objective import EvaluatedArch, Objective
from repro.space.architecture import Architecture


class MultiConstraintObjective(Objective):
    """Eq. 1 plus a one-sided energy-budget penalty.

    Parameters
    ----------
    accuracy_fn, latency_fn, target_ms, beta:
        As in :class:`~repro.core.objective.Objective`.
    energy_fn:
        ``arch -> energy in mJ`` — normally an
        :class:`~repro.hardware.energy.EnergyPredictor`.
    energy_budget_mj:
        The budget ``B``.
    beta_energy:
        Penalty weight; must be negative.
    """

    def __init__(
        self,
        accuracy_fn: Callable[[Architecture], float],
        latency_fn: Callable[[Architecture], float],
        target_ms: float,
        energy_fn: Callable[[Architecture], float],
        energy_budget_mj: float,
        beta: float = -0.5,
        beta_energy: float = -1.0,
    ):
        super().__init__(accuracy_fn, latency_fn, target_ms, beta)
        if energy_budget_mj <= 0:
            raise ValueError("energy_budget_mj must be positive")
        if beta_energy >= 0:
            raise ValueError("beta_energy must be negative")
        self.energy_fn = energy_fn
        self.energy_budget_mj = energy_budget_mj
        self.beta_energy = beta_energy

    def energy_penalty(self, energy_mj: float) -> float:
        """One-sided budget penalty (0 when within budget)."""
        overshoot = max(0.0, energy_mj / self.energy_budget_mj - 1.0)
        return self.beta_energy * overshoot

    def evaluate(self, arch: Architecture) -> EvaluatedArch:
        accuracy = self.accuracy_fn(arch)
        latency = self.latency_fn(arch)
        energy = self.energy_fn(arch)
        score = (
            self.score_parts(accuracy, latency)
            + self.energy_penalty(energy)
        )
        return EvaluatedArch(
            arch=arch, accuracy=accuracy, latency_ms=latency, score=score
        )

    def evaluate_many(self, archs: Sequence[Architecture]) -> List[EvaluatedArch]:
        """Batched evaluation with the energy penalty re-applied on top
        of the base objective's (possibly LUT-batched) latency terms."""
        archs = list(archs)
        base = Objective.evaluate_many(self, archs)
        return [
            EvaluatedArch(
                arch=e.arch,
                accuracy=e.accuracy,
                latency_ms=e.latency_ms,
                score=e.score + self.energy_penalty(self.energy_fn(arch)),
            )
            for arch, e in zip(archs, base)
        ]
