"""Progressive space shrinking (paper Sec. III-C).

The paper shrinks the space in two stages, working backwards from the
output: stage 1 fixes the operator of layers 20, 19, 18, 17 (1-based) —
after the supernet has trained 100 epochs — and stage 2 fixes layers 16,
15, 14, 13 after 15 tuning epochs. For each layer, every candidate
operator defines a subspace (that operator pinned, everything else
free); the operator whose subspace has the highest quality ``Q`` wins.
Later layers are evaluated first and stay fixed while earlier layers are
considered, which is what makes the procedure cost ``K x (layers)``
quality estimates instead of ``K^layers``.

Each stage removes ``(K * n_factors)^4 / n_factors^4 = K^4 = 625 ~ 10^2.8``
— "three orders of magnitude" in the paper's words — from the space.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import product
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.quality import SubspaceQuality
from repro.space.search_space import SearchSpace

CHECKPOINT_FORMAT = 1


@dataclass(frozen=True)
class ShrinkDecision:
    """Outcome of shrinking one layer."""

    layer: int
    qualities: Dict[int, float]  # candidate op -> Q
    chosen_op: int

    def margin(self) -> float:
        """Quality gap between the winner and the runner-up."""
        ranked = sorted(self.qualities.values(), reverse=True)
        if len(ranked) < 2:
            return 0.0
        return ranked[0] - ranked[1]


@dataclass
class ShrinkResult:
    """Full record of a (multi-stage) shrinking run."""

    initial_log10_size: float
    stages: List[List[ShrinkDecision]] = field(default_factory=list)
    stage_log10_sizes: List[float] = field(default_factory=list)
    quality_evaluations: int = 0
    final_space: Optional[SearchSpace] = None
    # Shared-cache effectiveness: cumulative counters snapshotted after
    # each stage, and at the end of the run (None without a cache).
    stage_cache_stats: List[Dict[str, int]] = field(default_factory=list)
    cache_stats: Optional[Dict[str, int]] = None

    def decisions(self) -> List[ShrinkDecision]:
        return [d for stage in self.stages for d in stage]

    def orders_of_magnitude_removed(self) -> List[float]:
        """log10 size reduction per stage (paper claims ~3 per stage)."""
        out = []
        prev = self.initial_log10_size
        for size in self.stage_log10_sizes:
            out.append(prev - size)
            prev = size
        return out

    def to_dict(self) -> dict:
        """JSON-ready trace of the run (for CLI artifacts)."""
        return {
            "initial_log10_size": self.initial_log10_size,
            "stage_log10_sizes": list(self.stage_log10_sizes),
            "quality_evaluations": self.quality_evaluations,
            "stages": [
                [
                    {
                        "layer": d.layer,
                        "qualities": {str(op): q for op, q in d.qualities.items()},
                        "chosen_op": d.chosen_op,
                        "margin": d.margin(),
                    }
                    for d in stage
                ]
                for stage in self.stages
            ],
            "stage_cache_stats": list(self.stage_cache_stats),
            "cache_stats": self.cache_stats,
        }


def default_stage_layers(num_layers: int) -> Tuple[Tuple[int, ...], Tuple[int, ...]]:
    """The paper's two stage schedules, adapted to ``num_layers``.

    For L=20 this yields (19, 18, 17, 16) and (15, 14, 13, 12) in
    0-based indexing — the paper's layers 20..17 and 16..13. Smaller
    spaces (the proxy config) shrink proportionally: the last quarter of
    layers per stage, at least one layer each.
    """
    per_stage = max(1, num_layers // 5)
    stage1 = tuple(range(num_layers - 1, num_layers - 1 - per_stage, -1))
    stage2 = tuple(
        range(num_layers - 1 - per_stage, num_layers - 1 - 2 * per_stage, -1)
    )
    return stage1, stage2


class ProgressiveSpaceShrinking:
    """Layer-by-layer, back-to-front operator fixing.

    Parameters
    ----------
    quality:
        The Monte-Carlo quality estimator (Eq. 4).
    stage_layers:
        Layer schedules, one tuple per stage (0-based indices,
        evaluated in order). Defaults to the paper's two 4-layer stages.
    tune_hook:
        Optional callback invoked *between* stages with the shrunk
        space — the paper tunes the supernet 15 epochs here; the
        pipeline passes the supernet trainer through this hook. If the
        quality estimator carries a shared
        :class:`~repro.core.cache.EvaluationCache`, it is cleared after
        every hook invocation: tuning changes the proxy accuracy, so
        memoized objective values from earlier stages would be stale.
    checkpoint:
        Optional checkpoint slot (e.g.
        :class:`~repro.runstate.PhaseCheckpoint`). When set, every
        per-layer decision (and every stage boundary and tune-hook
        completion) is saved; :meth:`run` replays the saved decisions —
        re-fixing operators without re-estimating — and continues from
        the first undecided layer, bit-identical to an uninterrupted
        run.
    """

    def __init__(
        self,
        quality: SubspaceQuality,
        stage_layers: Optional[Sequence[Sequence[int]]] = None,
        tune_hook: Optional[Callable[[SearchSpace, int], None]] = None,
        checkpoint=None,
    ):
        self.quality = quality
        self.stage_layers = (
            [tuple(s) for s in stage_layers] if stage_layers is not None else None
        )
        self.tune_hook = tune_hook
        self.checkpoint = checkpoint

    def shrink_layer(
        self, space: SearchSpace, layer: int
    ) -> Tuple[SearchSpace, ShrinkDecision]:
        """Fix the best operator for one layer (later layers already fixed).

        The K candidate-operator subspaces are scored in one
        :meth:`~repro.core.quality.SubspaceQuality.estimate_many` call —
        with a parallel evaluator all ``K x N`` objective evaluations
        fan out together. Estimate indices are reserved up front in
        candidate order, so the draws (and therefore every Q value and
        the insertion-order tie-break) match the sequential loop.
        """
        ops = list(space.candidate_ops[layer])
        subspaces = [
            space.restrict_to_operator_subspace(layer, op) for op in ops
        ]
        indices = self.quality.reserve_indices(len(ops))
        estimates = self.quality.estimate_many(subspaces, indices)
        qualities: Dict[int, float] = dict(zip(ops, estimates))
        chosen = max(qualities, key=lambda op: qualities[op])
        return space.fix_operator(layer, chosen), ShrinkDecision(
            layer=layer, qualities=qualities, chosen_op=chosen
        )

    # -- checkpointing ------------------------------------------------------------

    def _save_checkpoint(
        self,
        result: ShrinkResult,
        tuned_stages: int,
        evals_before: int,
        complete: bool = False,
    ) -> None:
        if self.checkpoint is None:
            return
        self.checkpoint.save(
            {
                "format": CHECKPOINT_FORMAT,
                "stages": [
                    [
                        {
                            "layer": d.layer,
                            "qualities": {
                                str(op): q for op, q in d.qualities.items()
                            },
                            "chosen_op": d.chosen_op,
                        }
                        for d in stage
                    ]
                    for stage in result.stages
                ],
                "stage_log10_sizes": list(result.stage_log10_sizes),
                "stage_cache_stats": list(result.stage_cache_stats),
                "tuned_stages": tuned_stages,
                "quality": self.quality.state(),
                "quality_evaluations_so_far": (
                    self.quality.evaluations - evals_before
                ),
            },
            complete=complete,
        )

    @staticmethod
    def _restore_stages(saved: dict) -> List[List[ShrinkDecision]]:
        if int(saved.get("format", 0)) != CHECKPOINT_FORMAT:
            raise ValueError(
                f"unsupported shrink checkpoint format {saved.get('format')!r}"
            )
        return [
            [
                ShrinkDecision(
                    layer=int(d["layer"]),
                    qualities={
                        int(op): float(q)
                        for op, q in d["qualities"].items()
                    },
                    chosen_op=int(d["chosen_op"]),
                )
                for d in stage
            ]
            for stage in saved["stages"]
        ]

    def run(self, space: SearchSpace) -> ShrinkResult:
        """Execute all shrinking stages; returns the full record.

        With a ``checkpoint``, saved per-layer decisions are *replayed*
        (the chosen operator is re-fixed without re-estimating — the
        estimator's indexed seeding makes that safe) and the run
        continues from the first undecided layer. A tune hook that
        already completed is not re-run.
        """
        stage_layers = (
            self.stage_layers
            if self.stage_layers is not None
            else list(default_stage_layers(space.num_layers))
        )
        evals_before = self.quality.evaluations
        result = ShrinkResult(initial_log10_size=space.log10_size())
        cache = getattr(self.quality, "cache", None)

        tuned_stages = 0
        if self.checkpoint is not None:
            saved = self.checkpoint.load()
            if saved is not None:
                result.stages = self._restore_stages(saved)
                result.stage_log10_sizes = [
                    float(s) for s in saved["stage_log10_sizes"]
                ]
                result.stage_cache_stats = [
                    dict(s) for s in saved["stage_cache_stats"]
                ]
                tuned_stages = int(saved["tuned_stages"])
                self.quality.set_state(saved["quality"])
                evals_before = self.quality.evaluations - int(
                    saved["quality_evaluations_so_far"]
                )
                for decision in (d for st in result.stages for d in st):
                    space = space.fix_operator(
                        decision.layer, decision.chosen_op
                    )

        for stage_idx, layers in enumerate(stage_layers):
            if stage_idx < len(result.stages):
                decisions = result.stages[stage_idx]
            else:
                decisions = []
                result.stages.append(decisions)
            # Decisions are made in schedule order, so a partially
            # restored stage is a prefix of its layer list.
            for layer in list(layers)[len(decisions):]:
                space, decision = self.shrink_layer(space, layer)
                decisions.append(decision)
                self._save_checkpoint(result, tuned_stages, evals_before)
            if stage_idx >= len(result.stage_log10_sizes):
                result.stage_log10_sizes.append(space.log10_size())
                if cache is not None:
                    result.stage_cache_stats.append(cache.stats())
                self._save_checkpoint(result, tuned_stages, evals_before)
            if (
                self.tune_hook is not None
                and stage_idx < len(stage_layers) - 1
                and tuned_stages <= stage_idx
            ):
                self.tune_hook(space, stage_idx)
                if cache is not None:
                    cache.clear()
                # Tuning changed the weights the evaluation function
                # reads; a parallel evaluator must propagate that to its
                # workers (shared-memory refresh or pool restart).
                evaluator = getattr(self.quality, "evaluator", None)
                if evaluator is not None:
                    evaluator.sync()
                tuned_stages = stage_idx + 1
                self._save_checkpoint(result, tuned_stages, evals_before)
        result.final_space = space
        result.quality_evaluations = self.quality.evaluations - evals_before
        if cache is not None:
            result.cache_stats = cache.stats()
        self._save_checkpoint(
            result, tuned_stages, evals_before, complete=True
        )
        return result


class JointShrinking:
    """The naive alternative the paper argues against: evaluate all
    ``K^(#layers)`` operator assignments of a stage jointly.

    Implemented for the complexity comparison benchmark
    (``5^4 = 625`` subspace evaluations vs. the progressive ``5 x 4 = 20``).
    """

    def __init__(self, quality: SubspaceQuality):
        self.quality = quality

    def run_stage(
        self, space: SearchSpace, layers: Sequence[int]
    ) -> Tuple[SearchSpace, int]:
        """Evaluate every joint assignment; returns (shrunk space, #evals)."""
        candidates = [space.candidate_ops[layer] for layer in layers]
        evals_before = self.quality.evaluations
        best_assignment = None
        best_q = -np.inf
        for assignment in product(*candidates):
            subspace = space
            for layer, op in zip(layers, assignment):
                subspace = subspace.fix_operator(layer, op)
            q = self.quality.estimate(subspace)
            if q > best_q:
                best_q = q
                best_assignment = assignment
        assert best_assignment is not None
        for layer, op in zip(layers, best_assignment):
            space = space.fix_operator(layer, op)
        return space, self.quality.evaluations - evals_before
