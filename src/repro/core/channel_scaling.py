"""Channel scaling schemes (paper Sec. III-B, Fig. 4).

The *conventional* scheme applies one uniform factor to every layer of a
finished architecture (as in width-multiplier scaling / slimmable nets);
HSCoNAS's *dynamic* scheme searches a per-layer factor jointly with the
operator. This module provides the conventional scheme as the
comparison baseline, plus utilities shared by both.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

from repro.space.architecture import Architecture


def uniform_scaled(arch: Architecture, factor: float) -> Architecture:
    """Apply one scaling factor to every layer (conventional scheme)."""
    return Architecture(arch.ops, (factor,) * arch.num_layers)


def best_uniform_factor(
    arch: Architecture,
    factors: Sequence[float],
    latency_fn: Callable[[Architecture], float],
    target_ms: float,
) -> Optional[float]:
    """Largest uniform factor whose scaled network meets the target.

    This is how the conventional pipeline picks its width multiplier:
    scale the finished architecture down until it fits the latency
    budget. Returns ``None`` when even the smallest factor misses the
    target.
    """
    if target_ms <= 0:
        raise ValueError("target_ms must be positive")
    feasible = [
        f
        for f in sorted(factors)
        if latency_fn(uniform_scaled(arch, f)) <= target_ms
    ]
    return feasible[-1] if feasible else None


def snap_factor(factor: float, candidates: Sequence[float]) -> float:
    """Snap an arbitrary factor to the nearest candidate value."""
    if not candidates:
        raise ValueError("candidates must be non-empty")
    return min(candidates, key=lambda c: abs(c - factor))


def greedy_fit_factors(
    arch: Architecture,
    factor_candidates: Sequence[Sequence[float]],
    latency_fn: Callable[[Architecture], float],
    accuracy_fn: Callable[[Architecture], float],
    target_ms: float,
    max_steps: int = 200,
) -> Architecture:
    """Sensitivity-guided per-layer width fitting (deterministic baseline).

    Starting from ``arch``, repeatedly take the single-layer factor
    *decrease* with the best latency-saved-per-accuracy-lost ratio until
    the architecture meets ``target_ms``. Sits between the conventional
    uniform multiplier (one global knob) and the EA's full channel-level
    search: per-layer and deterministic, but greedy.

    Parameters
    ----------
    arch:
        Starting architecture (usually full-width).
    factor_candidates:
        Per-layer allowed factors (``space.candidate_factors``).
    latency_fn, accuracy_fn:
        Predictors; called O(layers) times per step.
    target_ms:
        The latency budget to reach.
    max_steps:
        Safety bound on greedy iterations.

    Returns the first architecture meeting the target, or the best
    effort after all factors bottom out.
    """
    if target_ms <= 0:
        raise ValueError("target_ms must be positive")
    current = arch
    for _ in range(max_steps):
        latency = latency_fn(current)
        if latency <= target_ms:
            return current
        base_acc = accuracy_fn(current)
        best_ratio = None
        best_next = None
        for layer in range(current.num_layers):
            below = sorted(
                f for f in factor_candidates[layer]
                if f < current.factors[layer]
            )
            # Consider every lower candidate: adjacent factors can map
            # to the same kept-channel count (rounding), so the nearest
            # step alone may save nothing and stall the descent.
            for factor in reversed(below):
                candidate = current.with_factor(layer, factor)
                saved = latency - latency_fn(candidate)
                if saved <= 0:
                    continue
                lost = max(base_acc - accuracy_fn(candidate), 1e-9)
                ratio = saved / lost
                if best_ratio is None or ratio > best_ratio:
                    best_ratio = ratio
                    best_next = candidate
                break  # nearest candidate that actually saves time
        if best_next is None:
            return current  # bottomed out everywhere
        current = best_next
    return current
