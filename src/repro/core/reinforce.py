"""REINFORCE architecture search — the RL comparator.

Sec. III-D argues for evolution over reinforcement learning: "RL incurs
a high search cost since it is hard to converge [...] we adopt EA,
which is as effective as RL but with higher efficiency." To reproduce
that comparison, this module implements the standard RL-NAS controller
at its simplest: an independent categorical policy per layer over the
operator and factor candidates, trained with REINFORCE and an
exponential-moving-average reward baseline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.core.evolution import GenerationRecord, SearchResult
from repro.core.objective import Objective
from repro.nn.functional import softmax
from repro.space.architecture import Architecture
from repro.space.search_space import SearchSpace


@dataclass(frozen=True)
class ReinforceConfig:
    """REINFORCE hyper-parameters."""

    iterations: int = 20
    batch_size: int = 50
    learning_rate: float = 2.0
    baseline_momentum: float = 0.7
    entropy_weight: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.iterations < 1 or self.batch_size < 1:
            raise ValueError("iterations and batch_size must be >= 1")
        if self.learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if not 0.0 <= self.baseline_momentum < 1.0:
            raise ValueError("baseline_momentum must be in [0, 1)")


class ReinforceSearch:
    """Policy-gradient search over a (possibly shrunk) search space."""

    def __init__(
        self,
        space: SearchSpace,
        objective: Objective,
        config: ReinforceConfig = ReinforceConfig(),
    ):
        self.space = space
        self.objective = objective
        self.config = config
        # One categorical head per layer for ops, one for factors.
        self._op_logits: List[np.ndarray] = [
            np.zeros(len(cands)) for cands in space.candidate_ops
        ]
        self._factor_logits: List[np.ndarray] = [
            np.zeros(len(cands)) for cands in space.candidate_factors
        ]

    # -- sampling ---------------------------------------------------------------

    def _sample(self, rng: np.random.Generator):
        """Sample one architecture; returns (arch, chosen indices)."""
        op_idx = []
        factor_idx = []
        ops = []
        factors = []
        for layer in range(self.space.num_layers):
            p_op = softmax(self._op_logits[layer])
            i = int(rng.choice(len(p_op), p=p_op))
            op_idx.append(i)
            ops.append(self.space.candidate_ops[layer][i])
            p_f = softmax(self._factor_logits[layer])
            j = int(rng.choice(len(p_f), p=p_f))
            factor_idx.append(j)
            factors.append(self.space.candidate_factors[layer][j])
        return Architecture(tuple(ops), tuple(factors)), op_idx, factor_idx

    def policy_entropy(self) -> float:
        """Mean per-head entropy (diagnostic: converging policies drop)."""
        total = 0.0
        heads = 0
        for logits in self._op_logits + self._factor_logits:
            p = softmax(logits)
            total += float(-(p * np.log(p + 1e-12)).sum())
            heads += 1
        return total / heads

    # -- training -----------------------------------------------------------------

    def run(self) -> SearchResult:
        """Train the controller; returns the same record type as the EA."""
        cfg = self.config
        rng = np.random.default_rng(cfg.seed)
        baseline = None
        result = None
        generations: List[GenerationRecord] = []

        for iteration in range(cfg.iterations):
            batch = [self._sample(rng) for _ in range(cfg.batch_size)]
            evaluated = [self.objective.evaluate(arch) for arch, _, _ in batch]
            rewards = np.array([e.score for e in evaluated])

            mean_reward = float(rewards.mean())
            baseline = (
                mean_reward
                if baseline is None
                else cfg.baseline_momentum * baseline
                + (1 - cfg.baseline_momentum) * mean_reward
            )
            advantages = rewards - baseline

            # Accumulate REINFORCE gradients per head.
            op_grads = [np.zeros_like(l) for l in self._op_logits]
            factor_grads = [np.zeros_like(l) for l in self._factor_logits]
            for (arch, op_idx, factor_idx), adv in zip(batch, advantages):
                for layer in range(self.space.num_layers):
                    p = softmax(self._op_logits[layer])
                    onehot = np.zeros_like(p)
                    onehot[op_idx[layer]] = 1.0
                    op_grads[layer] += adv * (onehot - p)
                    p = softmax(self._factor_logits[layer])
                    onehot = np.zeros_like(p)
                    onehot[factor_idx[layer]] = 1.0
                    factor_grads[layer] += adv * (onehot - p)

            scale = cfg.learning_rate / cfg.batch_size
            for layer in range(self.space.num_layers):
                if cfg.entropy_weight > 0:
                    # Entropy bonus gradient: -w * (log p + 1) through softmax.
                    p = softmax(self._op_logits[layer])
                    op_grads[layer] += cfg.entropy_weight * (
                        -p * (np.log(p + 1e-12) - (p * np.log(p + 1e-12)).sum())
                    ) / scale
                self._op_logits[layer] += scale * op_grads[layer]
                self._factor_logits[layer] += scale * factor_grads[layer]

            record = GenerationRecord(iteration, evaluated)
            generations.append(record)
            if result is None or record.best.score > result.best.score:
                best = record.best
                result = SearchResult(best=best)

        assert result is not None
        result.generations = generations
        result.num_evaluations = cfg.iterations * cfg.batch_size
        return result
