"""Daemon configuration for ``python -m repro.serve``.

:class:`ServeConfig` is a frozen dataclass so one config object can be
shared across the server, the service, and tests without aliasing
surprises. Defaults are chosen for a local smoke deployment: loopback
host, ephemeral port, auto backend, warm nothing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.serve.query import FrontQuery

BACKEND_CHOICES = ("auto", "serial", "multiprocess")


def warm_query_from_spec(spec: str) -> FrontQuery:
    """Parse a ``--warm`` spec ``device:layout[:seed]`` into a query.

    Warm pairs key on (device, layout) because one front covers every
    latency target (see :mod:`repro.serve.query`); the optional seed
    pins a non-default stream.
    """
    parts = spec.split(":")
    if len(parts) not in (2, 3):
        raise ValueError(
            f"warm spec {spec!r} must be device:layout or device:layout:seed"
        )
    kwargs = {"device": parts[0], "layout": parts[1]}
    if len(parts) == 3:
        try:
            kwargs["seed"] = int(parts[2])
        except ValueError as exc:
            raise ValueError(
                f"warm spec {spec!r} has a non-integer seed {parts[2]!r}"
            ) from exc
    return FrontQuery(**kwargs)


@dataclass(frozen=True)
class ServeConfig:
    """Everything the daemon needs to bind, evaluate, and persist.

    Parameters
    ----------
    host, port:
        Bind address. ``port=0`` asks the OS for an ephemeral port; the
        bound port is printed at startup and recorded in the state
        directory's ``endpoint.json``.
    backend, workers:
        Evaluation backend for cache-missing front computations —
        exactly the CLI's ``--backend``/``--workers`` knobs; results
        are bit-identical for any combination.
    front_cache_size:
        LRU cap on cached fronts (:class:`~repro.core.EvaluationCache`
        semantics). ``None`` = unbounded.
    state_dir:
        Optional crash-safe state directory (:mod:`repro.runstate`).
        When set, every computed front is persisted atomically and
        reloaded on the next start — a kill + restart serves the same
        bytes without recomputing.
    warm:
        Fronts to precompute before accepting traffic (popular
        (device, layout) pairs). Restored snapshot entries satisfy warm
        specs without recomputation.
    table:
        Optional tabular artifact directory
        (:func:`repro.tabular.save_artifact`). Queries the artifact
        covers — matching layout fingerprint, device column, and build
        seed, on an exhaustive ``"front"``-recipe table — are replayed
        from its columns instead of searched live: same bytes,
        milliseconds instead of seconds. Everything else still runs
        the live recipe.
    metrics_window:
        How many recent request latencies the p50/p99 estimates cover.
    quiet:
        Suppress per-request access logging (metrics still record).
    max_inflight, queue_depth, queue_timeout_s:
        Admission control (``docs/robustness.md``, "Online
        resilience"). ``max_inflight`` caps concurrently-computing
        query requests (``None`` = unlimited, the historical
        behaviour); beyond it up to ``queue_depth`` requests wait up to
        ``queue_timeout_s`` before being shed with a deterministic 503.
    retry_after_s:
        The ``Retry-After`` header value on shed responses.
    breaker_failures, breaker_cooldown_s, hang_timeout_s:
        Circuit breaker around live front computation:
        ``breaker_failures`` consecutive failures open it for
        ``breaker_cooldown_s``; a computation slower than
        ``hang_timeout_s`` counts as a failure even when it returns
        (``None`` disables the hang budget). While open, queries answer
        from a degraded fallback (tabular replay or nearest cached
        front), flagged ``degraded: true``.
    chaos:
        Optional chaos-injection spec string
        (:meth:`repro.resilience.ChaosSpec.parse`), e.g.
        ``"seed=7,error=0.3,burst=2"``. Faults live front computations
        only — warmup and replay are never chaos-faulted. For the
        chaos harness; leave ``None`` in production.
    """

    host: str = "127.0.0.1"
    port: int = 0
    backend: str = "auto"
    workers: int = 0
    front_cache_size: Optional[int] = 64
    state_dir: Optional[str] = None
    warm: Tuple[FrontQuery, ...] = field(default_factory=tuple)
    table: Optional[str] = None
    metrics_window: int = 1024
    quiet: bool = False
    max_inflight: Optional[int] = None
    queue_depth: int = 16
    queue_timeout_s: float = 30.0
    retry_after_s: int = 1
    breaker_failures: int = 5
    breaker_cooldown_s: float = 30.0
    hang_timeout_s: Optional[float] = None
    chaos: Optional[str] = None

    def __post_init__(self) -> None:
        if self.backend not in BACKEND_CHOICES:
            raise ValueError(
                f"unknown backend {self.backend!r}; "
                f"expected one of {BACKEND_CHOICES}"
            )
        if not 0 <= self.port <= 65535:
            raise ValueError(f"port {self.port} out of range")
        if self.front_cache_size is not None and self.front_cache_size < 1:
            raise ValueError("front_cache_size must be >= 1 or None")
        if self.metrics_window < 1:
            raise ValueError("metrics_window must be >= 1")
        if self.max_inflight is not None and self.max_inflight < 1:
            raise ValueError("max_inflight must be >= 1 or None")
        if self.queue_depth < 0:
            raise ValueError("queue_depth must be >= 0")
        if self.queue_timeout_s <= 0:
            raise ValueError("queue_timeout_s must be positive")
        if self.retry_after_s < 1:
            raise ValueError("retry_after_s must be >= 1")
        if self.breaker_failures < 1:
            raise ValueError("breaker_failures must be >= 1")
        if self.breaker_cooldown_s <= 0:
            raise ValueError("breaker_cooldown_s must be positive")
        if self.hang_timeout_s is not None and self.hang_timeout_s <= 0:
            raise ValueError("hang_timeout_s must be positive or None")
        if self.chaos is not None:
            # Validate eagerly so a bad spec fails at config time, not
            # on the first faulted request.
            from repro.resilience import ChaosSpec

            ChaosSpec.parse(self.chaos)
