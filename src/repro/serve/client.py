"""Tiny stdlib client for the ``repro.serve`` daemon.

Used by the synthetic-traffic benchmark, the CI smoke job, and tests;
it is also the reference for how a downstream service would talk to
the daemon. One fresh ``http.client`` connection per request keeps the
client trivially thread-safe (the traffic benchmark hammers a single
:class:`ServeClient` from many threads).

With lint rule RL108, this module and :mod:`repro.serve.server` are
the only places allowed to construct HTTP connections directly.
"""

from __future__ import annotations

import json
import time
from http.client import HTTPConnection
from pathlib import Path
from typing import Optional, Tuple, Union
from urllib.parse import urlencode

from repro.serve.server import ENDPOINT_FILE


class ServeError(RuntimeError):
    """A non-2xx daemon response; carries status and the error body."""

    def __init__(self, status: int, body: str):
        super().__init__(f"HTTP {status}: {body.strip()}")
        self.status = status
        self.body = body


class ServeClient:
    """Talk JSON to one daemon endpoint."""

    def __init__(self, host: str, port: int, timeout: float = 60.0):
        self.host = host
        self.port = port
        self.timeout = timeout

    @classmethod
    def from_state_dir(
        cls,
        state_dir: Union[str, Path],
        timeout: float = 60.0,
        wait_s: float = 0.0,
    ) -> "ServeClient":
        """Connect via the daemon's ``endpoint.json``.

        ``wait_s`` polls for the file (and a live ``/healthz``) — the
        startup handshake the smoke driver uses.
        """
        path = Path(state_dir) / ENDPOINT_FILE
        deadline = time.monotonic() + wait_s
        while True:
            if path.exists():
                try:
                    payload = json.loads(path.read_text())
                    client = cls(
                        str(payload["host"]),
                        int(payload["port"]),
                        timeout=timeout,
                    )
                    client.health()
                    return client
                except (ValueError, KeyError, OSError, ServeError):
                    pass  # partially started daemon; keep polling
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"no live daemon behind {path} after {wait_s:.0f}s"
                )
            time.sleep(0.05)

    # -- transport ---------------------------------------------------------------

    def request_raw(
        self,
        method: str,
        path: str,
        body: Optional[object] = None,
    ) -> Tuple[int, bytes]:
        """One request; returns ``(status, raw body bytes)``.

        Raw bytes are first-class so callers can assert the daemon's
        byte-identical response contract, not just value equality.
        """
        conn = HTTPConnection(self.host, self.port, timeout=self.timeout)
        try:
            payload = None
            headers = {}
            if body is not None:
                payload = json.dumps(body).encode("utf-8")
                headers["Content-Type"] = "application/json"
            conn.request(method, path, body=payload, headers=headers)
            response = conn.getresponse()
            return response.status, response.read()
        finally:
            conn.close()

    def _request(
        self, method: str, path: str, body: Optional[dict] = None
    ) -> dict:
        status, raw = self.request_raw(method, path, body)
        if not 200 <= status < 300:
            raise ServeError(status, raw.decode("utf-8", "replace"))
        return json.loads(raw)

    # -- endpoints ---------------------------------------------------------------

    def health(self) -> dict:
        return self._request("GET", "/healthz")

    def metrics(self) -> dict:
        return self._request("GET", "/metrics")

    def front(self, **query) -> dict:
        """``GET /front`` with query fields as URL parameters."""
        qs = urlencode({k: v for k, v in query.items() if v is not None})
        return self._request("GET", f"/front?{qs}" if qs else "/front")

    def query(self, **query) -> dict:
        """``POST /query`` with the fields as a JSON body."""
        return self._request("POST", "/query", body=query)
