"""Tiny stdlib client for the ``repro.serve`` daemon.

Used by the synthetic-traffic benchmark, the CI smoke job, and tests;
it is also the reference for how a downstream service would talk to
the daemon. One fresh ``http.client`` connection per request keeps the
client trivially thread-safe (the traffic benchmark hammers a single
:class:`ServeClient` from many threads).

Transient transport faults — the connection resets and early
disconnects a restarting or overloaded daemon produces — are retried
under a :class:`repro.hardware.faults.RetryPolicy` (bounded attempts,
jittered exponential backoff). The jitter rng is drawn only when a
retry actually happens, so a healthy run's requests and responses are
bit-identical with or without retry configured. HTTP *status* errors
(4xx/5xx) are never retried here: a deterministic 503 shed is an
answer, and honoring ``Retry-After`` is the caller's policy decision.

With lint rule RL108, this module and :mod:`repro.serve.server` are
the only places allowed to construct HTTP connections directly.
"""

from __future__ import annotations

import json
import time
from http.client import HTTPConnection, RemoteDisconnected
from pathlib import Path
from typing import Callable, Optional, Tuple, Union
from urllib.parse import urlencode

import numpy as np

from repro.hardware.faults import ProbeError, RetryPolicy, run_with_retry
from repro.serve.server import ENDPOINT_FILE

# The transient shapes worth retrying: the peer vanished mid-exchange.
# Timeouts and refusals are excluded — retrying a refused connection
# hammers a daemon that is not there, and a timeout already waited.
_TRANSIENT = (
    ConnectionResetError,
    BrokenPipeError,
    ConnectionAbortedError,
    RemoteDisconnected,
)

DEFAULT_RETRY = RetryPolicy(attempts=3, backoff_s=0.05)


class ServeError(RuntimeError):
    """A non-2xx daemon response; carries status and the error body."""

    def __init__(self, status: int, body: str):
        super().__init__(f"HTTP {status}: {body.strip()}")
        self.status = status
        self.body = body


class ServeClient:
    """Talk JSON to one daemon endpoint.

    Parameters
    ----------
    host, port, timeout:
        Where to connect and the per-request socket timeout.
    retry:
        Transient-fault policy (``None`` = single attempt, the
        historical behaviour). Only the ``_TRANSIENT`` connection
        faults are retried.
    retry_seed:
        Seed of the backoff-jitter rng (its own stream, consumed only
        on actual retries).
    fault_hook:
        Optional zero-arg callable invoked at the top of every
        transport attempt — the chaos harness's injection point
        (:meth:`repro.resilience.ChaosInjector.transport_hook`).
        Faults it raises are retried like real ones.
    """

    def __init__(
        self,
        host: str,
        port: int,
        timeout: float = 60.0,
        retry: Optional[RetryPolicy] = DEFAULT_RETRY,
        retry_seed: int = 0,
        fault_hook: Optional[Callable[[], None]] = None,
    ):
        self.host = host
        self.port = port
        self.timeout = timeout
        self.retry = retry
        self.fault_hook = fault_hook
        self._retry_rng = np.random.default_rng(retry_seed)
        # Observability: transport retries this client performed.
        self.transport_retries = 0

    @classmethod
    def from_state_dir(
        cls,
        state_dir: Union[str, Path],
        timeout: float = 60.0,
        wait_s: float = 0.0,
    ) -> "ServeClient":
        """Connect via the daemon's ``endpoint.json``.

        ``wait_s`` polls for the file (and a live ``/healthz``) — the
        startup handshake the smoke driver uses.
        """
        path = Path(state_dir) / ENDPOINT_FILE
        deadline = time.monotonic() + wait_s
        while True:
            if path.exists():
                try:
                    payload = json.loads(path.read_text())
                    client = cls(
                        str(payload["host"]),
                        int(payload["port"]),
                        timeout=timeout,
                    )
                    client.health()
                    return client
                except (ValueError, KeyError, OSError, ServeError):
                    pass  # partially started daemon; keep polling
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"no live daemon behind {path} after {wait_s:.0f}s"
                )
            time.sleep(0.05)

    # -- transport ---------------------------------------------------------------

    def _attempt(
        self, method: str, path: str, body: Optional[object]
    ) -> Tuple[int, bytes]:
        """One transport attempt (fresh connection, no retry)."""
        if self.fault_hook is not None:
            self.fault_hook()
        conn = HTTPConnection(self.host, self.port, timeout=self.timeout)
        try:
            payload = None
            headers = {}
            if body is not None:
                payload = json.dumps(body).encode("utf-8")
                headers["Content-Type"] = "application/json"
            conn.request(method, path, body=payload, headers=headers)
            response = conn.getresponse()
            return response.status, response.read()
        finally:
            conn.close()

    def request_raw(
        self,
        method: str,
        path: str,
        body: Optional[object] = None,
    ) -> Tuple[int, bytes]:
        """One request; returns ``(status, raw body bytes)``.

        Raw bytes are first-class so callers can assert the daemon's
        byte-identical response contract, not just value equality.
        Transient connection faults are retried under ``self.retry``;
        after the last attempt the fault propagates as a
        :class:`~repro.hardware.faults.ProbeError` chaining the
        original exception.
        """
        if self.retry is None:
            return self._attempt(method, path, body)

        def probe() -> Tuple[int, bytes]:
            try:
                return self._attempt(method, path, body)
            except _TRANSIENT as exc:
                raise ProbeError(
                    f"transient transport fault: {exc}"
                ) from exc

        value, attempts = run_with_retry(
            probe, self.retry, rng=self._retry_rng
        )
        if attempts > 1:
            self.transport_retries += attempts - 1
        return value

    def _request(
        self, method: str, path: str, body: Optional[dict] = None
    ) -> dict:
        status, raw = self.request_raw(method, path, body)
        if not 200 <= status < 300:
            raise ServeError(status, raw.decode("utf-8", "replace"))
        return json.loads(raw)

    # -- endpoints ---------------------------------------------------------------

    def health(self) -> dict:
        return self._request("GET", "/healthz")

    def metrics(self) -> dict:
        return self._request("GET", "/metrics")

    def front(self, **query) -> dict:
        """``GET /front`` with query fields as URL parameters."""
        qs = urlencode({k: v for k, v in query.items() if v is not None})
        return self._request("GET", f"/front?{qs}" if qs else "/front")

    def query(self, **query) -> dict:
        """``POST /query`` with the fields as a JSON body."""
        return self._request("POST", "/query", body=query)
