"""Live serving metrics: counters, latency percentiles, one snapshot.

:class:`ServeMetrics` is the daemon's single observability object.
Request handlers record into it (thread-safe — the HTTP server handles
each connection on its own thread) and ``GET /metrics`` renders
:meth:`ServeMetrics.snapshot`. The snapshot is plain JSON-ready data;
the cache section is exactly :meth:`repro.core.EvaluationCache.stats`
and the backend section accumulates
:meth:`repro.parallel.EvaluationBackend.stats` counters, so operators
read the same schemas everywhere (search artifacts, shrink traces, and
the daemon all agree). See ``docs/serving.md`` for the glossary.
"""

from __future__ import annotations

import math
import threading
from collections import deque
from typing import Deque, Dict, Optional


def percentile(sorted_values, fraction: float) -> float:
    """Nearest-rank percentile of an already-sorted sequence."""
    if not sorted_values:
        return 0.0
    rank = max(1, math.ceil(fraction * len(sorted_values)))
    return float(sorted_values[rank - 1])


class ServeMetrics:
    """Thread-safe counters + a bounded latency window.

    Parameters
    ----------
    window:
        How many recent query latencies the percentile estimates cover.
        Bounded so a week of traffic cannot grow the daemon's memory;
        p50/p99 are therefore *recent* percentiles, which is what an
        operator watching a dashboard wants anyway.
    """

    # Counters accumulated from backend ``stats()`` dicts. Anything
    # else a backend reports (name, worker count, nested cache stats)
    # is identity, not a counter, and is kept out of the rollup.
    _BACKEND_COUNTERS = (
        "batches",
        "items",
        "chunks_dispatched",
        "chunk_retries",
        "serial_fallbacks",
        "pool_rebuilds",
        "hang_kills",
    )

    def __init__(self, window: int = 1024) -> None:
        if window < 1:
            raise ValueError("window must be >= 1")
        self._lock = threading.Lock()
        self._latencies_ms: Deque[float] = deque(maxlen=window)
        self.queries = 0
        self.errors = 0
        self.coalesced = 0
        self.front_computations = 0
        self.warm_precomputed = 0
        self.replayed_fronts = 0
        self.restored_fronts = 0
        self.by_endpoint: Dict[str, int] = {}
        self._backend: Dict[str, int] = {
            name: 0 for name in self._BACKEND_COUNTERS
        }
        self._backend_names: Dict[str, int] = {}
        # Resilience counters (ISSUE 10): deterministic load shedding,
        # deadline expiries, degraded fallbacks, and coalescing-leader
        # requeues all leave an audit trail here.
        self.shed: Dict[str, int] = {}
        self.deadline_expired = 0
        self.degraded = 0
        self.leader_requeued = 0

    # -- recording ---------------------------------------------------------------

    def record_query(
        self, endpoint: str, elapsed_ms: float, error: bool = False
    ) -> None:
        """One finished request against a query endpoint."""
        with self._lock:
            self.queries += 1
            if error:
                self.errors += 1
            else:
                self._latencies_ms.append(float(elapsed_ms))
            self.by_endpoint[endpoint] = self.by_endpoint.get(endpoint, 0) + 1

    def record_coalesced(self) -> None:
        """A request that piggybacked on an identical in-flight one."""
        with self._lock:
            self.coalesced += 1

    def record_front_computation(
        self, warm: bool = False, replayed: bool = False
    ) -> None:
        """A cache-missing front actually computed (possibly warmup).

        ``replayed`` counts fronts resolved from a tabular artifact's
        columns instead of a live search — same bytes, so the split is
        purely an operator's cost signal.
        """
        with self._lock:
            self.front_computations += 1
            if warm:
                self.warm_precomputed += 1
            if replayed:
                self.replayed_fronts += 1

    def record_restored(self, count: int) -> None:
        """Fronts reloaded from the warm-restart snapshot at startup."""
        with self._lock:
            self.restored_fronts += count

    def record_shed(self, reason: str) -> None:
        """A request refused with 503 (queue full/timeout, breaker)."""
        with self._lock:
            self.shed[reason] = self.shed.get(reason, 0) + 1

    def record_deadline_expired(self) -> None:
        """A request whose deadline expired mid-flight (answered 504)."""
        with self._lock:
            self.deadline_expired += 1

    def record_degraded(self) -> None:
        """A query answered from a degraded fallback (flagged in body)."""
        with self._lock:
            self.degraded += 1

    def record_leader_requeued(self) -> None:
        """A coalescing follower that retook leadership after its
        leader thread died without publishing a result."""
        with self._lock:
            self.leader_requeued += 1

    def add_backend_stats(self, stats: dict) -> None:
        """Fold one finished backend's dispatch counters into the rollup."""
        with self._lock:
            for name in self._BACKEND_COUNTERS:
                if name in stats:
                    self._backend[name] += int(stats[name])
            backend = str(stats.get("backend", "unknown"))
            self._backend_names[backend] = (
                self._backend_names.get(backend, 0) + 1
            )

    # -- reading -----------------------------------------------------------------

    def total_front_computations(self) -> int:
        """Locked read of the fronts-computed counter (for warm-start
        accounting); bare attribute reads from other threads race with
        the recorders above."""
        with self._lock:
            return self.front_computations

    def total_restored_fronts(self) -> int:
        """Locked read of the snapshot-restored-fronts counter."""
        with self._lock:
            return self.restored_fronts

    def snapshot(
        self,
        front_cache_stats: Optional[dict] = None,
        admission: Optional[dict] = None,
        breaker: Optional[dict] = None,
    ) -> dict:
        """The ``/metrics`` payload (see docs/serving.md for the glossary)."""
        with self._lock:
            window = sorted(self._latencies_ms)
            resilience = {
                "shed": dict(self.shed),
                "shed_total": sum(self.shed.values()),
                "deadline_expired": self.deadline_expired,
                "degraded": self.degraded,
                "leader_requeued": self.leader_requeued,
            }
            out = {
                "queries": {
                    "total": self.queries,
                    "errors": self.errors,
                    "coalesced": self.coalesced,
                    "by_endpoint": dict(self.by_endpoint),
                },
                "latency_ms": {
                    "window": len(window),
                    "p50": percentile(window, 0.50),
                    "p99": percentile(window, 0.99),
                    "max": window[-1] if window else 0.0,
                },
                "fronts": {
                    "computed": self.front_computations,
                    "warm_precomputed": self.warm_precomputed,
                    "replayed": self.replayed_fronts,
                    "restored": self.restored_fronts,
                },
                "backend": {
                    **self._backend,
                    "runs_by_backend": dict(self._backend_names),
                },
                "resilience": resilience,
            }
        if front_cache_stats is not None:
            out["front_cache"] = front_cache_stats
        if admission is not None:
            out["resilience"]["admission"] = admission
        if breaker is not None:
            out["resilience"]["breaker"] = breaker
        return out
