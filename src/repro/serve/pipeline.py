"""The one front-computation recipe both the CLI and the daemon run.

``repro front`` (offline) and :class:`repro.serve.SearchService`
(online) must produce bit-identical Pareto fronts for the same
``(layout, device, seed, config)`` — the serving layer is a
throughput/caching skin, never a semantics change. The only way to keep
that guarantee honest is for both to call the same functions; this
module is that shared recipe:

* :func:`space_for_layout` — layout name -> :class:`SearchSpace`
  (re-exported from :mod:`repro.space`, where the tabular artifact
  loader resolves the same names);
* :func:`build_front_predictor` — the LUT build + Eq. 3 bias
  calibration exactly as ``repro front`` has always seeded it;
* :func:`front_search` — the NSGA-II run, funneling population
  batches through ``predict_many`` and (optionally) an externally-owned
  :class:`~repro.parallel.EvaluationBackend`;
* :func:`replay_front_search` — the same NSGA-II run scored from a
  prebuilt tabular artifact's columns instead of a live predictor,
  bit-identical to :func:`front_search` when the artifact was built
  with the ``"front"`` recipe at the same seed.
"""

from __future__ import annotations

from typing import Optional

from repro.accuracy import AccuracySurrogate
from repro.core import EvaluationCache, Nsga2Config, Nsga2Result, Nsga2Search
from repro.hardware import LatencyLUT, LatencyPredictor, OnDeviceProfiler
from repro.hardware.calibration import calibrated_devices
from repro.space import SearchSpace, space_for_layout

__all__ = [
    "space_for_layout",
    "build_front_predictor",
    "front_search",
    "replay_front_search",
]


def build_front_predictor(
    space: SearchSpace,
    device_name: str,
    seed: int,
    workers: int = 0,
    backend: str = "auto",
) -> LatencyPredictor:
    """The calibrated latency predictor behind a front computation.

    Sampling budgets and seed offsets are the historical ``repro
    front`` recipe (2 samples per LUT cell, 25 calibration
    architectures, profiler seeded at ``seed``, calibration at
    ``seed + 1``) — changing any of them changes every served front.
    ``workers``/``backend`` only move the LUT build's wall-clock.
    """
    device = calibrated_devices()[device_name]
    lut = LatencyLUT.build(
        space, device, samples_per_cell=2, seed=seed,
        workers=workers, backend=backend,
    )
    predictor = LatencyPredictor(lut, space)
    profiler = OnDeviceProfiler(device, seed=seed)
    predictor.calibrate_bias(space, profiler, num_archs=25, seed=seed + 1)
    return predictor


def front_search(
    space: SearchSpace,
    predictor: LatencyPredictor,
    seed: int,
    generations: int = 20,
    population_size: int = 50,
    cache: Optional[EvaluationCache] = None,
    workers: int = 0,
    backend: str = "auto",
    checkpoint=None,
    evaluator=None,
    surrogate: Optional[AccuracySurrogate] = None,
    cancel=None,
) -> Nsga2Result:
    """One NSGA-II accuracy/latency front, deterministic in ``seed``.

    Latencies go through :meth:`LatencyPredictor.predict_many` (one LUT
    gather per population batch — the PR-1 batched scorer), which is
    bit-exact with per-arch ``predict``. ``cancel`` is an optional
    :class:`~repro.resilience.CancelToken` checked per generation; a
    run that finishes before expiry is bit-identical with or without
    it.
    """
    if surrogate is None:
        surrogate = AccuracySurrogate(space)
    return Nsga2Search(
        space,
        accuracy_fn=surrogate.proxy_accuracy,
        latency_fn=predictor.predict,
        latency_many_fn=predictor.predict_many,
        config=Nsga2Config(
            seed=seed,
            generations=generations,
            population_size=population_size,
        ),
        cache=cache,
        workers=workers,
        backend=backend,
        checkpoint=checkpoint,
        evaluator=evaluator,
        cancel=cancel,
    ).run()


def replay_front_search(
    space: SearchSpace,
    table,
    device: str,
    seed: int,
    generations: int = 20,
    population_size: int = 50,
    cache: Optional[EvaluationCache] = None,
    checkpoint=None,
    cancel=None,
) -> Nsga2Result:
    """:func:`front_search` replayed from a tabular artifact's columns.

    Populations are scored by one vectorized gather per generation
    (:meth:`repro.tabular.TabularEvaluator.bi_objective_many`) through
    ``create_backend("tabular")`` — no predictor, no surrogate, no
    per-arch lookups. Bit-identical to the live recipe when ``table``
    was built with the ``"front"`` recipe at this seed; untabulated
    architectures raise ``KeyError`` rather than silently falling back
    to live evaluation.
    """
    from repro.parallel.backend import create_backend
    from repro.tabular.evaluator import TabularEvaluator

    replay = TabularEvaluator(table, device=device)
    evaluator = create_backend(
        "tabular", eval_many_fn=replay.bi_objective_many
    )
    try:
        return Nsga2Search(
            space,
            accuracy_fn=replay.accuracy,
            latency_fn=replay.latency,
            latency_many_fn=replay.latency_many,
            config=Nsga2Config(
                seed=seed,
                generations=generations,
                population_size=population_size,
            ),
            cache=cache,
            checkpoint=checkpoint,
            evaluator=evaluator,
            cancel=cancel,
        ).run()
    finally:
        evaluator.close()
