"""The one front-computation recipe both the CLI and the daemon run.

``repro front`` (offline) and :class:`repro.serve.SearchService`
(online) must produce bit-identical Pareto fronts for the same
``(layout, device, seed, config)`` — the serving layer is a
throughput/caching skin, never a semantics change. The only way to keep
that guarantee honest is for both to call the same functions; this
module is that shared recipe:

* :func:`space_for_layout` — layout name -> :class:`SearchSpace`;
* :func:`build_front_predictor` — the LUT build + Eq. 3 bias
  calibration exactly as ``repro front`` has always seeded it;
* :func:`front_search` — the NSGA-II run, funneling population
  batches through ``predict_many`` and (optionally) an externally-owned
  :class:`~repro.parallel.EvaluationBackend`.
"""

from __future__ import annotations

from typing import Optional

from repro.accuracy import AccuracySurrogate
from repro.core import EvaluationCache, Nsga2Config, Nsga2Result, Nsga2Search
from repro.hardware import LatencyLUT, LatencyPredictor, OnDeviceProfiler
from repro.hardware.calibration import calibrated_devices
from repro.space import SearchSpace, imagenet_a, imagenet_b, mini, proxy


def space_for_layout(layout: str) -> SearchSpace:
    """The search space a layout name serves."""
    configs = {
        "a": imagenet_a,
        "b": imagenet_b,
        "mini": mini,
        "proxy": proxy,
    }
    if layout not in configs:
        raise ValueError(
            f"unknown layout {layout!r}; expected one of {sorted(configs)}"
        )
    return SearchSpace(configs[layout]())


def build_front_predictor(
    space: SearchSpace,
    device_name: str,
    seed: int,
    workers: int = 0,
    backend: str = "auto",
) -> LatencyPredictor:
    """The calibrated latency predictor behind a front computation.

    Sampling budgets and seed offsets are the historical ``repro
    front`` recipe (2 samples per LUT cell, 25 calibration
    architectures, profiler seeded at ``seed``, calibration at
    ``seed + 1``) — changing any of them changes every served front.
    ``workers``/``backend`` only move the LUT build's wall-clock.
    """
    device = calibrated_devices()[device_name]
    lut = LatencyLUT.build(
        space, device, samples_per_cell=2, seed=seed,
        workers=workers, backend=backend,
    )
    predictor = LatencyPredictor(lut, space)
    profiler = OnDeviceProfiler(device, seed=seed)
    predictor.calibrate_bias(space, profiler, num_archs=25, seed=seed + 1)
    return predictor


def front_search(
    space: SearchSpace,
    predictor: LatencyPredictor,
    seed: int,
    generations: int = 20,
    population_size: int = 50,
    cache: Optional[EvaluationCache] = None,
    workers: int = 0,
    backend: str = "auto",
    checkpoint=None,
    evaluator=None,
    surrogate: Optional[AccuracySurrogate] = None,
) -> Nsga2Result:
    """One NSGA-II accuracy/latency front, deterministic in ``seed``.

    Latencies go through :meth:`LatencyPredictor.predict_many` (one LUT
    gather per population batch — the PR-1 batched scorer), which is
    bit-exact with per-arch ``predict``.
    """
    if surrogate is None:
        surrogate = AccuracySurrogate(space)
    return Nsga2Search(
        space,
        accuracy_fn=surrogate.proxy_accuracy,
        latency_fn=predictor.predict,
        latency_many_fn=predictor.predict_many,
        config=Nsga2Config(
            seed=seed,
            generations=generations,
            population_size=population_size,
        ),
        cache=cache,
        workers=workers,
        backend=backend,
        checkpoint=checkpoint,
        evaluator=evaluator,
    ).run()
