"""Stdlib HTTP/JSON front end for :class:`~repro.serve.SearchService`.

``ThreadingHTTPServer`` with non-daemon request threads: every
connection gets a thread, and :meth:`ServeServer.server_close` joins
them all — which is what makes the SIGTERM drain *graceful*: in-flight
queries finish and are answered before the process exits and the final
state snapshot is written.

Endpoints (all JSON, all deterministic bodies — ``sort_keys`` and no
timestamps, so identical queries yield byte-identical responses):

* ``GET /healthz`` — liveness probe.
* ``GET /metrics`` — the observability snapshot
  (:meth:`SearchService.metrics_snapshot`).
* ``GET /front?device=..&layout=..&seed=..[&target_ms=..]`` — resolve
  a query from URL parameters.
* ``POST /query`` — the same, with the query as a JSON body.

Query endpoints pass through admission control (``docs/robustness.md``):
beyond the configured in-flight capacity and bounded queue they answer
a deterministic ``503`` with ``Retry-After``; a request whose optional
``deadline_ms`` expires (queued or mid-computation) answers ``504``
with partial-progress stats. ``/healthz`` and ``/metrics`` bypass
admission so the daemon stays observable at any overload.

This module (with :mod:`repro.serve.client`) is the only sanctioned
place in the codebase that touches sockets — lint rule RL108 flags
direct socket/server construction anywhere else.
"""

from __future__ import annotations

import json
import signal
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from time import perf_counter
from typing import Optional, Tuple
from urllib.parse import parse_qsl, urlsplit

from repro.resilience import BreakerOpenError, DeadlineExceeded
from repro.runstate import atomic_write_json
from repro.serve.config import ServeConfig
from repro.serve.service import SearchService, cancel_token_from_payload

ENDPOINT_FILE = "endpoint.json"


def _json_bytes(payload: dict) -> bytes:
    """The canonical response encoding: sorted keys, trailing newline.

    Determinism here is load-bearing: the coalescing and warm-restart
    contracts promise *byte*-identical responses for identical queries.
    """
    return (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")


class ServeHandler(BaseHTTPRequestHandler):
    """One request; the heavy lifting happens in the shared service."""

    server_version = "repro-serve/1"
    # HTTP/1.0 closes the connection per response, so a drained server
    # never waits on an idle keep-alive thread.
    protocol_version = "HTTP/1.0"

    # -- plumbing ----------------------------------------------------------------

    @property
    def service(self) -> SearchService:
        return self.server.service  # type: ignore[attr-defined]

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if not self.service.config.quiet:
            super().log_message(format, *args)

    def _reply(
        self, status: int, payload: dict, headers: Optional[dict] = None
    ) -> None:
        body = _json_bytes(payload)
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, str(value))
        self.end_headers()
        self.wfile.write(body)

    def _shed(self, endpoint: str, reason: str) -> None:
        """Deterministic 503: body + ``Retry-After``, counters recorded."""
        self.service.metrics.record_shed(reason)
        self.service.metrics.record_query(endpoint, 0.0, error=True)
        retry_after = self.service.config.retry_after_s
        self._reply(
            503,
            {
                "error": f"overloaded: {reason}",
                "retry_after_s": retry_after,
                "shed": True,
            },
            headers={"Retry-After": retry_after},
        )

    def _resolve(self, endpoint: str, payload: dict) -> None:
        """Run one query through the service, recording metrics.

        Admission happens here, before any work: a request that cannot
        be taken is shed with a deterministic 503 + ``Retry-After``
        (or 504 when its own deadline expired while queued). Health
        and metrics endpoints never pass through this path, so the
        daemon stays observable at any overload.
        """
        payload = dict(payload)
        try:
            cancel = cancel_token_from_payload(payload)
        except ValueError as exc:
            self.service.metrics.record_query(endpoint, 0.0, error=True)
            self._reply(400, {"error": str(exc)})
            return
        admitted, shed_reason = self.service.admission.try_admit(
            cancel=cancel
        )
        if not admitted:
            if shed_reason == "deadline":
                self.service.metrics.record_deadline_expired()
                self.service.metrics.record_query(
                    endpoint, 0.0, error=True
                )
                self._reply(
                    504,
                    {
                        "error": "deadline expired in admission queue",
                        "progress": {"stage": "admission-queue"},
                    },
                )
            else:
                self._shed(endpoint, shed_reason)
            return
        try:
            self._resolve_admitted(endpoint, payload, cancel)
        finally:
            self.service.admission.release()

    def _resolve_admitted(
        self, endpoint: str, payload: dict, cancel
    ) -> None:
        start = perf_counter()
        try:
            response = self.service.resolve(payload, cancel=cancel)
        except ValueError as exc:
            # Malformed query: client error, one actionable line.
            self.service.metrics.record_query(
                endpoint, 0.0, error=True
            )
            self._reply(400, {"error": str(exc)})
            return
        except DeadlineExceeded as exc:
            self.service.metrics.record_deadline_expired()
            self.service.metrics.record_query(endpoint, 0.0, error=True)
            self._reply(
                504,
                {"error": str(exc), "progress": dict(exc.progress)},
            )
            return
        except BreakerOpenError:
            # The service already tried its degraded fallbacks; with
            # none available the request is shed like any overload.
            self._shed(endpoint, "breaker_open")
            return
        except Exception as exc:  # noqa: BLE001 - must answer the client
            self.service.metrics.record_query(
                endpoint, 0.0, error=True
            )
            self._reply(500, {"error": f"{type(exc).__name__}: {exc}"})
            return
        elapsed_ms = (perf_counter() - start) * 1e3
        self.service.metrics.record_query(endpoint, elapsed_ms)
        self._reply(200, response)

    # -- endpoints ---------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        url = urlsplit(self.path)
        if url.path == "/healthz":
            self._reply(200, {"status": "ok"})
        elif url.path == "/metrics":
            self._reply(200, self.service.metrics_snapshot())
        elif url.path == "/front":
            self._resolve("/front", dict(parse_qsl(url.query)))
        else:
            self._reply(404, {"error": f"unknown path {url.path!r}"})

    def do_POST(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        url = urlsplit(self.path)
        if url.path != "/query":
            self._reply(404, {"error": f"unknown path {url.path!r}"})
            return
        try:
            length = int(self.headers.get("Content-Length", "0"))
            payload = json.loads(self.rfile.read(length) or b"{}")
            if not isinstance(payload, dict):
                raise ValueError("query body must be a JSON object")
        except (ValueError, json.JSONDecodeError) as exc:
            self._reply(400, {"error": f"bad query body: {exc}"})
            return
        self._resolve("/query", payload)


class ServeServer(ThreadingHTTPServer):
    """The daemon's socket server bound to one :class:`SearchService`."""

    # Non-daemon threads + block_on_close: server_close() joins every
    # in-flight request — the graceful half of the SIGTERM drain.
    daemon_threads = False
    block_on_close = True

    def __init__(self, config: ServeConfig, service: SearchService):
        super().__init__((config.host, config.port), ServeHandler)
        self.config = config
        self.service = service

    @property
    def endpoint(self) -> Tuple[str, int]:
        """The actually-bound (host, port) — resolves ``port=0``."""
        return self.server_address[0], self.server_address[1]

    def write_endpoint_file(self) -> Optional[Path]:
        """Record where we listen in the state dir (atomic, for clients)."""
        if self.config.state_dir is None:
            return None
        import os

        host, port = self.endpoint
        path = Path(self.config.state_dir) / ENDPOINT_FILE
        atomic_write_json(
            path, {"host": host, "port": port, "pid": os.getpid()}
        )
        return path


def start_server(
    config: ServeConfig, warm: bool = True
) -> Tuple[ServeServer, threading.Thread]:
    """Bind, warm, and serve in a background thread (tests, benches).

    The returned server is already answering; stop it with
    ``server.shutdown(); server.server_close(); server.service.close()``.
    """
    service = SearchService(config)
    server = ServeServer(config, service)
    if warm:
        service.warm_start()
    server.write_endpoint_file()
    thread = threading.Thread(
        target=server.serve_forever, name="repro-serve", daemon=True
    )
    thread.start()
    return server, thread


def run_server(config: ServeConfig) -> int:
    """The blocking daemon loop with graceful SIGTERM/SIGINT drain.

    Sequence: bind, restore + warm, announce (stdout line + atomic
    ``endpoint.json``), serve until signalled, stop accepting, finish
    and answer every in-flight request, persist the front cache, exit
    0. Only used by ``python -m repro.serve``.
    """
    service = SearchService(config)
    server = ServeServer(config, service)
    host, port = server.endpoint

    warmed = service.warm_start()
    server.write_endpoint_file()
    print(
        f"repro-serve listening on http://{host}:{port} "
        f"(backend={config.backend}, workers={config.workers}, "
        f"warm fronts computed={warmed}, "
        f"restored={service.metrics.total_restored_fronts()})",
        flush=True,
    )

    def _drain(signum, frame) -> None:
        # shutdown() blocks until serve_forever exits; it must run off
        # the main thread, which is inside serve_forever right now.
        threading.Thread(
            target=server.shutdown, name="repro-serve-drain"
        ).start()

    previous = {
        sig: signal.signal(sig, _drain)
        for sig in (signal.SIGTERM, signal.SIGINT)
    }
    try:
        server.serve_forever()
        # Stop accepting, join every in-flight request thread, answer
        # them all, then write the final warm-restart snapshot.
        server.server_close()
        service.close()
    finally:
        for sig, handler in previous.items():
            signal.signal(sig, handler)
    snapshot = service.metrics_snapshot()
    print(
        f"repro-serve drained: {snapshot['queries']['total']} queries "
        f"served ({snapshot['queries']['coalesced']} coalesced, "
        f"{snapshot['front_cache']['hits']} front-cache hits)",
        flush=True,
    )
    return 0
