"""The search-as-a-service core: resolve queries to fronts, fast.

:class:`SearchService` is the transport-independent heart of the
daemon (the HTTP layer in :mod:`repro.serve.server` is a thin skin
over it, which is also what makes it unit-testable without sockets).
It layers three speedups over the offline pipeline, none of which may
change a single byte of any result:

1. **Front cache** — computed fronts are memoized in an
   :class:`~repro.core.EvaluationCache` keyed by
   :meth:`FrontQuery.key`, with the PR-5 LRU/eviction/stats semantics.
   A hit is a dictionary lookup; the paper-scale search behind it ran
   exactly once.
2. **Request coalescing** — concurrent *identical* queries (same
   canonical key) share one in-flight computation: the first caller
   computes, the rest block on an event and receive the same object.
   Queries differing in any key field (seed included) never coalesce.
3. **Warm state** — popular fronts are precomputed before traffic is
   accepted, and (with a state directory) every computed front is
   persisted through :mod:`repro.runstate` atomic checkpoints so a
   killed daemon restarts warm, serving bit-identical bytes without
   recomputation.

Cache-missing computations funnel through the shared
:mod:`repro.serve.pipeline` recipe — the same code path as ``repro
front`` — with population batches scored by ``predict_many`` via the
PR-6 :class:`~repro.parallel.EvaluationBackend`.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Optional, Tuple

from repro.core import EvaluationCache, Nsga2Result
from repro.core.nsga2 import BiObjective
from repro.resilience import (
    AdmissionController,
    BreakerOpenError,
    CancelToken,
    ChaosSpec,
    CircuitBreaker,
    DeadlineExceeded,
)
from repro.runstate import PhaseCheckpoint, RunDir
from repro.runstate.manifest import MANIFEST_NAME
from repro.serve.config import ServeConfig
from repro.serve.metrics import ServeMetrics
from repro.serve.pipeline import (
    build_front_predictor,
    front_search,
    replay_front_search,
    space_for_layout,
)
from repro.serve.query import FrontQuery

# Identity of the on-disk state (RunDir kind + config fingerprint).
STATE_KIND = "serve"
STATE_FORMAT = 1
# How many (device, layout, seed) predictor bundles stay resident.
# Predictor builds are deterministic, so eviction is a recompute, not
# a correctness event; the cap keeps hostile seed sweeps from growing
# the daemon without bound.
PREDICTOR_CACHE_SIZE = 8
# How often a coalescing follower wakes to check its leader is still
# alive (and its own deadline). Small enough that a died-mid-compute
# leader stalls followers for about a second, large enough to cost
# nothing on the healthy path.
_LEADER_POLL_S = 1.0


def cancel_token_from_payload(payload: dict) -> Optional[CancelToken]:
    """Pop an optional ``deadline_ms`` field into a :class:`CancelToken`.

    Mutates ``payload`` (the field is not a :class:`FrontQuery` key).
    ``None`` when no deadline was requested; ``ValueError`` on a
    non-positive or non-numeric value.
    """
    raw = payload.pop("deadline_ms", None)
    if raw is None:
        return None
    try:
        deadline_ms = float(raw)
    except (TypeError, ValueError) as exc:
        raise ValueError(f"deadline_ms must be a number: {raw!r}") from exc
    if deadline_ms <= 0:
        raise ValueError(f"deadline_ms must be positive: {deadline_ms!r}")
    return CancelToken.after_ms(deadline_ms)


@dataclass(frozen=True)
class CachedFront:
    """One resolved front: the query that names it plus the result."""

    query: FrontQuery
    front: Tuple[BiObjective, ...]
    num_evaluations: int

    def key(self) -> Tuple:
        return self.query.key()

    def to_dict(self) -> dict:
        return {
            "query": self.query.to_dict(),
            "front": [p.to_dict() for p in self.front],
            "num_evaluations": self.num_evaluations,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "CachedFront":
        return cls(
            query=FrontQuery.from_dict(payload["query"]),
            front=tuple(
                BiObjective.from_dict(p) for p in payload["front"]
            ),
            num_evaluations=int(payload["num_evaluations"]),
        )


class _InFlight:
    """One in-progress front computation other threads can wait on."""

    def __init__(self) -> None:
        self.ready = threading.Event()
        self.value: Optional[CachedFront] = None
        self.error: Optional[BaseException] = None
        # The computing thread. Followers poll it: a leader that dies
        # without publishing (thread killed, interpreter teardown)
        # would otherwise strand them on ``ready`` forever.
        self.leader = threading.current_thread()


class SearchService:
    """Resolve ``(space, device, seed, knobs)`` queries to Pareto fronts.

    Thread-safe: the HTTP server calls :meth:`resolve` from one thread
    per connection. All cache and coalescing bookkeeping happens under
    one lock; the expensive front computation itself runs outside it.
    """

    def __init__(self, config: ServeConfig) -> None:
        self.config = config
        self.metrics = ServeMetrics(window=config.metrics_window)
        self._lock = threading.Lock()
        self._front_cache = EvaluationCache(
            max_size=config.front_cache_size
        )
        self._inflight: Dict[Tuple, _InFlight] = {}
        self._bundles: "OrderedDict[Tuple, tuple]" = OrderedDict()
        self._table = self._load_table()
        self._layout_fingerprints: Dict[str, str] = {}
        self._checkpoint = self._open_state()
        self._restore()
        # Overload resilience (docs/robustness.md, "Online resilience").
        self.admission = AdmissionController(
            capacity=config.max_inflight,
            queue_depth=config.queue_depth,
            queue_timeout_s=config.queue_timeout_s,
        )
        self.breaker = CircuitBreaker(
            failure_threshold=config.breaker_failures,
            cooldown_s=config.breaker_cooldown_s,
            hang_timeout_s=config.hang_timeout_s,
        )
        self._chaos = (
            ChaosSpec.parse(config.chaos).injector()
            if config.chaos is not None
            else None
        )

    # -- crash-safe state ---------------------------------------------------------

    def _open_state(self) -> Optional[PhaseCheckpoint]:
        if self.config.state_dir is None:
            return None
        path = Path(self.config.state_dir)
        expect = {"format": STATE_FORMAT}
        if (path / MANIFEST_NAME).exists():
            run = RunDir.open(
                path, expect_kind=STATE_KIND, expect_config=expect
            )
        else:
            run = RunDir.create(path, STATE_KIND, expect, ("fronts",))
        return PhaseCheckpoint(run, "fronts")

    def _restore(self) -> None:
        """Reload the front cache from the last persisted snapshot."""
        if self._checkpoint is None:
            return
        saved = self._checkpoint.load()
        if saved is None:
            return
        self._front_cache.restore(
            saved["cache"],
            CachedFront.from_dict,
            key_fn=lambda value: value.query.key(),
        )
        self.metrics.record_restored(len(self._front_cache))

    def persist(self) -> None:
        """Atomically snapshot the front cache (counters included).

        Called after every cache-missing computation and at shutdown;
        a crash between calls loses at most fronts computed since the
        last call, never corrupts the snapshot (write-then-rename).
        """
        if self._checkpoint is None:
            return
        with self._lock:
            snapshot = self._front_cache.snapshot(CachedFront.to_dict)
        self._checkpoint.save({"format": STATE_FORMAT, "cache": snapshot})

    # -- tabular replay -----------------------------------------------------------

    def _load_table(self):
        """The configured tabular artifact, schema/checksum-verified.

        A bad artifact (corrupt columns, wrong schema, no recorded
        layout) raises at startup — refusing to serve beats serving
        fronts that silently came from the wrong table.
        """
        if self.config.table is None:
            return None
        # Local import: repro.tabular builds its columns through this
        # package's recipes, so the static dependency stays one-way.
        from repro.tabular import load_artifact

        return load_artifact(self.config.table)

    def _table_covers(self, query: FrontQuery) -> bool:
        """Whether the artifact can answer ``query`` bit-identically.

        Replay is only byte-equal to the live recipe when the table is
        exhaustive (the NSGA-II run samples freely), was built with the
        ``"front"`` recipe at the query's seed, has the query's device
        column, and fingerprints to the query's layout space. Anything
        else falls through to the live search — coverage is decided
        per query, never silently approximated.
        """
        table = self._table
        if table is None:
            return False
        if (
            not table.exhaustive
            or table.recipe != "front"
            or table.build_seed != query.seed
            or query.device not in table.devices
        ):
            return False
        with self._lock:
            fingerprint = self._layout_fingerprints.get(query.layout)
        if fingerprint is None:
            from repro.tabular import space_fingerprint

            # Computed outside the lock: deriving a fingerprint walks
            # the whole space definition. Two racing computations get
            # identical results; last insert wins harmlessly.
            fingerprint = space_fingerprint(space_for_layout(query.layout))
            with self._lock:
                self._layout_fingerprints[query.layout] = fingerprint
        return fingerprint == table.fingerprint

    # -- evaluation ---------------------------------------------------------------

    def _bundle(self, device: str, layout: str, seed: int):
        """(space, surrogate, predictor) for a query, built once.

        The bundle is deterministic in its key, so the small LRU here
        is purely a wall-clock optimization shared by every query that
        agrees on device/layout/seed.
        """
        key = (device, layout, seed)
        with self._lock:
            if key in self._bundles:
                self._bundles.move_to_end(key)
                return self._bundles[key]
        # Built outside the lock: LUT builds take seconds and must not
        # block unrelated cache-hit traffic. Two racing builders do
        # redundant (identical) work; last insert wins harmlessly.
        space = space_for_layout(layout)
        from repro.accuracy import AccuracySurrogate

        surrogate = AccuracySurrogate(space)
        predictor = build_front_predictor(
            space,
            device,
            seed,
            workers=self.config.workers,
            backend=self.config.backend,
        )
        bundle = (space, surrogate, predictor)
        with self._lock:
            self._bundles[key] = bundle
            self._bundles.move_to_end(key)
            while len(self._bundles) > PREDICTOR_CACHE_SIZE:
                self._bundles.popitem(last=False)
        return bundle

    def _compute(
        self, query: FrontQuery, warm: bool, cancel=None
    ) -> CachedFront:
        if self._table_covers(query):
            # Replay is milliseconds of column gathers — never breaker-
            # gated (it is itself the degraded-mode fallback) and never
            # chaos-faulted.
            result = replay_front_search(
                self._table.space,
                self._table,
                query.device,
                seed=query.seed,
                generations=query.generations,
                population_size=query.population_size,
                cancel=cancel,
            )
            self.metrics.record_front_computation(
                warm=warm, replayed=True
            )
            return CachedFront(
                query=query,
                front=tuple(result.front),
                num_evaluations=result.num_evaluations,
            )
        # The breaker guards only live computation; allow() is called
        # outside self._lock so a cooling-down breaker never blocks
        # cache-hit traffic.
        if not self.breaker.allow():
            raise BreakerOpenError(
                "circuit open for live front computation "
                f"(state={self.breaker.state})"
            )
        started = time.perf_counter()
        try:
            if self._chaos is not None and not warm:
                # Warmup is exempt: a chaos daemon must still come up.
                self._chaos.inject()
            space, surrogate, predictor = self._bundle(
                query.device, query.layout, query.seed
            )
            result = front_search(
                space,
                predictor,
                seed=query.seed,
                generations=query.generations,
                population_size=query.population_size,
                workers=self.config.workers,
                backend=self.config.backend,
                surrogate=surrogate,
                cancel=cancel,
            )
        except DeadlineExceeded:
            # The client's deadline, not the backend's health — unless
            # the computation also blew the hang budget, in which case
            # the backend is the problem.
            elapsed = time.perf_counter() - started
            if (
                self.config.hang_timeout_s is not None
                and elapsed >= self.config.hang_timeout_s
            ):
                self.breaker.record_failure(hang=True)
            raise
        except Exception:
            self.breaker.record_failure()
            raise
        self.breaker.record_success(
            elapsed_s=time.perf_counter() - started
        )
        self.metrics.record_front_computation(warm=warm)
        if result.backend_stats is not None:
            self.metrics.add_backend_stats(result.backend_stats)
        return CachedFront(
            query=query,
            front=tuple(result.front),
            num_evaluations=result.num_evaluations,
        )

    # -- the cached, coalescing front resolver ------------------------------------

    def _await_leader(self, key: Tuple, flight: _InFlight, cancel) -> bool:
        """Follower wait: ``True`` when the leader published, ``False``
        when it died unpublished (the stale flight is removed and the
        caller should retake leadership).

        The wait is bounded (:data:`_LEADER_POLL_S` per tick) so a
        leader thread that dies without running its ``finally`` block —
        killed, or torn down mid-compute — strands no followers; each
        tick also checks the follower's own deadline.
        """
        while not flight.ready.wait(timeout=_LEADER_POLL_S):
            if cancel is not None:
                cancel.check(stage="coalesce-wait")
            if not flight.leader.is_alive():
                with self._lock:
                    if self._inflight.get(key) is flight:
                        del self._inflight[key]
                self.metrics.record_leader_requeued()
                return False
        return True

    def front(
        self, query: FrontQuery, warm: bool = False, cancel=None
    ) -> CachedFront:
        """The front for ``query`` — cached, coalesced, bit-exact.

        Exactly one computation runs per canonical key at any moment;
        concurrent identical queries wait on it and share its result.
        ``cancel`` (a :class:`~repro.resilience.CancelToken`) bounds
        both the computation (checked per generation) and any coalesced
        wait.
        """
        key = query.key()
        while True:
            with self._lock:
                if query in self._front_cache:
                    # Counted hit + LRU touch; the eval_fn can never run.
                    return self._front_cache.get_or_eval(
                        query, _unreachable
                    )
                flight = self._inflight.get(key)
                if flight is None:
                    flight = _InFlight()
                    self._inflight[key] = flight
                    leader = True
                else:
                    leader = False
            if not leader:
                self.metrics.record_coalesced()
                if not self._await_leader(key, flight, cancel):
                    # Leader died unpublished; retake leadership.
                    continue
                if flight.error is not None:
                    if isinstance(flight.error, DeadlineExceeded):
                        # The *leader's* deadline expired, not ours —
                        # recompute under our own (possibly absent)
                        # deadline instead of inheriting its 504.
                        continue
                    raise flight.error
                if flight.value is not None:
                    return flight.value
                # Leader vanished without a value (only possible on
                # interpreter teardown paths); recompute.
                continue
            try:
                value = self._compute(query, warm=warm, cancel=cancel)
                with self._lock:
                    # Counted miss + insertion (+ LRU eviction if full).
                    value = self._front_cache.get_or_eval(
                        query, lambda _q: value
                    )
                flight.value = value
            except BaseException as exc:
                flight.error = exc
                raise
            finally:
                with self._lock:
                    self._inflight.pop(key, None)
                flight.ready.set()
            self.persist()
            return value

    # -- request-facing API --------------------------------------------------------

    def resolve(self, payload: dict, cancel=None) -> dict:
        """One query request -> one JSON-ready response.

        ``payload`` carries :class:`FrontQuery` fields plus an optional
        ``target_ms``; with a target, the response adds the most
        accurate front member within it (``best``/``feasible``) — the
        millisecond ``knee_under`` cut of the cached front. An optional
        ``deadline_ms`` field bounds the request (504 upstream on
        expiry); pre-built tokens arrive via ``cancel``.

        Healthy responses are byte-identical to the pre-resilience
        daemon (no new keys). When the circuit is open the response is
        served from a fallback and flagged ``"degraded": true`` with a
        ``degraded_reason`` — degraded fronts are never cached and
        never persisted.
        """
        payload = dict(payload)
        if cancel is None:
            cancel = cancel_token_from_payload(payload)
        else:
            payload.pop("deadline_ms", None)
        target = payload.pop("target_ms", None)
        if target is not None:
            try:
                target = float(target)
            except (TypeError, ValueError) as exc:
                raise ValueError(
                    f"target_ms must be a number: {target!r}"
                ) from exc
        query = FrontQuery.from_dict(payload)
        degraded_reason: Optional[str] = None
        served_query: Optional[FrontQuery] = None
        try:
            cached = self.front(query, cancel=cancel)
        except BreakerOpenError:
            cached, degraded_reason = self._degraded_fallback(query)
            served_query = cached.query
            self.metrics.record_degraded()
        response = {
            "query": query.to_dict(),
            "target_ms": target,
            "num_evaluations": cached.num_evaluations,
            "front": [p.to_dict() for p in cached.front],
        }
        if degraded_reason is not None:
            response["degraded"] = True
            response["degraded_reason"] = degraded_reason
            if served_query is not None and served_query != query:
                response["served_query"] = served_query.to_dict()
        if target is not None:
            try:
                best = Nsga2Result(front=list(cached.front)).knee_under(
                    target
                )
            except ValueError:
                response["best"] = None
                response["feasible"] = False
            else:
                response["best"] = best.to_dict()
                response["feasible"] = True
        return response

    # -- graceful degradation ------------------------------------------------------

    def _fingerprint_matches(self, layout: str) -> bool:
        """Whether the artifact fingerprints to ``layout``'s space."""
        table = self._table
        if table is None:
            return False
        with self._lock:
            fingerprint = self._layout_fingerprints.get(layout)
        if fingerprint is None:
            from repro.tabular import space_fingerprint

            fingerprint = space_fingerprint(space_for_layout(layout))
            with self._lock:
                self._layout_fingerprints[layout] = fingerprint
        return fingerprint == table.fingerprint

    def _degraded_fallback(
        self, query: FrontQuery
    ) -> Tuple[CachedFront, str]:
        """Answer ``query`` without live computation (circuit open).

        Preference order:

        1. **Tabular replay at the query's seed** when the artifact
           fingerprints to the query's layout and has its device —
           even though the columns were recorded at the *table's*
           build seed, so the bytes differ from a live search (which
           is exactly why the response is flagged degraded rather
           than served silently).
        2. **Nearest cached front** for the same (device, layout):
           deterministically the entry with the smallest seed distance
           (ties to the smaller seed).
        3. Nothing available: re-raise :class:`BreakerOpenError` (the
           HTTP layer sheds with 503 + ``Retry-After``).

        Fallback results are returned, never cached: the moment the
        breaker closes, the next identical query recomputes the real
        bytes.
        """
        table = self._table
        if (
            table is not None
            and table.exhaustive
            and table.recipe == "front"
            and query.device in table.devices
            and self._fingerprint_matches(query.layout)
        ):
            result = replay_front_search(
                table.space,
                table,
                query.device,
                seed=query.seed,
                generations=query.generations,
                population_size=query.population_size,
            )
            reason = (
                "circuit open; replayed from tabular artifact built "
                f"at seed {table.build_seed}"
            )
            return (
                CachedFront(
                    query=query,
                    front=tuple(result.front),
                    num_evaluations=result.num_evaluations,
                ),
                reason,
            )
        with self._lock:
            candidates = [
                entry
                for entry in self._front_cache.values()
                if entry.query.device == query.device
                and entry.query.layout == query.layout
            ]
        if candidates:
            nearest = min(
                candidates,
                key=lambda e: (
                    abs(e.query.seed - query.seed),
                    e.query.seed,
                    e.query.key(),
                ),
            )
            reason = (
                "circuit open; nearest cached front "
                f"(seed {nearest.query.seed})"
            )
            return nearest, reason
        raise BreakerOpenError(
            "circuit open and no degraded fallback available "
            "(no covering table, no cached front for "
            f"{query.device}/{query.layout})"
        )

    def warm_start(self) -> int:
        """Precompute the configured warm fronts; returns how many
        were computed fresh (snapshot-restored ones are already warm)."""
        computed_before = self.metrics.total_front_computations()
        for query in self.config.warm:
            self.front(query, warm=True)
        return self.metrics.total_front_computations() - computed_before

    def metrics_snapshot(self) -> dict:
        """The ``/metrics`` payload (front-cache stats included)."""
        with self._lock:
            cache_stats = self._front_cache.stats()
        return self.metrics.snapshot(
            front_cache_stats=cache_stats,
            admission=self.admission.snapshot(),
            breaker=self.breaker.snapshot(),
        )

    def close(self) -> None:
        """Final persist — part of the graceful-drain contract."""
        self.persist()


def _unreachable(query: FrontQuery) -> CachedFront:
    raise AssertionError(
        f"cache hit for {query!r} invoked the eval function"
    )


__all__ = ["CachedFront", "SearchService", "cancel_token_from_payload"]
