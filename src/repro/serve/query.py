"""The serving layer's query model and cache keys.

A :class:`FrontQuery` names one deterministic Pareto-front computation:
``(layout, device, seed, NSGA-II knobs)``. Everything that changes the
result is in the key; everything that does not (the latency target, the
evaluation backend, worker counts) is deliberately *outside* it:

* ``target_ms`` never enters the key because one NSGA-II front covers
  every target — "best architecture for device D at latency target T"
  is a millisecond ``knee_under(T)`` cut of the cached front.
* ``workers``/``backend`` are wall-clock knobs with bit-identical
  results (see ``docs/parallel.md``), so caching across them is sound.

The canonical key tuple (:meth:`FrontQuery.key`) is what the front
cache, request coalescing, and the warm-restart snapshot all index by.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Tuple

# Layouts the serving layer resolves. ``a``/``b`` are the paper spaces
# the CLI serves; ``mini``/``proxy`` are the small spaces used by tests
# and smoke deployments where cold-start cost matters.
SERVABLE_LAYOUTS = ("a", "b", "mini", "proxy")
SERVABLE_DEVICES = ("gpu", "cpu", "edge")


@dataclass(frozen=True)
class FrontQuery:
    """One canonical front computation: space, device, seed, EA knobs.

    Defaults mirror ``repro front`` (:class:`~repro.core.Nsga2Config`),
    so a default query served over HTTP is bit-identical to the default
    offline CLI run.
    """

    device: str = "edge"
    layout: str = "a"
    seed: int = 0
    generations: int = 20
    population_size: int = 50

    def __post_init__(self) -> None:
        if self.device not in SERVABLE_DEVICES:
            raise ValueError(
                f"unknown device {self.device!r}; "
                f"expected one of {SERVABLE_DEVICES}"
            )
        if self.layout not in SERVABLE_LAYOUTS:
            raise ValueError(
                f"unknown layout {self.layout!r}; "
                f"expected one of {SERVABLE_LAYOUTS}"
            )
        if self.generations < 1 or self.population_size < 4:
            raise ValueError("need >= 1 generation and population >= 4")

    def key(self) -> Tuple:
        """The canonical cache/coalescing key.

        Named ``key`` (not ``cache_key``) so a :class:`FrontQuery` can
        be stored in an :class:`~repro.core.EvaluationCache`, which
        keys entries by ``obj.key()``.
        """
        return (
            "front",
            self.device,
            self.layout,
            self.seed,
            self.generations,
            self.population_size,
        )

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: dict) -> "FrontQuery":
        """Parse a query from an HTTP body / query string / snapshot.

        Unknown fields raise (a typo'd knob silently falling back to a
        default would serve the wrong front); numeric fields accept the
        strings an URL query yields.
        """
        known = {
            "device": str,
            "layout": str,
            "seed": int,
            "generations": int,
            "population_size": int,
        }
        unknown = set(payload) - set(known)
        if unknown:
            raise ValueError(
                f"unknown query field(s) {sorted(unknown)}; "
                f"expected a subset of {sorted(known)}"
            )
        kwargs = {}
        for field, cast in known.items():
            if field in payload:
                try:
                    kwargs[field] = cast(payload[field])
                except (TypeError, ValueError) as exc:
                    raise ValueError(
                        f"query field {field!r} must be {cast.__name__}: "
                        f"{payload[field]!r}"
                    ) from exc
        return cls(**kwargs)
