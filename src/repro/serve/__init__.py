"""Search-as-a-service: a long-running daemon answering NAS queries.

The millions-of-users scenario from the roadmap: instead of a cold
multi-second search per "best architecture for device D at latency
target T" question, a resident :class:`SearchService` answers from a
warm, LRU-bounded, crash-persistent front cache — with request
coalescing so a thundering herd of identical queries costs one search.
Served results are bit-identical to offline
:class:`~repro.core.Nsga2Search` runs with the same seed/config; the
serving layer is a throughput and caching skin, never a semantics
change.

Run it::

    python -m repro.serve --backend serial --state-dir /var/run/repro

and talk to it with :class:`ServeClient` (or plain HTTP — see
``docs/serving.md`` for the query model, cache keys, warm-restart
semantics, and the metrics glossary).
"""

from repro.serve.client import ServeClient, ServeError
from repro.serve.config import ServeConfig, warm_query_from_spec
from repro.serve.metrics import ServeMetrics
from repro.serve.pipeline import (
    build_front_predictor,
    front_search,
    space_for_layout,
)
from repro.serve.query import FrontQuery
from repro.serve.server import ServeServer, run_server, start_server
from repro.serve.service import (
    CachedFront,
    SearchService,
    cancel_token_from_payload,
)

__all__ = [
    "CachedFront",
    "FrontQuery",
    "SearchService",
    "ServeClient",
    "ServeConfig",
    "ServeError",
    "ServeMetrics",
    "ServeServer",
    "build_front_predictor",
    "cancel_token_from_payload",
    "front_search",
    "run_server",
    "space_for_layout",
    "start_server",
    "warm_query_from_spec",
]
