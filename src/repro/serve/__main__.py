"""``python -m repro.serve`` — the daemon entry point.

Binds, restores/precomputes warm fronts, prints one ``listening on``
line, then serves until SIGTERM/SIGINT, draining in-flight requests
and persisting the front cache before exiting 0. State problems (a
corrupt snapshot, a state directory started under different settings)
exit 2 with a one-line message, matching the CLI's contract.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.runstate import RunStateError
from repro.serve.config import BACKEND_CHOICES, ServeConfig, warm_query_from_spec
from repro.serve.server import run_server


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.serve",
        description="search-as-a-service daemon (see docs/serving.md)",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port", type=int, default=0,
        help="TCP port; 0 (default) binds an ephemeral port, printed "
             "at startup and recorded in the state dir's endpoint.json",
    )
    parser.add_argument(
        "--backend", choices=BACKEND_CHOICES, default="auto",
        help="evaluation backend for cache-missing front computations; "
             "results are bit-identical either way",
    )
    parser.add_argument(
        "--workers", type=int, default=0,
        help="evaluation worker processes; 0 = serial (the default)",
    )
    parser.add_argument(
        "--cache-size", type=int, default=64, metavar="N",
        help="LRU cap on cached fronts (default 64); 0 = unbounded",
    )
    parser.add_argument(
        "--state-dir", default=None, metavar="DIR",
        help="crash-safe state directory: fronts persist atomically "
             "and reload on restart (repro.runstate)",
    )
    parser.add_argument(
        "--warm", action="append", default=[], metavar="DEV:LAYOUT[:SEED]",
        help="precompute this front before accepting traffic "
             "(repeatable), e.g. --warm edge:a --warm gpu:a:7",
    )
    parser.add_argument(
        "--table", default=None, metavar="DIR",
        help="tabular artifact directory (repro tabulate); covered "
             "queries replay from its columns — same bytes, "
             "milliseconds instead of a live search",
    )
    parser.add_argument(
        "--quiet", action="store_true",
        help="suppress per-request access logs (metrics still record)",
    )
    overload = parser.add_argument_group(
        "overload resilience (docs/robustness.md)"
    )
    overload.add_argument(
        "--max-inflight", type=int, default=0, metavar="N",
        help="max concurrently-computing query requests; 0 (default) "
             "= unlimited; beyond it requests queue then shed with "
             "a deterministic 503 + Retry-After",
    )
    overload.add_argument(
        "--queue-depth", type=int, default=16, metavar="N",
        help="admission queue slots behind --max-inflight (default 16)",
    )
    overload.add_argument(
        "--queue-timeout", type=float, default=30.0, metavar="S",
        help="max seconds a request waits for admission (default 30)",
    )
    overload.add_argument(
        "--retry-after", type=int, default=1, metavar="S",
        help="Retry-After seconds on shed responses (default 1)",
    )
    overload.add_argument(
        "--breaker-failures", type=int, default=5, metavar="N",
        help="consecutive live-computation failures that open the "
             "circuit breaker (default 5)",
    )
    overload.add_argument(
        "--breaker-cooldown", type=float, default=30.0, metavar="S",
        help="seconds the breaker stays open before a half-open "
             "trial (default 30)",
    )
    overload.add_argument(
        "--hang-timeout", type=float, default=None, metavar="S",
        help="live computations slower than this count as breaker "
             "failures even when they return (default: no budget)",
    )
    overload.add_argument(
        "--chaos", default=None, metavar="SPEC",
        help="chaos-injection spec for the resilience harness, e.g. "
             "'seed=7,error=0.3,burst=2,hang=0.1,hang_s=2'; faults "
             "live computations only, never warmup or replay",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        config = ServeConfig(
            host=args.host,
            port=args.port,
            backend=args.backend,
            workers=args.workers,
            front_cache_size=args.cache_size or None,
            state_dir=args.state_dir,
            warm=tuple(warm_query_from_spec(s) for s in args.warm),
            table=args.table,
            quiet=args.quiet,
            max_inflight=args.max_inflight or None,
            queue_depth=args.queue_depth,
            queue_timeout_s=args.queue_timeout,
            retry_after_s=args.retry_after,
            breaker_failures=args.breaker_failures,
            breaker_cooldown_s=args.breaker_cooldown,
            hang_timeout_s=args.hang_timeout,
            chaos=args.chaos,
        )
        return run_server(config)
    except RunStateError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
