"""``python -m repro.serve`` — the daemon entry point.

Binds, restores/precomputes warm fronts, prints one ``listening on``
line, then serves until SIGTERM/SIGINT, draining in-flight requests
and persisting the front cache before exiting 0. State problems (a
corrupt snapshot, a state directory started under different settings)
exit 2 with a one-line message, matching the CLI's contract.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.runstate import RunStateError
from repro.serve.config import BACKEND_CHOICES, ServeConfig, warm_query_from_spec
from repro.serve.server import run_server


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.serve",
        description="search-as-a-service daemon (see docs/serving.md)",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port", type=int, default=0,
        help="TCP port; 0 (default) binds an ephemeral port, printed "
             "at startup and recorded in the state dir's endpoint.json",
    )
    parser.add_argument(
        "--backend", choices=BACKEND_CHOICES, default="auto",
        help="evaluation backend for cache-missing front computations; "
             "results are bit-identical either way",
    )
    parser.add_argument(
        "--workers", type=int, default=0,
        help="evaluation worker processes; 0 = serial (the default)",
    )
    parser.add_argument(
        "--cache-size", type=int, default=64, metavar="N",
        help="LRU cap on cached fronts (default 64); 0 = unbounded",
    )
    parser.add_argument(
        "--state-dir", default=None, metavar="DIR",
        help="crash-safe state directory: fronts persist atomically "
             "and reload on restart (repro.runstate)",
    )
    parser.add_argument(
        "--warm", action="append", default=[], metavar="DEV:LAYOUT[:SEED]",
        help="precompute this front before accepting traffic "
             "(repeatable), e.g. --warm edge:a --warm gpu:a:7",
    )
    parser.add_argument(
        "--table", default=None, metavar="DIR",
        help="tabular artifact directory (repro tabulate); covered "
             "queries replay from its columns — same bytes, "
             "milliseconds instead of a live search",
    )
    parser.add_argument(
        "--quiet", action="store_true",
        help="suppress per-request access logs (metrics still record)",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        config = ServeConfig(
            host=args.host,
            port=args.port,
            backend=args.backend,
            workers=args.workers,
            front_cache_size=args.cache_size or None,
            state_dir=args.state_dir,
            warm=tuple(warm_query_from_spec(s) for s in args.warm),
            table=args.table,
            quiet=args.quiet,
        )
        return run_server(config)
    except RunStateError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
