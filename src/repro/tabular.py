"""Tabular NAS benchmark artifacts (NAS-Bench style).

Precomputes (latency, energy, surrogate-accuracy) for a set of
architectures and serves them as an O(1) lookup table — the standard
way to let search-algorithm research iterate without touching the
simulator (or, in the real world, the device farm). Architectures are
keyed by their exact mixed-radix index (:mod:`repro.space.encoding`),
so the table is stable across processes and compact on disk.

Small spaces (the ``mini`` demo space: 50 625 architectures) can be
tabulated *exhaustively*; paper-scale spaces are sampled.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, Iterator, Optional, Tuple, Union

import numpy as np

from repro.runstate.atomic import atomic_write_text
from repro.space.architecture import Architecture
from repro.space.encoding import (
    architecture_to_index,
    index_to_architecture,
    space_cardinality,
)
from repro.space.search_space import SearchSpace


@dataclass(frozen=True)
class TableEntry:
    """Precomputed metrics of one architecture."""

    latency_ms: float
    accuracy: float
    energy_mj: Optional[float] = None


class TabularBenchmark:
    """An immutable arch -> metrics lookup over one search space."""

    def __init__(self, space: SearchSpace, entries: Dict[int, TableEntry],
                 exhaustive: bool = False):
        self.space = space
        self._entries = dict(entries)
        self.exhaustive = exhaustive

    # -- construction -----------------------------------------------------------

    @classmethod
    def build(
        cls,
        space: SearchSpace,
        latency_fn: Callable[[Architecture], float],
        accuracy_fn: Callable[[Architecture], float],
        energy_fn: Optional[Callable[[Architecture], float]] = None,
        num_archs: Optional[int] = 1000,
        seed: int = 0,
    ) -> "TabularBenchmark":
        """Tabulate the space.

        ``num_archs=None`` tabulates *exhaustively* (guarded to spaces
        of at most one million architectures); otherwise ``num_archs``
        distinct architectures are sampled uniformly.
        """
        total = space_cardinality(space)
        entries: Dict[int, TableEntry] = {}

        def record(index: int, arch: Architecture) -> None:
            entries[index] = TableEntry(
                latency_ms=latency_fn(arch),
                accuracy=accuracy_fn(arch),
                energy_mj=energy_fn(arch) if energy_fn is not None else None,
            )

        if num_archs is None:
            if total > 1_000_000:
                raise ValueError(
                    f"space has {total} architectures; exhaustive "
                    "tabulation is capped at 1e6 — pass num_archs instead"
                )
            for index in range(total):
                record(index, index_to_architecture(space, index))
            return cls(space, entries, exhaustive=True)

        if num_archs < 1:
            raise ValueError("num_archs must be >= 1 (or None for exhaustive)")
        rng = np.random.default_rng(seed)
        attempts = 0
        target = min(num_archs, total)
        while len(entries) < target and attempts < num_archs * 50:
            attempts += 1
            arch = space.sample(rng)
            index = architecture_to_index(space, arch)
            if index not in entries:
                record(index, arch)
        return cls(space, entries, exhaustive=(len(entries) == total))

    # -- queries -----------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, arch: Architecture) -> bool:
        try:
            return architecture_to_index(self.space, arch) in self._entries
        except ValueError:
            return False

    def query(self, arch: Architecture) -> TableEntry:
        """O(1) metrics lookup; raises ``KeyError`` for untabulated archs."""
        index = architecture_to_index(self.space, arch)
        if index not in self._entries:
            raise KeyError(
                "architecture not tabulated "
                f"(table holds {len(self)} of {space_cardinality(self.space)})"
            )
        return self._entries[index]

    def entries(self) -> Iterator[Tuple[Architecture, TableEntry]]:
        """Iterate (architecture, entry) pairs (index order)."""
        for index in sorted(self._entries):
            yield index_to_architecture(self.space, index), self._entries[index]

    def best_under(self, latency_budget_ms: float) -> Tuple[Architecture, TableEntry]:
        """Most accurate tabulated architecture within a latency budget.

        On an exhaustive table this is the space's *true* optimum —
        the oracle answer search algorithms are benchmarked against.
        """
        best = None
        best_index = None
        for index, entry in self._entries.items():
            if entry.latency_ms > latency_budget_ms:
                continue
            if best is None or entry.accuracy > best.accuracy:
                best = entry
                best_index = index
        if best is None:
            raise ValueError(f"no entry within {latency_budget_ms} ms")
        return index_to_architecture(self.space, best_index), best

    # -- (de)serialization ----------------------------------------------------------

    def to_json(self) -> str:
        payload = {
            "exhaustive": self.exhaustive,
            "entries": [
                {
                    "index": str(index),  # big ints as strings
                    "latency_ms": e.latency_ms,
                    "accuracy": e.accuracy,
                    "energy_mj": e.energy_mj,
                }
                for index, e in sorted(self._entries.items())
            ],
        }
        return json.dumps(payload)

    @classmethod
    def from_json(cls, space: SearchSpace, text: str) -> "TabularBenchmark":
        payload = json.loads(text)
        entries = {
            int(e["index"]): TableEntry(
                latency_ms=float(e["latency_ms"]),
                accuracy=float(e["accuracy"]),
                energy_mj=(
                    float(e["energy_mj"]) if e["energy_mj"] is not None else None
                ),
            )
            for e in payload["entries"]
        }
        return cls(space, entries, exhaustive=bool(payload["exhaustive"]))

    def save(self, path: Union[str, Path]) -> Path:
        return atomic_write_text(Path(path), self.to_json() + "\n")

    @classmethod
    def load(cls, space: SearchSpace, path: Union[str, Path]) -> "TabularBenchmark":
        return cls.from_json(space, Path(path).read_text())
