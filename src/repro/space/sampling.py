"""Architecture sampling utilities."""

from __future__ import annotations

from typing import List

import numpy as np

from repro.space.architecture import Architecture
from repro.space.search_space import SearchSpace


def sample_uniform(space: SearchSpace, rng: np.random.Generator) -> Architecture:
    """Uniformly sample one architecture (paper's ``arch ~ U(A)``)."""
    return space.sample(rng)


def sample_architectures(
    space: SearchSpace,
    count: int,
    rng: np.random.Generator,
    unique: bool = False,
    max_attempts_factor: int = 50,
) -> List[Architecture]:
    """Sample ``count`` architectures from the space.

    With ``unique=True`` duplicates are rejected (bounded by
    ``count * max_attempts_factor`` attempts, which only matters for
    tiny shrunk spaces).
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    if not unique:
        return [space.sample(rng) for _ in range(count)]

    seen = set()
    out: List[Architecture] = []
    attempts = 0
    limit = max(count * max_attempts_factor, 10)
    while len(out) < count and attempts < limit:
        arch = space.sample(rng)
        attempts += 1
        if arch.key() in seen:
            continue
        seen.add(arch.key())
        out.append(arch)
    if len(out) < count:
        raise RuntimeError(
            f"could only draw {len(out)}/{count} unique architectures; "
            "the (shrunk) space may be smaller than requested"
        )
    return out


def latin_op_sweep(
    space: SearchSpace, layer: int, rng: np.random.Generator, per_op: int = 1
) -> List[Architecture]:
    """Sample architectures covering every candidate operator of a layer.

    Used by the latency-LUT builder to guarantee every (layer, op) cell
    receives measurements.
    """
    out: List[Architecture] = []
    for op in space.candidate_ops[layer]:
        for _ in range(per_op):
            arch = space.sample(rng).with_op(layer, op)
            out.append(arch)
    return out
