"""Layout names -> search spaces, shared by every entry point.

The CLI, the serving daemon, and the tabular artifact loader all accept
the same four layout names; resolving them here (rather than in each
front end) is what lets a tabular artifact record the layout it was
built from and be reopened anywhere without the caller reconstructing
the space by hand.
"""

from __future__ import annotations

from repro.space.config import imagenet_a, imagenet_b, mini, proxy
from repro.space.search_space import SearchSpace

LAYOUT_NAMES = ("a", "b", "mini", "proxy")

_LAYOUT_CONFIGS = {
    "a": imagenet_a,
    "b": imagenet_b,
    "mini": mini,
    "proxy": proxy,
}


def space_for_layout(layout: str) -> SearchSpace:
    """The search space a layout name serves."""
    configs = _LAYOUT_CONFIGS
    if layout not in configs:
        raise ValueError(
            f"unknown layout {layout!r}; expected one of {sorted(configs)}"
        )
    return SearchSpace(configs[layout]())
