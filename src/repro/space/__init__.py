"""The HSCoNAS search space.

The space follows the paper's setup: a supernet with ``L = 20`` layers,
``K = 5`` candidate operators per layer (ShuffleNetV2 blocks with kernel
sizes 3/5/7, a ShuffleNetV2-Xception block, and a skip connection), and
``n = 10`` channel scaling factors per layer — ``50^20 ~= 9.5e33``
architectures, the size the paper quotes.
"""

from repro.space.config import (
    SpaceConfig,
    StageSpec,
    imagenet_a,
    imagenet_b,
    mini,
    proxy,
)
from repro.space.operators import (
    KERNEL_CHOICES,
    NUM_OPERATORS,
    OperatorSpec,
    Primitive,
    SKIP_INDEX,
    get_operator,
    operators,
)
from repro.space.architecture import Architecture
from repro.space.encoding import (
    architecture_to_index,
    index_to_architecture,
    space_cardinality,
)
from repro.space.geometry import LayerGeometry, build_layer_geometry
from repro.space.layouts import LAYOUT_NAMES, space_for_layout
from repro.space.search_space import SearchSpace
from repro.space.sampling import sample_architectures, sample_uniform

__all__ = [
    "SpaceConfig",
    "StageSpec",
    "imagenet_a",
    "imagenet_b",
    "mini",
    "proxy",
    "OperatorSpec",
    "Primitive",
    "operators",
    "get_operator",
    "NUM_OPERATORS",
    "KERNEL_CHOICES",
    "SKIP_INDEX",
    "Architecture",
    "architecture_to_index",
    "index_to_architecture",
    "space_cardinality",
    "LayerGeometry",
    "build_layer_geometry",
    "LAYOUT_NAMES",
    "space_for_layout",
    "SearchSpace",
    "sample_uniform",
    "sample_architectures",
]
