"""Per-layer geometry derived from a :class:`SpaceConfig`.

The geometry fixes, for every searchable layer, the maximum input/output
channels, the stride, and the spatial resolution at which the layer
executes — everything the analytic cost model needs besides the chosen
operator and channel factor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.space.config import SpaceConfig


@dataclass(frozen=True)
class LayerGeometry:
    """Static geometry of one searchable layer."""

    layer: int
    stage: int
    stride: int
    max_in_channels: int
    max_out_channels: int
    in_size: int

    @property
    def out_size(self) -> int:
        return self.in_size // self.stride


def build_layer_geometry(config: SpaceConfig) -> List[LayerGeometry]:
    """Compute the geometry of every searchable layer, in order.

    The stem convolution (stride 2) runs before layer 0, so layer 0 sees
    ``input_size // 2`` and ``stem_channels`` inputs.
    """
    geoms: List[LayerGeometry] = []
    size = config.input_size // 2  # after the stride-2 stem
    in_ch = config.stem_channels
    channels = config.layer_channels()
    strides = config.layer_strides()
    for layer, (out_ch, stride) in enumerate(zip(channels, strides)):
        geoms.append(
            LayerGeometry(
                layer=layer,
                stage=config.stage_of_layer(layer),
                stride=stride,
                max_in_channels=in_ch,
                max_out_channels=out_ch,
                in_size=size,
            )
        )
        size //= stride
        in_ch = out_ch
    return geoms
