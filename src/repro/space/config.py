"""Search-space configuration.

Two families of presets:

* **Paper-scale** layouts used for the analytical experiments (latency
  modeling, Table I): 224x224 inputs, 20 layers, channel layouts
  ``[48,128,256,512]`` (HSCoNet-A) and ``[68,168,336,672]`` (HSCoNet-B),
  mirroring the Single-Path-One-Shot stage plan the paper builds on.
* A **proxy** layout for the real numpy-training path: same topology,
  drastically smaller so supernet training with real gradients finishes
  in seconds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple


@dataclass(frozen=True)
class StageSpec:
    """One stage of the backbone: ``num_blocks`` layers at ``channels``.

    The first block of every stage has stride 2 (spatial downsampling);
    the rest have stride 1.
    """

    num_blocks: int
    channels: int

    def __post_init__(self) -> None:
        if self.num_blocks < 1:
            raise ValueError("stage needs at least one block")
        if self.channels < 2:
            raise ValueError("stage needs at least two channels (for the split)")


@dataclass(frozen=True)
class SpaceConfig:
    """Full definition of a supernet search space.

    Attributes
    ----------
    name:
        Identifier used in reports and LUT caching.
    input_size:
        Square input resolution (224 for ImageNet-scale).
    input_channels:
        Image channels (3 for RGB).
    num_classes:
        Classifier output width.
    stem_channels:
        Output channels of the stride-2 stem convolution.
    stages:
        Backbone stage plan; total blocks across stages is ``L``.
    head_channels:
        Channels of the final 1x1 conv before global pooling.
    channel_factors:
        The dynamic channel scaling factors ``C`` (paper Sec. III-B).
    """

    name: str
    input_size: int = 224
    input_channels: int = 3
    num_classes: int = 1000
    stem_channels: int = 16
    stages: Tuple[StageSpec, ...] = ()
    head_channels: int = 1024
    channel_factors: Tuple[float, ...] = field(
        default=(0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0)
    )

    def __post_init__(self) -> None:
        if not self.stages:
            raise ValueError("a space needs at least one stage")
        if not self.channel_factors:
            raise ValueError("a space needs at least one channel factor")
        for f in self.channel_factors:
            if not 0.0 < f <= 1.0:
                raise ValueError(f"channel factor {f} outside (0, 1]")
        # The latency LUT keys factors on a one-decimal grid
        # (hardware.lut._quantize_factor), so factors that collide after
        # quantization would silently share a LUT cell.
        quantized = [round(float(f), 1) for f in self.channel_factors]
        if len(set(quantized)) != len(quantized):
            dupes = sorted(
                {q for q in quantized if quantized.count(q) > 1}
            )
            raise ValueError(
                "channel factors collide after one-decimal quantization: "
                f"{self.channel_factors} -> duplicates at {dupes}"
            )
        if list(self.channel_factors) != sorted(self.channel_factors):
            raise ValueError(
                f"channel factors must be sorted ascending: {self.channel_factors}"
            )
        if self.input_size % (2 ** (1 + len(self.stages))):
            # stem stride 2 plus one stride-2 block per stage
            raise ValueError(
                "input_size must be divisible by the total downsampling factor"
            )

    @property
    def num_layers(self) -> int:
        """``L`` — the number of searchable layers."""
        return sum(s.num_blocks for s in self.stages)

    @property
    def num_factors(self) -> int:
        return len(self.channel_factors)

    def stage_of_layer(self, layer: int) -> int:
        """Stage index that layer ``layer`` (0-based) belongs to."""
        if not 0 <= layer < self.num_layers:
            raise IndexError(f"layer {layer} out of range")
        offset = 0
        for i, stage in enumerate(self.stages):
            if layer < offset + stage.num_blocks:
                return i
            offset += stage.num_blocks
        raise AssertionError("unreachable")

    def layer_channels(self) -> List[int]:
        """Maximum output channels ``S^l`` for each layer, in order."""
        out: List[int] = []
        for stage in self.stages:
            out.extend([stage.channels] * stage.num_blocks)
        return out

    def layer_strides(self) -> List[int]:
        """Stride of each layer (2 at stage starts, else 1)."""
        out: List[int] = []
        for stage in self.stages:
            out.append(2)
            out.extend([1] * (stage.num_blocks - 1))
        return out


def imagenet_a() -> SpaceConfig:
    """Paper-scale space with the HSCoNet-A channel layout [48,128,256,512]."""
    return SpaceConfig(
        name="imagenet-a",
        stages=(
            StageSpec(4, 48),
            StageSpec(4, 128),
            StageSpec(8, 256),
            StageSpec(4, 512),
        ),
    )


def imagenet_b() -> SpaceConfig:
    """Paper-scale space with the HSCoNet-B channel layout [68,168,336,672]."""
    return SpaceConfig(
        name="imagenet-b",
        stages=(
            StageSpec(4, 68),
            StageSpec(4, 168),
            StageSpec(8, 336),
            StageSpec(4, 672),
        ),
    )


def mini(num_classes: int = 8) -> SpaceConfig:
    """Minimal space for *real supernet training* demonstrations.

    Four searchable layers, three channel factors, 16x16 inputs: small
    enough that weight-sharing training visibly learns within a few
    hundred SGD steps (the paper's 100-epoch ImageNet budget compressed
    to benchmark scale), while keeping all five operator choices so the
    shrinking and masking mechanisms are fully exercised.
    """
    return SpaceConfig(
        name="mini",
        input_size=16,
        num_classes=num_classes,
        stem_channels=8,
        stages=(StageSpec(2, 12), StageSpec(2, 24)),
        head_channels=48,
        channel_factors=(0.5, 0.75, 1.0),
    )


def proxy(num_classes: int = 10) -> SpaceConfig:
    """Tiny space for real numpy supernet training (same topology family).

    32x32 inputs, 8 searchable layers over two stages. Five operator
    choices and ten channel factors are preserved so every HSCoNAS
    mechanism (masking, shrinking, EA) exercises identically to the
    paper-scale space.
    """
    return SpaceConfig(
        name="proxy",
        input_size=32,
        num_classes=num_classes,
        stem_channels=8,
        stages=(StageSpec(4, 16), StageSpec(4, 32)),
        head_channels=64,
    )
