"""Compact integer encoding of architectures.

Every architecture of a (possibly shrunk) search space maps bijectively
to an index in ``[0, |A|)`` via mixed-radix positional encoding — the
per-layer digit is the (op, factor) choice. Python's arbitrary-precision
integers make this exact even for the paper-scale ``|A| ~ 9.5e33``.

Uses: compact storage of visited sets, exact uniform sampling via
``index_to_architecture(rng.integers(|A|))``-style constructions, and
cheap equality/dedup keys in logs.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.space.architecture import Architecture
from repro.space.search_space import SearchSpace


def _layer_choices(space: SearchSpace, layer: int) -> List[Tuple[int, float]]:
    """Ordered (op, factor) choices of one layer."""
    return [
        (op, factor)
        for op in space.candidate_ops[layer]
        for factor in space.candidate_factors[layer]
    ]


def space_cardinality(space: SearchSpace) -> int:
    """Exact |A| as a Python integer (no float rounding)."""
    total = 1
    for layer in range(space.num_layers):
        total *= len(_layer_choices(space, layer))
    return total


def architecture_to_index(space: SearchSpace, arch: Architecture) -> int:
    """Mixed-radix index of ``arch`` within ``space``.

    Raises ``ValueError`` if the architecture is not in the space.
    """
    if not space.contains(arch):
        raise ValueError("architecture is not a member of the space")
    index = 0
    for layer in range(space.num_layers):
        choices = _layer_choices(space, layer)
        key = (arch.ops[layer], arch.factors[layer])
        digit = next(
            i for i, (op, f) in enumerate(choices)
            if op == key[0] and abs(f - key[1]) < 1e-9
        )
        index = index * len(choices) + digit
    return index


def index_to_architecture(space: SearchSpace, index: int) -> Architecture:
    """Inverse of :func:`architecture_to_index`."""
    total = space_cardinality(space)
    if not 0 <= index < total:
        raise ValueError(f"index {index} outside [0, {total})")
    digits: List[int] = []
    for layer in reversed(range(space.num_layers)):
        radix = len(_layer_choices(space, layer))
        digits.append(index % radix)
        index //= radix
    digits.reverse()
    ops = []
    factors = []
    for layer, digit in enumerate(digits):
        op, factor = _layer_choices(space, layer)[digit]
        ops.append(op)
        factors.append(factor)
    return Architecture(tuple(ops), tuple(factors))
