"""The K=5 candidate operators and their analytic cost descriptions.

Following the paper (Sec. IV-B), the operator set consists of
ShuffleNetV2 building blocks with kernel sizes 3/5/7, the
ShuffleNetV2-Xception block (three stacked depthwise-3x3 stages), and a
skip connection.

Each operator describes itself as a list of :class:`Primitive` kernels
(convolutions and memory-movement ops) with exact MAC and byte counts.
The hardware simulator charges each primitive a launch overhead plus a
roofline execution time, which is what makes two architectures with the
same total FLOPs differ in latency — the paper's Fig. 2 observation.

FLOPs are counted as multiply-accumulates (MACs), the convention used by
the mobile-NAS literature the paper compares against (e.g. MobileNetV2
"300M FLOPs").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

_DTYPE_BYTES = 4  # devices execute fp32


@dataclass(frozen=True)
class Primitive:
    """One device kernel: a conv / depthwise conv / memory movement.

    Attributes
    ----------
    name:
        Human-readable tag, e.g. ``"conv1x1"`` or ``"dwconv5"``.
    kind:
        ``"conv"``, ``"dwconv"``, or ``"memory"`` — the device model
        assigns different achievable-throughput fractions per kind
        (depthwise convs utilize wide SIMD/tensor units poorly).
    flops:
        MAC count for batch size 1.
    bytes_read, bytes_written:
        Activation + weight traffic in bytes for batch size 1.
    """

    name: str
    kind: str
    flops: float
    bytes_read: float
    bytes_written: float

    def __post_init__(self) -> None:
        if self.kind not in ("conv", "dwconv", "memory"):
            raise ValueError(f"unknown primitive kind {self.kind!r}")
        if self.flops < 0 or self.bytes_read < 0 or self.bytes_written < 0:
            raise ValueError("primitive costs must be non-negative")


def _conv1x1(name: str, cin: int, cout: int, h: int, w: int) -> Primitive:
    return Primitive(
        name=name,
        kind="conv",
        flops=float(h * w * cin * cout),
        bytes_read=float((h * w * cin + cin * cout) * _DTYPE_BYTES),
        bytes_written=float(h * w * cout * _DTYPE_BYTES),
    )


def _dwconv(
    name: str, channels: int, k: int, h_in: int, w_in: int, stride: int
) -> Primitive:
    h_out, w_out = h_in // stride, w_in // stride
    return Primitive(
        name=name,
        kind="dwconv",
        flops=float(h_out * w_out * channels * k * k),
        bytes_read=float((h_in * w_in * channels + channels * k * k) * _DTYPE_BYTES),
        bytes_written=float(h_out * w_out * channels * _DTYPE_BYTES),
    )


def _memory(name: str, elements: int) -> Primitive:
    return Primitive(
        name=name,
        kind="memory",
        flops=0.0,
        bytes_read=float(elements * _DTYPE_BYTES),
        bytes_written=float(elements * _DTYPE_BYTES),
    )


@dataclass(frozen=True)
class OperatorSpec:
    """Analytic description of one candidate operator.

    ``kind`` is one of ``"shuffle"`` (ShuffleNetV2 block with kernel
    ``kernel_size``), ``"shuffle_x"`` (Xception variant), or ``"skip"``.
    """

    index: int
    name: str
    kind: str
    kernel_size: int

    # -- cost model ---------------------------------------------------------

    def primitives(
        self, cin: int, cout: int, hw_in: int, stride: int
    ) -> List[Primitive]:
        """Device kernels executed by this operator.

        Parameters
        ----------
        cin, cout:
            *Active* input/output channel counts (after channel scaling).
        hw_in:
            Input spatial size (square).
        stride:
            1 or 2.
        """
        if cin < 1 or cout < 1:
            raise ValueError("channel counts must be positive")
        if stride not in (1, 2):
            raise ValueError(f"unsupported stride {stride}")
        hw_out = hw_in // stride
        if self.kind == "skip":
            if stride == 1:
                # True identity: free on device (fused away). Any
                # difference between active in/out widths comes from
                # channel *masking*, which costs nothing — the module
                # is still a pass-through.
                return []
            # Reduction skip: 1x1 projection conv at stride 2 keeps the
            # operator legal in downsampling layers (K=5 everywhere, so
            # |A| = 50^20 matches the paper's quoted space size).
            return [
                _memory("skip-pool", cin * hw_out * hw_out),
                _conv1x1("skip-proj", cin, cout, hw_out, hw_out),
            ]

        k = self.kernel_size
        half = max(1, cout // 2)
        prims: List[Primitive] = []
        if stride == 1:
            # Basic unit: left half passes through, right half is
            # transformed. The split means the branch sees cin//2 inputs.
            cin_half = max(1, cin // 2)
            if self.kind == "shuffle":
                prims.append(_conv1x1("pw1", cin_half, half, hw_in, hw_in))
                prims.append(_dwconv(f"dw{k}", half, k, hw_in, hw_in, 1))
                prims.append(_conv1x1("pw2", half, half, hw_in, hw_in))
            else:  # shuffle_x: dw3 -> pw -> dw3 -> pw -> dw3 -> pw
                prims.append(_dwconv("xdw1", cin_half, 3, hw_in, hw_in, 1))
                prims.append(_conv1x1("xpw1", cin_half, half, hw_in, hw_in))
                prims.append(_dwconv("xdw2", half, 3, hw_in, hw_in, 1))
                prims.append(_conv1x1("xpw2", half, half, hw_in, hw_in))
                prims.append(_dwconv("xdw3", half, 3, hw_in, hw_in, 1))
                prims.append(_conv1x1("xpw3", half, half, hw_in, hw_in))
        else:
            # Downsampling unit: both branches consume the full input.
            # Left branch: dw k s2 + 1x1; right branch as in the basic unit.
            prims.append(_dwconv(f"l-dw{k}", cin, k, hw_in, hw_in, 2))
            prims.append(_conv1x1("l-pw", cin, half, hw_out, hw_out))
            if self.kind == "shuffle":
                prims.append(_conv1x1("r-pw1", cin, half, hw_in, hw_in))
                prims.append(_dwconv(f"r-dw{k}", half, k, hw_in, hw_in, 2))
                prims.append(_conv1x1("r-pw2", half, half, hw_out, hw_out))
            else:
                prims.append(_dwconv("r-xdw1", cin, 3, hw_in, hw_in, 2))
                prims.append(_conv1x1("r-xpw1", cin, half, hw_out, hw_out))
                prims.append(_dwconv("r-xdw2", half, 3, hw_out, hw_out, 1))
                prims.append(_conv1x1("r-xpw2", half, half, hw_out, hw_out))
                prims.append(_dwconv("r-xdw3", half, 3, hw_out, hw_out, 1))
                prims.append(_conv1x1("r-xpw3", half, half, hw_out, hw_out))
        # Concat + channel shuffle: pure data movement over the output.
        prims.append(_memory("shuffle", 2 * half * hw_out * hw_out))
        return prims

    def flops(self, cin: int, cout: int, hw_in: int, stride: int) -> float:
        """Total MACs of this operator at the given geometry."""
        return sum(p.flops for p in self.primitives(cin, cout, hw_in, stride))

    def params(self, cin: int, cout: int, stride: int) -> float:
        """Weight count (convolution kernels; BN affine ignored)."""
        if self.kind == "skip":
            if stride == 1:
                return 0.0  # identity pass-through, mask or not
            return float(cin * cout)
        k = self.kernel_size
        half = max(1, cout // 2)
        if stride == 1:
            cin_half = max(1, cin // 2)
            if self.kind == "shuffle":
                return float(cin_half * half + half * k * k + half * half)
            return float(
                cin_half * 9 + cin_half * half + half * 9 + half * half
                + half * 9 + half * half
            )
        if self.kind == "shuffle":
            return float(
                cin * k * k + cin * half  # left branch
                + cin * half + half * k * k + half * half  # right branch
            )
        return float(
            cin * k * k + cin * half
            + cin * 9 + cin * half + half * 9 + half * half + half * 9 + half * half
        )

    @property
    def is_skip(self) -> bool:
        return self.kind == "skip"


# The paper's operator set (K = 5).
_OPERATORS: Tuple[OperatorSpec, ...] = (
    OperatorSpec(0, "shuffle3x3", "shuffle", 3),
    OperatorSpec(1, "shuffle5x5", "shuffle", 5),
    OperatorSpec(2, "shuffle7x7", "shuffle", 7),
    OperatorSpec(3, "shuffle_x3x3", "shuffle_x", 3),
    OperatorSpec(4, "skip", "skip", 1),
)

NUM_OPERATORS = len(_OPERATORS)
SKIP_INDEX = 4
KERNEL_CHOICES = (3, 5, 7)


def operators() -> Tuple[OperatorSpec, ...]:
    """The full operator set, indexed 0..K-1."""
    return _OPERATORS


def get_operator(index: int) -> OperatorSpec:
    """Operator spec by index."""
    if not 0 <= index < NUM_OPERATORS:
        raise IndexError(f"operator index {index} out of range [0, {NUM_OPERATORS})")
    return _OPERATORS[index]
