"""The search space ``A`` and its shrinkable subspaces.

A :class:`SearchSpace` tracks, for every layer, the candidate operator
indices and channel factors that remain available. Progressive space
shrinking (paper Sec. III-C) produces smaller spaces by fixing a single
operator for a layer; the EA then samples and mutates strictly inside
the shrunk space.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.nn.layers.mask import channels_kept
from repro.space.architecture import Architecture
from repro.space.config import SpaceConfig
from repro.space.geometry import LayerGeometry, build_layer_geometry
from repro.space.operators import NUM_OPERATORS, Primitive, get_operator

_DTYPE_BYTES = 4


class SearchSpace:
    """Candidate sets per layer plus the analytic cost model.

    Parameters
    ----------
    config:
        The space definition (stage plan, factors, resolution).
    candidate_ops:
        Optional per-layer operator candidate lists; defaults to all K
        operators for every layer.
    candidate_factors:
        Optional per-layer factor candidate lists; defaults to the
        config's full factor set everywhere.
    """

    def __init__(
        self,
        config: SpaceConfig,
        candidate_ops: Optional[Sequence[Sequence[int]]] = None,
        candidate_factors: Optional[Sequence[Sequence[float]]] = None,
    ):
        self.config = config
        self.geometry: List[LayerGeometry] = build_layer_geometry(config)
        num_layers = config.num_layers

        if candidate_ops is None:
            candidate_ops = [list(range(NUM_OPERATORS))] * num_layers
        if candidate_factors is None:
            candidate_factors = [list(config.channel_factors)] * num_layers
        if len(candidate_ops) != num_layers or len(candidate_factors) != num_layers:
            raise ValueError("candidate lists must have one entry per layer")

        self.candidate_ops: List[Tuple[int, ...]] = []
        for layer, ops in enumerate(candidate_ops):
            ops = tuple(sorted(set(int(o) for o in ops)))
            if not ops:
                raise ValueError(f"layer {layer} has no candidate operators")
            for o in ops:
                if not 0 <= o < NUM_OPERATORS:
                    raise ValueError(f"operator index {o} out of range")
            self.candidate_ops.append(ops)

        self.candidate_factors: List[Tuple[float, ...]] = []
        for layer, factors in enumerate(candidate_factors):
            factors = tuple(sorted(set(float(f) for f in factors)))
            if not factors:
                raise ValueError(f"layer {layer} has no candidate factors")
            self.candidate_factors.append(factors)

    # -- basic properties -----------------------------------------------------

    @property
    def num_layers(self) -> int:
        return self.config.num_layers

    def space_size(self) -> float:
        """|A| — the number of distinct architectures (may exceed float64
        integer precision; returned as float, e.g. ``9.5e33``)."""
        size = 1.0
        for ops, factors in zip(self.candidate_ops, self.candidate_factors):
            size *= len(ops) * len(factors)
        return size

    def log10_size(self) -> float:
        """log10 |A| — used to verify the 3-orders-per-stage shrinking claim."""
        total = 0.0
        for ops, factors in zip(self.candidate_ops, self.candidate_factors):
            total += math.log10(len(ops) * len(factors))
        return total

    def contains(self, arch: Architecture) -> bool:
        """Whether ``arch`` lies inside this (possibly shrunk) space."""
        if arch.num_layers != self.num_layers:
            return False
        for layer, (op, factor) in enumerate(zip(arch.ops, arch.factors)):
            if op not in self.candidate_ops[layer]:
                return False
            if not any(
                abs(factor - f) < 1e-9 for f in self.candidate_factors[layer]
            ):
                return False
        return True

    # -- sampling ----------------------------------------------------------------

    def sample(self, rng: np.random.Generator) -> Architecture:
        """Uniformly sample one architecture from the space."""
        ops = tuple(
            int(rng.choice(cands)) for cands in self.candidate_ops
        )
        factors = tuple(
            float(rng.choice(cands)) for cands in self.candidate_factors
        )
        return Architecture(ops, factors)

    def max_architecture(self) -> Architecture:
        """The largest architecture (first op candidates, factor 1.0-ish)."""
        ops = tuple(cands[0] for cands in self.candidate_ops)
        factors = tuple(max(cands) for cands in self.candidate_factors)
        return Architecture(ops, factors)

    # -- shrinking -------------------------------------------------------------

    def fix_operator(self, layer: int, op_index: int) -> "SearchSpace":
        """Return a new space with layer ``layer`` pinned to ``op_index``."""
        if not 0 <= layer < self.num_layers:
            raise IndexError(f"layer {layer} out of range")
        if op_index not in self.candidate_ops[layer]:
            raise ValueError(
                f"operator {op_index} is not a candidate for layer {layer}"
            )
        ops = [list(c) for c in self.candidate_ops]
        ops[layer] = [op_index]
        return SearchSpace(self.config, ops, self.candidate_factors)

    def restrict_to_operator_subspace(self, layer: int, op_index: int) -> "SearchSpace":
        """The subspace used when *evaluating* candidate ``op_index`` for a
        layer during progressive shrinking — identical to
        :meth:`fix_operator` but kept as a distinct name to mirror the
        paper's procedure (sample-from-subspace vs. commit)."""
        return self.fix_operator(layer, op_index)

    def fixed_layers(self) -> Dict[int, int]:
        """Layers whose operator is already pinned: ``{layer: op_index}``."""
        return {
            layer: ops[0]
            for layer, ops in enumerate(self.candidate_ops)
            if len(ops) == 1
        }

    # -- analytic costs --------------------------------------------------------

    def active_channels(self, arch: Architecture) -> List[Tuple[int, int]]:
        """Active (in, out) channel counts per layer under channel scaling.

        The active output of layer ``l`` is ``round(S^l * c^l)`` (at
        least 1); the active input is the previous layer's active output
        (the stem provides full channels to layer 0). A stride-1 skip is
        an identity: its mask can only *remove* channels, so its active
        output is ``min(active_in, round(S^l * c^l))``.
        """
        self._check_arch(arch)
        result: List[Tuple[int, int]] = []
        cin = self.config.stem_channels
        for geom, op_idx, factor in zip(self.geometry, arch.ops, arch.factors):
            cout = channels_kept(geom.max_out_channels, factor)
            op = get_operator(op_idx)
            if op.is_skip and geom.stride == 1:
                cout = min(cin, cout)
            result.append((cin, cout))
            cin = cout
        return result

    def arch_primitives(self, arch: Architecture) -> List[List[Primitive]]:
        """Per-layer primitive lists (searchable layers only).

        The stem/head primitives are provided separately by
        :meth:`stem_head_primitives` because the latency LUT (paper
        Eq. 2) is built over the searchable operators while stem/head
        cost is part of the bias term's measured end-to-end latency.
        """
        self._check_arch(arch)
        channels = self.active_channels(arch)
        out: List[List[Primitive]] = []
        for geom, op_idx, (cin, cout) in zip(self.geometry, arch.ops, channels):
            op = get_operator(op_idx)
            out.append(op.primitives(cin, cout, geom.in_size, geom.stride))
        return out

    def stem_primitives(self) -> List[Primitive]:
        """Primitives of the fixed stem convolution."""
        cfg = self.config
        s_in = cfg.input_size
        s_stem = s_in // 2
        stem = Primitive(
            name="stem-conv3x3",
            kind="conv",
            flops=float(s_stem * s_stem * cfg.input_channels * cfg.stem_channels * 9),
            bytes_read=float(
                (s_in * s_in * cfg.input_channels
                 + cfg.input_channels * cfg.stem_channels * 9) * _DTYPE_BYTES
            ),
            bytes_written=float(s_stem * s_stem * cfg.stem_channels * _DTYPE_BYTES),
        )
        return [stem]

    def head_primitives(self, last_c: int) -> List[Primitive]:
        """Primitives of the classifier head for a given input width."""
        cfg = self.config
        s_out = self.geometry[-1].out_size
        head_conv = Primitive(
            name="head-conv1x1",
            kind="conv",
            flops=float(s_out * s_out * last_c * cfg.head_channels),
            bytes_read=float(
                (s_out * s_out * last_c + last_c * cfg.head_channels) * _DTYPE_BYTES
            ),
            bytes_written=float(s_out * s_out * cfg.head_channels * _DTYPE_BYTES),
        )
        gap = Primitive(
            name="head-gap",
            kind="memory",
            flops=0.0,
            bytes_read=float(s_out * s_out * cfg.head_channels * _DTYPE_BYTES),
            bytes_written=float(cfg.head_channels * _DTYPE_BYTES),
        )
        fc = Primitive(
            name="head-fc",
            kind="conv",
            flops=float(cfg.head_channels * cfg.num_classes),
            bytes_read=float(
                (cfg.head_channels + cfg.head_channels * cfg.num_classes) * _DTYPE_BYTES
            ),
            bytes_written=float(cfg.num_classes * _DTYPE_BYTES),
        )
        return [head_conv, gap, fc]

    def stem_head_primitives(self, arch: Architecture) -> List[Primitive]:
        """Stem + head primitives for an architecture (head input width
        follows the last layer's active channels)."""
        last_c = self.active_channels(arch)[-1][1]
        return self.stem_primitives() + self.head_primitives(last_c)

    def arch_flops(self, arch: Architecture) -> float:
        """Total MACs including stem and head."""
        total = sum(
            p.flops for layer in self.arch_primitives(arch) for p in layer
        )
        total += sum(p.flops for p in self.stem_head_primitives(arch))
        return total

    def arch_params(self, arch: Architecture) -> float:
        """Total weight count including stem and head."""
        self._check_arch(arch)
        cfg = self.config
        channels = self.active_channels(arch)
        total = float(cfg.input_channels * cfg.stem_channels * 9)
        for geom, op_idx, (cin, cout) in zip(self.geometry, arch.ops, channels):
            total += get_operator(op_idx).params(cin, cout, geom.stride)
        last_c = channels[-1][1]
        total += float(last_c * cfg.head_channels)
        total += float(cfg.head_channels * cfg.num_classes + cfg.num_classes)
        return total

    # -- internals ------------------------------------------------------------

    def _check_arch(self, arch: Architecture) -> None:
        if arch.num_layers != self.num_layers:
            raise ValueError(
                f"architecture has {arch.num_layers} layers; "
                f"space expects {self.num_layers}"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SearchSpace(config={self.config.name!r}, "
            f"layers={self.num_layers}, log10|A|={self.log10_size():.1f})"
        )
