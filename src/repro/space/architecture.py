"""Architecture encoding ``arch = {op^l, c^l}`` for l = 1..L.

An :class:`Architecture` is an immutable pair of tuples — operator
indices and channel scaling factors — plus serialization and identity
helpers. All mutation happens in the evolutionary-search module by
constructing new instances.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

from repro.space.operators import NUM_OPERATORS, get_operator


@dataclass(frozen=True)
class Architecture:
    """One point in the search space.

    Attributes
    ----------
    ops:
        Operator index per layer (``0..K-1``).
    factors:
        Channel scaling factor per layer, each in ``(0, 1]``.
    """

    ops: Tuple[int, ...]
    factors: Tuple[float, ...]

    def __post_init__(self) -> None:
        # Coerce numpy scalars (rng.choice / rng.integers outputs) so
        # hashing, equality, and JSON serialization are type-stable.
        object.__setattr__(self, "ops", tuple(int(o) for o in self.ops))
        object.__setattr__(self, "factors", tuple(float(f) for f in self.factors))
        if len(self.ops) != len(self.factors):
            raise ValueError(
                f"ops ({len(self.ops)}) and factors ({len(self.factors)}) "
                "must have the same length"
            )
        if not self.ops:
            raise ValueError("architecture must have at least one layer")
        for op in self.ops:
            if not 0 <= op < NUM_OPERATORS:
                raise ValueError(f"operator index {op} out of range")
        for f in self.factors:
            if not 0.0 < f <= 1.0:
                raise ValueError(f"channel factor {f} outside (0, 1]")

    # -- identity ------------------------------------------------------------

    @property
    def num_layers(self) -> int:
        return len(self.ops)

    def key(self) -> Tuple:
        """Hashable identity (used for dedup in EA populations)."""
        return (self.ops, self.factors)

    def digest(self) -> str:
        """Stable short hash, also used to seed per-arch surrogate noise."""
        payload = json.dumps(
            {"ops": list(self.ops), "factors": [round(f, 6) for f in self.factors]},
            sort_keys=True,
        )
        return hashlib.sha256(payload.encode()).hexdigest()[:16]

    # -- introspection ---------------------------------------------------------

    def operator_names(self) -> Tuple[str, ...]:
        return tuple(get_operator(i).name for i in self.ops)

    def depth(self) -> int:
        """Number of non-skip layers (effective depth)."""
        return sum(1 for i in self.ops if not get_operator(i).is_skip)

    def with_op(self, layer: int, op_index: int) -> "Architecture":
        """Copy with one layer's operator replaced."""
        ops = list(self.ops)
        ops[layer] = op_index
        return Architecture(tuple(ops), self.factors)

    def with_factor(self, layer: int, factor: float) -> "Architecture":
        """Copy with one layer's channel factor replaced."""
        factors = list(self.factors)
        factors[layer] = factor
        return Architecture(self.ops, tuple(factors))

    # -- (de)serialization ----------------------------------------------------

    def to_dict(self) -> Dict:
        return {"ops": list(self.ops), "factors": list(self.factors)}

    @classmethod
    def from_dict(cls, payload: Dict) -> "Architecture":
        return cls(tuple(payload["ops"]), tuple(payload["factors"]))

    @classmethod
    def uniform(cls, num_layers: int, op_index: int = 0, factor: float = 1.0) -> "Architecture":
        """All-same-operator architecture (useful in tests and baselines)."""
        return cls((op_index,) * num_layers, (factor,) * num_layers)

    def __str__(self) -> str:
        parts = [
            f"{get_operator(op).name}@{f:.1f}" for op, f in zip(self.ops, self.factors)
        ]
        return "Arch[" + ", ".join(parts) + "]"


def validate_sequence(ops: Sequence[int], factors: Sequence[float]) -> Architecture:
    """Build an :class:`Architecture` from loose sequences with validation."""
    return Architecture(tuple(int(o) for o in ops), tuple(float(f) for f in factors))
