"""Hardware substrate: device simulators and the paper's latency predictor.

The paper measures on three physical devices — an Nvidia Quadro GV100
(GPU, batch 32), an Intel Xeon Gold 6136 (CPU, batch 1), and an Nvidia
Jetson Xavier in power mode 6 (edge, batch 16). This reproduction stands
them in with analytical roofline-style simulators
(:class:`~repro.hardware.device.DeviceModel`): each primitive kernel is
charged a launch overhead plus ``max(compute, memory)`` time with
op-kind- and size-dependent utilization, layers pay a boundary
(communication) overhead, and measurements carry multiplicative noise.

On top of the simulated devices sits the paper's contribution — the
latency lookup table plus calibrated bias ``B``
(:class:`~repro.hardware.predictor.LatencyPredictor`, Eq. 2-3).
"""

from repro.hardware.spec import DeviceSpec, cpu_spec, edge_spec, gpu_spec
from repro.hardware.degradation import DegradationReport
from repro.hardware.device import DeviceModel, get_device
from repro.hardware.faults import (
    FlakyDevice,
    ProbeError,
    ProbeTimeout,
    RetryPolicy,
    run_with_retry,
)
from repro.hardware.profiler import OnDeviceProfiler, robust_median
from repro.hardware.lut import DenseLatencyTable, LatencyLUT
from repro.hardware.predictor import LatencyPredictor, PredictorReport
from repro.hardware.metrics import pearson, rmse, spearman
from repro.hardware.calibration import calibrate_time_scale
from repro.hardware.energy import EnergyModel, EnergyPredictor
from repro.hardware.cost_model import SearchCostModel
from repro.hardware.ledger import MeasurementLedger
from repro.hardware.proxy_predictor import FlopsLatencyPredictor
from repro.hardware.regression_predictor import FeatureLatencyPredictor

__all__ = [
    "DeviceSpec",
    "gpu_spec",
    "cpu_spec",
    "edge_spec",
    "DeviceModel",
    "get_device",
    "DegradationReport",
    "FlakyDevice",
    "ProbeError",
    "ProbeTimeout",
    "RetryPolicy",
    "run_with_retry",
    "OnDeviceProfiler",
    "robust_median",
    "DenseLatencyTable",
    "LatencyLUT",
    "LatencyPredictor",
    "PredictorReport",
    "rmse",
    "pearson",
    "spearman",
    "calibrate_time_scale",
    "EnergyModel",
    "EnergyPredictor",
    "MeasurementLedger",
    "SearchCostModel",
    "FlopsLatencyPredictor",
    "FeatureLatencyPredictor",
]
