"""Feature-regression latency predictor (nn-Meter-style comparator).

Between the FLOPs-affine straw man and the paper's exhaustive LUT sits
the kernel-level *regression* approach (as in nn-Meter): describe each
operator by cheap features — MACs split by kind, bytes moved, kernel
count — and fit a linear model on measured architectures. It needs far
fewer measurements than a LUT build, at some accuracy cost; the
ablation benchmark quantifies where it lands between the two.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.hardware.metrics import mean_bias, pearson, rmse, spearman
from repro.hardware.predictor import PredictorReport
from repro.hardware.profiler import OnDeviceProfiler
from repro.space.architecture import Architecture
from repro.space.search_space import SearchSpace

_FEATURE_NAMES = (
    "conv_macs",
    "dwconv_macs",
    "bytes_moved",
    "kernel_count",
    "layer_count",
    "bias",
)


def architecture_features(space: SearchSpace, arch: Architecture) -> np.ndarray:
    """The regression feature vector of one architecture.

    MACs are split by kind because device efficiency differs per kind;
    the kernel and (non-empty) layer counts capture launch/boundary
    overheads that no MAC count sees.
    """
    conv_macs = 0.0
    dw_macs = 0.0
    bytes_moved = 0.0
    kernel_count = 0.0
    layer_count = 0.0
    layers = space.arch_primitives(arch)
    extra = space.stem_head_primitives(arch)
    for group in list(layers) + [extra]:
        if not group:
            continue
        layer_count += 1.0
        for prim in group:
            kernel_count += 1.0
            bytes_moved += prim.bytes_read + prim.bytes_written
            if prim.kind == "dwconv":
                dw_macs += prim.flops
            else:
                conv_macs += prim.flops
    return np.array([
        conv_macs / 1e6,
        dw_macs / 1e6,
        bytes_moved / 1e6,
        kernel_count,
        layer_count,
        1.0,
    ])


class FeatureLatencyPredictor:
    """Least-squares linear model over :func:`architecture_features`."""

    def __init__(self, space: SearchSpace, device_key: str = "unknown"):
        self.space = space
        self.device_key = device_key
        self.weights: Optional[np.ndarray] = None

    @property
    def fitted(self) -> bool:
        return self.weights is not None

    def fit(
        self,
        profiler: OnDeviceProfiler,
        num_archs: int = 40,
        seed: int = 0,
        archs: Optional[Sequence[Architecture]] = None,
    ) -> "FeatureLatencyPredictor":
        """Fit on measured architectures (ridge-regularized lstsq)."""
        if archs is None:
            rng = np.random.default_rng(seed)
            archs = [self.space.sample(rng) for _ in range(num_archs)]
        if len(archs) < len(_FEATURE_NAMES):
            raise ValueError(
                f"need at least {len(_FEATURE_NAMES)} architectures to fit"
            )
        features = np.stack(
            [architecture_features(self.space, a) for a in archs]
        )
        measured = np.array(profiler.measure_many_ms(self.space, list(archs)))
        # Small ridge term keeps the fit stable when features correlate.
        lam = 1e-6
        gram = features.T @ features + lam * np.eye(features.shape[1])
        self.weights = np.linalg.solve(gram, features.T @ measured)
        self.device_key = profiler.device.spec.key
        return self

    def predict(self, arch: Architecture) -> float:
        """Predicted latency in milliseconds."""
        if self.weights is None:
            raise RuntimeError("call fit() before predict()")
        return float(architecture_features(self.space, arch) @ self.weights)

    def predict_many(self, archs: Sequence[Architecture]) -> List[float]:
        return [self.predict(a) for a in archs]

    def evaluate(
        self, profiler: OnDeviceProfiler, archs: Sequence[Architecture]
    ) -> PredictorReport:
        """Same report format as the other predictors."""
        if not archs:
            raise ValueError("evaluation needs at least one architecture")
        measured = profiler.measure_many_ms(self.space, list(archs))
        predicted = self.predict_many(archs)
        return PredictorReport(
            device_key=self.device_key,
            num_archs=len(archs),
            rmse_ms=rmse(predicted, measured),
            mae_ms=float(np.mean(np.abs(np.array(predicted) - np.array(measured)))),
            bias_ms=mean_bias(predicted, measured),
            pearson_r=pearson(predicted, measured),
            spearman_rho=spearman(predicted, measured),
        )

    def coefficients(self) -> dict:
        """Named fitted coefficients (interpretability / debugging)."""
        if self.weights is None:
            raise RuntimeError("call fit() before reading coefficients")
        return dict(zip(_FEATURE_NAMES, (float(w) for w in self.weights)))
