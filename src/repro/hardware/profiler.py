"""On-device measurement methodology: warmup + repeats + median.

Real latency profiling discards warmup iterations (JIT, cache warming,
clock ramp) and aggregates repeated runs. The simulated devices add
per-measurement noise, so the same methodology applies here and the
profiler is the single place that owns it.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.hardware.device import DeviceModel
from repro.hardware.ledger import MeasurementLedger
from repro.space.architecture import Architecture
from repro.space.search_space import SearchSpace


class OnDeviceProfiler:
    """Measures architecture latency the way a practitioner would.

    Parameters
    ----------
    device:
        Target device model.
    warmup:
        Measurements discarded before aggregation.
    repeats:
        Measurements aggregated (by median) per architecture.
    seed:
        Seed of the measurement-noise stream.
    ledger:
        Optional cost ledger; every measurement session is recorded so
        the search-cost claims are checkable.
    """

    def __init__(
        self,
        device: DeviceModel,
        warmup: int = 3,
        repeats: int = 5,
        seed: int = 0,
        ledger: Optional[MeasurementLedger] = None,
    ):
        if warmup < 0 or repeats < 1:
            raise ValueError("warmup must be >= 0 and repeats >= 1")
        self.device = device
        self.warmup = warmup
        self.repeats = repeats
        self.ledger = ledger
        self._rng = np.random.default_rng(seed)

    def measure_ms(self, space: SearchSpace, arch: Architecture) -> float:
        """Median latency over ``repeats`` noisy runs (after warmup)."""
        if self.ledger is not None:
            self.ledger.record_measurement(runs=self.warmup + self.repeats)
        for _ in range(self.warmup):
            self.device.latency_ms(space, arch, rng=self._rng)
        runs = [
            self.device.latency_ms(space, arch, rng=self._rng)
            for _ in range(self.repeats)
        ]
        return float(np.median(runs))

    def measure_many_ms(
        self, space: SearchSpace, archs: List[Architecture]
    ) -> List[float]:
        """Measure a batch of architectures."""
        return [self.measure_ms(space, arch) for arch in archs]

    def ground_truth_ms(self, space: SearchSpace, arch: Architecture) -> float:
        """Noise-free device latency (not available on real hardware;
        exposed for tests and analysis only)."""
        return self.device.latency_ms(space, arch, rng=None)
