"""On-device measurement methodology: warmup + repeats + robust median.

Real latency profiling discards warmup iterations (JIT, cache warming,
clock ramp) and aggregates repeated runs. The simulated devices add
per-measurement noise, so the same methodology applies here and the
profiler is the single place that owns it.

The profiler is also where probe faults are fought: with a
:class:`~repro.hardware.faults.RetryPolicy` each individual device run
is retried under backoff, and with ``mad_threshold`` the aggregation
switches from a plain median to a median with MAD outlier rejection —
runs further than ``threshold`` scaled-MADs from the median are dropped
before the final median is taken, which is the standard defence against
the occasional wildly-throttled run.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.hardware.degradation import DegradationReport
from repro.hardware.device import DeviceModel
from repro.hardware.faults import ProbeError, RetryPolicy, run_with_retry
from repro.hardware.ledger import MeasurementLedger
from repro.space.architecture import Architecture
from repro.space.search_space import SearchSpace


def robust_median(runs: List[float], mad_threshold: Optional[float]) -> float:
    """Median of ``runs``, optionally after MAD outlier rejection.

    With a threshold, runs where ``|x - median| > threshold * 1.4826 *
    MAD`` are discarded and the median of the survivors is returned
    (1.4826 scales the MAD to a normal-consistent sigma). A zero MAD
    (all runs identical) keeps everything.
    """
    values = np.asarray(runs, dtype=np.float64)
    med = float(np.median(values))
    if mad_threshold is None or len(values) < 3:
        return med
    mad = float(np.median(np.abs(values - med)))
    if mad <= 0.0:
        return med
    keep = np.abs(values - med) <= mad_threshold * 1.4826 * mad
    if not keep.any():  # pragma: no cover - threshold < ~0.67 only
        return med
    return float(np.median(values[keep]))


class OnDeviceProfiler:
    """Measures architecture latency the way a practitioner would.

    Parameters
    ----------
    device:
        Target device model.
    warmup:
        Measurements discarded before aggregation.
    repeats:
        Measurements aggregated (by median) per architecture.
    seed:
        Seed of the measurement-noise stream.
    ledger:
        Optional cost ledger; every measurement session is recorded so
        the search-cost claims are checkable.
    retry:
        Optional :class:`~repro.hardware.faults.RetryPolicy` applied to
        every individual device run. Retry backoff jitter draws from a
        dedicated stream (``seed`` spawn-keyed away from the noise
        stream), so enabling retries never changes a healthy device's
        measurements.
    mad_threshold:
        Optional MAD outlier-rejection threshold for the per-session
        aggregation (see :func:`robust_median`). ``None`` keeps the
        plain median.
    degradation:
        Optional shared :class:`DegradationReport`; retry and failure
        accounting lands there (a private report is kept otherwise).
    """

    def __init__(
        self,
        device: DeviceModel,
        warmup: int = 3,
        repeats: int = 5,
        seed: int = 0,
        ledger: Optional[MeasurementLedger] = None,
        retry: Optional[RetryPolicy] = None,
        mad_threshold: Optional[float] = None,
        degradation: Optional[DegradationReport] = None,
    ):
        if warmup < 0 or repeats < 1:
            raise ValueError("warmup must be >= 0 and repeats >= 1")
        if mad_threshold is not None and mad_threshold <= 0:
            raise ValueError("mad_threshold must be positive")
        self.device = device
        self.warmup = warmup
        self.repeats = repeats
        self.ledger = ledger
        self.retry = retry
        self.mad_threshold = mad_threshold
        self.degradation = (
            degradation if degradation is not None else DegradationReport()
        )
        self._rng = np.random.default_rng(seed)
        # Backoff jitter must not touch the measurement-noise stream:
        # a healthy run consumes zero draws from it, so results with and
        # without a retry policy are bit-identical.
        self._retry_rng = np.random.default_rng(
            np.random.SeedSequence(seed, spawn_key=(0x5E77,))
        )

    # -- rng checkpointing -------------------------------------------------------

    def rng_state(self) -> dict:
        """Measurement-noise stream state (for run checkpoints).

        The retry-jitter stream is deliberately excluded: it influences
        only wall-clock sleeps, never values.
        """
        from repro.runstate.rng import generator_state

        return generator_state(self._rng)

    def set_rng_state(self, state: dict) -> None:
        """Rewind the measurement-noise stream (bit-exact resume)."""
        from repro.runstate.rng import set_generator_state

        set_generator_state(self._rng, state)

    # -- measurement -------------------------------------------------------------

    def _one_run(self, space: SearchSpace, arch: Architecture) -> float:
        """A single device run, retried under the policy if one is set."""
        if self.retry is None:
            return self.device.latency_ms(space, arch, rng=self._rng)
        value, attempts = run_with_retry(
            lambda: self.device.latency_ms(space, arch, rng=self._rng),
            self.retry,
            rng=self._retry_rng,
        )
        self.degradation.probe_retries += attempts - 1
        return value

    def measure_ms(self, space: SearchSpace, arch: Architecture) -> float:
        """Median latency over ``repeats`` noisy runs (after warmup).

        Raises :class:`~repro.hardware.faults.ProbeError` if any run
        exhausts its retries — a single measurement session either
        completes in full or fails loudly (callers that can degrade,
        like bias calibration, catch and drop the session).
        """
        if self.ledger is not None:
            self.ledger.record_measurement(runs=self.warmup + self.repeats)
        for _ in range(self.warmup):
            self._one_run(space, arch)
        runs = [self._one_run(space, arch) for _ in range(self.repeats)]
        return robust_median(runs, self.mad_threshold)

    def measure_many_ms(
        self,
        space: SearchSpace,
        archs: List[Architecture],
        on_failure: str = "raise",
    ) -> List[float]:
        """Measure a batch of architectures.

        ``on_failure="skip"`` replaces a session that failed all its
        retries with ``NaN`` and records a dropped measurement instead
        of raising — the graceful path bias calibration uses.
        """
        if on_failure not in ("raise", "skip"):
            raise ValueError("on_failure must be 'raise' or 'skip'")
        out: List[float] = []
        for index, arch in enumerate(archs):
            try:
                out.append(self.measure_ms(space, arch))
            except ProbeError as fault:
                if on_failure == "raise":
                    raise
                self.degradation.probe_failures += 1
                self.degradation.dropped_measurements += 1
                self.degradation.record_event(
                    f"dropped measurement session #{index} after retries: "
                    f"{fault}"
                )
                out.append(float("nan"))
        return out

    def ground_truth_ms(self, space: SearchSpace, arch: Architecture) -> float:
        """Noise-free device latency (not available on real hardware;
        exposed for tests and analysis only)."""
        return self.device.latency_ms(space, arch, rng=None)
