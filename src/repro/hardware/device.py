"""Analytical device execution model ("the hardware").

This module plays the role of the paper's physical testbed: given the
primitive kernels of a network, it returns an end-to-end latency that
includes per-kernel roofline time, launch overheads, per-layer boundary
(communication) costs, a fixed base cost, and measurement noise.

The latency *predictor* (Eq. 2-3) never sees these internals — it only
gets end-to-end measurements, exactly like the paper's on-device
profiling.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.hardware.spec import DeviceSpec, spec_by_key
from repro.space.architecture import Architecture
from repro.space.operators import Primitive
from repro.space.search_space import SearchSpace


class DeviceModel:
    """Executes primitive lists and reports latency in milliseconds."""

    def __init__(self, spec: DeviceSpec):
        self.spec = spec

    # -- kernel-level timing --------------------------------------------------

    def primitive_time_s(self, prim: Primitive, batch: Optional[int] = None) -> float:
        """Noise-free execution time of one kernel, in seconds.

        Roofline with utilization: the achievable compute throughput is
        ``peak * kind_eff * work / (work + saturation)``, so small
        kernels never reach steady-state throughput; memory-bound
        kernels are limited by bandwidth instead. A launch overhead is
        always paid.
        """
        spec = self.spec
        b = spec.batch_size if batch is None else batch
        if b < 1:
            raise ValueError("batch must be >= 1")
        work = prim.flops * b
        traffic = (prim.bytes_read + prim.bytes_written) * b
        if work > 0:
            eff = spec.kind_efficiency.get(prim.kind, 0.3)
            utilization = work / (work + spec.saturation_for(prim.kind))
            compute_s = work / (spec.peak_macs_per_s * eff * max(utilization, 1e-9))
        else:
            compute_s = 0.0
        bw_eff = spec.bandwidth_efficiency.get(prim.kind, 1.0)
        memory_s = traffic / (spec.bandwidth_bytes_per_s * bw_eff)
        return spec.launch_overhead_s + max(compute_s, memory_s)

    # -- network-level timing -----------------------------------------------------

    def run_network_ms(
        self,
        layer_primitives: Sequence[Sequence[Primitive]],
        extra_primitives: Sequence[Primitive] = (),
        batch: Optional[int] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> float:
        """End-to-end latency of a network, in milliseconds.

        Parameters
        ----------
        layer_primitives:
            Kernels grouped by layer; every *non-empty* layer pays the
            per-layer boundary overhead (identity skips execute nothing
            and are fused away, so they pay nothing).
        extra_primitives:
            Stem/head kernels (counted once, one boundary).
        batch:
            Override the device's default batch size.
        rng:
            If given, multiplicative log-normal measurement noise is
            applied — this makes the call a *measurement*; omit it for
            the noise-free ground truth.
        """
        spec = self.spec
        total_s = spec.base_overhead_s
        boundaries = 0
        for layer in layer_primitives:
            if not layer:
                continue
            boundaries += 1
            for prim in layer:
                total_s += self.primitive_time_s(prim, batch)
        if extra_primitives:
            boundaries += 1
            for prim in extra_primitives:
                total_s += self.primitive_time_s(prim, batch)
        total_s += boundaries * spec.layer_overhead_s
        total_s *= spec.time_scale
        if rng is not None and spec.noise_sigma > 0:
            total_s *= float(np.exp(rng.normal(0.0, spec.noise_sigma)))
        return total_s * 1e3

    # -- architecture-level convenience ------------------------------------------

    def latency_ms(
        self,
        space: SearchSpace,
        arch: Architecture,
        rng: Optional[np.random.Generator] = None,
    ) -> float:
        """Latency of a search-space architecture (stem + layers + head).

        With ``rng`` this simulates one noisy on-device measurement
        (``LAT+`` in the paper's Eq. 3); without it, the noise-free
        device time.
        """
        return self.run_network_ms(
            space.arch_primitives(arch),
            space.stem_head_primitives(arch),
            rng=rng,
        )

    def primitives_time_ms(self, prims: Sequence[Primitive]) -> float:
        """Summed kernel time of isolated primitives (no boundary/base
        overheads) — the micro-benchmark view used for LUT cells."""
        total_s = sum(self.primitive_time_s(p) for p in prims)
        return total_s * self.spec.time_scale * 1e3

    def operator_time_ms(
        self,
        space: SearchSpace,
        layer: int,
        op_index: int,
        factor: float,
        cin: int,
    ) -> float:
        """Isolated execution time of one operator choice at one layer.

        This is what an op-level micro-benchmark measures when building
        the latency LUT: kernel times only, no layer-boundary or base
        overheads (which is precisely why the summed LUT underestimates
        end-to-end latency and the paper needs the bias ``B``).
        """
        from repro.nn.layers.mask import channels_kept
        from repro.space.operators import get_operator

        geom = space.geometry[layer]
        cout = channels_kept(geom.max_out_channels, factor)
        prims = get_operator(op_index).primitives(cin, cout, geom.in_size, geom.stride)
        total_s = sum(self.primitive_time_s(p) for p in prims)
        return total_s * self.spec.time_scale * 1e3

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DeviceModel({self.spec.key!r}, batch={self.spec.batch_size})"


def get_device(key: str, time_scale: Optional[float] = None) -> DeviceModel:
    """Construct a default device model by key (``"gpu"``/``"cpu"``/``"edge"``)."""
    spec = spec_by_key(key)
    if time_scale is not None:
        spec = spec.with_time_scale(time_scale)
    return DeviceModel(spec)
