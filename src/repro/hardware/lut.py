"""The per-operator latency lookup table (paper Eq. 2, first term).

Cells are keyed on ``(layer, operator, input_channels, factor)``: an
operator's execution time depends on its *active* input channel count,
which is set by the previous layer's scaling factor, so the
micro-benchmark enumerates the possible input widths per layer (as
op-level latency predictors such as nn-Meter do). What the LUT still
cannot see — stem/head kernels, per-layer boundary synchronization, and
framework entry costs — is exactly the systematic gap the bias term
``B`` (Eq. 3) compensates.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from itertools import chain
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.hardware.degradation import DegradationReport
from repro.hardware.device import DeviceModel
from repro.hardware.faults import ProbeError, RetryPolicy, run_with_retry
from repro.nn.layers.mask import channels_kept
from repro.space.architecture import Architecture
from repro.space.operators import NUM_OPERATORS, get_operator
from repro.space.search_space import SearchSpace

_Key = Tuple[int, int, int, float]


def _quantize_factor(factor: float) -> float:
    """Channel factors live on a one-decimal grid; quantizing at key
    construction makes cell identity immune to float-arithmetic drift
    (``0.1 * 3 != 0.3``) on both the build and the lookup side."""
    return round(float(factor), 1)


def _cell_key(layer: int, op: int, cin: int, factor: float) -> _Key:
    return (layer, op, cin, _quantize_factor(factor))


@dataclass(frozen=True, eq=False)
class DenseLatencyTable:
    """Array view of a :class:`LatencyLUT` for fancy-indexed batch sums.

    ``cells[layer, op, cin, decile]`` holds the cell latency in ms
    (``NaN`` for cells the LUT does not contain); ``decile`` is the
    quantized factor times ten. ``head[cin]`` holds the head cell for a
    final active width (``NaN`` when absent).
    """

    cells: np.ndarray  # (L, num_ops, max_cin + 1, 11)
    head: np.ndarray  # (max_head_cin + 1,)
    stem_ms: float

    @property
    def num_layers(self) -> int:
        return self.cells.shape[0]


def layer_cin_choices(space: SearchSpace, layer: int) -> List[int]:
    """Possible active input-channel counts of a layer.

    Layer 0 always receives the full stem output; deeper layers receive
    whatever the previous layer's factor kept.
    """
    if layer == 0:
        return [space.config.stem_channels]
    prev_max = space.geometry[layer - 1].max_out_channels
    return sorted(
        {channels_kept(prev_max, f) for f in space.candidate_factors[layer - 1]}
    )


class LatencyLUT:
    """Latency lookup table over (layer, operator, cin, factor) cells,
    plus micro-benchmarked stem and per-input-width head cells (the stem
    and head are fixed modules, so they are profiled once like any other
    operator)."""

    def __init__(
        self,
        device_key: str,
        entries: Dict[_Key, float],
        stem_ms: float = 0.0,
        head_ms: Dict[int, float] = None,
    ):
        self.device_key = device_key
        self.entries = dict(entries)
        self.stem_ms = stem_ms
        self.head_ms = dict(head_ms) if head_ms else {}
        self._dense = (-1, None)  # (entry count at build, DenseLatencyTable)
        # Probe faults observed while building (empty for a clean build).
        self.build_degradation = DegradationReport()
        # Memoized nearest-cell fallback values: a missing cell resolves
        # to the same substitute every time, scalar or batched.
        self._fallback_memo: Dict[_Key, float] = {}
        self._head_fallback_memo: Dict[int, float] = {}

    # -- construction -----------------------------------------------------------

    @classmethod
    def build(
        cls,
        space: SearchSpace,
        device: DeviceModel,
        samples_per_cell: int = 4,
        seed: int = 0,
        ledger=None,
        workers: int = 0,
        backend: str = "auto",
        retry: Optional[RetryPolicy] = None,
    ) -> "LatencyLUT":
        """Micro-benchmark every operator cell on the device.

        Each cell averages ``samples_per_cell`` noisy measurements, as a
        real micro-benchmark would. With a ``ledger``, the number of
        profiled cells is recorded for search-cost accounting.

        Cells are enumerated once (stem, head widths, then operator
        cells in layer/cin/op/factor order) and cell ``i`` draws its
        measurement noise from ``SeedSequence(seed, spawn_key=(i,))`` —
        every cell's value depends only on its own identity, never on
        profiling order. That is what lets ``workers >= 2`` fan the
        profiling out across processes with bit-identical results;
        ``workers=0`` (default) profiles serially in-process.

        With a :class:`~repro.hardware.faults.RetryPolicy`, each cell's
        probe is retried under backoff (jitter drawn from a per-cell
        stream spawn-keyed away from the noise stream, so healthy-device
        values are unchanged). A cell that exhausts its retries is
        *omitted* rather than fatal: the build records it in the
        returned LUT's ``build_degradation`` report, and lookups can
        later fall back to the nearest present cell (see
        :meth:`lookup`).
        """
        if samples_per_cell < 1:
            raise ValueError("samples_per_cell must be >= 1")
        sigma = device.spec.noise_sigma

        # Deterministic cell enumeration; the position in this list is
        # the cell's seed index.
        tasks: List[Tuple] = [("stem", 0, 0, 0, 0.0)]
        head_cins: List[int] = []
        last_max = space.geometry[-1].max_out_channels
        for factor in space.candidate_factors[-1]:
            cin = channels_kept(last_max, factor)
            if cin not in head_cins:
                head_cins.append(cin)
                tasks.append(("head", 0, 0, cin, 0.0))
        for layer in range(space.num_layers):
            for cin in layer_cin_choices(space, layer):
                for op in space.candidate_ops[layer]:
                    for factor in space.candidate_factors[layer]:
                        tasks.append(("cell", layer, op, cin, factor))

        def profile_chunk(chunk: List[Tuple[int, Tuple]]) -> List[Tuple]:
            """Per task: ``(value | None, extra_attempts, fault message)``.

            Fault accounting is *returned* rather than accumulated in
            place so it survives the trip back from worker processes.
            """
            out = []
            for index, (kind, layer, op, cin, factor) in chunk:

                def probe(kind=kind, layer=layer, op=op, cin=cin, factor=factor):
                    if kind == "stem":
                        return device.primitives_time_ms(space.stem_primitives())
                    if kind == "head":
                        return device.primitives_time_ms(
                            space.head_primitives(cin)
                        )
                    return device.operator_time_ms(space, layer, op, factor, cin)

                extra_attempts = 0
                try:
                    if retry is None:
                        base = probe()
                    else:
                        base, attempts = run_with_retry(
                            probe,
                            retry,
                            rng=np.random.default_rng(
                                np.random.SeedSequence(
                                    seed, spawn_key=(index, 1)
                                )
                            ),
                        )
                        extra_attempts = attempts - 1
                except ProbeError as fault:
                    failed_attempts = retry.attempts - 1 if retry else 0
                    out.append((None, failed_attempts, str(fault)))
                    continue
                if sigma > 0 and base > 0:
                    rng = np.random.default_rng(
                        np.random.SeedSequence(seed, spawn_key=(index,))
                    )
                    times = base * np.exp(
                        rng.normal(0.0, sigma, size=samples_per_cell)
                    )
                    base = float(np.mean(times))
                out.append((base, extra_attempts, None))
            return out

        from repro.parallel.backend import create_backend

        with create_backend(
            backend, profile_chunk, workers=workers
        ) as pool:
            results = pool.map(list(enumerate(tasks)))

        degradation = DegradationReport()
        stem_ms = 0.0
        head_ms: Dict[int, float] = {}
        entries: Dict[_Key, float] = {}
        profiled = 0
        for (kind, layer, op, cin, factor), (ms, extra, fault) in zip(
            tasks, results
        ):
            degradation.probe_retries += extra
            if ms is None:
                degradation.probe_failures += 1
                degradation.missing_cells += 1
                degradation.record_event(
                    f"LUT {kind} cell layer={layer} op={op} cin={cin} "
                    f"factor={factor} failed after retries: {fault}"
                )
                continue
            profiled += 1
            if kind == "stem":
                stem_ms = ms
            elif kind == "head":
                head_ms[cin] = ms
            else:
                entries[_cell_key(layer, op, cin, factor)] = ms
        if ledger is not None:
            ledger.record_lut_cells(profiled)
        lut = cls(device.spec.key, entries, stem_ms=stem_ms, head_ms=head_ms)
        lut.build_degradation = degradation
        return lut

    # -- queries -----------------------------------------------------------------

    def lookup(
        self,
        layer: int,
        op: int,
        cin: int,
        factor: float,
        fallback: bool = False,
        report: Optional[DegradationReport] = None,
    ) -> float:
        """Latency (ms) of one operator cell.

        Factors are quantized to the one-decimal grid before the lookup,
        so values that drifted through float arithmetic still hit their
        cell. A genuine miss raises a ``KeyError`` naming the nearest
        existing cell to make the mismatch diagnosable — unless
        ``fallback=True``, in which case the nearest present cell's
        value is served instead (deterministically: the substitute for a
        given key is memoized, so scalar and batched queries agree) and
        the concession is recorded on ``report``.
        """
        key = _cell_key(layer, op, cin, factor)
        if key not in self.entries:
            if not fallback:
                raise KeyError(self._miss_message(layer, op, cin, factor))
            return self._fallback_value(key, report)
        return self.entries[key]

    def _fallback_value(
        self, key: _Key, report: Optional[DegradationReport]
    ) -> float:
        """Nearest present cell's value for a missing key (memoized)."""
        if key not in self._fallback_memo:
            if not self.entries:
                raise KeyError(
                    f"LUT has no cell for layer={key[0]} op={key[1]} "
                    f"cin={key[2]} factor={key[3]} and is empty — nothing "
                    "to fall back to"
                )
            layer, op, cin, qf = key
            # Distance is lexicographic (layer, op, cin, factor), with
            # the candidate key itself as the final tiebreak so the
            # substitute is unique and deterministic.
            nearest = min(
                self.entries,
                key=lambda k: (
                    abs(k[0] - layer),
                    abs(k[1] - op),
                    abs(k[2] - cin),
                    abs(k[3] - qf),
                    k,
                ),
            )
            self._fallback_memo[key] = self.entries[nearest]
            if report is not None:
                report.fallback_cells += 1
                report.record_event(
                    f"missing LUT cell layer={layer} op={op} cin={cin} "
                    f"factor={qf} served by nearest cell layer={nearest[0]} "
                    f"op={nearest[1]} cin={nearest[2]} factor={nearest[3]}"
                )
        if report is not None:
            report.fallback_lookups += 1
        return self._fallback_memo[key]

    def _head_fallback_value(
        self, cin: int, report: Optional[DegradationReport]
    ) -> float:
        """Nearest present head cell for a missing final width."""
        if cin not in self._head_fallback_memo:
            if not self.head_ms:
                raise KeyError(f"LUT has no head cell for cin={cin}")
            nearest = min(self.head_ms, key=lambda c: (abs(c - cin), c))
            self._head_fallback_memo[cin] = self.head_ms[nearest]
            if report is not None:
                report.fallback_cells += 1
                report.record_event(
                    f"missing LUT head cell cin={cin} served by nearest "
                    f"head cell cin={nearest}"
                )
        if report is not None:
            report.fallback_lookups += 1
        return self._head_fallback_memo[cin]

    def _miss_message(self, layer: int, op: int, cin: int, factor: float) -> str:
        qf = _quantize_factor(factor)
        nearest = min(
            self.entries,
            key=lambda k: (
                abs(k[0] - layer),
                abs(k[1] - op),
                abs(k[2] - cin),
                abs(k[3] - qf),
            ),
            default=None,
        )
        msg = (
            f"LUT has no cell for layer={layer} op={op} cin={cin} "
            f"factor={factor} (quantized to {qf})"
        )
        if nearest is None:
            return msg + "; the LUT is empty"
        return (
            msg
            + f"; nearest existing cell is layer={nearest[0]} "
            f"op={nearest[1]} cin={nearest[2]} factor={nearest[3]}"
        )

    def sum_ops_ms(
        self,
        arch: Architecture,
        space: SearchSpace,
        fallback: bool = False,
        report: Optional[DegradationReport] = None,
    ) -> float:
        """``sum_l LAT(op^l)`` — Eq. 2 without the bias term.

        Walks the layer chain to resolve each layer's active input
        channel count from the previous layer's factor; the fixed stem
        and the (width-dependent) head count as operators too.
        ``fallback``/``report`` are forwarded to :meth:`lookup` for
        degraded LUTs with missing cells.
        """
        total = self.stem_ms
        channels = space.active_channels(arch)
        for layer, (op, factor) in enumerate(zip(arch.ops, arch.factors)):
            cin = channels[layer][0]
            total += self.lookup(
                layer, op, cin, factor, fallback=fallback, report=report
            )
        last_c = channels[-1][1]
        if self.head_ms:
            if last_c not in self.head_ms:
                if not fallback:
                    raise KeyError(f"LUT has no head cell for cin={last_c}")
                total += self._head_fallback_value(last_c, report)
            else:
                total += self.head_ms[last_c]
        return total

    # -- batched queries ---------------------------------------------------------

    def as_table(self) -> DenseLatencyTable:
        """Dense :class:`DenseLatencyTable` view of the LUT.

        Built lazily and memoized (rebuilt if the entry count changed);
        this is what makes :meth:`sum_ops_ms_batch` a handful of numpy
        fancy-indexing operations instead of ``P x L`` dict lookups.
        """
        cached_len, cached = self._dense
        if cached is not None and cached_len == len(self.entries):
            return cached
        num_layers = 1 + max((k[0] for k in self.entries), default=-1)
        num_ops = max(
            NUM_OPERATORS, 1 + max((k[1] for k in self.entries), default=0)
        )
        max_cin = max((k[2] for k in self.entries), default=0)
        cells = np.full((num_layers, num_ops, max_cin + 1, 11), np.nan)
        for (layer, op, cin, factor), ms in self.entries.items():
            cells[layer, op, cin, int(round(factor * 10))] = ms
        max_head = max(self.head_ms, default=0)
        head = np.full(max_head + 1, np.nan)
        for cin, ms in self.head_ms.items():
            head[cin] = ms
        table = DenseLatencyTable(cells=cells, head=head, stem_ms=self.stem_ms)
        self._dense = (len(self.entries), table)
        return table

    def sum_ops_ms_batch(
        self,
        archs: Sequence[Architecture],
        space: SearchSpace,
        fallback: bool = False,
        report: Optional[DegradationReport] = None,
    ) -> np.ndarray:
        """Vectorized :meth:`sum_ops_ms` over a whole population.

        Resolves every architecture's active-channel chain with one
        vectorized scan over layers, then gathers all ``P x L`` operator
        cells from the dense table in a single fancy-indexed read.
        Bit-identical to mapping :meth:`sum_ops_ms` over ``archs`` (the
        accumulation order per architecture is the same; with
        ``fallback=True`` the same memoized nearest-cell substitutes
        patch the missing positions, so the equivalence holds on
        degraded LUTs too).
        """
        archs = list(archs)
        if not archs:
            return np.zeros(0, dtype=np.float64)
        table = self.as_table()
        num_layers = space.num_layers
        pop = len(archs)
        count = pop * num_layers
        ops = np.fromiter(
            chain.from_iterable(a.ops for a in archs),
            dtype=np.int64,
            count=count,
        ).reshape(pop, num_layers)
        factors = np.fromiter(
            chain.from_iterable(a.factors for a in archs),
            dtype=np.float64,
            count=count,
        ).reshape(pop, num_layers)
        deciles = np.rint(np.round(factors, 1) * 10).astype(np.int64)

        # Active input channels per (arch, layer): the scalar path walks
        # the chain through ``space.active_channels``; here the same
        # recurrence runs once per layer over the whole population.
        max_out = np.array([g.max_out_channels for g in space.geometry])
        strides = np.array([g.stride for g in space.geometry])
        is_skip = np.array(
            [get_operator(i).is_skip for i in range(NUM_OPERATORS)]
        )
        cins = np.empty((pop, num_layers), dtype=np.int64)
        cin = np.full(pop, space.config.stem_channels, dtype=np.int64)
        for layer in range(num_layers):
            cins[:, layer] = cin
            cout = np.floor(max_out[layer] * factors[:, layer] + 0.5).astype(
                np.int64
            )
            np.clip(cout, 1, max_out[layer], out=cout)
            if strides[layer] == 1:
                skip = is_skip[ops[:, layer]]
                cout = np.where(skip, np.minimum(cin, cout), cout)
            cin = cout

        in_range = (
            (ops < table.cells.shape[1])
            & (cins < table.cells.shape[2])
            & (deciles >= 0)
            & (deciles < 11)
        )
        if not in_range.all() and not fallback:
            pos, layer = np.argwhere(~in_range)[0]
            raise KeyError(
                self._miss_message(
                    int(layer),
                    int(ops[pos, layer]),
                    int(cins[pos, layer]),
                    float(factors[pos, layer]),
                )
            )
        layer_idx = np.arange(num_layers)[None, :]
        # Out-of-range indices (possible only on the fallback path) are
        # clamped for the gather and patched below with the rest of the
        # missing positions.
        safe_ops = np.minimum(ops, table.cells.shape[1] - 1)
        safe_cins = np.minimum(cins, table.cells.shape[2] - 1)
        safe_deciles = np.clip(deciles, 0, 10)
        gathered = table.cells[layer_idx, safe_ops, safe_cins, safe_deciles]
        missing = ~in_range | np.isnan(gathered)
        if missing.any():
            if not fallback:
                pos, layer = np.argwhere(missing)[0]
                raise KeyError(
                    self._miss_message(
                        int(layer),
                        int(ops[pos, layer]),
                        int(cins[pos, layer]),
                        float(factors[pos, layer]),
                    )
                )
            for pos, layer in np.argwhere(missing):
                gathered[pos, layer] = self.lookup(
                    int(layer),
                    int(ops[pos, layer]),
                    int(cins[pos, layer]),
                    float(factors[pos, layer]),
                    fallback=True,
                    report=report,
                )
        # Left-to-right accumulation reproduces the scalar sum order
        # exactly (stem + layer 0 + ... + head), keeping the batch path
        # bit-identical to sum_ops_ms.
        total = np.full(pop, self.stem_ms, dtype=np.float64)
        for layer in range(num_layers):
            total += gathered[:, layer]
        if self.head_ms:
            last_c = cin
            head_vals = table.head[np.minimum(last_c, len(table.head) - 1)]
            head_missing = (last_c >= len(table.head)) | np.isnan(head_vals)
            if head_missing.any():
                if not fallback:
                    raise KeyError(
                        "LUT has no head cell for "
                        f"cin={int(last_c[head_missing.argmax()])}"
                    )
                head_vals = head_vals.copy()
                for pos in np.flatnonzero(head_missing):
                    head_vals[pos] = self._head_fallback_value(
                        int(last_c[pos]), report
                    )
            total += head_vals
        return total

    def __len__(self) -> int:
        return len(self.entries)

    # -- (de)serialization ----------------------------------------------------------

    def to_json(self) -> str:
        payload = {
            "device": self.device_key,
            "stem_ms": self.stem_ms,
            "head_ms": {str(k): v for k, v in self.head_ms.items()},
            "entries": [
                {
                    "layer": k[0],
                    "op": k[1],
                    "cin": k[2],
                    "factor": k[3],
                    "ms": v,
                }
                for k, v in sorted(self.entries.items())
            ],
        }
        return json.dumps(payload)

    @classmethod
    def from_json(cls, text: str) -> "LatencyLUT":
        payload = json.loads(text)
        entries = {
            _cell_key(e["layer"], e["op"], e["cin"], e["factor"]): float(e["ms"])
            for e in payload["entries"]
        }
        return cls(
            payload["device"],
            entries,
            stem_ms=float(payload.get("stem_ms", 0.0)),
            head_ms={int(k): float(v) for k, v in payload.get("head_ms", {}).items()},
        )
