"""The per-operator latency lookup table (paper Eq. 2, first term).

Cells are keyed on ``(layer, operator, input_channels, factor)``: an
operator's execution time depends on its *active* input channel count,
which is set by the previous layer's scaling factor, so the
micro-benchmark enumerates the possible input widths per layer (as
op-level latency predictors such as nn-Meter do). What the LUT still
cannot see — stem/head kernels, per-layer boundary synchronization, and
framework entry costs — is exactly the systematic gap the bias term
``B`` (Eq. 3) compensates.
"""

from __future__ import annotations

import json
from typing import Dict, List, Tuple

import numpy as np

from repro.hardware.device import DeviceModel
from repro.nn.layers.mask import channels_kept
from repro.space.architecture import Architecture
from repro.space.search_space import SearchSpace

_Key = Tuple[int, int, int, float]


def _cell_key(layer: int, op: int, cin: int, factor: float) -> _Key:
    return (layer, op, cin, round(factor, 6))


def layer_cin_choices(space: SearchSpace, layer: int) -> List[int]:
    """Possible active input-channel counts of a layer.

    Layer 0 always receives the full stem output; deeper layers receive
    whatever the previous layer's factor kept.
    """
    if layer == 0:
        return [space.config.stem_channels]
    prev_max = space.geometry[layer - 1].max_out_channels
    return sorted(
        {channels_kept(prev_max, f) for f in space.candidate_factors[layer - 1]}
    )


class LatencyLUT:
    """Latency lookup table over (layer, operator, cin, factor) cells,
    plus micro-benchmarked stem and per-input-width head cells (the stem
    and head are fixed modules, so they are profiled once like any other
    operator)."""

    def __init__(
        self,
        device_key: str,
        entries: Dict[_Key, float],
        stem_ms: float = 0.0,
        head_ms: Dict[int, float] = None,
    ):
        self.device_key = device_key
        self.entries = dict(entries)
        self.stem_ms = stem_ms
        self.head_ms = dict(head_ms) if head_ms else {}

    # -- construction -----------------------------------------------------------

    @classmethod
    def build(
        cls,
        space: SearchSpace,
        device: DeviceModel,
        samples_per_cell: int = 4,
        seed: int = 0,
        ledger=None,
    ) -> "LatencyLUT":
        """Micro-benchmark every operator cell on the device.

        Each cell averages ``samples_per_cell`` noisy measurements, as a
        real micro-benchmark would. With a ``ledger``, the number of
        profiled cells is recorded for search-cost accounting.
        """
        if samples_per_cell < 1:
            raise ValueError("samples_per_cell must be >= 1")
        rng = np.random.default_rng(seed)
        entries: Dict[_Key, float] = {}
        sigma = device.spec.noise_sigma

        def measured(base: float) -> float:
            if sigma > 0 and base > 0:
                times = base * np.exp(
                    rng.normal(0.0, sigma, size=samples_per_cell)
                )
                return float(np.mean(times))
            return base

        stem_ms = measured(device.primitives_time_ms(space.stem_primitives()))
        head_ms: Dict[int, float] = {}
        last_max = space.geometry[-1].max_out_channels
        for factor in space.candidate_factors[-1]:
            cin = channels_kept(last_max, factor)
            if cin not in head_ms:
                head_ms[cin] = measured(
                    device.primitives_time_ms(space.head_primitives(cin))
                )

        for layer in range(space.num_layers):
            for cin in layer_cin_choices(space, layer):
                for op in space.candidate_ops[layer]:
                    for factor in space.candidate_factors[layer]:
                        base = device.operator_time_ms(
                            space, layer, op, factor, cin
                        )
                        entries[_cell_key(layer, op, cin, factor)] = measured(base)
        if ledger is not None:
            ledger.record_lut_cells(len(entries) + 1 + len(head_ms))
        return cls(device.spec.key, entries, stem_ms=stem_ms, head_ms=head_ms)

    # -- queries -----------------------------------------------------------------

    def lookup(self, layer: int, op: int, cin: int, factor: float) -> float:
        """Latency (ms) of one operator cell."""
        key = _cell_key(layer, op, cin, factor)
        if key not in self.entries:
            raise KeyError(
                f"LUT has no cell for layer={layer} op={op} "
                f"cin={cin} factor={factor}"
            )
        return self.entries[key]

    def sum_ops_ms(self, arch: Architecture, space: SearchSpace) -> float:
        """``sum_l LAT(op^l)`` — Eq. 2 without the bias term.

        Walks the layer chain to resolve each layer's active input
        channel count from the previous layer's factor; the fixed stem
        and the (width-dependent) head count as operators too.
        """
        total = self.stem_ms
        channels = space.active_channels(arch)
        for layer, (op, factor) in enumerate(zip(arch.ops, arch.factors)):
            cin = channels[layer][0]
            total += self.lookup(layer, op, cin, factor)
        last_c = channels[-1][1]
        if self.head_ms:
            if last_c not in self.head_ms:
                raise KeyError(f"LUT has no head cell for cin={last_c}")
            total += self.head_ms[last_c]
        return total

    def __len__(self) -> int:
        return len(self.entries)

    # -- (de)serialization ----------------------------------------------------------

    def to_json(self) -> str:
        payload = {
            "device": self.device_key,
            "stem_ms": self.stem_ms,
            "head_ms": {str(k): v for k, v in self.head_ms.items()},
            "entries": [
                {
                    "layer": k[0],
                    "op": k[1],
                    "cin": k[2],
                    "factor": k[3],
                    "ms": v,
                }
                for k, v in sorted(self.entries.items())
            ],
        }
        return json.dumps(payload)

    @classmethod
    def from_json(cls, text: str) -> "LatencyLUT":
        payload = json.loads(text)
        entries = {
            _cell_key(e["layer"], e["op"], e["cin"], e["factor"]): float(e["ms"])
            for e in payload["entries"]
        }
        return cls(
            payload["device"],
            entries,
            stem_ms=float(payload.get("stem_ms", 0.0)),
            head_ms={int(k): float(v) for k, v in payload.get("head_ms", {}).items()},
        )
