"""Graceful-degradation accounting for the measurement layer.

When probes fail for good (retries exhausted), the stack degrades
rather than crashes: failed LUT cells are omitted and later served by
the nearest present cell (or a regression predictor), failed bias-
calibration measurements are dropped from the Eq. 3 average. Every such
concession is recorded here, so a run that degraded *says so* — in the
artifact, the summary line, and the logs — instead of silently
returning slightly different numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

MAX_EVENTS = 50


@dataclass
class DegradationReport:
    """Counters + bounded event log of every degradation concession.

    Attributes
    ----------
    probe_retries:
        Extra probe attempts beyond the first (successful recoveries
        included).
    probe_failures:
        Probes that exhausted their retry budget.
    missing_cells:
        LUT cells absent after the build because their probe failed.
    fallback_cells:
        Distinct missing cells that have been served by a nearest-cell
        fallback at least once.
    fallback_lookups:
        Individual lookups answered by a fallback value.
    regression_fallbacks:
        Whole-architecture predictions served by the regression
        predictor because the LUT could not answer.
    dropped_measurements:
        End-to-end measurement sessions abandoned after retries
        (e.g. a bias-calibration architecture skipped).
    events:
        Human-readable log, capped at ``MAX_EVENTS`` entries (the
        counter keeps counting past the cap).
    """

    probe_retries: int = 0
    probe_failures: int = 0
    missing_cells: int = 0
    fallback_cells: int = 0
    fallback_lookups: int = 0
    regression_fallbacks: int = 0
    dropped_measurements: int = 0
    events: List[str] = field(default_factory=list)

    _COUNTERS = (
        "probe_retries",
        "probe_failures",
        "missing_cells",
        "fallback_cells",
        "fallback_lookups",
        "regression_fallbacks",
        "dropped_measurements",
    )

    def record_event(self, message: str) -> None:
        if len(self.events) < MAX_EVENTS:
            self.events.append(message)

    def merge(self, other: "DegradationReport") -> None:
        """Fold another report's counters and events into this one."""
        for name in self._COUNTERS:
            setattr(self, name, getattr(self, name) + getattr(other, name))
        for event in other.events:
            self.record_event(event)

    def degraded(self) -> bool:
        """Whether anything at all was conceded."""
        return any(getattr(self, name) for name in self._COUNTERS)

    def __bool__(self) -> bool:
        return self.degraded()

    def summary(self) -> str:
        if not self.degraded():
            return "no degradation"
        parts = [
            f"{name.replace('_', ' ')}: {getattr(self, name)}"
            for name in self._COUNTERS
            if getattr(self, name)
        ]
        return "degraded — " + ", ".join(parts)

    def to_dict(self) -> dict:
        out = {name: getattr(self, name) for name in self._COUNTERS}
        out["events"] = list(self.events)
        return out

    @classmethod
    def from_dict(cls, payload: dict) -> "DegradationReport":
        report = cls(**{k: int(payload.get(k, 0)) for k in cls._COUNTERS})
        report.events = [str(e) for e in payload.get("events", [])][:MAX_EVENTS]
        return report

    def restore(self, payload: dict) -> None:
        """Overwrite this report in place (for shared-reference holders)."""
        restored = self.from_dict(payload)
        for name in self._COUNTERS:
            setattr(self, name, getattr(restored, name))
        self.events = restored.events
