"""Wall-clock search-cost estimation from ledger counters.

The paper motivates its hardware model by the cost of on-device
measurement at NAS scale. This converts a
:class:`~repro.hardware.ledger.MeasurementLedger` into estimated
wall-clock time, so "the predictor saved N hours" becomes a number.

Defaults reflect a realistic measurement rig: deploying and measuring
one architecture end to end costs tens of seconds (model export, device
transfer, warmup, timed runs), an operator micro-benchmark cell costs a
fraction of a second (no per-cell deployment — the op bench harness is
loaded once), and a predictor query costs microseconds.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.ledger import MeasurementLedger


@dataclass(frozen=True)
class SearchCostModel:
    """Seconds per unit of each ledger counter."""

    seconds_per_measurement_session: float = 30.0
    seconds_per_lut_cell: float = 0.2
    seconds_per_prediction: float = 1e-5

    def __post_init__(self) -> None:
        if min(
            self.seconds_per_measurement_session,
            self.seconds_per_lut_cell,
            self.seconds_per_prediction,
        ) < 0:
            raise ValueError("costs must be non-negative")

    def estimate_seconds(self, ledger: MeasurementLedger) -> float:
        """Estimated wall-clock spend of the recorded activity."""
        return (
            ledger.measurement_sessions * self.seconds_per_measurement_session
            + ledger.lut_cells * self.seconds_per_lut_cell
            + ledger.predictor_queries * self.seconds_per_prediction
        )

    def measure_everything_seconds(self, ledger: MeasurementLedger) -> float:
        """Counterfactual: what the same search would have cost if every
        predictor query had been an on-device measurement instead."""
        sessions = ledger.measurement_sessions + ledger.predictor_queries
        return sessions * self.seconds_per_measurement_session

    def savings_factor(self, ledger: MeasurementLedger) -> float:
        """measure-everything cost / actual cost (the paper's payoff)."""
        actual = self.estimate_seconds(ledger)
        if actual <= 0:
            raise ValueError("ledger recorded no activity")
        return self.measure_everything_seconds(ledger) / actual
