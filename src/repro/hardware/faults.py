"""Device-probe fault model: errors, timeouts, retry with backoff.

Real device farms fail constantly — probes hang, USB links drop,
thermal throttling trips watchdogs. HW-NAS-Bench and similar efforts
document heavy measurement variance and lost probes as the norm, not
the exception. This module gives the measurement layer one vocabulary
for those faults (:class:`ProbeError` / :class:`ProbeTimeout`), one
knob for how hard to fight them (:class:`RetryPolicy` — bounded
attempts, exponential backoff with jitter, a per-probe time budget),
and one synthetic flaky device (:class:`FlakyDevice`) to test the whole
stack against.

Determinism note: retry jitter draws from its *own* generator, seeded
per call site — never from the measurement-noise stream. A run on a
healthy device therefore produces bit-identical results whether or not
retries are configured.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Optional, Sequence, Tuple, TypeVar

import numpy as np

from repro.hardware.device import DeviceModel

T = TypeVar("T")


class ProbeError(RuntimeError):
    """A device probe failed (link drop, device-side crash, bad read)."""


class ProbeTimeout(ProbeError):
    """A device probe exceeded its time budget."""


class FaultStream:
    """A seeded source of injected-fault decisions.

    Shared by :class:`FlakyDevice` (probe faults) and the chaos harness
    (:mod:`repro.resilience.chaos` — backend/transport faults): one
    rng, separate from any measurement-noise stream, consumed exactly
    once per decision with non-zero rates — so fault injection never
    perturbs the values a healthy run would produce.

    ``fail_first`` deterministically forces the first N decisions
    (without consuming the rng), matching the historical
    ``FlakyDevice`` semantics the fail-twice-then-succeed retry tests
    rely on.
    """

    def __init__(self, seed: int = 0, fail_first: int = 0):
        if fail_first < 0:
            raise ValueError("fail_first must be >= 0")
        self._rng = np.random.default_rng(seed)
        self.fail_first = fail_first
        self.draws = 0

    def decide(
        self,
        outcomes: Sequence[Tuple[str, float]],
        fail_first_outcome: Optional[str] = None,
    ) -> Optional[str]:
        """One decision over ``((name, rate), ...)``; ``None`` = healthy.

        Rates must each be in [0, 1] and sum to at most 1; the single
        uniform draw is partitioned in the order given. While
        ``fail_first`` has budget, the forced outcome is
        ``fail_first_outcome`` (default: the first listed) and no
        randomness is consumed.
        """
        if self.fail_first > 0:
            self.fail_first -= 1
            if fail_first_outcome is not None:
                return fail_first_outcome
            return outcomes[0][0] if outcomes else None
        if not any(rate > 0 for _, rate in outcomes):
            return None
        self.draws += 1
        draw = float(self._rng.random())
        acc = 0.0
        for name, rate in outcomes:
            acc += rate
            if draw < acc:
                return name
        return None


@dataclass(frozen=True)
class RetryPolicy:
    """How hard the measurement layer fights a failing probe.

    Parameters
    ----------
    attempts:
        Total tries per probe (first attempt included); >= 1.
    backoff_s:
        Sleep before the first retry; each further retry multiplies it
        by ``backoff_factor`` (exponential backoff).
    backoff_factor:
        Growth factor of the backoff series; >= 1.
    jitter:
        Fractional jitter on every backoff sleep: the actual delay is
        uniform in ``[delay * (1 - jitter), delay * (1 + jitter)]``.
        Jitter decorrelates retry storms across parallel probes.
    timeout_s:
        Optional per-attempt time budget. An attempt whose wall-clock
        exceeds it counts as a :class:`ProbeTimeout` failure even if it
        eventually returned (a real harness would have killed it).
    """

    attempts: int = 3
    backoff_s: float = 0.05
    backoff_factor: float = 2.0
    jitter: float = 0.5
    timeout_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise ValueError("attempts must be >= 1")
        if self.backoff_s < 0 or self.backoff_factor < 1.0:
            raise ValueError("backoff_s must be >= 0 and backoff_factor >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ValueError("timeout_s must be positive")

    def delay_s(self, retry_index: int, rng: Optional[np.random.Generator]) -> float:
        """Backoff sleep before retry ``retry_index`` (0 = first retry)."""
        if retry_index < 0:
            raise ValueError("retry_index must be >= 0")
        delay = self.backoff_s * self.backoff_factor**retry_index
        if rng is not None and self.jitter > 0 and delay > 0:
            delay *= 1.0 + self.jitter * (2.0 * float(rng.random()) - 1.0)
        return delay


def run_with_retry(
    probe: Callable[[], T],
    policy: RetryPolicy,
    rng: Optional[np.random.Generator] = None,
    sleep: Callable[[float], None] = time.sleep,
    clock: Callable[[], float] = time.perf_counter,
) -> Tuple[T, int]:
    """Run ``probe`` under ``policy``; returns ``(value, attempts_used)``.

    Only :class:`ProbeError` (and subclasses) are retried — any other
    exception is a bug in the probe, not a device fault, and propagates
    immediately. After the final attempt the last fault is re-raised,
    so callers see exactly what the device last said.
    """
    last_fault: Optional[ProbeError] = None
    for attempt in range(policy.attempts):
        if attempt > 0:
            delay = policy.delay_s(attempt - 1, rng)
            if delay > 0:
                sleep(delay)
        started = clock()
        try:
            value = probe()
        except ProbeError as fault:
            last_fault = fault
            continue
        if policy.timeout_s is not None and clock() - started > policy.timeout_s:
            last_fault = ProbeTimeout(
                f"probe exceeded its {policy.timeout_s}s budget"
            )
            continue
        return value, attempt + 1
    assert last_fault is not None
    raise last_fault


class FlakyDevice(DeviceModel):
    """A device model whose probes fail or time out at configured rates.

    Wraps any :class:`~repro.hardware.device.DeviceModel` (same spec,
    same timings on success) and injects :class:`ProbeError` /
    :class:`ProbeTimeout` from a *separate* seeded fault stream before
    each probe entry point, so the measurement-noise stream is consumed
    exactly as on the healthy device — a retried probe returns the same
    value the healthy device would have.

    ``fail_first`` deterministically fails the first N probes (on top
    of the rates), which is what the fail-twice-then-succeed retry
    tests use.
    """

    def __init__(
        self,
        device: DeviceModel,
        failure_rate: float = 0.0,
        timeout_rate: float = 0.0,
        seed: int = 0,
        fail_first: int = 0,
    ):
        if not 0.0 <= failure_rate <= 1.0 or not 0.0 <= timeout_rate <= 1.0:
            raise ValueError("failure/timeout rates must be in [0, 1]")
        if failure_rate + timeout_rate > 1.0:
            raise ValueError("failure_rate + timeout_rate must be <= 1")
        if fail_first < 0:
            raise ValueError("fail_first must be >= 0")
        super().__init__(device.spec)
        self.failure_rate = failure_rate
        self.timeout_rate = timeout_rate
        self._faults = FaultStream(seed=seed, fail_first=fail_first)
        # Observability: how much grief the device caused.
        self.probes = 0
        self.injected_failures = 0
        self.injected_timeouts = 0

    @property
    def fail_first(self) -> int:
        return self._faults.fail_first

    def _maybe_fail(self) -> None:
        self.probes += 1
        forced = self._faults.fail_first > 0
        kind = self._faults.decide(
            (
                ("timeout", self.timeout_rate),
                ("failure", self.failure_rate),
            ),
            fail_first_outcome="failure",
        )
        if kind == "timeout":
            self.injected_timeouts += 1
            raise ProbeTimeout(f"injected timeout (probe #{self.probes})")
        if kind == "failure":
            self.injected_failures += 1
            suffix = ", fail_first" if forced else ""
            raise ProbeError(
                f"injected failure (probe #{self.probes}{suffix})"
            )

    # Every probe entry point the measurement layer uses checks the
    # fault stream first, then delegates to the healthy implementation.

    def run_network_ms(self, layer_primitives, extra_primitives=(), batch=None, rng=None):
        self._maybe_fail()
        return super().run_network_ms(
            layer_primitives, extra_primitives, batch=batch, rng=rng
        )

    def primitives_time_ms(self, prims):
        self._maybe_fail()
        return super().primitives_time_ms(prims)

    def operator_time_ms(self, space, layer, op_index, factor, cin):
        self._maybe_fail()
        return super().operator_time_ms(space, layer, op_index, factor, cin)
