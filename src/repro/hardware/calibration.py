"""Anchor calibration of simulated devices against published latencies.

The simulated devices are parameterized from public spec sheets, but the
absolute scale of a latency simulator is always off by some factor. As
real measurement rigs are calibrated against reference workloads, we fit
a single global ``time_scale`` per device so that the published Table-I
anchor models (MobileNetV2 et al.) land on their published latencies in
the geometric-mean sense. Only the scale is fit — the *relative*
ordering between models is produced entirely by the roofline model.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro.hardware.device import DeviceModel
from repro.hardware.spec import DeviceSpec


def calibrate_time_scale(
    pairs: Sequence[Tuple[float, float]]
) -> float:
    """Fit the log-least-squares scale mapping simulated -> published.

    ``pairs`` holds ``(simulated_ms, published_ms)`` tuples; the returned
    scale minimizes ``sum (log(published) - log(scale * simulated))^2``,
    i.e. ``scale = geomean(published / simulated)``.
    """
    if not pairs:
        raise ValueError("calibration needs at least one anchor pair")
    ratios = []
    for simulated, published in pairs:
        if simulated <= 0 or published <= 0:
            raise ValueError("latencies must be positive")
        ratios.append(np.log(published / simulated))
    return float(np.exp(np.mean(ratios)))


def calibrated_device(
    spec: DeviceSpec, pairs: Sequence[Tuple[float, float]]
) -> DeviceModel:
    """Return a device with its ``time_scale`` fit to the anchor pairs.

    The pairs must have been simulated with ``time_scale == 1``; the
    resulting device multiplies all latencies by the fitted scale.
    """
    if spec.time_scale != 1.0:
        raise ValueError("anchor pairs must come from an uncalibrated device")
    scale = calibrate_time_scale(pairs)
    return DeviceModel(spec.with_time_scale(scale))


def calibrated_devices() -> dict:
    """GPU/CPU/edge devices anchor-calibrated on the Table-I baselines.

    For each device, every baseline model is timed noise-free with
    ``time_scale = 1`` and the geometric-mean ratio to its published
    Table-I latency becomes the device's time scale. This is the device
    set used by the Table-I benchmark and the examples: latency numbers
    from it live on the same absolute scale as the paper's (9 / 24 /
    34 ms constraints apply directly).
    """
    from repro.baselines.zoo import all_baselines
    from repro.hardware.spec import cpu_spec, edge_spec, gpu_spec

    built = [(model, model.build()) for model in all_baselines()]
    devices = {}
    for spec in (gpu_spec(), cpu_spec(), edge_spec()):
        device = DeviceModel(spec)
        pairs = [
            (
                device.run_network_ms(net.layers),
                model.published.latency_ms(spec.key),
            )
            for model, net in built
        ]
        devices[spec.key] = calibrated_device(spec, pairs)
    return devices
